//! Local-join algorithm benchmarks: the three §II.C filter algorithms at
//! realistic partition sizes (wall-clock of the real computation — the
//! simulated-cost comparison is in `reproduce ablations`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sjc_geom::Mbr;
use sjc_index::entry::IndexEntry;
use sjc_index::join::{indexed_nested_loop, plane_sweep, sync_rtree};

fn entries(n: usize, seed: u64, extent: f64, side: f64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * extent;
            let y = rng.gen::<f64>() * extent;
            IndexEntry::new(
                i as u64,
                Mbr::new(x, y, x + rng.gen::<f64>() * side, y + rng.gen::<f64>() * side),
            )
        })
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_join");
    // Partition-sized inputs: what one task of the distributed join sees.
    for &n in &[1_000usize, 5_000, 20_000] {
        let left = entries(n, 21, 1000.0, 3.0);
        let right = entries(n / 2, 22, 1000.0, 3.0);
        group.bench_with_input(BenchmarkId::new("indexed_nested_loop", n), &n, |b, _| {
            b.iter(|| indexed_nested_loop(black_box(&left), black_box(&right)).pairs.len())
        });
        group.bench_with_input(BenchmarkId::new("plane_sweep", n), &n, |b, _| {
            b.iter(|| plane_sweep(black_box(&left), black_box(&right)).pairs.len())
        });
        group.bench_with_input(BenchmarkId::new("sync_rtree", n), &n, |b, _| {
            b.iter(|| sync_rtree(black_box(&left), black_box(&right)).pairs.len())
        });
    }
    group.finish();
}

fn bench_selectivity_extremes(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_join_selectivity");
    // Dense: everything overlaps (big rectangles) — output-dominated.
    let dense_l = entries(2_000, 31, 100.0, 30.0);
    let dense_r = entries(1_000, 32, 100.0, 30.0);
    group.bench_function("dense_overlap", |b| {
        b.iter(|| plane_sweep(black_box(&dense_l), black_box(&dense_r)).pairs.len())
    });
    // Sparse: tiny rectangles spread wide — filter-dominated.
    let sparse_l = entries(2_000, 33, 100_000.0, 1.0);
    let sparse_r = entries(1_000, 34, 100_000.0, 1.0);
    group.bench_function("sparse_disjoint", |b| {
        b.iter(|| plane_sweep(black_box(&sparse_l), black_box(&sparse_r)).pairs.len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_algorithms, bench_selectivity_extremes
}
criterion_main!(benches);
