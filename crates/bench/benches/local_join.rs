//! Local-join algorithm benchmarks: the three §II.C filter algorithms plus
//! the cache-conscious striped sweep at realistic partition sizes
//! (wall-clock of the real computation — the simulated-cost comparison is
//! in `reproduce ablations`).

use sjc_bench::microbench::{black_box, Bench};
use sjc_data::rng::StdRng;
use sjc_geom::Mbr;
use sjc_index::entry::IndexEntry;
use sjc_index::join::{indexed_nested_loop, plane_sweep, stripe_sweep, sync_rtree};

fn entries(n: usize, seed: u64, extent: f64, side: f64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * extent;
            let y = rng.gen::<f64>() * extent;
            IndexEntry::new(
                i as u64,
                Mbr::new(x, y, x + rng.gen::<f64>() * side, y + rng.gen::<f64>() * side),
            )
        })
        .collect()
}

fn bench_algorithms(b: &mut Bench) {
    // Partition-sized inputs: what one task of the distributed join sees.
    for &n in &[1_000usize, 5_000, 20_000] {
        let left = entries(n, 21, 1000.0, 3.0);
        let right = entries(n / 2, 22, 1000.0, 3.0);
        b.bench_in("local_join", &format!("indexed_nested_loop/{n}"), || {
            indexed_nested_loop(black_box(&left), black_box(&right)).pairs.len()
        });
        b.bench_in("local_join", &format!("plane_sweep/{n}"), || {
            plane_sweep(black_box(&left), black_box(&right)).pairs.len()
        });
        b.bench_in("local_join", &format!("sync_rtree/{n}"), || {
            sync_rtree(black_box(&left), black_box(&right)).pairs.len()
        });
        b.bench_in("local_join", &format!("stripe_sweep/{n}"), || {
            stripe_sweep(black_box(&left), black_box(&right)).pairs.len()
        });
    }
}

fn bench_old_vs_new_kernel(b: &mut Bench) {
    // The EXPERIMENTS.md §local-join-kernel table: classic AoS plane sweep
    // vs the striped SoA kernel on the exact perfsnap local_join workload,
    // so the microbench and the snapshot tell the same story.
    let left = entries(60_000, 21, 1000.0, 3.0);
    let right = entries(30_000, 22, 1000.0, 3.0);
    b.bench_in("local_join_kernel", "plane_sweep/60k_x_30k", || {
        plane_sweep(black_box(&left), black_box(&right)).pairs.len()
    });
    b.bench_in("local_join_kernel", "stripe_sweep/60k_x_30k", || {
        stripe_sweep(black_box(&left), black_box(&right)).pairs.len()
    });
}

fn bench_selectivity_extremes(b: &mut Bench) {
    // Dense: everything overlaps (big rectangles) — output-dominated.
    let dense_l = entries(2_000, 31, 100.0, 30.0);
    let dense_r = entries(1_000, 32, 100.0, 30.0);
    b.bench_in("local_join_selectivity", "dense_overlap", || {
        plane_sweep(black_box(&dense_l), black_box(&dense_r)).pairs.len()
    });
    // Sparse: tiny rectangles spread wide — filter-dominated.
    let sparse_l = entries(2_000, 33, 100_000.0, 1.0);
    let sparse_r = entries(1_000, 34, 100_000.0, 1.0);
    b.bench_in("local_join_selectivity", "sparse_disjoint", || {
        plane_sweep(black_box(&sparse_l), black_box(&sparse_r)).pairs.len()
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_algorithms(&mut b);
    bench_old_vs_new_kernel(&mut b);
    bench_selectivity_extremes(&mut b);
}
