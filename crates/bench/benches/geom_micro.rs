//! Geometry-engine micro-benchmarks: the refinement primitives whose cost
//! the paper's §II.C attributes the GEOS/JTS gap to.

use sjc_bench::microbench::{black_box, Bench};
use sjc_data::rng::StdRng;
use sjc_geom::algorithms::{linestrings_intersect, point_in_polygon};
use sjc_geom::predicates::segments_intersect;
use sjc_geom::wkt::{parse_wkt, to_wkt};
use sjc_geom::{Geometry, LineString, Point, Polygon};

fn ring(n: usize, radius: f64) -> Polygon {
    let pts = (0..n)
        .map(|i| {
            let theta = i as f64 / n as f64 * std::f64::consts::TAU;
            Point::new(radius * theta.cos(), radius * theta.sin())
        })
        .collect();
    Polygon::new(pts)
}

fn walk(rng: &mut StdRng, n: usize) -> LineString {
    let mut x = rng.gen::<f64>() * 100.0;
    let mut y = rng.gen::<f64>() * 100.0;
    let pts = (0..n)
        .map(|_| {
            x += rng.gen::<f64>() * 2.0 - 1.0;
            y += rng.gen::<f64>() * 2.0 - 1.0;
            Point::new(x, y)
        })
        .collect();
    LineString::new(pts)
}

fn bench_point_in_polygon(b: &mut Bench) {
    for &n in &[4usize, 16, 64, 256] {
        let poly = ring(n, 10.0);
        let probes: Vec<Point> =
            (0..64).map(|i| Point::new((i % 16) as f64 - 8.0, (i / 16) as f64 - 8.0)).collect();
        b.bench_in("point_in_polygon", &n.to_string(), || {
            let mut hits = 0;
            for p in &probes {
                if point_in_polygon(black_box(&poly), black_box(p)) {
                    hits += 1;
                }
            }
            hits
        });
    }
}

fn bench_segment_intersection(b: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(1);
    let segs: Vec<(Point, Point)> = (0..256)
        .map(|_| {
            let a = Point::new(rng.gen::<f64>() * 100.0, rng.gen::<f64>() * 100.0);
            let b = Point::new(a.x + rng.gen::<f64>() * 5.0, a.y + rng.gen::<f64>() * 5.0);
            (a, b)
        })
        .collect();
    b.bench("segment_intersection_256x256", || {
        let mut hits = 0u32;
        for (p1, p2) in &segs {
            for (q1, q2) in &segs {
                if segments_intersect(p1, p2, q1, q2) {
                    hits += 1;
                }
            }
        }
        hits
    });
}

fn bench_polyline_intersect(b: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(2);
    let roads: Vec<LineString> = (0..64).map(|_| walk(&mut rng, 8)).collect();
    let rivers: Vec<LineString> = (0..64).map(|_| walk(&mut rng, 35)).collect();
    b.bench("polyline_intersect_64x64", || {
        let mut hits = 0u32;
        for r in &roads {
            for w in &rivers {
                if linestrings_intersect(black_box(r), black_box(w)) {
                    hits += 1;
                }
            }
        }
        hits
    });
}

fn bench_wkt_round_trip(b: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(3);
    let geoms: Vec<Geometry> = (0..100)
        .map(|i| match i % 3 {
            0 => Geometry::Point(Point::new(rng.gen(), rng.gen())),
            1 => Geometry::LineString(walk(&mut rng, 10)),
            _ => Geometry::Polygon(ring(12, 5.0)),
        })
        .collect();
    let texts: Vec<String> = geoms.iter().map(to_wkt).collect();
    b.bench("wkt_write_100", || geoms.iter().map(|g| to_wkt(black_box(g)).len()).sum::<usize>());
    b.bench("wkt_parse_100", || {
        texts.iter().map(|t| parse_wkt(black_box(t)).unwrap().num_vertices()).sum::<usize>()
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_point_in_polygon(&mut b);
    bench_segment_intersection(&mut b);
    bench_polyline_intersect(&mut b);
    bench_wkt_round_trip(&mut b);
}
