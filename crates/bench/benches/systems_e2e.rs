//! End-to-end system benchmarks: each table/figure cell's *harness*
//! wall-clock (how long regenerating a cell takes on the host). The
//! simulated numbers themselves come from `reproduce`; these benches keep
//! the regeneration cheap and guard against performance regressions in the
//! substrates.

use sjc_bench::microbench::{black_box, Bench};
use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinPredicate};
use sjc_core::hadoopgis::HadoopGis;
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::spatialspark::SpatialSpark;

const SCALE: f64 = 1e-4;
const SEED: u64 = 20150701;

fn bench_table2_cells(b: &mut Bench) {
    // One bench per (system, workload) of Table 2 on the workstation
    // configuration; failures (HadoopGIS at full multipliers) count the
    // time-to-detect, which is part of the harness cost too.
    for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
        let (l, r) = w.prepare(SCALE, SEED);
        let cluster = Cluster::new(ClusterConfig::workstation());
        let systems: Vec<Box<dyn DistributedSpatialJoin>> = vec![
            Box::new(HadoopGis::default()),
            Box::new(SpatialHadoop::default()),
            Box::new(SpatialSpark::default()),
        ];
        for sys in systems {
            b.bench_in("table2_full_joins", &format!("{}/{}", sys.name(), w.name), || {
                sys.run(
                    black_box(&cluster),
                    black_box(&l),
                    black_box(&r),
                    JoinPredicate::Intersects,
                )
                .map(|o| o.pairs.len())
                .unwrap_or(0)
            });
        }
    }
}

fn bench_table3_cells(b: &mut Bench) {
    for w in [Workload::taxi1m_nycb(), Workload::edge01_linearwater01()] {
        let (l, r) = w.prepare(SCALE, SEED);
        for cfg in [ClusterConfig::workstation(), ClusterConfig::ec2(10)] {
            let cluster = Cluster::new(cfg);
            let sys = SpatialHadoop::default();
            b.bench_in("table3_breakdown", &format!("{}/{}", w.name, cluster.config.name), || {
                sys.run(black_box(&cluster), &l, &r, JoinPredicate::Intersects)
                    .map(|o| o.trace.total_ns())
                    .unwrap_or(0)
            });
        }
    }
}

fn bench_fig1_dataflow(b: &mut Bench) {
    // The Fig.-1 regeneration: all three traces on one small workload.
    b.bench_in("fig1_dataflow", "three_system_traces", || {
        let traces = sjc_bench::fig1_traces(SCALE, SEED);
        traces.iter().map(|t| t.stages.len()).sum::<usize>()
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_table2_cells(&mut b);
    bench_table3_cells(&mut b);
    bench_fig1_dataflow(&mut b);
}
