//! End-to-end system benchmarks: each table/figure cell's *harness*
//! wall-clock (how long regenerating a cell takes on the host). The
//! simulated numbers themselves come from `reproduce`; these benches keep
//! the regeneration cheap and guard against performance regressions in the
//! substrates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sjc_cluster::{Cluster, ClusterConfig};
use sjc_core::experiment::Workload;
use sjc_core::framework::{DistributedSpatialJoin, JoinPredicate};
use sjc_core::hadoopgis::HadoopGis;
use sjc_core::spatialhadoop::SpatialHadoop;
use sjc_core::spatialspark::SpatialSpark;

const SCALE: f64 = 1e-4;
const SEED: u64 = 20150701;

fn bench_table2_cells(c: &mut Criterion) {
    // One bench per (system, workload) of Table 2 on the workstation
    // configuration; failures (HadoopGIS at full multipliers) count the
    // time-to-detect, which is part of the harness cost too.
    let mut group = c.benchmark_group("table2_full_joins");
    group.sample_size(10);
    for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
        let (l, r) = w.prepare(SCALE, SEED);
        let cluster = Cluster::new(ClusterConfig::workstation());
        let systems: Vec<Box<dyn DistributedSpatialJoin>> = vec![
            Box::new(HadoopGis::default()),
            Box::new(SpatialHadoop::default()),
            Box::new(SpatialSpark::default()),
        ];
        for sys in systems {
            group.bench_with_input(
                BenchmarkId::new(sys.name(), w.name),
                &w,
                |b, _| {
                    b.iter(|| {
                        sys.run(black_box(&cluster), black_box(&l), black_box(&r), JoinPredicate::Intersects)
                            .map(|o| o.pairs.len())
                            .unwrap_or(0)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_table3_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_breakdown");
    group.sample_size(10);
    for w in [Workload::taxi1m_nycb(), Workload::edge01_linearwater01()] {
        let (l, r) = w.prepare(SCALE, SEED);
        for cfg in [ClusterConfig::workstation(), ClusterConfig::ec2(10)] {
            let cluster = Cluster::new(cfg);
            let sys = SpatialHadoop::default();
            group.bench_with_input(
                BenchmarkId::new(w.name, cluster.config.name.clone()),
                &w,
                |b, _| {
                    b.iter(|| {
                        sys.run(black_box(&cluster), &l, &r, JoinPredicate::Intersects)
                            .map(|o| o.trace.total_ns())
                            .unwrap_or(0)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_fig1_dataflow(c: &mut Criterion) {
    // The Fig.-1 regeneration: all three traces on one small workload.
    let mut group = c.benchmark_group("fig1_dataflow");
    group.sample_size(10);
    group.bench_function("three_system_traces", |b| {
        b.iter(|| {
            let traces = sjc_bench::fig1_traces(SCALE, SEED);
            traces.iter().map(|t| t.stages.len()).sum::<usize>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_table2_cells, bench_table3_cells, bench_fig1_dataflow
}
criterion_main!(benches);
