//! Index and partitioner micro-benchmarks: R-tree construction modes (STR
//! bulk vs dynamic insertion — the SpatialHadoop/SpatialSpark vs
//! libspatialindex contrast), window queries, and partitioner builds.

use sjc_bench::microbench::{black_box, Bench};
use sjc_data::rng::StdRng;
use sjc_geom::{Mbr, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::grid::GridIndex;
use sjc_index::partition::{
    BspPartitioner, FixedGridPartitioner, SpatialPartitioner, StrTilePartitioner,
};
use sjc_index::RTree;

fn entries(n: usize, seed: u64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * 1000.0;
            let y = rng.gen::<f64>() * 1000.0;
            IndexEntry::new(
                i as u64,
                Mbr::new(x, y, x + rng.gen::<f64>() * 5.0, y + rng.gen::<f64>() * 5.0),
            )
        })
        .collect()
}

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0)).collect()
}

fn bench_rtree_build(b: &mut Bench) {
    for &n in &[1_000usize, 10_000, 100_000] {
        let es = entries(n, 7);
        b.bench_in("rtree_build", &format!("str_bulk/{n}"), || {
            RTree::bulk_load_str(black_box(es.clone())).num_nodes()
        });
        b.bench_in("rtree_build", &format!("hilbert_bulk/{n}"), || {
            RTree::bulk_load_hilbert(black_box(es.clone())).num_nodes()
        });
        if n <= 10_000 {
            b.bench_in("rtree_build", &format!("dynamic_insert/{n}"), || {
                let mut t = RTree::new_dynamic();
                for e in &es {
                    t.insert(*e);
                }
                t.num_nodes()
            });
        }
    }
}

fn bench_rtree_query(b: &mut Bench) {
    let tree = RTree::bulk_load_str(entries(100_000, 9));
    let windows: Vec<Mbr> =
        points(100, 11).into_iter().map(|p| Mbr::new(p.x, p.y, p.x + 10.0, p.y + 10.0)).collect();
    let mut buf = Vec::new();
    b.bench("rtree_query_100k_x100", || {
        let mut total = 0usize;
        for w in &windows {
            tree.query_into(black_box(w), &mut buf);
            total += buf.len();
        }
        total
    });

    let grid = GridIndex::build(Mbr::new(0.0, 0.0, 1005.0, 1005.0), &entries(100_000, 9), 16);
    b.bench("grid_query_100k_x100", || {
        let mut total = 0usize;
        for w in &windows {
            total += grid.query(black_box(w)).len();
        }
        total
    });
}

fn bench_partitioners(b: &mut Bench) {
    let extent = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
    let sample = points(10_000, 13);
    b.bench_in("partitioner_build_10k_sample", "fixed_grid", || {
        FixedGridPartitioner::with_target_cells(extent, 128).cells().len()
    });
    b.bench_in("partitioner_build_10k_sample", "str_tiles", || {
        StrTilePartitioner::from_sample(extent, sample.clone(), 128).cells().len()
    });
    b.bench_in("partitioner_build_10k_sample", "bsp", || {
        BspPartitioner::from_sample(extent, sample.clone(), 128).cells().len()
    });

    let partitioner = StrTilePartitioner::from_sample(extent, sample, 128);
    let probes = entries(10_000, 17);
    b.bench("partition_assign_10k", || {
        probes.iter().map(|e| partitioner.assign(black_box(&e.mbr)).len()).sum::<usize>()
    });
}

fn bench_knn(b: &mut Bench) {
    let tree = RTree::bulk_load_str(entries(100_000, 23));
    let probes = points(100, 29);
    b.bench("rtree_knn10_100k_x100", || {
        probes.iter().map(|p| tree.nearest_neighbors(black_box(p), 10).len()).sum::<usize>()
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_rtree_build(&mut b);
    bench_rtree_query(&mut b);
    bench_partitioners(&mut b);
    bench_knn(&mut b);
}
