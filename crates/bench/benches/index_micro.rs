//! Index and partitioner micro-benchmarks: R-tree construction modes (STR
//! bulk vs dynamic insertion — the SpatialHadoop/SpatialSpark vs
//! libspatialindex contrast), window queries, and partitioner builds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sjc_geom::{Mbr, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::grid::GridIndex;
use sjc_index::partition::{BspPartitioner, FixedGridPartitioner, SpatialPartitioner, StrTilePartitioner};
use sjc_index::RTree;

fn entries(n: usize, seed: u64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * 1000.0;
            let y = rng.gen::<f64>() * 1000.0;
            IndexEntry::new(i as u64, Mbr::new(x, y, x + rng.gen::<f64>() * 5.0, y + rng.gen::<f64>() * 5.0))
        })
        .collect()
}

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * 1000.0, rng.gen::<f64>() * 1000.0))
        .collect()
}

fn bench_rtree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    for &n in &[1_000usize, 10_000, 100_000] {
        let es = entries(n, 7);
        group.bench_with_input(BenchmarkId::new("str_bulk", n), &es, |b, es| {
            b.iter(|| RTree::bulk_load_str(black_box(es.clone())).num_nodes())
        });
        group.bench_with_input(BenchmarkId::new("hilbert_bulk", n), &es, |b, es| {
            b.iter(|| RTree::bulk_load_hilbert(black_box(es.clone())).num_nodes())
        });
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("dynamic_insert", n), &es, |b, es| {
                b.iter(|| {
                    let mut t = RTree::new_dynamic();
                    for e in es {
                        t.insert(*e);
                    }
                    t.num_nodes()
                })
            });
        }
    }
    group.finish();
}

fn bench_rtree_query(c: &mut Criterion) {
    let tree = RTree::bulk_load_str(entries(100_000, 9));
    let windows: Vec<Mbr> = points(100, 11)
        .into_iter()
        .map(|p| Mbr::new(p.x, p.y, p.x + 10.0, p.y + 10.0))
        .collect();
    let mut buf = Vec::new();
    c.bench_function("rtree_query_100k_x100", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &windows {
                tree.query_into(black_box(w), &mut buf);
                total += buf.len();
            }
            total
        })
    });

    let grid = GridIndex::build(Mbr::new(0.0, 0.0, 1005.0, 1005.0), &entries(100_000, 9), 16);
    c.bench_function("grid_query_100k_x100", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for w in &windows {
                total += grid.query(black_box(w)).len();
            }
            total
        })
    });
}

fn bench_partitioners(c: &mut Criterion) {
    let extent = Mbr::new(0.0, 0.0, 1000.0, 1000.0);
    let sample = points(10_000, 13);
    let mut group = c.benchmark_group("partitioner_build_10k_sample");
    group.bench_function("fixed_grid", |b| {
        b.iter(|| FixedGridPartitioner::with_target_cells(extent, 128).cells().len())
    });
    group.bench_function("str_tiles", |b| {
        b.iter(|| StrTilePartitioner::from_sample(extent, sample.clone(), 128).cells().len())
    });
    group.bench_function("bsp", |b| {
        b.iter(|| BspPartitioner::from_sample(extent, sample.clone(), 128).cells().len())
    });
    group.finish();

    let partitioner = StrTilePartitioner::from_sample(extent, sample, 128);
    let probes = entries(10_000, 17);
    c.bench_function("partition_assign_10k", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|e| partitioner.assign(black_box(&e.mbr)).len())
                .sum::<usize>()
        })
    });
}

fn bench_knn(c: &mut Criterion) {
    let tree = RTree::bulk_load_str(entries(100_000, 23));
    let probes = points(100, 29);
    c.bench_function("rtree_knn10_100k_x100", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| tree.nearest_neighbors(black_box(p), 10).len())
                .sum::<usize>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_rtree_build, bench_rtree_query, bench_partitioners, bench_knn
}
criterion_main!(benches);
