//! Dataset-generator benchmarks (Table 1 regeneration throughput): how fast
//! the synthetic taxi / census / TIGER data materializes per scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sjc_data::{DatasetId, ScaledDataset};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_datasets");
    group.sample_size(10);
    for id in [
        DatasetId::Taxi1m,
        DatasetId::Nycb,
        DatasetId::Edges01,
        DatasetId::Linearwater01,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{id:?}")),
            &id,
            |b, &id| b.iter(|| ScaledDataset::generate(black_box(id), 1e-3, 42).len()),
        );
    }
    group.finish();
}

fn bench_scale_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("taxi_scale_sweep");
    group.sample_size(10);
    for &scale in &[1e-4, 1e-3, 4e-3] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| ScaledDataset::generate(DatasetId::Taxi, s, 42).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generators, bench_scale_sweep
}
criterion_main!(benches);
