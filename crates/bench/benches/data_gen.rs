//! Dataset-generator benchmarks (Table 1 regeneration throughput): how fast
//! the synthetic taxi / census / TIGER data materializes per scale.

use sjc_bench::microbench::{black_box, Bench};
use sjc_data::{DatasetId, ScaledDataset};

fn bench_generators(b: &mut Bench) {
    for id in [DatasetId::Taxi1m, DatasetId::Nycb, DatasetId::Edges01, DatasetId::Linearwater01] {
        b.bench_in("table1_datasets", &format!("{id:?}"), || {
            ScaledDataset::generate(black_box(id), 1e-3, 42).len()
        });
    }
}

fn bench_scale_sweep(b: &mut Bench) {
    for &scale in &[1e-4, 1e-3, 4e-3] {
        b.bench_in("taxi_scale_sweep", &format!("{scale}"), || {
            ScaledDataset::generate(DatasetId::Taxi, scale, 42).len()
        });
    }
}

fn main() {
    let mut b = Bench::from_args();
    bench_generators(&mut b);
    bench_scale_sweep(&mut b);
}
