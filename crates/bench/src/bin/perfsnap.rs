//! `perfsnap` — one-shot host-performance snapshot of the hot suites.
//!
//! Runs the `local_join`, `data_gen` and `systems_e2e` workloads at a fixed
//! ladder of thread budgets — `@1`, `@4`, `@8`, plus `--threads N` if given
//! — and writes `BENCH_baseline.json` at the repo root mapping each
//! `<suite>@<threads>` cell to `{wall_ms, sim_ns, threads}`. The ladder is
//! fixed rather than "serial + hardware" so the snapshot keys are unique on
//! any host: on a single-core machine the old scheme produced
//! `local_join@1` twice and the last copy silently won. Two invariants are
//! checked while measuring:
//!
//! * **simulation is thread-count independent** — `sim_ns` of each suite
//!   must be bit-identical at every thread budget (the process exits
//!   non-zero otherwise);
//! * **parallelism pays** — the printed speedup column is the serial wall
//!   over that row's wall (≈1.0 on a single-core host, where extra threads
//!   only add coordination; ≥2× expected on multi-core machines).
//!
//! After the baseline, the fault sweep runs each system under the
//! none/light/heavy fault presets and writes `BENCH_faults.json` — all
//! simulated numbers, so that file is bit-stable across machines.
//!
//! `--check` skips all timing and re-parses the two checked-in snapshots
//! with [`sjc_bench::baseline`] (which rejects duplicate keys at every
//! object level), verifying the schema and the thread-independence of
//! `sim_ns` — cheap enough for CI on any hardware.
//!
//! ```text
//! cargo run --release -p sjc-bench --bin perfsnap            # write BENCH_baseline.json + BENCH_faults.json
//! cargo run --release -p sjc-bench --bin perfsnap -- --out snap.json --faults-out faults.json --threads 16
//! cargo run --release -p sjc-bench --bin perfsnap -- --check # validate the checked-in snapshots, no timing
//! ```

use std::process::ExitCode;
use std::time::Instant;

use sjc_bench::baseline::{self, Baseline};
use sjc_bench::microbench::black_box;
use sjc_cluster::{Cluster, ClusterConfig, FaultPlan};
use sjc_core::experiment::{ExperimentGrid, SystemKind, Workload};
use sjc_core::framework::JoinPredicate;
use sjc_core::json::Json;
use sjc_data::rng::StdRng;
use sjc_data::{DatasetId, ScaledDataset};
use sjc_geom::Mbr;
use sjc_index::entry::IndexEntry;
use sjc_index::join::stripe_sweep;

/// Experiment scale for the e2e suite: small enough for a quick snapshot,
/// large enough that the grid dominates process startup.
const SCALE: f64 = 1e-4;
const SEED: u64 = 20150701;

/// Thread budgets every snapshot records. Fixed so the JSON keys are the
/// same (and unique) regardless of the host's core count.
const BUDGETS: [usize; 3] = [1, 4, 8];

/// One measured run of a suite.
struct Snap {
    suite: &'static str,
    threads: usize,
    wall_ms: f64,
    sim_ns: u64,
}

fn random_entries(n: usize, seed: u64, extent: f64, side: f64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * extent;
            let y = rng.gen::<f64>() * extent;
            IndexEntry::new(
                i as u64,
                Mbr::new(x, y, x + rng.gen::<f64>() * side, y + rng.gen::<f64>() * side),
            )
        })
        .collect()
}

/// The `local_join` suite: the default striped-sweep kernel at partition
/// scale. Host-only work — no simulation — so `sim_ns` is 0 by definition.
fn run_local_join() -> u64 {
    let left = random_entries(60_000, 21, 1000.0, 3.0);
    let right = random_entries(30_000, 22, 1000.0, 3.0);
    let mut acc = 0usize;
    for _ in 0..3 {
        acc += stripe_sweep(black_box(&left), black_box(&right)).pairs.len();
    }
    black_box(acc);
    0
}

/// The `data_gen` suite: the two-phase parallel generators, uncached (the
/// cache would hide the work being measured). Host-only; `sim_ns` is 0.
fn run_data_gen() -> u64 {
    for id in [DatasetId::Taxi1m, DatasetId::Edges01, DatasetId::Linearwater01] {
        let ds = ScaledDataset::generate(id, SCALE, SEED ^ 0x5AD);
        black_box(ds.geoms.len());
    }
    0
}

/// The `systems_e2e` suite: the full Table-2 grid. Returns the summed
/// simulated nanoseconds of every successful cell — the value that must not
/// depend on the thread budget.
fn run_systems_e2e() -> u64 {
    let grid = ExperimentGrid { scale: SCALE, seed: SEED };
    grid.table2().iter().filter_map(|c| c.outcome.as_ref().ok()).map(|s| s.trace.total_ns()).sum()
}

/// Provisioning-delay base for the sweep's checkpoint axis: 4 s spins a
/// replacement up within even the Spark system's ~10 s faulted run, so the
/// axis exercises elastic re-scheduling for every system (the 30 s default
/// models EC2 instance launch and lands after the short runs finish).
const SWEEP_PROVISION_NS: u64 = 4_000_000_000;

/// The fault sweep behind `BENCH_faults.json`: each system's makespan on
/// EC2-8 under the none / light / heavy fault presets, heavy plus a node
/// crash at 40% of that system's own fault-free runtime (mirroring
/// `examples/fault_tolerance.rs`), then the heavy plan again with durable
/// checkpoints every 2 waves / every wave plus elastic replacement
/// provisioning. Inputs stay at multiplier 1 so HadoopGIS survives — its
/// full-scale pipe break is Table 2's story, not a fault outcome.
/// Everything here is simulated time: bit-stable across hosts and thread
/// budgets, so the file is directly diffable between machines.
fn run_fault_sweep() -> Json {
    let (mut left, mut right) = Workload::taxi1m_nycb().prepare(SCALE, SEED);
    left.multiplier = 1.0;
    right.multiplier = 1.0;
    let config = ClusterConfig::ec2(8);
    let mut rows: Vec<(String, Json)> = Vec::new();
    println!(
        "{:<16} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "fault sweep", "none_ns", "light_ns", "heavy_ns", "heavy_ckpt2_ns", "heavy_ckpt1_ns"
    );
    for sys in SystemKind::all() {
        let base = sys
            .instance()
            .run(&Cluster::new(config.clone()), &left, &right, JoinPredicate::Intersects)
            .map(|o| o.trace.total_ns())
            .unwrap_or(0);
        let heavy = || FaultPlan::heavy(7, &config).crash_at(2, base * 2 / 5);
        let plans: [(&str, FaultPlan); 5] = [
            ("none", FaultPlan::none()),
            ("light", FaultPlan::light(7, &config)),
            ("heavy", heavy()),
            (
                "heavy_ckpt2",
                heavy().with_checkpoints(2, 3).with_elastic_provisioning(SWEEP_PROVISION_NS),
            ),
            (
                "heavy_ckpt1",
                heavy().with_checkpoints(1, 3).with_elastic_provisioning(SWEEP_PROVISION_NS),
            ),
        ];
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut printed: Vec<String> = Vec::new();
        for (label, plan) in plans {
            let cluster = Cluster::with_faults(config.clone(), plan);
            match sys.instance().run(&cluster, &left, &right, JoinPredicate::Intersects) {
                Ok(out) => {
                    fields.push((format!("{label}_sim_ns"), Json::Int(out.trace.total_ns())));
                    if label == "heavy" {
                        let wasted: u64 = out.trace.recovery.iter().map(|e| e.wasted_ns).sum();
                        fields.push((
                            "heavy_recovery_events".to_string(),
                            Json::Int(out.trace.recovery.len() as u64),
                        ));
                        fields.push(("heavy_wasted_ns".to_string(), Json::Int(wasted)));
                    }
                    printed.push(format!("{:>16}", out.trace.total_ns()));
                }
                Err(e) => {
                    fields.push((format!("{label}_failed"), Json::Str(e.kind().to_string())));
                    printed.push(format!("{:>16}", format!("- ({})", e.kind())));
                }
            }
        }
        println!("{:<16} {}", sys.paper_name(), printed.join(" "));
        rows.push((sys.paper_name().to_string(), Json::Obj(fields)));
    }
    Json::Obj(rows)
}

/// Repetitions per measured cell; the best wall time is recorded, which
/// discards OS scheduling jitter (large on shared single-core hosts) the
/// same way the microbench harness's min column does.
const REPS: usize = 3;

fn measure(suite: &'static str, threads: usize, run: fn() -> u64) -> Snap {
    sjc_par::set_global_threads(threads);
    let mut wall_ms = f64::INFINITY;
    let mut sim_ns = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        sim_ns = run();
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    sjc_par::set_global_threads(0);
    Snap { suite, threads, wall_ms, sim_ns }
}

/// `--check`: re-parse the checked-in snapshots without timing anything.
/// Fails on JSON-level problems (duplicate keys, malformed rows), schema
/// drift, or thread-dependent simulated time.
fn check_snapshots(out_path: &str, faults_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(out_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfsnap --check: cannot read {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match Baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perfsnap --check: {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if snapshot.rows.is_empty() {
        eprintln!("perfsnap --check: {out_path} holds no rows");
        return ExitCode::FAILURE;
    }
    for suite in ["local_join", "data_gen", "systems_e2e"] {
        let rows = snapshot.suite(suite);
        if rows.is_empty() {
            eprintln!("perfsnap --check: {out_path} lacks any `{suite}@*` row");
            return ExitCode::FAILURE;
        }
        if let Some(first) = rows.first() {
            if rows.iter().any(|r| r.sim_ns != first.sim_ns) {
                eprintln!(
                    "perfsnap --check: {out_path}: `{suite}` sim_ns varies with the \
                     thread budget — determinism violation"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let faults_text = match std::fs::read_to_string(faults_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfsnap --check: cannot read {faults_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The fault sweep's schema varies per system (failed systems carry
    // `*_failed` strings instead of `*_sim_ns`), so the generic parser —
    // which still rejects duplicate keys — does the JSON-level checking,
    // and the axis coverage is validated on top: every system row must
    // answer every sweep axis one way or the other.
    let faults_doc = match baseline::parse(&faults_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perfsnap --check: {faults_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline::Value::Obj(systems) = &faults_doc else {
        eprintln!("perfsnap --check: {faults_path}: root must be an object of system rows");
        return ExitCode::FAILURE;
    };
    if systems.is_empty() {
        eprintln!("perfsnap --check: {faults_path} holds no system rows");
        return ExitCode::FAILURE;
    }
    for (system, row) in systems {
        for axis in ["none", "light", "heavy", "heavy_ckpt2", "heavy_ckpt1"] {
            let answered = row.get(&format!("{axis}_sim_ns")).is_some()
                || row.get(&format!("{axis}_failed")).is_some();
            if !answered {
                eprintln!(
                    "perfsnap --check: {faults_path}: `{system}` lacks both \
                     `{axis}_sim_ns` and `{axis}_failed` — sweep axis missing"
                );
                return ExitCode::FAILURE;
            }
        }
        if row.get("heavy_sim_ns").is_some()
            && (row.get("heavy_recovery_events").is_none() || row.get("heavy_wasted_ns").is_none())
        {
            eprintln!(
                "perfsnap --check: {faults_path}: `{system}` survived the heavy plan but \
                 lacks its recovery-ledger summary fields"
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "perfsnap --check: {out_path} ({} rows) and {faults_path} parse cleanly",
        snapshot.rows.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_baseline.json");
    let mut faults_path = String::from("BENCH_faults.json");
    let mut extra_budget: Option<usize> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return usage("--out needs a path"),
            },
            "--faults-out" => match args.next() {
                Some(p) => faults_path = p,
                None => return usage("--faults-out needs a path"),
            },
            "--threads" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => extra_budget = Some(n),
                _ => return usage("--threads needs a positive integer"),
            },
            "--check" => check = true,
            "--help" | "-h" => {
                println!(
                    "perfsnap — wall-clock snapshot of the hot suites\n\n\
                     USAGE: perfsnap [--out PATH] [--faults-out PATH] [--threads N] [--check]\n\n\
                     Runs local_join / data_gen / systems_e2e at 1, 4 and 8 threads\n\
                     (plus N if --threads is given), checks the simulated numbers\n\
                     are thread-count independent, and writes\n\
                     {{suite@threads: {{wall_ms, sim_ns, threads}}}} to PATH\n\
                     (default BENCH_baseline.json). Then runs the per-system\n\
                     none/light/heavy fault sweep and writes its simulated\n\
                     makespans to the faults path (default BENCH_faults.json).\n\n\
                     --check re-parses both checked-in files (rejecting duplicate\n\
                     keys and schema drift) without timing anything."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if check {
        return check_snapshots(&out_path, &faults_path);
    }

    let mut budgets: Vec<usize> = BUDGETS.to_vec();
    if let Some(n) = extra_budget {
        budgets.push(n);
    }
    budgets.sort_unstable();
    budgets.dedup();

    type Suite = (&'static str, fn() -> u64);
    let suites: [Suite; 3] = [
        ("local_join", run_local_join),
        ("data_gen", run_data_gen),
        ("systems_e2e", run_systems_e2e),
    ];

    // Warm-up pass: fills the dataset cache and faults in code/data so the
    // timed passes below measure compute, not first-touch costs.
    sjc_par::set_global_threads(1);
    for (_, run) in suites {
        black_box(run());
    }
    sjc_par::set_global_threads(0);

    let mut snaps: Vec<Snap> = Vec::new();
    println!(
        "{:<14} {:>8} {:>12} {:>16} {:>9}",
        "suite", "threads", "wall_ms", "sim_ns", "speedup"
    );
    for (suite, run) in suites {
        let mut serial_wall: Option<f64> = None;
        let mut serial_sim: Option<u64> = None;
        for &threads in &budgets {
            let snap = measure(suite, threads, run);
            let serial = *serial_wall.get_or_insert(snap.wall_ms);
            match serial_sim {
                None => serial_sim = Some(snap.sim_ns),
                Some(expected) if expected != snap.sim_ns => {
                    eprintln!(
                        "perfsnap: {suite}: simulated time depends on the thread budget \
                         ({expected} ns at {} thread(s) vs {} ns at {threads}) — \
                         determinism violation",
                        budgets.first().copied().unwrap_or(1),
                        snap.sim_ns
                    );
                    return ExitCode::FAILURE;
                }
                Some(_) => {}
            }
            let speedup = serial / snap.wall_ms.max(1e-9);
            println!(
                "{:<14} {:>8} {:>12.2} {:>16} {:>9}",
                snap.suite,
                snap.threads,
                snap.wall_ms,
                snap.sim_ns,
                if snap.threads == budgets.first().copied().unwrap_or(1) {
                    "-".to_string()
                } else {
                    format!("{speedup:.2}x")
                }
            );
            snaps.push(snap);
        }
    }

    let fields: Vec<(String, Json)> = snaps
        .iter()
        .map(|s| {
            (
                format!("{}@{}", s.suite, s.threads),
                Json::obj(vec![
                    ("wall_ms", Json::Float((s.wall_ms * 100.0).round() / 100.0)),
                    ("sim_ns", Json::Int(s.sim_ns)),
                    ("threads", Json::Int(s.threads as u64)),
                ]),
            )
        })
        .collect();
    let json = Json::Obj(fields);
    if let Err(e) = std::fs::write(&out_path, json.to_string_pretty() + "\n") {
        eprintln!("perfsnap: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfsnap: wrote {out_path}");

    let faults = run_fault_sweep();
    if let Err(e) = std::fs::write(&faults_path, faults.to_string_pretty() + "\n") {
        eprintln!("perfsnap: cannot write {faults_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfsnap: wrote {faults_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("perfsnap: {msg} (see --help)");
    ExitCode::from(2)
}
