//! `perfsnap` — one-shot host-performance snapshot of the hot suites.
//!
//! Runs the `local_join` and `systems_e2e` workloads once at
//! `SJC_PAR_THREADS=1` and once at the full hardware thread budget, and
//! writes `BENCH_baseline.json` at the repo root mapping each run to
//! `{wall_ms, sim_ns, threads}`. Two invariants are checked while
//! measuring:
//!
//! * **simulation is thread-count independent** — `sim_ns` of the e2e suite
//!   must be bit-identical at every thread budget (the process exits
//!   non-zero otherwise);
//! * **parallelism pays** — the printed speedup column is the serial wall
//!   over the parallel wall (≈1.0 on a single-core host, ≥2× expected on
//!   multi-core machines).
//!
//! After the baseline, the fault sweep runs each system under the
//! none/light/heavy fault presets and writes `BENCH_faults.json` — all
//! simulated numbers, so that file is bit-stable across machines.
//!
//! ```text
//! cargo run --release -p sjc-bench --bin perfsnap            # write BENCH_baseline.json + BENCH_faults.json
//! cargo run --release -p sjc-bench --bin perfsnap -- --out snap.json --faults-out faults.json --threads 4
//! ```

use std::process::ExitCode;
use std::time::Instant;

use sjc_bench::microbench::black_box;
use sjc_cluster::{Cluster, ClusterConfig, FaultPlan};
use sjc_core::experiment::{ExperimentGrid, SystemKind, Workload};
use sjc_core::framework::JoinPredicate;
use sjc_core::json::Json;
use sjc_data::rng::StdRng;
use sjc_data::{DatasetId, ScaledDataset};
use sjc_geom::Mbr;
use sjc_index::entry::IndexEntry;
use sjc_index::join::plane_sweep;

/// Experiment scale for the e2e suite: small enough for a quick snapshot,
/// large enough that the grid dominates process startup.
const SCALE: f64 = 1e-4;
const SEED: u64 = 20150701;

/// One measured run of a suite.
struct Snap {
    suite: &'static str,
    threads: usize,
    wall_ms: f64,
    sim_ns: u64,
}

fn random_entries(n: usize, seed: u64, extent: f64, side: f64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * extent;
            let y = rng.gen::<f64>() * extent;
            IndexEntry::new(
                i as u64,
                Mbr::new(x, y, x + rng.gen::<f64>() * side, y + rng.gen::<f64>() * side),
            )
        })
        .collect()
}

/// The `local_join` suite: plane-sweep at partition scale. Host-only work —
/// no simulation — so `sim_ns` is 0 by definition.
fn run_local_join() -> u64 {
    let left = random_entries(60_000, 21, 1000.0, 3.0);
    let right = random_entries(30_000, 22, 1000.0, 3.0);
    let mut acc = 0usize;
    for _ in 0..3 {
        acc += plane_sweep(black_box(&left), black_box(&right)).pairs.len();
    }
    black_box(acc);
    0
}

/// The `data_gen` suite: the two-phase parallel generators, uncached (the
/// cache would hide the work being measured). Host-only; `sim_ns` is 0.
fn run_data_gen() -> u64 {
    for id in [DatasetId::Taxi1m, DatasetId::Edges01, DatasetId::Linearwater01] {
        let ds = ScaledDataset::generate(id, SCALE, SEED ^ 0x5AD);
        black_box(ds.geoms.len());
    }
    0
}

/// The `systems_e2e` suite: the full Table-2 grid. Returns the summed
/// simulated nanoseconds of every successful cell — the value that must not
/// depend on the thread budget.
fn run_systems_e2e() -> u64 {
    let grid = ExperimentGrid { scale: SCALE, seed: SEED };
    grid.table2().iter().filter_map(|c| c.outcome.as_ref().ok()).map(|s| s.trace.total_ns()).sum()
}

/// The fault sweep behind `BENCH_faults.json`: each system's makespan on
/// EC2-8 under the none / light / heavy fault presets, heavy plus a node
/// crash at 40% of that system's own fault-free runtime (mirroring
/// `examples/fault_tolerance.rs`). Inputs stay at multiplier 1 so HadoopGIS
/// survives — its full-scale pipe break is Table 2's story, not a fault
/// outcome. Everything here is simulated time: bit-stable across hosts and
/// thread budgets, so the file is directly diffable between machines.
fn run_fault_sweep() -> Json {
    let (mut left, mut right) = Workload::taxi1m_nycb().prepare(SCALE, SEED);
    left.multiplier = 1.0;
    right.multiplier = 1.0;
    let config = ClusterConfig::ec2(8);
    let mut rows: Vec<(String, Json)> = Vec::new();
    println!("{:<16} {:>16} {:>16} {:>16}", "fault sweep", "none_ns", "light_ns", "heavy_ns");
    for sys in SystemKind::all() {
        let base = sys
            .instance()
            .run(&Cluster::new(config.clone()), &left, &right, JoinPredicate::Intersects)
            .map(|o| o.trace.total_ns())
            .unwrap_or(0);
        let plans: [(&str, FaultPlan); 3] = [
            ("none", FaultPlan::none()),
            ("light", FaultPlan::light(7, &config)),
            ("heavy", FaultPlan::heavy(7, &config).crash_at(2, base * 2 / 5)),
        ];
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut printed: Vec<String> = Vec::new();
        for (label, plan) in plans {
            let cluster = Cluster::with_faults(config.clone(), plan);
            match sys.instance().run(&cluster, &left, &right, JoinPredicate::Intersects) {
                Ok(out) => {
                    fields.push((format!("{label}_sim_ns"), Json::Int(out.trace.total_ns())));
                    if label == "heavy" {
                        let wasted: u64 = out.trace.recovery.iter().map(|e| e.wasted_ns).sum();
                        fields.push((
                            "heavy_recovery_events".to_string(),
                            Json::Int(out.trace.recovery.len() as u64),
                        ));
                        fields.push(("heavy_wasted_ns".to_string(), Json::Int(wasted)));
                    }
                    printed.push(format!("{:>16}", out.trace.total_ns()));
                }
                Err(e) => {
                    fields.push((format!("{label}_failed"), Json::Str(e.kind().to_string())));
                    printed.push(format!("{:>16}", format!("- ({})", e.kind())));
                }
            }
        }
        println!("{:<16} {}", sys.paper_name(), printed.join(" "));
        rows.push((sys.paper_name().to_string(), Json::Obj(fields)));
    }
    Json::Obj(rows)
}

fn measure(suite: &'static str, threads: usize, run: fn() -> u64) -> Snap {
    sjc_par::set_global_threads(threads);
    let start = Instant::now();
    let sim_ns = run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    sjc_par::set_global_threads(0);
    Snap { suite, threads, wall_ms, sim_ns }
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_baseline.json");
    let mut faults_path = String::from("BENCH_faults.json");
    let mut hw = sjc_par::hardware_threads();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return usage("--out needs a path"),
            },
            "--faults-out" => match args.next() {
                Some(p) => faults_path = p,
                None => return usage("--faults-out needs a path"),
            },
            "--threads" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => hw = n,
                _ => return usage("--threads needs a positive integer"),
            },
            "--help" | "-h" => {
                println!(
                    "perfsnap — wall-clock snapshot of the hot suites\n\n\
                     USAGE: perfsnap [--out PATH] [--faults-out PATH] [--threads N]\n\n\
                     Runs local_join / data_gen / systems_e2e once serially and\n\
                     once at N threads (default: hardware), checks the simulated\n\
                     numbers are thread-count independent, and writes\n\
                     {{bench: {{wall_ms, sim_ns, threads}}}} to PATH\n\
                     (default BENCH_baseline.json). Then runs the per-system\n\
                     none/light/heavy fault sweep and writes its simulated\n\
                     makespans to the faults path (default BENCH_faults.json)."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    type Suite = (&'static str, fn() -> u64);
    let suites: [Suite; 3] = [
        ("local_join", run_local_join),
        ("data_gen", run_data_gen),
        ("systems_e2e", run_systems_e2e),
    ];

    // Warm-up pass: fills the dataset cache and faults in code/data so both
    // timed passes below measure compute, not first-touch costs.
    sjc_par::set_global_threads(1);
    for (_, run) in suites {
        black_box(run());
    }
    sjc_par::set_global_threads(0);

    let mut snaps: Vec<Snap> = Vec::new();
    println!(
        "{:<14} {:>8} {:>12} {:>16} {:>9}",
        "suite", "threads", "wall_ms", "sim_ns", "speedup"
    );
    for (suite, run) in suites {
        let serial = measure(suite, 1, run);
        let parallel = measure(suite, hw, run);
        if serial.sim_ns != parallel.sim_ns {
            eprintln!(
                "perfsnap: {suite}: simulated time depends on the thread budget \
                 ({} ns at 1 thread vs {} ns at {hw}) — determinism violation",
                serial.sim_ns, parallel.sim_ns
            );
            return ExitCode::FAILURE;
        }
        let speedup = serial.wall_ms / parallel.wall_ms.max(1e-9);
        for s in [&serial, &parallel] {
            println!(
                "{:<14} {:>8} {:>12.2} {:>16} {:>9}",
                s.suite,
                s.threads,
                s.wall_ms,
                s.sim_ns,
                if s.threads == 1 { "-".to_string() } else { format!("{speedup:.2}x") }
            );
        }
        snaps.push(serial);
        snaps.push(parallel);
    }

    let fields: Vec<(String, Json)> = snaps
        .iter()
        .map(|s| {
            (
                format!("{}@{}", s.suite, s.threads),
                Json::obj(vec![
                    ("wall_ms", Json::Float((s.wall_ms * 100.0).round() / 100.0)),
                    ("sim_ns", Json::Int(s.sim_ns)),
                    ("threads", Json::Int(s.threads as u64)),
                ]),
            )
        })
        .collect();
    let json = Json::Obj(fields);
    if let Err(e) = std::fs::write(&out_path, json.to_string_pretty() + "\n") {
        eprintln!("perfsnap: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfsnap: wrote {out_path}");

    let faults = run_fault_sweep();
    if let Err(e) = std::fs::write(&faults_path, faults.to_string_pretty() + "\n") {
        eprintln!("perfsnap: cannot write {faults_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfsnap: wrote {faults_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("perfsnap: {msg} (see --help)");
    ExitCode::from(2)
}
