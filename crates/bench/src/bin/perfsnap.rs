//! `perfsnap` — one-shot host-performance snapshot of the hot suites.
//!
//! Runs the `local_join`, `data_gen` and `systems_e2e` workloads at a fixed
//! ladder of thread budgets — `@1`, `@4`, `@8`, plus `--threads N` if given
//! — and writes `BENCH_baseline.json` at the repo root mapping each
//! `<suite>@<threads>` cell to `{wall_ms, sim_ns, threads, phase_ms}`,
//! where `phase_ms` is a named per-phase wall-time breakdown of the best
//! repetition (e.g. `input_gen` vs `sweep` for `local_join`). The ladder is
//! fixed rather than "serial + hardware" so the snapshot keys are unique on
//! any host: on a single-core machine the old scheme produced
//! `local_join@1` twice and the last copy silently won. Two invariants are
//! checked while measuring:
//!
//! * **simulation is thread-count independent** — `sim_ns` of each suite
//!   must be bit-identical at every thread budget (the process exits
//!   non-zero otherwise);
//! * **parallelism pays** — the printed speedup column is the serial wall
//!   over that row's wall (≈1.0 on a single-core host, where extra threads
//!   only add coordination; ≥2× expected on multi-core machines).
//!
//! After the baseline, the fault sweep runs each system under the
//! none/light/heavy fault presets and writes `BENCH_faults.json` — all
//! simulated numbers, so that file is bit-stable across machines.
//!
//! `--check` skips all timing and re-parses the two checked-in snapshots
//! with [`sjc_bench::baseline`] (which rejects duplicate keys at every
//! object level), verifying the schema — including the `phase_ms`
//! breakdown, which must exist on every row and name the same phases at
//! every thread budget — and the thread-independence of `sim_ns`. It also
//! *reports* each suite's @8/@1 wall ratio without gating on it: wall-clock
//! scaling depends on the snapshot host's core count, so it would flake as
//! a hard CI check. All of this is cheap enough for CI on any hardware.
//!
//! ```text
//! cargo run --release -p sjc-bench --bin perfsnap            # write BENCH_baseline.json + BENCH_faults.json
//! cargo run --release -p sjc-bench --bin perfsnap -- --out snap.json --faults-out faults.json --threads 16
//! cargo run --release -p sjc-bench --bin perfsnap -- --check # validate the checked-in snapshots, no timing
//! ```

use std::process::ExitCode;
use std::time::Instant;

use sjc_bench::baseline::{self, Baseline};
use sjc_bench::microbench::black_box;
use sjc_cluster::{Cluster, ClusterConfig, FaultPlan};
use sjc_core::experiment::{ExperimentGrid, SystemKind, Workload};
use sjc_core::framework::JoinPredicate;
use sjc_core::json::Json;
use sjc_data::rng::StdRng;
use sjc_data::{DatasetId, ScaledDataset};
use sjc_geom::Mbr;
use sjc_index::entry::IndexEntry;
use sjc_index::join::stripe_sweep;

/// Experiment scale for the e2e suite: small enough for a quick snapshot,
/// large enough that the grid dominates process startup.
const SCALE: f64 = 1e-4;
const SEED: u64 = 20150701;

/// Thread budgets every snapshot records. Fixed so the JSON keys are the
/// same (and unique) regardless of the host's core count.
const BUDGETS: [usize; 3] = [1, 4, 8];

/// One measured run of a suite. `phase_ms` is the named wall-time
/// breakdown of the best (recorded) repetition — where inside the suite
/// the wall clock actually went, so a scaling regression points at a
/// phase, not just a suite.
struct Snap {
    suite: &'static str,
    threads: usize,
    wall_ms: f64,
    sim_ns: u64,
    phase_ms: Vec<(&'static str, f64)>,
}

/// What a suite runner produces: the summed simulated nanoseconds (0 for
/// host-only suites) plus its named phase wall times.
type SuiteRun = (u64, Vec<(&'static str, f64)>);

/// Times one named phase of a suite run. Phase timing lives here in
/// `crates/bench` because the bench-isolation lint keeps `Instant::now`
/// out of every library crate.
fn timed<T>(phases: &mut Vec<(&'static str, f64)>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    phases.push((name, start.elapsed().as_secs_f64() * 1e3));
    out
}

fn random_entries(n: usize, seed: u64, extent: f64, side: f64) -> Vec<IndexEntry> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen::<f64>() * extent;
            let y = rng.gen::<f64>() * extent;
            IndexEntry::new(
                i as u64,
                Mbr::new(x, y, x + rng.gen::<f64>() * side, y + rng.gen::<f64>() * side),
            )
        })
        .collect()
}

/// The `local_join` suite: the default striped-sweep kernel at partition
/// scale. Host-only work — no simulation — so `sim_ns` is 0 by definition.
fn run_local_join() -> SuiteRun {
    let mut phases = Vec::new();
    let (left, right) = timed(&mut phases, "input_gen", || {
        (random_entries(60_000, 21, 1000.0, 3.0), random_entries(30_000, 22, 1000.0, 3.0))
    });
    timed(&mut phases, "sweep", || {
        let mut acc = 0usize;
        for _ in 0..3 {
            acc += stripe_sweep(black_box(&left), black_box(&right)).pairs.len();
        }
        black_box(acc);
    });
    (0, phases)
}

/// The `data_gen` suite: the two-phase parallel generators, uncached (the
/// cache would hide the work being measured). Host-only; `sim_ns` is 0.
fn run_data_gen() -> SuiteRun {
    let mut phases = Vec::new();
    let ids: [(&'static str, DatasetId); 3] = [
        ("taxi1m", DatasetId::Taxi1m),
        ("edges01", DatasetId::Edges01),
        ("linearwater01", DatasetId::Linearwater01),
    ];
    for (name, id) in ids {
        timed(&mut phases, name, || {
            let ds = ScaledDataset::generate(id, SCALE, SEED ^ 0x5AD);
            black_box(ds.geoms.len());
        });
    }
    (0, phases)
}

/// The `systems_e2e` suite: the full Table-2 grid. Returns the summed
/// simulated nanoseconds of every successful cell — the value that must not
/// depend on the thread budget. The `prepare` phase runs the two workloads'
/// input generation up front (normally cache-warm after the first rep) so
/// the `grid` phase isolates partition + simulate + local-join work.
fn run_systems_e2e() -> SuiteRun {
    let mut phases = Vec::new();
    timed(&mut phases, "prepare", || {
        for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
            black_box(w.prepare(SCALE, SEED));
        }
    });
    let grid = ExperimentGrid { scale: SCALE, seed: SEED };
    let sim_ns = timed(&mut phases, "grid", || {
        grid.table2()
            .iter()
            .filter_map(|c| c.outcome.as_ref().ok())
            .map(|s| s.trace.total_ns())
            .sum()
    });
    (sim_ns, phases)
}

/// Provisioning-delay base for the sweep's checkpoint axis: 4 s spins a
/// replacement up within even the Spark system's ~10 s faulted run, so the
/// axis exercises elastic re-scheduling for every system (the 30 s default
/// models EC2 instance launch and lands after the short runs finish).
const SWEEP_PROVISION_NS: u64 = 4_000_000_000;

/// The fault sweep behind `BENCH_faults.json`: each system's makespan on
/// EC2-8 under the none / light / heavy fault presets, heavy plus a node
/// crash at 40% of that system's own fault-free runtime (mirroring
/// `examples/fault_tolerance.rs`), then the heavy plan again with durable
/// checkpoints every 2 waves / every wave plus elastic replacement
/// provisioning. Inputs stay at multiplier 1 so HadoopGIS survives — its
/// full-scale pipe break is Table 2's story, not a fault outcome.
/// Everything here is simulated time: bit-stable across hosts and thread
/// budgets, so the file is directly diffable between machines.
fn run_fault_sweep() -> Json {
    let (mut left, mut right) = Workload::taxi1m_nycb().prepare(SCALE, SEED);
    left.multiplier = 1.0;
    right.multiplier = 1.0;
    let config = ClusterConfig::ec2(8);
    let mut rows: Vec<(String, Json)> = Vec::new();
    println!(
        "{:<16} {:>16} {:>16} {:>16} {:>16} {:>16}",
        "fault sweep", "none_ns", "light_ns", "heavy_ns", "heavy_ckpt2_ns", "heavy_ckpt1_ns"
    );
    for sys in SystemKind::all() {
        let base = sys
            .instance()
            .run(&Cluster::new(config.clone()), &left, &right, JoinPredicate::Intersects)
            .map(|o| o.trace.total_ns())
            .unwrap_or(0);
        let heavy = || FaultPlan::heavy(7, &config).crash_at(2, base * 2 / 5);
        let plans: [(&str, FaultPlan); 5] = [
            ("none", FaultPlan::none()),
            ("light", FaultPlan::light(7, &config)),
            ("heavy", heavy()),
            (
                "heavy_ckpt2",
                heavy().with_checkpoints(2, 3).with_elastic_provisioning(SWEEP_PROVISION_NS),
            ),
            (
                "heavy_ckpt1",
                heavy().with_checkpoints(1, 3).with_elastic_provisioning(SWEEP_PROVISION_NS),
            ),
        ];
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut printed: Vec<String> = Vec::new();
        for (label, plan) in plans {
            let cluster = Cluster::with_faults(config.clone(), plan);
            match sys.instance().run(&cluster, &left, &right, JoinPredicate::Intersects) {
                Ok(out) => {
                    fields.push((format!("{label}_sim_ns"), Json::Int(out.trace.total_ns())));
                    if label == "heavy" {
                        let wasted: u64 = out.trace.recovery.iter().map(|e| e.wasted_ns).sum();
                        fields.push((
                            "heavy_recovery_events".to_string(),
                            Json::Int(out.trace.recovery.len() as u64),
                        ));
                        fields.push(("heavy_wasted_ns".to_string(), Json::Int(wasted)));
                    }
                    printed.push(format!("{:>16}", out.trace.total_ns()));
                }
                Err(e) => {
                    fields.push((format!("{label}_failed"), Json::Str(e.kind().to_string())));
                    printed.push(format!("{:>16}", format!("- ({})", e.kind())));
                }
            }
        }
        println!("{:<16} {}", sys.paper_name(), printed.join(" "));
        rows.push((sys.paper_name().to_string(), Json::Obj(fields)));
    }
    Json::Obj(rows)
}

/// Repetitions per measured cell; the best wall time is recorded, which
/// discards OS scheduling jitter (large on shared single-core hosts) the
/// same way the microbench harness's min column does.
const REPS: usize = 3;

/// Measures one suite across the whole thread ladder with *interleaved*
/// reps: each round runs every budget once, so slow host drift (cgroup
/// throttling, thermal clamps, a neighbor stealing the core) hits all
/// rungs alike instead of systematically penalizing whichever budget
/// happens to run last. Per budget the best wall time is kept, along
/// with that rep's phase breakdown so the phases add up to (roughly)
/// the recorded wall, not to some average of reps.
fn measure_ladder(suite: &'static str, budgets: &[usize], run: fn() -> SuiteRun) -> Vec<Snap> {
    let mut snaps: Vec<Snap> = budgets
        .iter()
        .map(|&threads| Snap {
            suite,
            threads,
            wall_ms: f64::INFINITY,
            sim_ns: 0,
            phase_ms: Vec::new(),
        })
        .collect();
    for _ in 0..REPS {
        for snap in snaps.iter_mut() {
            sjc_par::set_global_threads(snap.threads);
            let start = Instant::now();
            let (sim, phases) = run();
            let wall = start.elapsed().as_secs_f64() * 1e3;
            eprintln!("  rep {}@{}: {wall:.2} ms", suite, snap.threads);
            snap.sim_ns = sim;
            if wall < snap.wall_ms {
                snap.wall_ms = wall;
                snap.phase_ms = phases;
            }
        }
    }
    sjc_par::set_global_threads(0);
    snaps
}

/// `--check`: re-parse the checked-in snapshots without timing anything.
/// Fails on JSON-level problems (duplicate keys, malformed rows), schema
/// drift, or thread-dependent simulated time.
fn check_snapshots(out_path: &str, faults_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(out_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfsnap --check: cannot read {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot = match Baseline::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perfsnap --check: {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if snapshot.rows.is_empty() {
        eprintln!("perfsnap --check: {out_path} holds no rows");
        return ExitCode::FAILURE;
    }
    for suite in ["local_join", "data_gen", "systems_e2e"] {
        let rows = snapshot.suite(suite);
        if rows.is_empty() {
            eprintln!("perfsnap --check: {out_path} lacks any `{suite}@*` row");
            return ExitCode::FAILURE;
        }
        if let Some(first) = rows.first() {
            if rows.iter().any(|r| r.sim_ns != first.sim_ns) {
                eprintln!(
                    "perfsnap --check: {out_path}: `{suite}` sim_ns varies with the \
                     thread budget — determinism violation"
                );
                return ExitCode::FAILURE;
            }
            // Every row must carry the phase breakdown, and every thread
            // budget must decompose the suite into the same phases — the
            // rows are otherwise not comparable.
            let names = |r: &baseline::BaselineRow| {
                r.phase_ms.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
            };
            let expected = names(first);
            if expected.is_empty() {
                eprintln!(
                    "perfsnap --check: {out_path}: `{suite}@{}` lacks its phase_ms \
                     breakdown — regenerate the snapshot with this perfsnap",
                    first.threads
                );
                return ExitCode::FAILURE;
            }
            if let Some(odd) = rows.iter().find(|r| names(r) != expected) {
                eprintln!(
                    "perfsnap --check: {out_path}: `{suite}@{}` phases {:?} differ from \
                     `{suite}@{}`'s {:?}",
                    odd.threads,
                    names(odd),
                    first.threads,
                    expected
                );
                return ExitCode::FAILURE;
            }
        }
        // Scaling report, not a gate: the @8/@1 wall ratio says whether the
        // extra threads paid on the snapshot host. A ratio near 1.0 is the
        // honest answer on a single-core machine, so CI never hard-fails on
        // it — regressions show up as the ratio drifting above 1.0.
        if let (Some(serial), Some(wide)) = (snapshot.row(suite, 1), snapshot.row(suite, 8)) {
            let ratio = wide.wall_ms / serial.wall_ms.max(1e-9);
            let verdict = if ratio <= 1.0 { "scales" } else { "overhead" };
            println!(
                "perfsnap --check: {suite}: @8/@1 wall ratio {ratio:.3} \
                 ({:.2} ms / {:.2} ms) — {verdict}",
                wide.wall_ms, serial.wall_ms
            );
        }
    }
    let faults_text = match std::fs::read_to_string(faults_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfsnap --check: cannot read {faults_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The fault sweep's schema varies per system (failed systems carry
    // `*_failed` strings instead of `*_sim_ns`), so the generic parser —
    // which still rejects duplicate keys — does the JSON-level checking,
    // and the axis coverage is validated on top: every system row must
    // answer every sweep axis one way or the other.
    let faults_doc = match baseline::parse(&faults_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perfsnap --check: {faults_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline::Value::Obj(systems) = &faults_doc else {
        eprintln!("perfsnap --check: {faults_path}: root must be an object of system rows");
        return ExitCode::FAILURE;
    };
    if systems.is_empty() {
        eprintln!("perfsnap --check: {faults_path} holds no system rows");
        return ExitCode::FAILURE;
    }
    for (system, row) in systems {
        for axis in ["none", "light", "heavy", "heavy_ckpt2", "heavy_ckpt1"] {
            let answered = row.get(&format!("{axis}_sim_ns")).is_some()
                || row.get(&format!("{axis}_failed")).is_some();
            if !answered {
                eprintln!(
                    "perfsnap --check: {faults_path}: `{system}` lacks both \
                     `{axis}_sim_ns` and `{axis}_failed` — sweep axis missing"
                );
                return ExitCode::FAILURE;
            }
        }
        if row.get("heavy_sim_ns").is_some()
            && (row.get("heavy_recovery_events").is_none() || row.get("heavy_wasted_ns").is_none())
        {
            eprintln!(
                "perfsnap --check: {faults_path}: `{system}` survived the heavy plan but \
                 lacks its recovery-ledger summary fields"
            );
            return ExitCode::FAILURE;
        }
    }
    println!(
        "perfsnap --check: {out_path} ({} rows) and {faults_path} parse cleanly",
        snapshot.rows.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_baseline.json");
    let mut faults_path = String::from("BENCH_faults.json");
    let mut extra_budget: Option<usize> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return usage("--out needs a path"),
            },
            "--faults-out" => match args.next() {
                Some(p) => faults_path = p,
                None => return usage("--faults-out needs a path"),
            },
            "--threads" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => extra_budget = Some(n),
                _ => return usage("--threads needs a positive integer"),
            },
            "--check" => check = true,
            "--help" | "-h" => {
                println!(
                    "perfsnap — wall-clock snapshot of the hot suites\n\n\
                     USAGE: perfsnap [--out PATH] [--faults-out PATH] [--threads N] [--check]\n\n\
                     Runs local_join / data_gen / systems_e2e at 1, 4 and 8 threads\n\
                     (plus N if --threads is given), checks the simulated numbers\n\
                     are thread-count independent, and writes\n\
                     {{suite@threads: {{wall_ms, sim_ns, threads, phase_ms}}}} to PATH\n\
                     (default BENCH_baseline.json). Then runs the per-system\n\
                     none/light/heavy fault sweep and writes its simulated\n\
                     makespans to the faults path (default BENCH_faults.json).\n\n\
                     --check re-parses both checked-in files (rejecting duplicate\n\
                     keys, schema drift, and rows missing their phase_ms\n\
                     breakdown) and reports — without failing on — each suite's\n\
                     @8/@1 wall ratio, all without timing anything."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if check {
        return check_snapshots(&out_path, &faults_path);
    }

    let mut budgets: Vec<usize> = BUDGETS.to_vec();
    if let Some(n) = extra_budget {
        budgets.push(n);
    }
    budgets.sort_unstable();
    budgets.dedup();

    type Suite = (&'static str, fn() -> SuiteRun);
    let suites: [Suite; 3] = [
        ("local_join", run_local_join),
        ("data_gen", run_data_gen),
        ("systems_e2e", run_systems_e2e),
    ];

    // Warm-up pass: fills the dataset cache and faults in code/data so the
    // timed passes below measure compute, not first-touch costs.
    sjc_par::set_global_threads(1);
    for (_, run) in suites {
        black_box(run());
    }
    sjc_par::set_global_threads(0);

    let mut snaps: Vec<Snap> = Vec::new();
    println!(
        "{:<14} {:>8} {:>12} {:>16} {:>9}",
        "suite", "threads", "wall_ms", "sim_ns", "speedup"
    );
    for (suite, run) in suites {
        let mut serial_wall: Option<f64> = None;
        let mut serial_sim: Option<u64> = None;
        for snap in measure_ladder(suite, &budgets, run) {
            let serial = *serial_wall.get_or_insert(snap.wall_ms);
            match serial_sim {
                None => serial_sim = Some(snap.sim_ns),
                Some(expected) if expected != snap.sim_ns => {
                    eprintln!(
                        "perfsnap: {suite}: simulated time depends on the thread budget \
                         ({expected} ns at {} thread(s) vs {} ns at {}) — \
                         determinism violation",
                        budgets.first().copied().unwrap_or(1),
                        snap.sim_ns,
                        snap.threads
                    );
                    return ExitCode::FAILURE;
                }
                Some(_) => {}
            }
            let speedup = serial / snap.wall_ms.max(1e-9);
            println!(
                "{:<14} {:>8} {:>12.2} {:>16} {:>9}",
                snap.suite,
                snap.threads,
                snap.wall_ms,
                snap.sim_ns,
                if snap.threads == budgets.first().copied().unwrap_or(1) {
                    "-".to_string()
                } else {
                    format!("{speedup:.2}x")
                }
            );
            snaps.push(snap);
        }
    }

    let fields: Vec<(String, Json)> = snaps
        .iter()
        .map(|s| {
            let phases: Vec<(String, Json)> = s
                .phase_ms
                .iter()
                .map(|(name, ms)| (name.to_string(), Json::Float((ms * 100.0).round() / 100.0)))
                .collect();
            (
                format!("{}@{}", s.suite, s.threads),
                Json::obj(vec![
                    ("wall_ms", Json::Float((s.wall_ms * 100.0).round() / 100.0)),
                    ("sim_ns", Json::Int(s.sim_ns)),
                    ("threads", Json::Int(s.threads as u64)),
                    ("phase_ms", Json::Obj(phases)),
                ]),
            )
        })
        .collect();
    let json = Json::Obj(fields);
    if let Err(e) = std::fs::write(&out_path, json.to_string_pretty() + "\n") {
        eprintln!("perfsnap: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfsnap: wrote {out_path}");

    let faults = run_fault_sweep();
    if let Err(e) = std::fs::write(&faults_path, faults.to_string_pretty() + "\n") {
        eprintln!("perfsnap: cannot write {faults_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfsnap: wrote {faults_path}");
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("perfsnap: {msg} (see --help)");
    ExitCode::from(2)
}
