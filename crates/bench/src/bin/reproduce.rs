//! `reproduce` — regenerates the paper's tables and figure.
//!
//! ```text
//! reproduce [all|table1|table2|table3|fig1|speedups|scalability|extension|ablations] [--scale S] [--seed N] [--json PATH]
//! ```
//!
//! Everything is deterministic for a fixed `--scale`/`--seed`.

use std::io::Write as _;

use sjc_bench::{fig1_traces, run_tables};
use sjc_core::report;

struct Args {
    what: String,
    scale: f64,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { what: "all".to_string(), scale: 1e-3, seed: 20150701, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it.next().and_then(|v| v.parse().ok()).expect("--scale needs a float");
            }
            "--seed" => {
                args.seed =
                    it.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer");
            }
            "--json" => {
                args.json = Some(it.next().expect("--json needs a path"));
            }
            "--help" | "-h" => {
                println!(
                    "reproduce — regenerate the tables and figure of 'Spatial Join Query \
                     Processing in Cloud' (ICPP 2015)\n\n\
                     USAGE: reproduce [WHAT] [--scale S] [--seed N] [--json PATH]\n\n\
                     WHAT: all (default) | table1 | table2 | table3 | fig1 | speedups |\n      \
                     scalability | extension | ablations\n\
                     --scale S   generation scale (domain-area fraction; default 1e-3)\n\
                     --seed N    RNG seed (default 20150701)\n\
                     --json P    also dump machine-readable results to P"
                );
                std::process::exit(0);
            }
            w if !w.starts_with('-') => args.what = w.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "# Reproduction of 'Spatial Join Query Processing in Cloud' (ICPP 2015)\n\
         # generation scale {:.0e}, seed {}\n",
        args.scale, args.seed
    );

    let want = |w: &str| args.what == "all" || args.what == w;

    if want("table1") {
        println!("{}", report::table1_string(args.scale, args.seed));
    }

    let need_tables = want("table2") || want("table3") || want("speedups");
    let (t2, t3) =
        if need_tables { run_tables(args.scale, args.seed) } else { (Vec::new(), Vec::new()) };

    if want("table2") {
        println!("{}", report::table2_string(&t2));
    }
    if want("table3") {
        println!("{}", report::table3_string(&t3));
    }
    if want("speedups") {
        println!("{}", report::speedups_string(&t2, &t3));
    }
    if want("fig1") {
        let traces = fig1_traces(args.scale, args.seed);
        println!("{}", report::fig1_string(&traces));
    }
    if want("scalability") {
        println!("{}", report::scalability_string(args.scale, args.seed));
    }
    if want("extension") {
        println!("{}", report::extension_string(args.scale, args.seed));
    }
    if want("ablations") {
        use sjc_core::ablation;
        let s = (args.scale / 2.0).max(1e-4);
        println!("Ablations (design choices isolated on shared substrates; simulated seconds)\n");
        println!(
            "{}",
            ablation::format_rows(
                "geometry engine (same system, JTS vs GEOS)",
                &ablation::geometry_engine(s, args.seed)
            )
        );
        println!(
            "{}",
            ablation::format_rows(
                "data access model (same engine, streaming vs native)",
                &ablation::access_model(s, args.seed)
            )
        );
        println!(
            "{}",
            ablation::format_rows(
                "local join algorithm (SpatialHadoop)",
                &ablation::local_join_algo(s, args.seed)
            )
        );
        println!(
            "{}",
            ablation::format_kernel_grid(
                "local-join kernel grid (every system x every kernel)",
                &ablation::kernel_grid(s, args.seed)
            )
        );
        println!(
            "{}",
            ablation::format_rows(
                "broadcast vs partition join (SpatialSpark)",
                &ablation::broadcast_join(s, args.seed)
            )
        );
        println!(
            "{}",
            ablation::format_rows(
                "partition-count sweep (SpatialSpark, EC2-10)",
                &ablation::partition_sweep(s, args.seed)
            )
        );
        println!(
            "{}",
            ablation::format_rows(
                "partitioner family (SpatialHadoop)",
                &ablation::partitioner_kind(s, args.seed)
            )
        );
        println!(
            "{}",
            ablation::format_rows(
                "re-partitioning vs compatible grids (SpatialHadoop)",
                &ablation::repartitioning(s, args.seed)
            )
        );
    }

    if let Some(path) = args.json {
        use sjc_core::json::{Json, ToJson};
        let payload = Json::obj(vec![
            ("scale", Json::Float(args.scale)),
            ("seed", Json::Int(args.seed)),
            ("table2", t2.as_slice().to_json()),
            ("table3", t3.as_slice().to_json()),
        ]);
        let mut f = std::fs::File::create(&path).expect("create json output");
        f.write_all(payload.to_string_pretty().as_bytes()).expect("write json output");
        println!("wrote {path}");
    }
}
