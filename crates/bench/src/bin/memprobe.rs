fn main() {
    use sjc_cluster::{Cluster, ClusterConfig};
    use sjc_core::experiment::Workload;
    use sjc_core::framework::{DistributedSpatialJoin, JoinPredicate};
    use sjc_core::report::fig1_string;
    use sjc_core::spatialhadoop::SpatialHadoop;
    use sjc_core::spatialspark::SpatialSpark;
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1e-3);
    let verbose = args.iter().any(|a| a == "-v");
    for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
        let (l, r) = w.prepare(scale, 20150701);
        for cfg in ClusterConfig::paper_configs() {
            let cluster = Cluster::new(cfg.clone());
            for sys in ["SS", "SH"] {
                let res = if sys == "SS" {
                    SpatialSpark::default().run(&cluster, &l, &r, JoinPredicate::Intersects)
                } else {
                    SpatialHadoop::default().run(&cluster, &l, &r, JoinPredicate::Intersects)
                };
                match res {
                    Ok(o) => {
                        println!(
                            "{} {} {}: OK {:.0}s",
                            w.name,
                            cfg.name,
                            sys,
                            o.trace.total_seconds()
                        );
                        if verbose && (cfg.name == "WS" || cfg.name == "EC2-10") {
                            print!("{}", fig1_string(&[o.trace]));
                        }
                    }
                    Err(e) => println!("{} {} {}: {}", w.name, cfg.name, sys, e),
                }
            }
        }
    }
}
