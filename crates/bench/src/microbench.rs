//! Minimal wall-clock micro-benchmark harness (std-only Criterion stand-in).
//!
//! The bench crate is the **only** place in the workspace allowed to read
//! the host clock (`sjc-lint`'s `bench-isolation` rule): simulated results
//! must never depend on wall time, but measuring the harness itself is
//! exactly what benches are for. Each benchmark warms up briefly, then runs
//! batches until a time budget is spent and reports the per-iteration
//! median, min and max.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! use sjc_bench::microbench::{black_box, Bench};
//!
//! let mut b = Bench::from_args();
//! b.bench("sum_1k", || (0..1000u64).map(black_box).sum::<u64>());
//! ```
//!
//! A bench binary accepts an optional substring filter argument, matching
//! `cargo bench -p sjc-bench --bench geom_micro -- point_in`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);
/// Number of timed batches the budget is split into.
const BATCHES: usize = 10;

/// The bench runner: owns the CLI filter and prints one line per benchmark.
pub struct Bench {
    filter: Option<String>,
}

impl Bench {
    /// Reads an optional substring filter from the command line (criterion
    /// compatibility: `--bench` flags are ignored).
    pub fn from_args() -> Bench {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Bench { filter }
    }

    /// Runs `f` repeatedly and reports per-iteration timing. The closure's
    /// result is black-boxed so the computation cannot be optimized away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }

        // Warm-up: also discovers how many iterations fit a batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP_BUDGET.as_nanos() as u64 / warm_iters.max(1);
        let batch_ns = (MEASURE_BUDGET.as_nanos() as u64 / BATCHES as u64).max(1);
        let iters_per_batch = (batch_ns / per_iter.max(1)).clamp(1, 1_000_000);

        let mut batch_per_iter_ns: Vec<u64> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            batch_per_iter_ns.push(start.elapsed().as_nanos() as u64 / iters_per_batch);
        }
        batch_per_iter_ns.sort_unstable();
        let median = batch_per_iter_ns[batch_per_iter_ns.len() / 2];
        let min = batch_per_iter_ns.first().copied().unwrap_or(0);
        let max = batch_per_iter_ns.last().copied().unwrap_or(0);
        println!(
            "{name:<44} {:>12}/iter  (min {}, max {}, {} iters × {} batches)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            iters_per_batch,
            BATCHES
        );
    }

    /// Namespaced variant: `group/name` labels, criterion-style.
    pub fn bench_in<R>(&mut self, group: &str, name: &str, f: impl FnMut() -> R) {
        self.bench(&format!("{group}/{name}"), f);
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_respects_filter() {
        let mut b = Bench { filter: Some("match".to_string()) };
        let mut matched = 0u32;
        let mut skipped = 0u32;
        b.bench("matching_name", || matched += 1);
        b.bench("other", || skipped += 1);
        assert!(matched > 0, "filtered-in bench must run");
        assert_eq!(skipped, 0, "filtered-out bench must not run");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
