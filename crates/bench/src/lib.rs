//! # sjc-bench — the reproduction harness
//!
//! * `bin/reproduce` regenerates every table and figure of the paper:
//!   `reproduce [table1|table2|table3|fig1|speedups|all] [--scale S] [--seed N] [--json PATH]`;
//! * the [`microbench`]-based benches under `benches/` cover the same
//!   experiments plus the ablations DESIGN.md lists (access model, geometry
//!   engine, local join algorithm, broadcast vs partition join, sample
//!   rate, partitioner);
//! * [`baseline`] parses the checked-in `BENCH_*.json` snapshots back
//!   (duplicate-key rejecting), for `perfsnap --check` and the perf tests.

pub mod baseline;
pub mod microbench;

use sjc_cluster::ClusterConfig;
use sjc_cluster::{Cluster, RunTrace};
use sjc_core::experiment::{CellResult, ExperimentGrid, SystemKind, Workload};
use sjc_core::framework::JoinPredicate;

/// Runs all three systems on a small workload and returns their traces —
/// the input of the Fig.-1 reproduction. Uses the workstation configuration
/// (the only one where HadoopGIS completes, per Table 3) so all three
/// pipelines are visible.
pub fn fig1_traces(scale: f64, seed: u64) -> Vec<RunTrace> {
    let (left, right) = Workload::taxi1m_nycb().prepare(scale, seed);
    let cluster = Cluster::new(ClusterConfig::workstation());
    SystemKind::all()
        .iter()
        .map(|sys| match sys.instance().run(&cluster, &left, &right, JoinPredicate::Intersects) {
            Ok(out) => out.trace,
            Err(e) => {
                let mut t = RunTrace::new(format!("{} (failed: {})", sys.paper_name(), e.kind()));
                t.stages.clear();
                t
            }
        })
        .collect()
}

/// Convenience: the full grid at a given scale.
pub fn run_tables(scale: f64, seed: u64) -> (Vec<CellResult>, Vec<CellResult>) {
    let grid = ExperimentGrid { scale, seed };
    (grid.table2(), grid.table3())
}
