//! Parser for the checked-in `BENCH_*.json` snapshots.
//!
//! `sjc_core::json::Json` is emit-only; this is its reading counterpart, a
//! std-only recursive-descent JSON parser with one deliberate deviation
//! from RFC 8259's "names SHOULD be unique": **duplicate object keys are a
//! hard error**, at every nesting level. The perfsnap emitter once wrote
//! `local_join@1` twice (the serial and "hardware-parallel" runs collide on
//! a single-core host) and every text-scanning consumer silently read
//! whichever copy it found first — exactly the failure mode
//! `sjc_lint::json::Counts::parse` already rejects for the lint baseline.
//!
//! [`Baseline`] layers the `{"<suite>@<threads>": {wall_ms, sim_ns,
//! threads, phase_ms}}` schema of `BENCH_baseline.json` on top of the
//! generic [`parse`]; `BENCH_faults.json` has a looser per-system schema and
//! is checked with [`parse`] alone (see `perfsnap --check`).

use std::fmt;

/// A parsed JSON value. Object fields keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64`; `BENCH_*.json` integers are far
    /// below 2^53, so the round-trip is exact (`as_u64` checks anyway).
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse failure with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

/// Parses a complete JSON document, rejecting duplicate object keys and
/// trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.at, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes.len() - self.at >= word.len()
            && self.bytes.iter().skip(self.at).zip(word.bytes()).all(|(&a, b)| a == b)
        {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.at += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Snapshot files are ASCII; surrogate pairs are
                            // out of scope — reject rather than mis-decode.
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.at += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through byte by byte;
                    // re-validate at the end via from_utf8 on the slice.
                    let start = self.at - 1;
                    let mut end = self.at;
                    while end < self.bytes.len()
                        && !matches!(self.bytes.get(end), Some(b'"' | b'\\'))
                    {
                        end += 1;
                    }
                    let chunk = self.bytes.get(start..end).unwrap_or_default();
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.at = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = self.bytes.get(start..self.at).unwrap_or_default();
        std::str::from_utf8(text)
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// One `<suite>@<threads>` row of `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    pub suite: String,
    pub threads: u64,
    pub wall_ms: f64,
    pub sim_ns: u64,
    /// Named per-phase wall times in file order. Empty when the row predates
    /// the phase breakdown; `perfsnap --check` requires them on the
    /// checked-in snapshot.
    pub phase_ms: Vec<(String, f64)>,
}

/// The typed view of `BENCH_baseline.json`.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub rows: Vec<BaselineRow>,
}

impl Baseline {
    /// Parses and schema-checks a snapshot: a single object whose keys are
    /// `<suite>@<threads>` (unique — [`parse`] enforces that) and whose
    /// values carry a numeric `wall_ms`, an integer `sim_ns`, and a
    /// `threads` field that must agree with the key suffix. A `phase_ms`
    /// field, when present, must be an object of finite non-negative
    /// wall-time numbers (phase names are unique — [`parse`] rejects
    /// duplicates at every level).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = parse(text).map_err(|e| e.to_string())?;
        let Value::Obj(fields) = doc else {
            return Err("snapshot root must be an object".to_string());
        };
        let mut rows = Vec::with_capacity(fields.len());
        for (key, row) in &fields {
            let (suite, threads_text) = key
                .rsplit_once('@')
                .ok_or_else(|| format!("key `{key}` is not of the form <suite>@<threads>"))?;
            let threads: u64 = threads_text
                .parse()
                .map_err(|_| format!("key `{key}` has a non-numeric thread count"))?;
            let wall_ms = row
                .get("wall_ms")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("row `{key}` lacks a numeric wall_ms"))?;
            let sim_ns = row
                .get("sim_ns")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("row `{key}` lacks an integer sim_ns"))?;
            let row_threads = row
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("row `{key}` lacks an integer threads"))?;
            if row_threads != threads {
                return Err(format!(
                    "row `{key}` disagrees with its own threads field ({row_threads})"
                ));
            }
            let mut phase_ms = Vec::new();
            if let Some(phases) = row.get("phase_ms") {
                let Value::Obj(entries) = phases else {
                    return Err(format!("row `{key}` has a non-object phase_ms"));
                };
                for (phase, ms) in entries {
                    let ms =
                        ms.as_f64().filter(|m| m.is_finite() && *m >= 0.0).ok_or_else(|| {
                            format!("row `{key}` phase `{phase}` is not a non-negative wall time")
                        })?;
                    phase_ms.push((phase.clone(), ms));
                }
            }
            rows.push(BaselineRow { suite: suite.to_string(), threads, wall_ms, sim_ns, phase_ms });
        }
        Ok(Baseline { rows })
    }

    /// The row for a given `(suite, threads)` cell.
    pub fn row(&self, suite: &str, threads: u64) -> Option<&BaselineRow> {
        self.rows.iter().find(|r| r.suite == suite && r.threads == threads)
    }

    /// All rows of one suite, in file order.
    pub fn suite(&self, suite: &str) -> Vec<&BaselineRow> {
        self.rows.iter().filter(|r| r.suite == suite).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_snapshot_shape() {
        let text = r#"{
  "local_join@1": {"wall_ms": 98.55, "sim_ns": 0, "threads": 1,
                   "phase_ms": {"input_gen": 12.5, "sweep": 86.0}},
  "local_join@4": {"wall_ms": 30.01, "sim_ns": 0, "threads": 4},
  "systems_e2e@1": {"wall_ms": 1044.0, "sim_ns": 34905411317743, "threads": 1}
}"#;
        let b = Baseline::parse(text).expect("valid snapshot");
        assert_eq!(b.rows.len(), 3);
        assert_eq!(b.row("local_join", 4).map(|r| r.wall_ms), Some(30.01));
        assert_eq!(b.row("systems_e2e", 1).map(|r| r.sim_ns), Some(34905411317743));
        assert_eq!(b.suite("local_join").len(), 2);
        let phases = &b.row("local_join", 1).expect("row").phase_ms;
        assert_eq!(
            phases.as_slice(),
            &[("input_gen".to_string(), 12.5), ("sweep".to_string(), 86.0)]
        );
        assert!(b.row("local_join", 4).expect("row").phase_ms.is_empty(), "phase_ms is optional");
    }

    #[test]
    fn rejects_malformed_phase_breakdowns() {
        let non_object = r#"{"a@1": {"wall_ms": 1, "sim_ns": 0, "threads": 1, "phase_ms": [1]}}"#;
        let err = Baseline::parse(non_object).expect_err("array phase_ms");
        assert!(err.contains("non-object phase_ms"), "{err}");
        let negative =
            r#"{"a@1": {"wall_ms": 1, "sim_ns": 0, "threads": 1, "phase_ms": {"gen": -3.0}}}"#;
        let err = Baseline::parse(negative).expect_err("negative phase wall time");
        assert!(err.contains("phase `gen`"), "{err}");
        let dup = r#"{"a@1": {"wall_ms": 1, "sim_ns": 0, "threads": 1,
                              "phase_ms": {"gen": 1.0, "gen": 2.0}}}"#;
        let err = Baseline::parse(dup).expect_err("duplicate phase name");
        assert!(err.contains("duplicate object key `gen`"), "{err}");
    }

    #[test]
    fn rejects_duplicate_keys_at_any_level() {
        let top = r#"{"a@1": {"wall_ms": 1, "sim_ns": 0, "threads": 1},
                      "a@1": {"wall_ms": 2, "sim_ns": 0, "threads": 1}}"#;
        let err = Baseline::parse(top).expect_err("duplicate top-level key");
        assert!(err.contains("duplicate object key `a@1`"), "{err}");
        let nested = r#"{"a@1": {"wall_ms": 1, "wall_ms": 2, "sim_ns": 0, "threads": 1}}"#;
        let err = Baseline::parse(nested).expect_err("duplicate nested key");
        assert!(err.contains("duplicate object key `wall_ms`"), "{err}");
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(Baseline::parse(r#"{"nokey": {"wall_ms": 1}}"#).is_err(), "key without @");
        assert!(
            Baseline::parse(r#"{"a@x": {"wall_ms": 1, "sim_ns": 0, "threads": 1}}"#).is_err(),
            "non-numeric thread suffix"
        );
        assert!(
            Baseline::parse(r#"{"a@2": {"wall_ms": 1, "sim_ns": 0, "threads": 1}}"#).is_err(),
            "threads field disagrees with the key"
        );
        assert!(
            Baseline::parse(r#"{"a@1": {"sim_ns": 0, "threads": 1}}"#).is_err(),
            "missing wall_ms"
        );
        assert!(Baseline::parse("[1, 2]").is_err(), "root must be an object");
    }

    #[test]
    fn generic_parser_covers_json_forms() {
        let v = parse(r#"{"a": [1, -2.5, 1e3, true, false, null, "s\n"], "b": {}}"#).unwrap();
        let arr = v.get("a").expect("field a");
        assert_eq!(
            *arr,
            Value::Arr(vec![
                Value::Num(1.0),
                Value::Num(-2.5),
                Value::Num(1000.0),
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
                Value::Str("s\n".to_string()),
            ])
        );
        assert_eq!(v.get("b"), Some(&Value::Obj(Vec::new())));
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn round_trips_the_emitter() {
        use sjc_core::json::Json;
        let emitted = Json::obj(vec![
            ("x@1", Json::obj(vec![("wall_ms", Json::Float(1.25)), ("sim_ns", Json::Int(7))])),
            ("y", Json::Arr(vec![Json::Str("a\"b".to_string()), Json::Null])),
        ])
        .to_string_pretty();
        let parsed = parse(&emitted).expect("emitter output parses");
        assert_eq!(
            parsed.get("x@1").and_then(|r| r.get("sim_ns")).and_then(Value::as_u64),
            Some(7)
        );
        assert_eq!(
            parsed.get("y"),
            Some(&Value::Arr(vec![Value::Str("a\"b".to_string()), Value::Null]))
        );
    }
}
