//! Property-based tests for the cluster simulator (seeded `sjc-testkit`
//! cases).

use sjc_cluster::scheduler::{lpt_makespan, replicated_makespan};
use sjc_cluster::{ClusterConfig, CostModel, SimHdfs};
use sjc_testkit::cases;

const N: usize = 256;

#[test]
fn lpt_within_classic_bounds() {
    cases(0xC701, N, |rng| {
        let tasks = rng.vec_u64(1..1_000_000, 1..200);
        let slots = rng.usize_in(1..64);
        let total: u64 = tasks.iter().sum();
        let longest = *tasks.iter().max().unwrap();
        let makespan = lpt_makespan(&tasks, slots);
        // Lower bounds: area bound and longest task.
        assert!(makespan >= total / slots as u64);
        assert!(makespan >= longest);
        // Upper bound: Graham's list-scheduling bound, which holds against
        // these directly computable quantities (unlike the 4/3 factor,
        // which is relative to the unknown OPT): makespan <= total/m + max.
        assert!((makespan as f64) <= total as f64 / slots as f64 + longest as f64 + 1.0);
    });
}

#[test]
fn more_slots_never_hurt() {
    cases(0xC702, N, |rng| {
        let tasks = rng.vec_u64(1..100_000, 1..100);
        let slots = rng.usize_in(1..32);
        assert!(lpt_makespan(&tasks, slots + 1) <= lpt_makespan(&tasks, slots));
    });
}

#[test]
fn replication_extrapolation_is_monotone() {
    cases(0xC703, N, |rng| {
        let tasks = rng.vec_u64(1..100_000, 1..50);
        let m1 = rng.f64_in(1.0..100.0);
        let extra = rng.f64_in(0.0..100.0);
        let a = replicated_makespan(&tasks, 8, m1);
        let b = replicated_makespan(&tasks, 8, m1 + extra);
        assert!(b >= a);
    });
}

/// Pinned regression (formerly `proptests.proptest-regressions`): this task
/// mix once violated the replication-monotonicity property before the
/// scheduler rounded multiplied task sizes consistently.
#[test]
fn replication_monotone_pinned_regression() {
    let tasks: [u64; 11] =
        [558831, 671421, 671421, 671421, 390078, 557204, 557204, 550314, 550314, 529012, 505152];
    let slots = 8;
    let total: u64 = tasks.iter().sum();
    let longest = *tasks.iter().max().unwrap();
    let makespan = lpt_makespan(&tasks, slots);
    assert!(makespan >= total / slots as u64);
    assert!(makespan >= longest);
    assert!((makespan as f64) <= total as f64 / slots as f64 + longest as f64 + 1.0);
    // Dense multiplier sweep around 1.0, where the original failure lived.
    let mut prev = 0u64;
    for step in 0..400 {
        let m = 1.0 + step as f64 * 0.25;
        let v = replicated_makespan(&tasks, slots, m);
        assert!(v >= prev, "multiplier {m}: {v} < {prev}");
        prev = v;
    }
}

#[test]
fn io_cost_additivity() {
    cases(0xC704, N, |rng| {
        let bytes_a = rng.u64_in(0..1u64 << 32);
        let bytes_b = rng.u64_in(0..1u64 << 32);
        let m = CostModel::default();
        let bw = 100.0 * (1 << 20) as f64;
        let together = m.io_ns(bytes_a + bytes_b, bw);
        let split = m.io_ns(bytes_a, bw) + m.io_ns(bytes_b, bw);
        // Integer truncation may lose at most 1 ns per call.
        assert!(together.abs_diff(split) <= 2);
    });
}

#[test]
fn hdfs_blocks_cover_file_exactly() {
    cases(0xC705, N, |rng| {
        let bytes = rng.u64_in(0..10u64 << 30);
        let nodes = rng.u32_in(1..20);
        let mut fs = SimHdfs::new(nodes);
        let f = fs.write_file("f", bytes, 1).clone();
        let total: u64 = f.blocks.iter().map(|b| b.bytes).sum();
        assert_eq!(total, bytes);
        for b in &f.blocks {
            assert!(b.bytes <= fs.block_size());
            assert!(b.primary_node < nodes);
        }
    });
}

#[test]
fn ec2_presets_scale_linearly() {
    cases(0xC706, N, |rng| {
        let n = rng.u32_in(1..32);
        let cfg = ClusterConfig::ec2(n);
        assert_eq!(cfg.nodes, n);
        assert!((cfg.aggregate_disk_read_bw() - n as f64 * cfg.node.disk_read_bw).abs() < 1.0);
    });
}

#[test]
fn footprint_monotone_in_inputs() {
    cases(0xC707, N, |rng| {
        let r1 = rng.u64_in(0..1_000_000);
        let v1 = rng.u64_in(0..1_000_000);
        let dr = rng.u64_in(0..1_000_000);
        let m = CostModel::default();
        assert!(m.spark_footprint_bytes(r1 + dr, v1) >= m.spark_footprint_bytes(r1, v1));
        assert!(m.spark_footprint_bytes(r1, v1 + dr) >= m.spark_footprint_bytes(r1, v1));
    });
}
