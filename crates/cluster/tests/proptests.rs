//! Property-based tests for the cluster simulator.

use proptest::prelude::*;
use sjc_cluster::scheduler::{lpt_makespan, replicated_makespan};
use sjc_cluster::{ClusterConfig, CostModel, SimHdfs};

proptest! {
    #[test]
    fn lpt_within_classic_bounds(
        tasks in proptest::collection::vec(1u64..1_000_000, 1..200),
        slots in 1usize..64
    ) {
        let total: u64 = tasks.iter().sum();
        let longest = *tasks.iter().max().unwrap();
        let makespan = lpt_makespan(&tasks, slots);
        // Lower bounds: area bound and longest task.
        prop_assert!(makespan >= total / slots as u64);
        prop_assert!(makespan >= longest);
        // Upper bound: Graham's list-scheduling bound, which holds against
        // these directly computable quantities (unlike the 4/3 factor,
        // which is relative to the unknown OPT): makespan <= total/m + max.
        prop_assert!(
            (makespan as f64) <= total as f64 / slots as f64 + longest as f64 + 1.0
        );
    }

    #[test]
    fn more_slots_never_hurt(
        tasks in proptest::collection::vec(1u64..100_000, 1..100),
        slots in 1usize..32
    ) {
        prop_assert!(lpt_makespan(&tasks, slots + 1) <= lpt_makespan(&tasks, slots));
    }

    #[test]
    fn replication_extrapolation_is_monotone(
        tasks in proptest::collection::vec(1u64..100_000, 1..50),
        m1 in 1.0f64..100.0,
        extra in 0.0f64..100.0
    ) {
        let a = replicated_makespan(&tasks, 8, m1);
        let b = replicated_makespan(&tasks, 8, m1 + extra);
        prop_assert!(b >= a);
    }

    #[test]
    fn io_cost_additivity(bytes_a in 0u64..1u64<<32, bytes_b in 0u64..1u64<<32) {
        let m = CostModel::default();
        let bw = 100.0 * (1 << 20) as f64;
        let together = m.io_ns(bytes_a + bytes_b, bw);
        let split = m.io_ns(bytes_a, bw) + m.io_ns(bytes_b, bw);
        // Integer truncation may lose at most 1 ns per call.
        prop_assert!(together.abs_diff(split) <= 2);
    }

    #[test]
    fn hdfs_blocks_cover_file_exactly(bytes in 0u64..10u64<<30, nodes in 1u32..20) {
        let mut fs = SimHdfs::new(nodes);
        let f = fs.write_file("f", bytes, 1).clone();
        let total: u64 = f.blocks.iter().map(|b| b.bytes).sum();
        prop_assert_eq!(total, bytes);
        for b in &f.blocks {
            prop_assert!(b.bytes <= fs.block_size());
            prop_assert!(b.primary_node < nodes);
        }
    }

    #[test]
    fn ec2_presets_scale_linearly(n in 1u32..32) {
        let cfg = ClusterConfig::ec2(n);
        prop_assert_eq!(cfg.nodes, n);
        prop_assert!((cfg.aggregate_disk_read_bw() - n as f64 * cfg.node.disk_read_bw).abs() < 1.0);
    }

    #[test]
    fn footprint_monotone_in_inputs(
        r1 in 0u64..1_000_000, v1 in 0u64..1_000_000, dr in 0u64..1_000_000
    ) {
        let m = CostModel::default();
        prop_assert!(m.spark_footprint_bytes(r1 + dr, v1) >= m.spark_footprint_bytes(r1, v1));
        prop_assert!(m.spark_footprint_bytes(r1, v1 + dr) >= m.spark_footprint_bytes(r1, v1));
    }
}
