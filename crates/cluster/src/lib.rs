//! # sjc-cluster — deterministic cluster simulator
//!
//! The hardware/platform substrate replacing the paper's physical testbeds:
//! a 16-core/128 GB workstation ("WS") and Amazon EC2 clusters of 6–10
//! `g2.2xlarge` nodes (8 vCPU / 15 GB each). The simulator is *analytic*:
//! real computation runs on the host, while a [`cost::CostModel`] charges
//! every byte moved and every record processed to a simulated clock, and a
//! [`scheduler`] turns per-task costs into a makespan on the configured
//! hardware. This reproduces the paper's *relative* results (who wins, by
//! what factor, which configurations fail) without the actual clusters.
//!
//! Components:
//!
//! * [`config`] — hardware presets (WS, EC2-10/8/6) and their resources;
//! * [`cost`] — the calibrated cost-model constants, each tied to a paper
//!   observation;
//! * [`scheduler`] — wave/LPT scheduling of task sets onto cluster slots;
//! * [`hdfs`] — a simulated HDFS: block placement, replication, byte
//!   accounting;
//! * [`metrics`] — [`metrics::RunTrace`]: the per-stage ledger that the
//!   report layer prints (stage seconds, HDFS/network/pipe bytes — the
//!   quantities Fig. 1 of the paper illustrates qualitatively);
//! * [`error`] — the failure modes observed in the paper (Hadoop-Streaming
//!   broken pipes, Spark out-of-memory);
//! * [`faults`] — deterministic seeded fault injection ([`FaultPlan`]:
//!   node crashes, stragglers, transient disk errors) that the engines
//!   recover around (task retry, speculation, replica failover, lineage
//!   recomputation).

pub mod config;
pub mod cost;
pub mod error;
pub mod faults;
pub mod hdfs;
pub mod metrics;
pub mod scheduler;

pub use config::{ClusterConfig, NodeSpec};
pub use cost::CostModel;
pub use error::SimError;
pub use faults::{
    CheckpointPolicy, FaultPlan, DEFAULT_CHECKPOINT_REPLICATION, DEFAULT_PROVISION_DELAY_NS,
    MAX_PROVISION_DELAY_NS, MAX_RETRY_BACKOFF_NS, MAX_STAGE_RESUBMITS, MAX_TASK_ATTEMPTS,
    RETRY_BACKOFF_BASE_NS,
};
pub use hdfs::SimHdfs;
pub use metrics::{RecoveryEvent, RecoveryKind, RunTrace, StageKind, StageTrace};

/// Simulated time in nanoseconds.
pub type SimNs = u64;

/// Converts simulated nanoseconds to seconds.
pub fn ns_to_secs(ns: SimNs) -> f64 {
    ns as f64 / 1e9
}

/// A cluster: hardware configuration plus the cost model — the context
/// object every simulated job executes against.
#[derive(Debug, Clone)]
pub struct Cluster {
    pub config: ClusterConfig,
    pub cost: CostModel,
    /// The fault schedule for runs on this cluster. Defaults to
    /// [`FaultPlan::none()`], under which every engine bypasses its fault
    /// machinery entirely (bit-identical to the pre-fault behaviour).
    pub faults: FaultPlan,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Self {
        Cluster { config, cost: CostModel::default(), faults: FaultPlan::none() }
    }

    /// A cluster with a fault schedule attached.
    pub fn with_faults(config: ClusterConfig, faults: FaultPlan) -> Self {
        Cluster { config, cost: CostModel::default(), faults }
    }

    /// Total parallel task slots (cores across all nodes).
    pub fn total_slots(&self) -> usize {
        (self.config.nodes * self.config.node.cores) as usize
    }

    /// Aggregate cluster memory in bytes.
    pub fn total_memory(&self) -> u64 {
        self.config.nodes as u64 * self.config.node.memory_bytes
    }

    /// Makespan of running `task_ns` durations on this cluster's slots.
    pub fn makespan(&self, task_ns: &[SimNs]) -> SimNs {
        scheduler::lpt_makespan(task_ns, self.total_slots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expose_resources() {
        let ws = Cluster::new(ClusterConfig::workstation());
        assert_eq!(ws.total_slots(), 16);
        assert_eq!(ws.total_memory(), 128 * (1 << 30));

        let ec2 = Cluster::new(ClusterConfig::ec2(10));
        assert_eq!(ec2.total_slots(), 80);
        assert_eq!(ec2.total_memory(), 150 * (1 << 30));
    }

    #[test]
    fn makespan_uses_all_slots() {
        let ws = Cluster::new(ClusterConfig::workstation());
        let tasks = vec![1_000_000_000u64; 16];
        assert_eq!(ws.makespan(&tasks), 1_000_000_000);
        let tasks17 = vec![1_000_000_000u64; 17];
        assert_eq!(ws.makespan(&tasks17), 2_000_000_000);
    }

    #[test]
    fn ns_conversion() {
        assert_eq!(ns_to_secs(1_500_000_000), 1.5);
    }
}
