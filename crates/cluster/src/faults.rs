//! Deterministic fault injection: the `FaultPlan`.
//!
//! A [`FaultPlan`] is a *pure function* of `(seed, cluster config)` — it
//! precomputes node crash times and answers per-task/per-slot fault queries
//! by hashing, never by consuming shared RNG state. That purity is what
//! keeps faulted runs bit-identical across host thread counts: whether a
//! task's disk read fails depends only on `(seed, stage, task, attempt)`,
//! not on which worker thread asked first.
//!
//! The plan models four fault classes, mirroring what the paper's real
//! substrates tolerate (and what this simulator previously could not):
//!
//! * **node crashes** at scheduled simulated times — kills running tasks,
//!   removes the node's slots and block replicas for the rest of the run;
//! * **straggler slots** — a deterministic subset of slots runs tasks
//!   `straggler_slowdown×` slower (Hadoop speculates around these);
//! * **transient disk-read errors** — a per-attempt Bernoulli draw; the
//!   attempt's work is wasted and the task retries (bounded);
//! * **lost block replicas** — follows from node crashes via
//!   [`crate::hdfs::SimHdfs::read_file_failover`].
//!
//! [`FaultPlan::none()`] is the identity plan: every query answers "no
//! fault", and every engine bypasses its fault machinery entirely, so
//! zero-fault traces are bit-identical to a build without this module.

use crate::config::ClusterConfig;
use crate::SimNs;

/// Hadoop's default `mapreduce.map.maxattempts`: a task may run at most
/// this many times before the job fails.
pub const MAX_TASK_ATTEMPTS: u32 = 4;

/// Spark's `spark.stage.maxConsecutiveAttempts`: a stage is resubmitted at
/// most this many times after fetch/executor loss before the job aborts.
pub const MAX_STAGE_RESUBMITS: u32 = 4;

/// A slot whose straggler factor reaches this threshold gets a speculative
/// duplicate attempt (Hadoop's speculative execution heuristic).
pub const SPECULATION_THRESHOLD: f64 = 1.5;

/// Default base of the exponential retry backoff: a task's first retry
/// after a transient disk error waits on the order of this long before
/// relaunching (Hadoop's `mapreduce.map.maxattempts` retries are likewise
/// spaced out rather than immediate).
pub const RETRY_BACKOFF_BASE_NS: SimNs = 500_000_000;

/// Hard cap on any single retry's backoff delay: the exponential term
/// `base × 2^(attempt-1)` never exceeds this, however many attempts a task
/// has burned.
pub const MAX_RETRY_BACKOFF_NS: SimNs = 8_000_000_000;

/// Default replacement-node provisioning delay: the order of time a cloud
/// substrate takes to spin up and enroll a fresh worker after a node dies
/// (EC2 instance launch + daemon registration — tens of seconds).
pub const DEFAULT_PROVISION_DELAY_NS: SimNs = 30_000_000_000;

/// Hard cap on the jittered provisioning delay: however large a base the
/// plan configures, a replacement node is never more than this long behind
/// its predecessor's crash.
pub const MAX_PROVISION_DELAY_NS: SimNs = 180_000_000_000;

/// Default HDFS replication factor for checkpoint files (matches
/// [`crate::hdfs::DEFAULT_REPLICATION`]).
pub const DEFAULT_CHECKPOINT_REPLICATION: u32 = 3;

/// One scheduled node crash.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCrash {
    pub node: u32,
    /// Absolute simulated time of the crash (same clock as
    /// `RunTrace::total_ns` accumulation).
    pub at_ns: SimNs,
}

/// One scheduled graceful decommission: the node stops accepting task
/// launches at `at_ns`, already-running tasks drain to completion, and no
/// data is lost (the operator re-balanced replicas before pulling the
/// node). The controlled counterpart of a [`NodeCrash`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeDecommission {
    pub node: u32,
    /// Absolute simulated time after which the node launches nothing new.
    pub at_ns: SimNs,
}

/// Checkpointing policy: how often completed stage/wave output is persisted
/// to HDFS, and at what replication. Checkpoints bound recovery work —
/// Spark's lineage recompute truncates at the last durable checkpoint, and
/// Hadoop's completed-map re-runs become remote re-reads of the persisted
/// map output — at the price of the checkpoint writes themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint every this many completed stages/waves. `0` disables
    /// checkpointing entirely (interval = ∞), which is bit-identical to the
    /// pre-checkpoint behaviour.
    pub interval_stages: u32,
    /// HDFS replication factor of checkpoint files; the write cost scales
    /// with it (the replication pipeline streams every copy).
    pub replication: u32,
}

impl CheckpointPolicy {
    /// The identity policy: never checkpoint (interval = ∞).
    pub fn disabled() -> Self {
        CheckpointPolicy { interval_stages: 0, replication: DEFAULT_CHECKPOINT_REPLICATION }
    }

    /// Checkpoint every `interval_stages` completed stages at the default
    /// replication.
    pub fn every(interval_stages: u32) -> Self {
        CheckpointPolicy { interval_stages, replication: DEFAULT_CHECKPOINT_REPLICATION }
    }

    /// Whether this policy ever writes a checkpoint.
    pub fn enabled(&self) -> bool {
        self.interval_stages > 0
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::disabled()
    }
}

/// The deterministic fault schedule for one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every hashed fault draw.
    pub seed: u64,
    /// Node count of the cluster this plan was built for.
    pub nodes: u32,
    /// Per-attempt probability that a task's input read fails transiently.
    pub disk_error_rate: f64,
    /// Probability that a given (stage, slot) pair is a straggler.
    pub straggler_rate: f64,
    /// Slowdown factor applied to straggler slots (≥ 1).
    pub straggler_slowdown: f64,
    /// Base of the bounded exponential backoff applied to disk-error
    /// retries (`0` disables backoff: retries relaunch the instant the
    /// failed attempt's slot time has elapsed). Backoff only ever applies
    /// to retries, so plans that never inject a disk error are unaffected
    /// by this field.
    pub retry_backoff_base_ns: SimNs,
    /// Scheduled crashes, in schedule order.
    pub crashes: Vec<NodeCrash>,
    /// Scheduled graceful decommissions, in schedule order.
    pub decommissions: Vec<NodeDecommission>,
    /// Checkpointing policy (disabled by default).
    pub checkpoint: CheckpointPolicy,
    /// Base of the jittered replacement-node provisioning delay. `0`
    /// disables elasticity: crashed nodes stay dead for the rest of the
    /// run (the pre-elasticity behaviour). When positive, every crashed
    /// node gets a replacement whose slots come online
    /// [`Self::provision_delay_ns`] after the crash.
    pub provision_delay_base_ns: SimNs,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mix, used as the stateless
/// hash behind every fault draw.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` from the top 53 bits of a hash.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stable tag for a stage name (FNV-1a), mixed into per-stage fault draws
/// so different stages see independent fault streams.
pub fn stage_tag(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// The identity plan: no faults, ever. Engines check [`Self::is_none`]
    /// and skip their fault machinery entirely, so runs under this plan are
    /// bit-identical to the pre-fault-subsystem behaviour.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            nodes: 0,
            disk_error_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
            retry_backoff_base_ns: RETRY_BACKOFF_BASE_NS,
            crashes: Vec::new(),
            decommissions: Vec::new(),
            checkpoint: CheckpointPolicy::disabled(),
            provision_delay_base_ns: 0,
        }
    }

    /// An empty plan bound to a cluster; compose faults with the builder
    /// methods ([`Self::crash_at`], [`Self::with_crashes`],
    /// [`Self::with_disk_errors`], [`Self::with_stragglers`],
    /// [`Self::with_retry_backoff`], [`Self::with_checkpoints`],
    /// [`Self::with_elastic_provisioning`], [`Self::decommission_at`]).
    pub fn seeded(seed: u64, config: &ClusterConfig) -> Self {
        FaultPlan {
            seed,
            nodes: config.nodes,
            disk_error_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
            retry_backoff_base_ns: RETRY_BACKOFF_BASE_NS,
            crashes: Vec::new(),
            decommissions: Vec::new(),
            checkpoint: CheckpointPolicy::disabled(),
            provision_delay_base_ns: 0,
        }
    }

    /// A mild preset: occasional transient disk errors and a few slow
    /// slots — every system should finish, a little degraded.
    pub fn light(seed: u64, config: &ClusterConfig) -> Self {
        FaultPlan::seeded(seed, config).with_disk_errors(0.02).with_stragglers(0.05, 2.0)
    }

    /// A harsh preset: frequent disk errors and many slow slots.
    pub fn heavy(seed: u64, config: &ClusterConfig) -> Self {
        FaultPlan::seeded(seed, config).with_disk_errors(0.08).with_stragglers(0.15, 3.0)
    }

    /// Schedules an explicit crash of `node` at absolute simulated `at_ns`.
    pub fn crash_at(mut self, node: u32, at_ns: SimNs) -> Self {
        let node = if self.nodes > 0 { node % self.nodes } else { node };
        self.crashes.push(NodeCrash { node, at_ns });
        self
    }

    /// Schedules `count` crashes at hashed times within `[0, horizon_ns)`,
    /// on hashed nodes — the seeded random-crash mode.
    pub fn with_crashes(mut self, count: u32, horizon_ns: SimNs) -> Self {
        for k in 0..count {
            let h = mix64(self.seed ^ 0xC4A5_u64.wrapping_add(k as u64).wrapping_mul(0x9E6D));
            let node = if self.nodes > 0 { (h >> 32) as u32 % self.nodes } else { 0 };
            let at_ns = if horizon_ns > 0 { mix64(h) % horizon_ns } else { 0 };
            self.crashes.push(NodeCrash { node, at_ns });
        }
        self
    }

    /// Sets the per-attempt transient disk-read error probability.
    pub fn with_disk_errors(mut self, rate: f64) -> Self {
        self.disk_error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the straggler probability and slowdown factor.
    pub fn with_stragglers(mut self, rate: f64, slowdown: f64) -> Self {
        self.straggler_rate = rate.clamp(0.0, 1.0);
        self.straggler_slowdown = slowdown.max(1.0);
        self
    }

    /// Sets the exponential retry-backoff base (`0` disables backoff).
    pub fn with_retry_backoff(mut self, base_ns: SimNs) -> Self {
        self.retry_backoff_base_ns = base_ns;
        self
    }

    /// Sets the checkpointing policy: persist completed stage/wave output
    /// every `interval_stages` stages at `replication` copies. Interval `0`
    /// keeps checkpointing disabled (the bit-identical default).
    pub fn with_checkpoints(mut self, interval_stages: u32, replication: u32) -> Self {
        self.checkpoint = CheckpointPolicy { interval_stages, replication: replication.max(1) };
        self
    }

    /// Enables elastic re-scheduling: crashed nodes are replaced by fresh
    /// ones whose slots come online a jittered provisioning delay (based on
    /// `base_ns`, capped at [`MAX_PROVISION_DELAY_NS`]) after the crash.
    /// `0` disables elasticity.
    pub fn with_elastic_provisioning(mut self, base_ns: SimNs) -> Self {
        self.provision_delay_base_ns = base_ns;
        self
    }

    /// Schedules a graceful decommission of `node` at absolute simulated
    /// `at_ns`: from then on the node launches no new tasks, but running
    /// tasks drain and no replicas or map output are lost.
    pub fn decommission_at(mut self, node: u32, at_ns: SimNs) -> Self {
        let node = if self.nodes > 0 { node % self.nodes } else { node };
        self.decommissions.push(NodeDecommission { node, at_ns });
        self
    }

    /// True iff this plan can never inject a fault *and* never charges any
    /// fault-subsystem cost. The fast path every engine takes before
    /// touching fault machinery. An enabled checkpoint policy costs time
    /// even in a fault-free run (the writes themselves), and a scheduled
    /// decommission reshapes capacity, so both force the event path; a bare
    /// provisioning delay does not (no crashes → no replacements).
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.decommissions.is_empty()
            && self.disk_error_rate <= 0.0
            && self.straggler_rate <= 0.0
            && !self.checkpoint.enabled()
    }

    /// Earliest crash time of `node`, if any is scheduled.
    pub fn crash_ns(&self, node: u32) -> Option<SimNs> {
        self.crashes.iter().filter(|c| c.node == node).map(|c| c.at_ns).min()
    }

    /// Nodes dead at absolute simulated time `t` (crash at `t` counts as
    /// dead), ascending and deduplicated.
    pub fn dead_nodes_at(&self, t: SimNs) -> Vec<u32> {
        let mut dead: Vec<u32> =
            self.crashes.iter().filter(|c| c.at_ns <= t).map(|c| c.node).collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Fraction of the cluster's nodes dead at `t` (0 when the plan is not
    /// bound to a cluster).
    pub fn dead_fraction_at(&self, t: SimNs) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.dead_nodes_at(t).len() as f64 / self.nodes as f64
    }

    /// Whether attempt `attempt` of `task` in the stage tagged `tag`
    /// suffers a transient disk-read error. Pure in all arguments.
    pub fn disk_error(&self, tag: u64, task: u64, attempt: u32) -> bool {
        if self.disk_error_rate <= 0.0 {
            return false;
        }
        let h = mix64(
            self.seed
                ^ tag.rotate_left(17)
                ^ task.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (attempt as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB),
        );
        unit_f64(h) < self.disk_error_rate
    }

    /// Slowdown factor of `slot` for the stage tagged `tag`: 1.0 for a
    /// healthy slot, `straggler_slowdown` for a straggler. Pure.
    pub fn straggler_factor(&self, tag: u64, slot: u64) -> f64 {
        if self.straggler_rate <= 0.0 {
            return 1.0;
        }
        let h = mix64(self.seed ^ tag.rotate_left(41) ^ slot.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7));
        if unit_f64(h) < self.straggler_rate {
            self.straggler_slowdown
        } else {
            1.0
        }
    }

    /// Backoff delay inserted before the retry that follows failed attempt
    /// `attempt` of `task` in the stage tagged `tag`. Bounded exponential:
    /// the cap doubles per failed attempt from `retry_backoff_base_ns` up
    /// to [`MAX_RETRY_BACKOFF_NS`], and the SplitMix64-jittered delay lands
    /// in `[cap/2, cap]`. Pure in all arguments — like every other fault
    /// draw, the jitter is a stateless hash of `(seed, stage, task,
    /// attempt)`, so backed-off schedules stay bit-identical across host
    /// thread counts.
    pub fn retry_backoff_ns(&self, tag: u64, task: u64, attempt: u32) -> SimNs {
        if self.retry_backoff_base_ns == 0 {
            return 0;
        }
        // 2^exp with exp clamped well below 64: the saturating_mul already
        // guards the product, the clamp guards the shift itself.
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self.retry_backoff_base_ns.saturating_mul(1u64 << exp);
        let cap = raw.min(MAX_RETRY_BACKOFF_NS);
        let h = mix64(
            self.seed
                ^ tag.rotate_left(29)
                ^ task.wrapping_mul(0xD6E8_FEB8_6659_FD93)
                ^ (attempt as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        cap / 2 + h % (cap / 2 + 1)
    }

    /// Provisioning delay of the replacement for crashed `node`: how long
    /// after the crash the fresh node's slots come online. Bounded jitter in
    /// `[cap/2, cap]` where `cap = min(provision_delay_base_ns,`
    /// [`MAX_PROVISION_DELAY_NS`]`)` — same stateless SplitMix64 discipline
    /// as every other fault draw, keyed on `(seed, node)`, so elastic
    /// schedules stay bit-identical across host thread counts. `0` when
    /// elasticity is disabled.
    pub fn provision_delay_ns(&self, node: u32) -> SimNs {
        if self.provision_delay_base_ns == 0 {
            return 0;
        }
        let cap = self.provision_delay_base_ns.min(MAX_PROVISION_DELAY_NS);
        let h = mix64(self.seed ^ (node as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25) ^ 0xE1A5);
        cap / 2 + h % (cap / 2 + 1)
    }

    /// Absolute time the replacement for crashed `node` comes online, if
    /// elasticity is enabled and `node` is scheduled to crash.
    pub fn replacement_ready_ns(&self, node: u32) -> Option<SimNs> {
        if self.provision_delay_base_ns == 0 {
            return None;
        }
        self.crash_ns(node).map(|c| c.saturating_add(self.provision_delay_ns(node)))
    }

    /// Earliest decommission time of `node`, if any is scheduled.
    pub fn decommission_ns(&self, node: u32) -> Option<SimNs> {
        self.decommissions.iter().filter(|d| d.node == node).map(|d| d.at_ns).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ec2() -> ClusterConfig {
        ClusterConfig::ec2(10)
    }

    #[test]
    fn none_is_identity() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.disk_error(1, 2, 3));
        assert_eq!(p.straggler_factor(1, 2), 1.0);
        assert!(p.dead_nodes_at(u64::MAX).is_empty());
        assert_eq!(p, FaultPlan::default());
    }

    #[test]
    fn queries_are_pure_functions() {
        let p = FaultPlan::heavy(42, &ec2());
        for task in 0..50u64 {
            for attempt in 1..=4u32 {
                assert_eq!(
                    p.disk_error(7, task, attempt),
                    p.disk_error(7, task, attempt),
                    "same draw twice"
                );
            }
        }
        assert_eq!(p.straggler_factor(9, 3), p.straggler_factor(9, 3));
    }

    #[test]
    fn rates_bite_at_roughly_the_configured_frequency() {
        let p = FaultPlan::seeded(1, &ec2()).with_disk_errors(0.10);
        let hits = (0..10_000u64).filter(|&t| p.disk_error(1, t, 1)).count();
        assert!((800..1200).contains(&hits), "10% rate drew {hits}/10000");
    }

    #[test]
    fn stage_tags_decorrelate_stages() {
        let p = FaultPlan::seeded(5, &ec2()).with_disk_errors(0.5);
        let a: Vec<bool> = (0..64).map(|t| p.disk_error(stage_tag("map"), t, 1)).collect();
        let b: Vec<bool> = (0..64).map(|t| p.disk_error(stage_tag("reduce"), t, 1)).collect();
        assert_ne!(a, b, "stages see independent fault streams");
    }

    #[test]
    fn crash_schedule_and_death_queries() {
        let p = FaultPlan::seeded(3, &ec2()).crash_at(4, 100).crash_at(7, 200);
        assert_eq!(p.crash_ns(4), Some(100));
        assert_eq!(p.crash_ns(5), None);
        assert!(p.dead_nodes_at(99).is_empty());
        assert_eq!(p.dead_nodes_at(100), vec![4]);
        assert_eq!(p.dead_nodes_at(500), vec![4, 7]);
        assert!((p.dead_fraction_at(500) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn hashed_crashes_land_in_horizon() {
        let p = FaultPlan::seeded(11, &ec2()).with_crashes(5, 1_000);
        assert_eq!(p.crashes.len(), 5);
        for c in &p.crashes {
            assert!(c.at_ns < 1_000);
            assert!(c.node < 10);
        }
        // And the schedule is reproducible from the seed.
        let q = FaultPlan::seeded(11, &ec2()).with_crashes(5, 1_000);
        assert_eq!(p, q);
    }

    #[test]
    fn backoff_is_jittered_bounded_and_pure() {
        let p = FaultPlan::seeded(17, &ec2());
        let mut caps_seen = Vec::new();
        for attempt in 1..=10u32 {
            let exp = attempt.saturating_sub(1).min(32);
            let cap = RETRY_BACKOFF_BASE_NS.saturating_mul(1u64 << exp).min(MAX_RETRY_BACKOFF_NS);
            caps_seen.push(cap);
            for task in 0..32u64 {
                let d = p.retry_backoff_ns(7, task, attempt);
                assert!(
                    d >= cap / 2 && d <= cap,
                    "attempt {attempt}: {d} outside [{}, {cap}]",
                    cap / 2
                );
                assert_eq!(d, p.retry_backoff_ns(7, task, attempt), "same draw twice");
            }
        }
        // The cap doubles until it hits the hard ceiling, then stays there.
        assert_eq!(caps_seen[0], RETRY_BACKOFF_BASE_NS);
        assert_eq!(caps_seen[1], 2 * RETRY_BACKOFF_BASE_NS);
        assert!(caps_seen.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*caps_seen.last().unwrap(), MAX_RETRY_BACKOFF_NS);
        // Jitter decorrelates tasks: not every task draws the same delay.
        let draws: Vec<SimNs> = (0..32).map(|t| p.retry_backoff_ns(7, t, 1)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "jitter is flat: {draws:?}");
        // Base 0 disables backoff entirely.
        let off = p.with_retry_backoff(0);
        assert_eq!(off.retry_backoff_ns(7, 3, 2), 0);
    }

    #[test]
    fn checkpoint_policy_enable_and_identity() {
        let p = FaultPlan::none();
        assert!(!p.checkpoint.enabled());
        assert!(p.is_none());
        // Interval 0 keeps the plan on the identity fast path.
        let q = FaultPlan::seeded(1, &ec2()).with_checkpoints(0, 3);
        assert!(q.is_none());
        // A finite interval forces the event path: writes cost time even
        // with no faults scheduled.
        let r = FaultPlan::seeded(1, &ec2()).with_checkpoints(2, 3);
        assert!(r.checkpoint.enabled());
        assert!(!r.is_none());
        assert_eq!(r.checkpoint.replication, 3);
        // Replication is clamped to at least 1.
        assert_eq!(FaultPlan::none().with_checkpoints(1, 0).checkpoint.replication, 1);
        assert_eq!(CheckpointPolicy::every(2).interval_stages, 2);
        assert_eq!(CheckpointPolicy::default(), CheckpointPolicy::disabled());
    }

    #[test]
    fn provision_delay_is_jittered_bounded_and_pure() {
        let p = FaultPlan::seeded(23, &ec2())
            .crash_at(3, 1_000)
            .with_elastic_provisioning(DEFAULT_PROVISION_DELAY_NS);
        let cap = DEFAULT_PROVISION_DELAY_NS;
        for node in 0..10u32 {
            let d = p.provision_delay_ns(node);
            assert!(d >= cap / 2 && d <= cap, "node {node}: {d} outside [{}, {cap}]", cap / 2);
            assert_eq!(d, p.provision_delay_ns(node), "same draw twice");
        }
        // Jitter decorrelates nodes.
        let draws: Vec<SimNs> = (0..10).map(|n| p.provision_delay_ns(n)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "jitter is flat: {draws:?}");
        // The base never exceeds the hard ceiling.
        let big = p.clone().with_elastic_provisioning(SimNs::MAX);
        assert!(big.provision_delay_ns(0) <= MAX_PROVISION_DELAY_NS);
        // Replacement readiness = crash + delay, only for crashed nodes.
        assert_eq!(p.replacement_ready_ns(3), Some(1_000 + p.provision_delay_ns(3)));
        assert_eq!(p.replacement_ready_ns(4), None);
        // Elasticity off: no delay, no replacement, still is_none-compatible.
        let off = FaultPlan::seeded(23, &ec2()).with_elastic_provisioning(0);
        assert_eq!(off.provision_delay_ns(3), 0);
        assert!(off.is_none());
        // A bare provisioning delay (no crashes) stays on the fast path.
        let idle = FaultPlan::seeded(23, &ec2()).with_elastic_provisioning(1_000);
        assert!(idle.is_none());
        assert_eq!(idle.replacement_ready_ns(3), None);
    }

    #[test]
    fn decommission_schedule_queries() {
        let p = FaultPlan::seeded(9, &ec2()).decommission_at(2, 500).decommission_at(2, 300);
        assert_eq!(p.decommission_ns(2), Some(300));
        assert_eq!(p.decommission_ns(3), None);
        // Decommissions reshape capacity, so they leave the fast path…
        assert!(!p.is_none());
        // …but never count as *dead*: no replicas or map output are lost.
        assert!(p.dead_nodes_at(u64::MAX).is_empty());
    }

    #[test]
    fn presets_are_nonempty_but_bounded() {
        let l = FaultPlan::light(1, &ec2());
        let h = FaultPlan::heavy(1, &ec2());
        assert!(!l.is_none() && !h.is_none());
        assert!(h.disk_error_rate > l.disk_error_rate);
        assert!(h.straggler_slowdown >= l.straggler_slowdown);
        assert!(l.straggler_slowdown >= 1.0);
    }
}
