//! Task scheduling: turning per-task simulated durations into a makespan.
//!
//! Both Hadoop and Spark schedule ready tasks greedily onto free slots. We
//! model this with Longest-Processing-Time (LPT) list scheduling, which is
//! deterministic and within 4/3 of optimal — more than accurate enough for
//! the end-to-end comparisons the paper makes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimNs;

/// LPT makespan of `tasks` on `slots` parallel slots.
pub fn lpt_makespan(tasks: &[SimNs], slots: usize) -> SimNs {
    assert!(slots > 0, "at least one slot required");
    if tasks.is_empty() {
        return 0;
    }
    let mut sorted: Vec<SimNs> = tasks.to_vec();
    sorted.sort_unstable_by_key(|&t| Reverse(t));

    // Min-heap of slot finish times.
    let mut heap: BinaryHeap<Reverse<SimNs>> = (0..slots).map(|_| Reverse(0)).collect();
    #[cfg(feature = "sanitize")]
    let mut last_start: SimNs = 0;
    for t in sorted {
        // `slots > 0` is asserted above, so the heap is never empty; peek_mut
        // updates the least-loaded slot in place (and re-sifts on drop).
        if let Some(mut slot) = heap.peek_mut() {
            // List scheduling assigns each task at the current minimum finish
            // time, so successive start times can never move backwards.
            #[cfg(feature = "sanitize")]
            {
                debug_assert!(
                    slot.0 >= last_start,
                    "sanitize: scheduler start times went backwards ({} < {last_start})",
                    slot.0
                );
                last_start = slot.0;
            }
            slot.0 += t;
        }
    }
    heap.into_iter().map(|Reverse(t)| t).max().unwrap_or(0)
}

/// Analytic makespan for the *same multiset of tasks replicated
/// `multiplier` times* — how full-scale runs are extrapolated from
/// scale-factor runs. With many replicas LPT converges to the area bound,
/// `max(total_work × multiplier / slots, longest_task)`.
pub fn replicated_makespan(tasks: &[SimNs], slots: usize, multiplier: f64) -> SimNs {
    assert!(slots > 0, "at least one slot required");
    assert!(multiplier >= 1.0, "multiplier extrapolates upward");
    if tasks.is_empty() {
        return 0;
    }
    // Replication only adds work, so the extrapolated makespan can never be
    // below the single-copy LPT makespan. Clamping to it keeps the estimate
    // monotone in `multiplier` (the bare area bound dips below the LPT value
    // for multipliers just above 1).
    let base = lpt_makespan(tasks, slots);
    let total: f64 = tasks.iter().map(|&t| t as f64).sum();
    let longest = tasks.iter().copied().max().unwrap_or(0) as f64;
    ((longest.max(total * multiplier / slots as f64)) as SimNs).max(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes() {
        assert_eq!(lpt_makespan(&[5, 3, 2], 1), 10);
    }

    #[test]
    fn perfect_parallelism() {
        assert_eq!(lpt_makespan(&[7, 7, 7, 7], 4), 7);
    }

    #[test]
    fn longest_task_dominates() {
        assert_eq!(lpt_makespan(&[100, 1, 1, 1], 4), 100);
    }

    #[test]
    fn lpt_balances_unequal_tasks() {
        // 6,5,4,3,2,1 on 2 slots: LPT gives {6,3,2}=11 vs {5,4,1}=10 → 11.
        assert_eq!(lpt_makespan(&[1, 2, 3, 4, 5, 6], 2), 11);
    }

    #[test]
    fn empty_task_list() {
        assert_eq!(lpt_makespan(&[], 8), 0);
        assert_eq!(replicated_makespan(&[], 8, 100.0), 0);
    }

    #[test]
    fn replicated_matches_lpt_at_multiplier_one() {
        let tasks = [9, 8, 1, 4, 4];
        assert_eq!(replicated_makespan(&tasks, 3, 1.0), lpt_makespan(&tasks, 3));
    }

    #[test]
    fn replicated_converges_to_area_bound() {
        let tasks = [10u64, 10, 10, 10];
        // 100 copies of 4×10 work on 4 slots → 100 waves of 10.
        assert_eq!(replicated_makespan(&tasks, 4, 100.0), 1000);
    }

    #[test]
    fn replicated_respects_longest_task() {
        // A single giant task bounds the makespan from below even when the
        // area bound is small.
        let tasks = [1_000u64, 1, 1];
        let m = replicated_makespan(&tasks, 1000, 2.0);
        assert!(m >= 1000);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = lpt_makespan(&[1], 0);
    }
}
