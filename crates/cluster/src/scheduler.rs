//! Task scheduling: turning per-task simulated durations into a makespan.
//!
//! Both Hadoop and Spark schedule ready tasks greedily onto free slots. We
//! model this with Longest-Processing-Time (LPT) list scheduling, which is
//! deterministic and within 4/3 of optimal — more than accurate enough for
//! the end-to-end comparisons the paper makes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::SimError;
use crate::faults::{stage_tag, FaultPlan, MAX_TASK_ATTEMPTS, SPECULATION_THRESHOLD};
use crate::metrics::{RecoveryEvent, RecoveryKind};
use crate::SimNs;

/// LPT makespan of `tasks` on `slots` parallel slots.
pub fn lpt_makespan(tasks: &[SimNs], slots: usize) -> SimNs {
    assert!(slots > 0, "at least one slot required");
    if tasks.is_empty() {
        return 0;
    }
    // Scratch-recycled sort buffer: every wave (and every faulted re-run
    // wave) calls this, so the copy reuses the previous call's capacity.
    let mut sorted: Vec<SimNs> = sjc_par::scratch::take_vec();
    sorted.extend_from_slice(tasks);
    sorted.sort_unstable_by_key(|&t| Reverse(t));

    // Min-heap of slot finish times.
    let mut heap: BinaryHeap<Reverse<SimNs>> = (0..slots).map(|_| Reverse(0)).collect();
    #[cfg(feature = "sanitize")]
    let mut last_start: SimNs = 0;
    for &t in &sorted {
        // `slots > 0` is asserted above, so the heap is never empty; peek_mut
        // updates the least-loaded slot in place (and re-sifts on drop).
        if let Some(mut slot) = heap.peek_mut() {
            // List scheduling assigns each task at the current minimum finish
            // time, so successive start times can never move backwards.
            #[cfg(feature = "sanitize")]
            {
                debug_assert!(
                    slot.0 >= last_start,
                    "sanitize: scheduler start times went backwards ({} < {last_start})",
                    slot.0
                );
                last_start = slot.0;
            }
            slot.0 += t;
        }
    }
    sjc_par::scratch::put_vec(sorted);
    heap.into_iter().map(|Reverse(t)| t).max().unwrap_or(0)
}

/// Analytic makespan for the *same multiset of tasks replicated
/// `multiplier` times* — how full-scale runs are extrapolated from
/// scale-factor runs. With many replicas LPT converges to the area bound,
/// `max(total_work × multiplier / slots, longest_task)`.
pub fn replicated_makespan(tasks: &[SimNs], slots: usize, multiplier: f64) -> SimNs {
    assert!(slots > 0, "at least one slot required");
    assert!(multiplier >= 1.0, "multiplier extrapolates upward");
    if tasks.is_empty() {
        return 0;
    }
    // Replication only adds work, so the extrapolated makespan can never be
    // below the single-copy LPT makespan. Clamping to it keeps the estimate
    // monotone in `multiplier` (the bare area bound dips below the LPT value
    // for multipliers just above 1).
    let base = lpt_makespan(tasks, slots);
    let total: f64 = tasks.iter().map(|&t| t as f64).sum();
    let longest = tasks.iter().copied().max().unwrap_or(0) as f64;
    ((longest.max(total * multiplier / slots as f64)) as SimNs).max(base)
}

/// The outcome of scheduling one task wave under a [`FaultPlan`] — the
/// makespan plus the recovery ledger the trace layer surfaces.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSchedule {
    pub makespan: SimNs,
    /// Attempts launched (≥ task count; > on any retry/speculation).
    pub attempts: u64,
    /// Speculative duplicate attempts launched.
    pub speculative: u64,
    /// Simulated ns of work thrown away (failed attempts, killed tasks,
    /// losing speculative copies, re-run map outputs).
    pub wasted_ns: SimNs,
    /// Recovery actions, in occurrence order.
    pub events: Vec<RecoveryEvent>,
    /// Node that produced each task's surviving output (input task order).
    pub task_nodes: Vec<u32>,
}

/// Straggler-scaled duration. Factor 1.0 is the exact identity (no float
/// round-trip), which keeps the zero-fault path bit-identical.
fn scaled(base: SimNs, factor: f64) -> SimNs {
    if factor <= 1.0 {
        base
    } else {
        (base as f64 * factor) as SimNs
    }
}

/// Pops the earliest-free slot whose node is still alive when an attempt
/// that becomes runnable at `ready` would actually launch
/// (`max(free, ready)`). Slots of nodes dead at their own free time are
/// lazily discarded for good; slots alive at `free` but dead by `ready`
/// (a retry of a task the crash itself killed) are kept for tasks with
/// earlier ready times. `last_dead` remembers the most recent casualty for
/// error reporting. A gracefully decommissioned node launches nothing at or
/// after its drain point: such slots are likewise discarded for good (the
/// drained node is recorded in `drained`), or kept for earlier-ready tasks
/// when only this attempt's `ready` pushes the launch past the drain.
fn pop_live(
    heap: &mut BinaryHeap<Reverse<(SimNs, u32)>>,
    slots_per_node: u32,
    plan: &FaultPlan,
    last_dead: &mut u32,
    drained: &mut Vec<u32>,
    ready: SimNs,
) -> Option<(SimNs, u32)> {
    // Called once per attempt (the wave loop's hottest edge): the stash
    // buffer comes from the scratch arena instead of a per-call allocation.
    let mut stash: Vec<(SimNs, u32)> = sjc_par::scratch::take_vec();
    let mut found = None;
    while let Some(Reverse((free, sid))) = heap.pop() {
        let node = sid / slots_per_node;
        match plan.crash_ns(node) {
            Some(c) if c <= free => *last_dead = node,
            Some(c) if c <= free.max(ready) => {
                *last_dead = node;
                stash.push((free, sid));
            }
            _ => match plan.decommission_ns(node) {
                Some(d) if d <= free => {
                    *last_dead = node;
                    drained.push(node);
                }
                Some(d) if d <= free.max(ready) => stash.push((free, sid)),
                _ => {
                    found = Some((free, sid));
                    break;
                }
            },
        }
    }
    heap.extend(stash.drain(..).map(Reverse));
    sjc_par::scratch::put_vec(stash);
    found
}

/// Event-driven wave scheduler: the fault-aware generalization of
/// [`lpt_makespan`]. Tasks launch in LPT order onto the earliest-free live
/// slot, starting at absolute simulated time `start_ns` (node crashes are
/// scheduled on the run's global clock). Per attempt it models:
///
/// * **transient disk errors** — the attempt's work is wasted and the task
///   retries, bounded by [`MAX_TASK_ATTEMPTS`]; each retry waits out the
///   plan's bounded exponential backoff
///   ([`FaultPlan::retry_backoff_ns`]) before becoming runnable, while the
///   failed attempt's slot frees immediately;
/// * **node crashes** — running tasks die with the node, its slots leave
///   the pool; no surviving slot at all is [`SimError::NodeLost`];
/// * **stragglers** — slow slots stretch the attempt; at
///   [`SPECULATION_THRESHOLD`]× a speculative duplicate launches on the
///   next free slot and the first finisher wins (loser charged as waste);
/// * **map-output loss** (`rerun_on_crash`) — tasks that completed on a
///   node that later died within this wave re-run on surviving slots
///   (Hadoop re-executes completed maps whose host died before shuffle);
/// * **elastic re-scheduling** — when the plan enables provisioning
///   ([`FaultPlan::with_elastic_provisioning`]), every crashed node gets a
///   replacement whose slots come online a jittered
///   [`FaultPlan::provision_delay_ns`] after the crash; replacements never
///   crash themselves, and each one that actually runs work emits
///   [`RecoveryKind::NodeReplaced`];
/// * **graceful decommission** — a node past its
///   [`FaultPlan::decommission_ns`] drain point launches nothing new;
///   running tasks complete, no output is lost, and the drained node emits
///   [`RecoveryKind::Decommission`].
///
/// With `FaultPlan::none()` this degenerates to exactly `lpt_makespan`
/// (asserted by tests); callers still branch on `is_none()` so the
/// zero-fault arithmetic is shared with the closed-form path.
pub fn faulty_makespan(
    tasks: &[SimNs],
    slots_per_node: u32,
    nodes: u32,
    plan: &FaultPlan,
    stage: &str,
    start_ns: SimNs,
    rerun_on_crash: bool,
) -> Result<TaskSchedule, SimError> {
    assert!(slots_per_node > 0 && nodes > 0, "at least one slot required");
    let mut out = TaskSchedule { task_nodes: vec![0; tasks.len()], ..TaskSchedule::default() };
    if tasks.is_empty() {
        return Ok(out);
    }
    let tag = stage_tag(stage);

    // LPT order: longest first, input index breaks ties deterministically.
    // The per-wave order buffer is scratch-recycled across waves.
    let mut order: Vec<(SimNs, usize)> = sjc_par::scratch::take_vec();
    order.extend(tasks.iter().enumerate().map(|(i, &t)| (t, i)));
    order.sort_unstable_by_key(|&(t, i)| (Reverse(t), i));

    // Min-heap of (free time, slot id); slot id breaks ties so the schedule
    // is a pure function of the inputs.
    let mut heap: BinaryHeap<Reverse<(SimNs, u32)>> =
        (0..nodes * slots_per_node).map(|sid| Reverse((start_ns, sid))).collect();

    // Elastic re-scheduling: the k-th distinct crashed node's replacement
    // gets node id `nodes + k` (so `crash_ns`/`decommission_ns` — which only
    // ever name original nodes — answer None: replacements never die), with
    // slots coming online after the jittered provisioning delay.
    let mut crashed_nodes: Vec<u32> = Vec::new();
    if plan.provision_delay_base_ns > 0 {
        crashed_nodes = plan.crashes.iter().map(|c| c.node).filter(|&n| n < nodes).collect();
        crashed_nodes.sort_unstable();
        crashed_nodes.dedup();
        for (k, &n) in crashed_nodes.iter().enumerate() {
            if let Some(ready) = plan.replacement_ready_ns(n) {
                let base_sid = (nodes + k as u32) * slots_per_node;
                for j in 0..slots_per_node {
                    heap.push(Reverse((ready.max(start_ns), base_sid + j)));
                }
            }
        }
    }
    // Which replacements actually launched an attempt (index into
    // `crashed_nodes`); only those count as regained capacity.
    let mut replacement_used: Vec<bool> = vec![false; crashed_nodes.len()];

    let mut last_dead: u32 = 0;
    // Per-wave vectors are scratch-recycled: the fault-sweep experiments run
    // thousands of waves, each of which used to allocate these afresh. An
    // early error return skips the `put` — the buffer then just drops.
    let mut drained: Vec<u32> = sjc_par::scratch::take_vec();
    let mut end = start_ns;
    // Events are recorded stage-less inside the wave loop (hot path: one
    // entry per retry/speculation) and materialized with the stage name
    // once, after the loop — the wave loop itself never allocates strings.
    let mut wave_events: Vec<(RecoveryKind, SimNs)> = sjc_par::scratch::take_vec();

    for &(base, idx) in &order {
        let mut attempt: u32 = 0;
        // A retry cannot launch before the moment its predecessor failed.
        let mut ready = start_ns;
        // Bounded retry: FAILED attempts (disk errors) count against
        // MAX_TASK_ATTEMPTS; KILLED attempts (node crash took the task
        // down) do not — matching Hadoop's FAILED/KILLED distinction.
        // Kills still terminate: each one permanently removes a slot, so
        // the pool drains to NodeLost.
        loop {
            let (free, sid) = match pop_live(
                &mut heap,
                slots_per_node,
                plan,
                &mut last_dead,
                &mut drained,
                ready,
            ) {
                Some(s) => s,
                None => {
                    // sjc-lint: allow(hot-alloc) — cold error return: allocates once, then the run is over
                    return Err(SimError::NodeLost { stage: stage.to_string(), node: last_dead });
                }
            };
            let node = sid / slots_per_node;
            if let Some(used) = replacement_used.get_mut(node.wrapping_sub(nodes) as usize) {
                *used = true;
            }
            let launch = free.max(ready);
            attempt += 1;
            out.attempts += 1;
            let factor = plan.straggler_factor(tag, sid as u64);
            let dur = scaled(base, factor);

            // Transient disk error: the attempt runs, fails, and the slot is
            // busy for the wasted duration.
            if plan.disk_error(tag, idx as u64, attempt) {
                out.wasted_ns += dur;
                wave_events.push((RecoveryKind::TaskRetry { task: idx as u64, attempt }, dur));
                if attempt >= MAX_TASK_ATTEMPTS {
                    return Err(SimError::TaskAttemptsExhausted {
                        // sjc-lint: allow(hot-alloc) — cold error return: allocates once, then the run is over
                        stage: stage.to_string(),
                        task: idx as u64,
                        attempts: attempt,
                    });
                }
                // The slot frees the moment the failed attempt's work ends;
                // the *task* additionally sits out a bounded, jittered
                // exponential backoff before its retry becomes runnable.
                ready = launch + dur + plan.retry_backoff_ns(tag, idx as u64, attempt);
                heap.push(Reverse((launch + dur, sid)));
                continue;
            }

            let fin = launch + dur;

            // Node crash mid-attempt: the task dies with the node; its slots
            // never return to the pool. The attempt is KILLED, not FAILED —
            // it does not consume the retry budget.
            if let Some(c) = plan.crash_ns(node) {
                if c < fin {
                    let lost = c.saturating_sub(launch);
                    out.wasted_ns += lost;
                    wave_events.push((RecoveryKind::NodeCrash { node, tasks_killed: 1 }, lost));
                    last_dead = node;
                    attempt -= 1;
                    ready = c;
                    continue;
                }
            }

            // The attempt will complete. A straggling attempt additionally
            // gets a speculative duplicate on the next free live slot; the
            // first finisher wins and the loser is killed at that instant.
            let mut completion = fin;
            let mut winner_node = node;
            let mut primary_free = fin;
            if factor >= SPECULATION_THRESHOLD {
                if let Some((b_free, b_sid)) =
                    pop_live(&mut heap, slots_per_node, plan, &mut last_dead, &mut drained, ready)
                {
                    let b_node = b_sid / slots_per_node;
                    if let Some(used) =
                        replacement_used.get_mut(b_node.wrapping_sub(nodes) as usize)
                    {
                        *used = true;
                    }
                    let b_dur = scaled(base, plan.straggler_factor(tag, b_sid as u64));
                    let b_launch = b_free.max(ready);
                    let b_fin = b_launch + b_dur;
                    let backup_survives = match plan.crash_ns(b_node) {
                        Some(c) => c >= b_fin,
                        None => true,
                    };
                    if backup_survives && b_fin < fin {
                        // Backup wins; the straggler is killed at b_fin.
                        out.speculative += 1;
                        out.attempts += 1;
                        completion = b_fin;
                        winner_node = b_node;
                        let killed = b_fin.saturating_sub(launch).min(dur);
                        out.wasted_ns += killed;
                        wave_events.push((RecoveryKind::Speculation { task: idx as u64 }, killed));
                        primary_free = b_fin.max(free);
                        heap.push(Reverse((b_fin, b_sid)));
                    } else if backup_survives {
                        // Straggler wins anyway; the backup is killed at fin.
                        out.speculative += 1;
                        out.attempts += 1;
                        let killed = fin.saturating_sub(b_launch).min(b_dur);
                        out.wasted_ns += killed;
                        wave_events.push((RecoveryKind::Speculation { task: idx as u64 }, killed));
                        heap.push(Reverse((fin.clamp(b_launch, b_fin), b_sid)));
                    } else {
                        // Backup slot's node dies first — no speculation.
                        heap.push(Reverse((b_free, b_sid)));
                    }
                }
            }
            heap.push(Reverse((primary_free, sid)));
            if let Some(slot) = out.task_nodes.get_mut(idx) {
                *slot = winner_node;
            }
            end = end.max(completion);
            break;
        }
    }

    // Elasticity and drain bookkeeping, appended in node order after the
    // per-task events so the ledger stays a pure function of the inputs.
    for (k, &orig) in crashed_nodes.iter().enumerate() {
        if replacement_used.get(k).copied().unwrap_or(false) {
            let delay_ns = plan.provision_delay_ns(orig);
            wave_events.push((RecoveryKind::NodeReplaced { node: orig, delay_ns }, 0));
        }
    }
    drained.sort_unstable();
    drained.dedup();
    for &node in &drained {
        wave_events.push((RecoveryKind::Decommission { node }, 0));
    }

    // Materialize the wave's events: the stage name is attached here, once
    // per event, outside the hot loop above.
    out.events = wave_events
        .drain(..)
        .map(|(kind, wasted_ns)| RecoveryEvent { stage: stage.to_string(), kind, wasted_ns })
        .collect();
    sjc_par::scratch::put_vec(wave_events);
    sjc_par::scratch::put_vec(drained);
    sjc_par::scratch::put_vec(order);

    // Map-output loss: a node that died within this wave takes the outputs
    // of every task it had already completed with it; those tasks re-run as
    // one extra LPT wave on the surviving slots.
    if rerun_on_crash {
        let dead = plan.dead_nodes_at(end);
        let mut rerun: Vec<SimNs> = sjc_par::scratch::take_vec();
        let mut rerun_wasted: SimNs = 0;
        // A task's winning node can only be in `dead` if it completed before
        // the crash (the crash check above kills in-flight attempts), so
        // every such task's output is gone and must be reproduced.
        for (idx, &base) in tasks.iter().enumerate() {
            if out.task_nodes.get(idx).is_some_and(|n| dead.contains(n)) {
                rerun.push(base);
                rerun_wasted += base;
            }
        }
        if !rerun.is_empty() {
            // Replacement nodes online by the end of the wave count as
            // survivors: elastic re-scheduling regains the lost capacity
            // for the re-run wave.
            let replacements = crashed_nodes
                .iter()
                .filter(|&&n| plan.replacement_ready_ns(n).is_some_and(|r| r <= end))
                .count();
            let survivors = (nodes as usize - dead.len() + replacements) * slots_per_node as usize;
            if survivors == 0 {
                return Err(SimError::NodeLost { stage: stage.to_string(), node: last_dead });
            }
            let extra = lpt_makespan(&rerun, survivors);
            out.wasted_ns += rerun_wasted;
            out.attempts += rerun.len() as u64;
            out.events.push(RecoveryEvent {
                stage: stage.to_string(),
                kind: RecoveryKind::MapRerun { tasks: rerun.len() as u64 },
                wasted_ns: rerun_wasted,
            });
            end += extra;
        }
        sjc_par::scratch::put_vec(rerun);
    }

    out.makespan = end - start_ns;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes() {
        assert_eq!(lpt_makespan(&[5, 3, 2], 1), 10);
    }

    #[test]
    fn perfect_parallelism() {
        assert_eq!(lpt_makespan(&[7, 7, 7, 7], 4), 7);
    }

    #[test]
    fn longest_task_dominates() {
        assert_eq!(lpt_makespan(&[100, 1, 1, 1], 4), 100);
    }

    #[test]
    fn lpt_balances_unequal_tasks() {
        // 6,5,4,3,2,1 on 2 slots: LPT gives {6,3,2}=11 vs {5,4,1}=10 → 11.
        assert_eq!(lpt_makespan(&[1, 2, 3, 4, 5, 6], 2), 11);
    }

    #[test]
    fn empty_task_list() {
        assert_eq!(lpt_makespan(&[], 8), 0);
        assert_eq!(replicated_makespan(&[], 8, 100.0), 0);
    }

    #[test]
    fn replicated_matches_lpt_at_multiplier_one() {
        let tasks = [9, 8, 1, 4, 4];
        assert_eq!(replicated_makespan(&tasks, 3, 1.0), lpt_makespan(&tasks, 3));
    }

    #[test]
    fn replicated_converges_to_area_bound() {
        let tasks = [10u64, 10, 10, 10];
        // 100 copies of 4×10 work on 4 slots → 100 waves of 10.
        assert_eq!(replicated_makespan(&tasks, 4, 100.0), 1000);
    }

    #[test]
    fn replicated_respects_longest_task() {
        // A single giant task bounds the makespan from below even when the
        // area bound is small.
        let tasks = [1_000u64, 1, 1];
        let m = replicated_makespan(&tasks, 1000, 2.0);
        assert!(m >= 1000);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = lpt_makespan(&[1], 0);
    }

    // --- faulty_makespan -------------------------------------------------

    use crate::config::ClusterConfig;
    use crate::metrics::RecoveryKind;

    fn plan() -> FaultPlan {
        FaultPlan::seeded(99, &ClusterConfig::ec2(4))
    }

    #[test]
    fn zero_faults_degenerate_to_lpt() {
        // The event-driven scheduler with the identity plan must reproduce
        // the closed-form LPT makespan exactly, for many task shapes.
        let none = FaultPlan::none();
        let shapes: [&[SimNs]; 5] = [
            &[5, 3, 2],
            &[7, 7, 7, 7],
            &[100, 1, 1, 1],
            &[1, 2, 3, 4, 5, 6],
            &[9, 8, 1, 4, 4, 13, 2, 2, 2, 40],
        ];
        for tasks in shapes {
            for (spn, nodes) in [(1u32, 2u32), (2, 2), (8, 4)] {
                let s = faulty_makespan(tasks, spn, nodes, &none, "st", 0, true).unwrap();
                assert_eq!(s.makespan, lpt_makespan(tasks, (spn * nodes) as usize), "{tasks:?}");
                assert_eq!(s.attempts, tasks.len() as u64);
                assert_eq!(s.wasted_ns, 0);
                assert!(s.events.is_empty());
            }
        }
    }

    #[test]
    fn start_offset_does_not_change_a_fault_free_makespan() {
        let s0 = faulty_makespan(&[4, 4, 9], 2, 2, &FaultPlan::none(), "st", 0, false).unwrap();
        let s9 = faulty_makespan(&[4, 4, 9], 2, 2, &FaultPlan::none(), "st", 9_000, false).unwrap();
        assert_eq!(s0.makespan, s9.makespan);
    }

    #[test]
    fn disk_errors_retry_and_waste_work() {
        // 10%: plenty of retries over 64 tasks, yet the chance any one task
        // burns all four attempts (rate^4) is negligible.
        let p = plan().with_disk_errors(0.1);
        let tasks = vec![1_000u64; 64];
        let s = faulty_makespan(&tasks, 8, 4, &p, "map", 0, false).unwrap();
        assert!(s.attempts > 64, "retries happened: {}", s.attempts);
        assert!(s.wasted_ns > 0);
        assert!(s.events.iter().any(|e| matches!(e.kind, RecoveryKind::TaskRetry { .. })));
        assert!(s.makespan >= lpt_makespan(&tasks, 32), "faults never speed a wave up");
    }

    #[test]
    fn retry_backoff_extends_the_wave_but_not_the_retry_count() {
        // One slot serializes everything: with backoff each retry inserts a
        // dead gap, so the wave must take strictly longer than the
        // backoff-free schedule — while the disk-error draws (pure in
        // (stage, task, attempt)) produce the exact same retries.
        let with = plan().with_disk_errors(0.25);
        let without = with.clone().with_retry_backoff(0);
        let tasks = vec![1_000u64; 32];
        let s_with = faulty_makespan(&tasks, 1, 1, &with, "map", 0, false).unwrap();
        let s_without = faulty_makespan(&tasks, 1, 1, &without, "map", 0, false).unwrap();
        assert!(s_with.attempts > 32, "retries happened: {}", s_with.attempts);
        assert_eq!(s_with.attempts, s_without.attempts, "backoff never changes fault draws");
        assert_eq!(s_with.wasted_ns, s_without.wasted_ns);
        assert!(
            s_with.makespan > s_without.makespan,
            "backoff gaps cost wall time: {} <= {}",
            s_with.makespan,
            s_without.makespan
        );
    }

    #[test]
    fn disk_error_storm_exhausts_attempts() {
        let p = plan().with_disk_errors(1.0);
        let err = faulty_makespan(&[100], 8, 4, &p, "map", 0, false).unwrap_err();
        match err {
            SimError::TaskAttemptsExhausted { attempts, .. } => {
                assert_eq!(attempts, MAX_TASK_ATTEMPTS)
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn node_crash_is_survived_by_retrying_elsewhere() {
        // Node 0 dies 50ns in; its running tasks retry on survivors.
        let p = plan().crash_at(0, 50);
        let tasks = vec![100u64; 8];
        let s = faulty_makespan(&tasks, 2, 4, &p, "map", 0, false).unwrap();
        assert!(s.attempts > 8, "killed tasks re-ran");
        assert!(s.wasted_ns > 0);
        assert!(s.events.iter().any(|e| matches!(e.kind, RecoveryKind::NodeCrash { .. })));
        assert!(s.task_nodes.iter().all(|&n| n != 0), "no surviving output on the dead node");
    }

    #[test]
    fn losing_every_node_is_fatal() {
        let p = plan().crash_at(0, 10).crash_at(1, 10).crash_at(2, 10).crash_at(3, 10);
        let err = faulty_makespan(&[100, 100], 2, 4, &p, "map", 20, false).unwrap_err();
        assert!(matches!(err, SimError::NodeLost { .. }), "{err:?}");
    }

    #[test]
    fn stragglers_trigger_speculation() {
        let p = plan().with_stragglers(0.4, 4.0);
        let tasks = vec![1_000u64; 40];
        let s = faulty_makespan(&tasks, 8, 4, &p, "map", 0, false).unwrap();
        assert!(s.speculative > 0, "some slot of 32 straggles at 40% rate");
        assert!(s.events.iter().any(|e| matches!(e.kind, RecoveryKind::Speculation { .. })));
        // Speculation bounds the damage: strictly better than a world where
        // every straggler runs to completion at 4× (area argument is loose,
        // so just require the makespan stays below the full-slowdown bound).
        assert!(s.makespan < 4 * lpt_makespan(&tasks, 32) + 4_000);
    }

    #[test]
    fn completed_maps_on_a_dead_node_rerun() {
        // All tasks finish by t=100·8/8=100… node 2 dies at 150, after the
        // wave: its completed outputs are lost and re-run.
        let tasks = vec![100u64; 8];
        let p = plan().crash_at(2, 150);
        // Extend the wave past the crash with one long task so the crash
        // lands inside the stage window.
        let mut with_tail = tasks.clone();
        with_tail.push(400);
        let s = faulty_makespan(&with_tail, 2, 4, &p, "map", 0, true).unwrap();
        let reran = s
            .events
            .iter()
            .any(|e| matches!(e.kind, RecoveryKind::MapRerun { tasks } if tasks > 0));
        assert!(reran, "events: {:?}", s.events);
        let no_rerun = faulty_makespan(&with_tail, 2, 4, &p, "map", 0, false).unwrap();
        assert!(s.makespan > no_rerun.makespan, "re-running costs extra time");
    }

    #[test]
    fn schedules_are_pure_functions_of_inputs() {
        let p = FaultPlan::heavy(7, &ClusterConfig::ec2(4)).crash_at(1, 5_000);
        let tasks: Vec<SimNs> = (0..50).map(|i| 100 + 37 * i).collect();
        let a = faulty_makespan(&tasks, 8, 4, &p, "map", 123, true).unwrap();
        let b = faulty_makespan(&tasks, 8, 4, &p, "map", 123, true).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn elastic_replacement_regains_lost_capacity() {
        // Node 0 (2 of 8 slots) dies early in a long wave. Without
        // elasticity the remaining 6 slots carry the rest of the run; with a
        // provisioning delay much shorter than the wave, the replacement's
        // slots absorb work and the makespan strictly improves.
        let tasks = vec![1_000u64; 64];
        let dead = plan().crash_at(0, 500);
        let elastic = dead.clone().with_elastic_provisioning(1_000);
        let s_dead = faulty_makespan(&tasks, 2, 4, &dead, "map", 0, false).unwrap();
        let s_el = faulty_makespan(&tasks, 2, 4, &elastic, "map", 0, false).unwrap();
        assert!(
            s_el.makespan < s_dead.makespan,
            "replacement capacity must shorten the wave: {} >= {}",
            s_el.makespan,
            s_dead.makespan
        );
        assert!(
            s_el.task_nodes.iter().any(|&n| n >= 4),
            "some task must finish on the replacement node: {:?}",
            s_el.task_nodes
        );
        let replaced = s_el.events.iter().any(
            |e| matches!(e.kind, RecoveryKind::NodeReplaced { node: 0, delay_ns } if delay_ns > 0),
        );
        assert!(replaced, "events: {:?}", s_el.events);
        // An idle replacement (delay past the wave) emits no event and
        // changes nothing.
        let late = dead.clone().with_elastic_provisioning(crate::faults::MAX_PROVISION_DELAY_NS);
        let s_late = faulty_makespan(&tasks, 2, 4, &late, "map", 0, false).unwrap();
        assert_eq!(s_late.makespan, s_dead.makespan);
        assert!(!s_late.events.iter().any(|e| matches!(e.kind, RecoveryKind::NodeReplaced { .. })));
    }

    #[test]
    fn decommission_drains_without_killing_or_losing_data() {
        // Node 3 drains at t=1500: tasks already running complete (no
        // NodeCrash, no waste), but nothing new launches there afterwards.
        let tasks = vec![1_000u64; 24];
        let p = plan().decommission_at(3, 1_500);
        let s = faulty_makespan(&tasks, 2, 4, &p, "map", 0, true).unwrap();
        let baseline = faulty_makespan(&tasks, 2, 4, &FaultPlan::none(), "map", 0, true).unwrap();
        assert!(s.makespan > baseline.makespan, "lost capacity costs wall time");
        assert_eq!(s.wasted_ns, 0, "a drain wastes no work");
        assert_eq!(s.attempts, tasks.len() as u64, "no retries, no re-runs");
        assert!(s.events.iter().any(|e| matches!(e.kind, RecoveryKind::Decommission { node: 3 })));
        assert!(
            !s.events.iter().any(|e| matches!(e.kind, RecoveryKind::MapRerun { .. })),
            "drained output is not lost"
        );
        // Work that completed on node 3 before the drain keeps its output.
        assert!(s.task_nodes.contains(&3), "the node worked before draining");
    }
}
