//! Simulated HDFS: named files made of blocks placed on nodes.
//!
//! The block layer matters to the reproduction because the three systems
//! differ precisely in *how often* and *how* they touch HDFS (Fig. 1 of the
//! paper): HadoopGIS writes intermediates between its six preprocessing
//! steps, SpatialHadoop writes indexed block files plus `_master` metadata,
//! SpatialSpark reads input once. The simulated file system tracks file
//! sizes, record counts and block placement so engines can charge accurate
//! I/O and locality costs.

use std::collections::BTreeMap;

use crate::error::SimError;

/// Default HDFS block size (64 MB, the Hadoop-1.x / CDH-5 default the
/// paper's clusters used).
pub const DEFAULT_BLOCK_SIZE: u64 = 64 << 20;

/// Default HDFS replication factor (`dfs.replication`).
pub const DEFAULT_REPLICATION: u32 = 3;

/// Metadata of one block replica set.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    /// Node hosting the primary replica.
    pub primary_node: u32,
    pub bytes: u64,
    /// All replica hosts in locality order (primary first, then the
    /// pipeline replicas; deduplicated — a small cluster may hold fewer
    /// distinct replicas than `dfs.replication`).
    pub replicas: Vec<u32>,
}

/// Ledger of one fault-aware file read (see
/// [`SimHdfs::read_file_failover`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailoverRead {
    /// Blocks whose primary replica was on a dead node.
    pub failed_over_blocks: u64,
    /// Bytes that had to come from a non-primary replica (remote re-read).
    pub remote_bytes: u64,
}

/// Metadata of a simulated HDFS file.
#[derive(Debug, Clone, PartialEq)]
pub struct DfsFile {
    pub bytes: u64,
    pub records: u64,
    pub blocks: Vec<BlockMeta>,
}

/// The simulated distributed file system (namenode view).
#[derive(Debug, Clone, Default)]
pub struct SimHdfs {
    files: BTreeMap<String, DfsFile>,
    block_size: u64,
    next_node: u32,
    nodes: u32,
    /// Running totals for the trace layer.
    pub total_bytes_written: u64,
    pub total_bytes_read: u64,
}

impl SimHdfs {
    /// Creates a file system spanning `nodes` datanodes.
    pub fn new(nodes: u32) -> Self {
        SimHdfs {
            files: BTreeMap::new(),
            block_size: DEFAULT_BLOCK_SIZE,
            next_node: 0,
            nodes: nodes.max(1),
            total_bytes_written: 0,
            total_bytes_read: 0,
        }
    }

    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Creates (or replaces) a file of `bytes`/`records`, splitting it into
    /// blocks placed round-robin across datanodes.
    pub fn write_file(&mut self, name: &str, bytes: u64, records: u64) -> &DfsFile {
        let mut blocks = Vec::new();
        let mut remaining = bytes;
        loop {
            let b = remaining.min(self.block_size);
            let primary = self.next_node % self.nodes;
            // Replica pipeline: primary plus the next nodes round-robin
            // (rack-awareness is below this model's resolution). Pre-sized:
            // the pipeline never exceeds the replication factor.
            let mut replicas: Vec<u32> = Vec::with_capacity(DEFAULT_REPLICATION as usize);
            replicas.extend(
                (0..DEFAULT_REPLICATION.min(self.nodes)).map(|k| (primary + k) % self.nodes),
            );
            replicas.dedup();
            blocks.push(BlockMeta { primary_node: primary, bytes: b, replicas });
            self.next_node = (self.next_node + 1) % self.nodes;
            if remaining <= self.block_size {
                break;
            }
            remaining -= self.block_size;
        }
        // Block accounting: the split must preserve the file size exactly.
        #[cfg(feature = "sanitize")]
        debug_assert!(
            blocks.iter().map(|b| b.bytes).sum::<u64>() == bytes,
            "sanitize: block bytes do not sum to the file size for {name:?}"
        );
        self.total_bytes_written += bytes;
        let slot = self.files.entry(name.to_string()).or_insert_with(|| DfsFile {
            bytes: 0,
            records: 0,
            blocks: Vec::new(),
        });
        *slot = DfsFile { bytes, records, blocks };
        slot
    }

    /// Looks a file up, recording the read in the running totals.
    pub fn read_file(&mut self, name: &str) -> Result<DfsFile, SimError> {
        let f = self
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::FileNotFound(name.to_string()))?;
        self.total_bytes_read += f.bytes;
        Ok(f)
    }

    /// Fault-aware read: blocks whose primary replica sits on a node in
    /// `dead_nodes` fail over to the first surviving replica in locality
    /// order. Only when *every* replica of some block is dead does the read
    /// fail, with [`SimError::BlockLost`] — replication is the recovery
    /// mechanism, its exhaustion the failure.
    ///
    /// With an empty `dead_nodes` this is byte-identical to
    /// [`Self::read_file`] (and charges the same totals).
    pub fn read_file_failover(
        &mut self,
        name: &str,
        dead_nodes: &[u32],
    ) -> Result<(DfsFile, FailoverRead), SimError> {
        let f = self
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| SimError::FileNotFound(name.to_string()))?;
        let mut ledger = FailoverRead::default();
        for (i, b) in f.blocks.iter().enumerate() {
            if !dead_nodes.contains(&b.primary_node) {
                continue;
            }
            match b.replicas.iter().find(|r| !dead_nodes.contains(r)) {
                Some(_survivor) => {
                    ledger.failed_over_blocks += 1;
                    ledger.remote_bytes += b.bytes;
                }
                None => {
                    return Err(SimError::BlockLost { file: name.to_string(), block: i as u64 })
                }
            }
        }
        self.total_bytes_read += f.bytes;
        Ok((f, ledger))
    }

    /// Metadata lookup without charging a read (namenode RPC only).
    pub fn stat(&self, name: &str) -> Option<&DfsFile> {
        self.files.get(name)
    }

    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    pub fn delete(&mut self, name: &str) -> bool {
        self.files.remove(name).is_some()
    }

    /// Number of files currently stored.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// All file names (deterministic order).
    pub fn list(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn files_split_into_blocks() {
        let mut fs = SimHdfs::new(4);
        let f = fs.write_file("big.tsv", 200 << 20, 1000).clone();
        assert_eq!(f.blocks.len(), 4, "200MB / 64MB = 4 blocks (last partial)");
        assert_eq!(f.blocks.iter().map(|b| b.bytes).sum::<u64>(), 200 << 20);
    }

    #[test]
    fn small_and_empty_files_get_one_block() {
        let mut fs = SimHdfs::new(4);
        assert_eq!(fs.write_file("small", 10, 1).blocks.len(), 1);
        assert_eq!(fs.write_file("empty", 0, 0).blocks.len(), 1);
    }

    #[test]
    fn blocks_round_robin_across_nodes() {
        let mut fs = SimHdfs::new(3);
        let f = fs.write_file("f", 300 << 20, 10).clone();
        let nodes: Vec<u32> = f.blocks.iter().map(|b| b.primary_node).collect();
        // 5 blocks over 3 nodes → every node hosts at least one.
        for n in 0..3 {
            assert!(nodes.contains(&n), "node {n} got no block: {nodes:?}");
        }
    }

    #[test]
    fn read_totals_accumulate() {
        let mut fs = SimHdfs::new(2);
        fs.write_file("a", 100, 5);
        fs.read_file("a").unwrap();
        fs.read_file("a").unwrap();
        assert_eq!(fs.total_bytes_read, 200);
        assert_eq!(fs.total_bytes_written, 100);
    }

    #[test]
    fn missing_file_errors() {
        let mut fs = SimHdfs::new(1);
        assert!(matches!(fs.read_file("nope"), Err(SimError::FileNotFound(_))));
        assert!(!fs.exists("nope"));
    }

    #[test]
    fn replicas_follow_the_pipeline() {
        let mut fs = SimHdfs::new(5);
        let f = fs.write_file("f", 10, 1).clone();
        let b = &f.blocks[0];
        assert_eq!(b.replicas.len(), 3, "dfs.replication = 3");
        assert_eq!(b.replicas[0], b.primary_node, "primary is the local replica");
        // Tiny clusters hold fewer distinct replicas.
        let mut one = SimHdfs::new(1);
        assert_eq!(one.write_file("g", 10, 1).blocks[0].replicas, vec![0]);
    }

    #[test]
    fn failover_reads_around_dead_primaries() {
        let mut fs = SimHdfs::new(4);
        fs.write_file("f", 300 << 20, 10); // 5 blocks round-robin over 4 nodes
                                           // No deaths: identical to a plain read.
        let (_, clean) = fs.read_file_failover("f", &[]).unwrap();
        assert_eq!(clean, FailoverRead::default());
        // Kill node 0: its primary blocks fail over to surviving replicas.
        let (_, led) = fs.read_file_failover("f", &[0]).unwrap();
        assert!(led.failed_over_blocks > 0);
        assert!(led.remote_bytes > 0);
        assert_eq!(fs.total_bytes_read, 2 * (300 << 20), "both reads charged");
    }

    #[test]
    fn replication_exhaustion_is_block_lost() {
        let mut fs = SimHdfs::new(4);
        fs.write_file("f", 100 << 20, 10);
        // Replication 3 over nodes {p, p+1, p+2}: killing three consecutive
        // nodes starting at some block's primary loses that block.
        let err = fs.read_file_failover("f", &[0, 1, 2]).unwrap_err();
        assert!(matches!(err, SimError::BlockLost { .. }), "{err:?}");
        assert_eq!(err.kind(), "block lost");
    }

    #[test]
    fn overwrite_and_delete() {
        let mut fs = SimHdfs::new(1);
        fs.write_file("f", 100, 1);
        fs.write_file("f", 50, 2);
        assert_eq!(fs.stat("f").unwrap().bytes, 50);
        assert!(fs.delete("f"));
        assert!(!fs.delete("f"));
        assert_eq!(fs.num_files(), 0);
    }
}
