//! Run traces: the per-stage ledger of a simulated distributed job.
//!
//! A [`RunTrace`] records what Fig. 1 of the paper depicts qualitatively —
//! which stages each system executes and how each interacts with storage:
//! simulated seconds, HDFS bytes read/written, network shuffle bytes,
//! streaming-pipe bytes and task counts, per stage. The report layer prints
//! these traces as the Fig.-1 reproduction and uses stage tags to compute
//! the IA/IB/DJ breakdown of Table 3.

use crate::{ns_to_secs, SimNs};

/// What kind of execution a stage is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// A full MapReduce job (map + shuffle + reduce).
    MapReduceJob,
    /// A map-only MapReduce job.
    MapOnlyJob,
    /// A Spark stage (pipelined transformations ending at a shuffle/action).
    SparkStage,
    /// A serial program on a single machine (HadoopGIS's local partition
    /// generation).
    LocalSerial,
    /// An HDFS <-> local filesystem copy.
    FsCopy,
}

impl StageKind {
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::MapReduceJob => "MR job",
            StageKind::MapOnlyJob => "map-only job",
            StageKind::SparkStage => "spark stage",
            StageKind::LocalSerial => "local serial",
            StageKind::FsCopy => "fs copy",
        }
    }
}

/// Phase tag used for the Table-3 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Indexing/partitioning the left input dataset (column IA).
    IndexA,
    /// Indexing/partitioning the right input dataset (column IB).
    IndexB,
    /// The distributed spatial join (column DJ).
    DistributedJoin,
}

/// One concrete recovery action taken during a faulted run — the entries of
/// `RunTrace::recovery`. With `FaultPlan::none()` no event is ever emitted.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryKind {
    /// A task attempt failed (transient disk error) and was re-launched.
    TaskRetry { task: u64, attempt: u32 },
    /// A speculative duplicate was launched for a straggling attempt; the
    /// loser's work is charged as waste.
    Speculation { task: u64 },
    /// A node crashed mid-stage, killing the tasks running on it.
    NodeCrash { node: u32, tasks_killed: u64 },
    /// Completed map outputs were lost with their host node before the
    /// shuffle could fetch them; the tasks re-ran on surviving slots.
    MapRerun { tasks: u64 },
    /// An HDFS read fell over from dead primaries to surviving replicas.
    ReplicaFailover { blocks: u64 },
    /// Spark resubmitted a stage after executor loss and recomputed the
    /// lost partitions from lineage. One event carries the whole action:
    /// `partitions` lost partitions were rebuilt by replaying
    /// `lineage_depth` narrow stages each (already truncated at the last
    /// durable checkpoint, if any), and the event's `wasted_ns` is the full
    /// recompute cost. Earlier versions split this into a costed
    /// `PartitionRecompute` plus a zero-cost `StageResubmit`, which
    /// double-listed the same action in the recovery ledger.
    StageResubmit { attempt: u32, partitions: u64, lineage_depth: u32 },
    /// A checkpoint of completed stage/wave output was written to HDFS;
    /// `wasted_ns` is the write's critical-path cost (the insurance
    /// premium), `bytes` the logical (pre-replication) checkpoint size.
    CheckpointWrite { bytes: u64 },
    /// Recovery was satisfied by re-reading checkpointed output instead of
    /// re-executing the work that produced it; `bytes` is the amount
    /// re-read (also metered in `StageTrace::bytes_reread`).
    CheckpointRestore { bytes: u64 },
    /// A replacement node came online `delay_ns` after `node` crashed and
    /// actually ran work (elastic re-scheduling regained the capacity).
    NodeReplaced { node: u32, delay_ns: SimNs },
    /// `node` was gracefully decommissioned: it launched nothing new after
    /// its drain point, running tasks completed, and no data was lost.
    Decommission { node: u32 },
}

/// A recovery event: what happened, in which stage, and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    pub stage: String,
    pub kind: RecoveryKind,
    /// Simulated nanoseconds of work wasted or re-spent by this action.
    pub wasted_ns: SimNs,
}

/// One stage of a simulated run.
#[derive(Debug, Clone)]
pub struct StageTrace {
    pub name: String,
    pub kind: StageKind,
    pub phase: Phase,
    pub sim_ns: SimNs,
    pub hdfs_bytes_read: u64,
    pub hdfs_bytes_written: u64,
    pub shuffle_bytes: u64,
    pub pipe_bytes: u64,
    pub tasks: u64,
    /// Task attempts launched; equals `tasks` on a fault-free run, larger
    /// when retries or speculation fired (0 kept for stages that predate
    /// attempt accounting, i.e. non-scheduled serial stages).
    pub attempts: u64,
    /// Speculative duplicate attempts launched.
    pub speculative: u64,
    /// Simulated nanoseconds of thrown-away work (killed attempts, losing
    /// speculative copies, re-run map tasks, lineage recomputation).
    pub wasted_ns: SimNs,
    /// Input bytes read a second time during recovery (replica failover,
    /// map re-runs, partition recomputes).
    pub bytes_reread: u64,
}

impl StageTrace {
    pub fn new(name: impl Into<String>, kind: StageKind, phase: Phase) -> Self {
        StageTrace {
            name: name.into(),
            kind,
            phase,
            sim_ns: 0,
            hdfs_bytes_read: 0,
            hdfs_bytes_written: 0,
            shuffle_bytes: 0,
            pipe_bytes: 0,
            tasks: 0,
            attempts: 0,
            speculative: 0,
            wasted_ns: 0,
            bytes_reread: 0,
        }
    }

    pub fn seconds(&self) -> f64 {
        ns_to_secs(self.sim_ns)
    }

    /// Whether this stage touches HDFS at all — the quantity the paper's
    /// Fig.-1 analysis contrasts across systems.
    pub fn touches_hdfs(&self) -> bool {
        self.hdfs_bytes_read > 0 || self.hdfs_bytes_written > 0
    }
}

/// A complete run: ordered stages plus failure state.
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    pub system: String,
    pub stages: Vec<StageTrace>,
    /// Recovery actions taken during the run, in stage order. Empty on every
    /// fault-free run.
    pub recovery: Vec<RecoveryEvent>,
}

impl RunTrace {
    pub fn new(system: impl Into<String>) -> Self {
        RunTrace { system: system.into(), stages: Vec::new(), recovery: Vec::new() }
    }

    pub fn push(&mut self, stage: StageTrace) {
        self.stages.push(stage);
    }

    /// Appends recovery events (tagging is the producer's job).
    pub fn push_recovery(&mut self, events: impl IntoIterator<Item = RecoveryEvent>) {
        self.recovery.extend(events);
    }

    /// Total task attempts across all stages (0 if nothing recorded them).
    pub fn total_attempts(&self) -> u64 {
        self.stages.iter().map(|s| s.attempts).sum()
    }

    /// Total simulated nanoseconds of wasted (recovered-around) work.
    pub fn total_wasted_ns(&self) -> SimNs {
        self.stages.iter().map(|s| s.wasted_ns).sum()
    }

    /// Total bytes read more than once during recovery.
    pub fn total_bytes_reread(&self) -> u64 {
        self.stages.iter().map(|s| s.bytes_reread).sum()
    }

    /// Total simulated time across all stages.
    pub fn total_ns(&self) -> SimNs {
        self.stages.iter().map(|s| s.sim_ns).sum()
    }

    pub fn total_seconds(&self) -> f64 {
        ns_to_secs(self.total_ns())
    }

    /// Simulated time of all stages tagged with `phase`.
    pub fn phase_ns(&self, phase: Phase) -> SimNs {
        self.stages.iter().filter(|s| s.phase == phase).map(|s| s.sim_ns).sum()
    }

    pub fn phase_seconds(&self, phase: Phase) -> f64 {
        ns_to_secs(self.phase_ns(phase))
    }

    /// Total HDFS traffic (read + written).
    pub fn hdfs_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.hdfs_bytes_read + s.hdfs_bytes_written).sum()
    }

    /// Number of stages that interact with HDFS.
    pub fn hdfs_touching_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.touches_hdfs()).count()
    }

    /// Renders the run as an ASCII timeline: one bar per stage, width
    /// proportional to its share of the total simulated time. Stages are
    /// sequential in all the reproduced systems (each job/stage is a
    /// barrier), so the bars concatenate into the run's critical path.
    pub fn timeline_string(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let total = self.total_ns().max(1);
        let _ = writeln!(out, "{} — {:.1}s total", self.system, self.total_seconds());
        for s in &self.stages {
            let w = ((s.sim_ns as u128 * width as u128) / total as u128) as usize;
            let _ = writeln!(
                out,
                "  |{:<width$}| {:>7.1}s  {}",
                "█".repeat(w.max(if s.sim_ns > 0 { 1 } else { 0 })),
                s.seconds(),
                s.name,
                width = width
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, phase: Phase, ns: SimNs, read: u64, written: u64) -> StageTrace {
        let mut s = StageTrace::new(name, StageKind::MapReduceJob, phase);
        s.sim_ns = ns;
        s.hdfs_bytes_read = read;
        s.hdfs_bytes_written = written;
        s
    }

    #[test]
    fn totals_and_phases() {
        let mut t = RunTrace::new("test");
        t.push(stage("index A", Phase::IndexA, 2_000_000_000, 100, 50));
        t.push(stage("index B", Phase::IndexB, 1_000_000_000, 10, 5));
        t.push(stage("join", Phase::DistributedJoin, 3_000_000_000, 200, 0));
        assert_eq!(t.total_seconds(), 6.0);
        assert_eq!(t.phase_seconds(Phase::IndexA), 2.0);
        assert_eq!(t.phase_seconds(Phase::DistributedJoin), 3.0);
        assert_eq!(t.hdfs_bytes(), 365);
        assert_eq!(t.hdfs_touching_stages(), 3);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut t = RunTrace::new("x");
        t.push(stage("a", Phase::IndexA, 7, 0, 0));
        t.push(stage("b", Phase::IndexB, 9, 0, 0));
        t.push(stage("c", Phase::DistributedJoin, 11, 0, 0));
        let sum = t.phase_ns(Phase::IndexA)
            + t.phase_ns(Phase::IndexB)
            + t.phase_ns(Phase::DistributedJoin);
        assert_eq!(sum, t.total_ns());
    }

    #[test]
    fn timeline_bars_are_proportional() {
        let mut t = RunTrace::new("demo");
        t.push(stage("long", Phase::IndexA, 9_000_000_000, 0, 0));
        t.push(stage("short", Phase::IndexB, 1_000_000_000, 0, 0));
        let s = t.timeline_string(40);
        assert!(s.contains("demo"));
        let long_line = s.lines().find(|l| l.contains("long")).unwrap();
        let short_line = s.lines().find(|l| l.contains("short")).unwrap();
        let bars = |l: &str| l.chars().filter(|&c| c == '█').count();
        assert_eq!(bars(long_line), 36);
        assert_eq!(bars(short_line), 4);
    }

    #[test]
    fn memory_only_stage_does_not_touch_hdfs() {
        let mut s = StageTrace::new("groupByKey", StageKind::SparkStage, Phase::DistributedJoin);
        s.shuffle_bytes = 12345;
        assert!(!s.touches_hdfs());
    }

    #[test]
    fn recovery_accounting_defaults_to_zero() {
        // The fault-free invariant: fresh traces carry no recovery state, so
        // pre-fault-subsystem behaviour is preserved byte for byte.
        let mut t = RunTrace::new("x");
        t.push(stage("a", Phase::IndexA, 5, 0, 0));
        assert!(t.recovery.is_empty());
        assert_eq!(t.total_attempts(), 0);
        assert_eq!(t.total_wasted_ns(), 0);
        assert_eq!(t.total_bytes_reread(), 0);
    }

    #[test]
    fn recovery_events_accumulate() {
        let mut t = RunTrace::new("x");
        let mut s = stage("map", Phase::DistributedJoin, 10, 0, 0);
        s.attempts = 5;
        s.speculative = 1;
        s.wasted_ns = 7;
        s.bytes_reread = 64;
        t.push(s);
        t.push_recovery(vec![
            RecoveryEvent {
                stage: "map".into(),
                kind: RecoveryKind::TaskRetry { task: 2, attempt: 2 },
                wasted_ns: 3,
            },
            RecoveryEvent {
                stage: "map".into(),
                kind: RecoveryKind::NodeCrash { node: 1, tasks_killed: 1 },
                wasted_ns: 4,
            },
        ]);
        assert_eq!(t.recovery.len(), 2);
        assert_eq!(t.total_attempts(), 5);
        assert_eq!(t.total_wasted_ns(), 7);
        assert_eq!(t.total_bytes_reread(), 64);
    }
}
