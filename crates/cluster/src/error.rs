//! Simulated failure modes — the "-" cells of the paper's Table 2/3.

use std::fmt;

/// An error raised by a simulated run. The paper's experiments failed in two
/// distinct ways, both reproduced mechanically (never hard-coded per cell):
///
/// * HadoopGIS: "broken pipeline, which is typical in Hadoop Streaming when
///   the data that pipes through multiple processors is too big";
/// * SpatialSpark: "out of memory and Spark is not able to spill data to
///   external storage".
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A streaming task attempted to pipe more bytes through an external
    /// process than the node can sustain.
    BrokenPipe {
        stage: String,
        payload_bytes: u64,
        limit_bytes: u64,
    },
    /// A Spark executor's modeled resident set exceeded its usable memory.
    OutOfMemory {
        stage: String,
        needed_bytes: u64,
        usable_bytes: u64,
    },
    /// A named input file does not exist in the simulated HDFS.
    FileNotFound(String),
    /// Generic configuration error.
    Config(String),
}

impl SimError {
    /// Short label matching the paper's failure vocabulary.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::BrokenPipe { .. } => "broken pipe",
            SimError::OutOfMemory { .. } => "out of memory",
            SimError::FileNotFound(_) => "file not found",
            SimError::Config(_) => "config",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BrokenPipe {
                stage,
                payload_bytes,
                limit_bytes,
            } => write!(
                f,
                "broken pipe in stage {stage:?}: streaming task piped {payload_bytes} bytes \
                 (node limit {limit_bytes})"
            ),
            SimError::OutOfMemory {
                stage,
                needed_bytes,
                usable_bytes,
            } => write!(
                f,
                "out of memory in stage {stage:?}: executor needs {needed_bytes} bytes \
                 (usable {usable_bytes}); Spark cannot spill"
            ),
            SimError::FileNotFound(name) => write!(f, "HDFS file not found: {name:?}"),
            SimError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BrokenPipe {
            stage: "DJ".into(),
            payload_bytes: 100,
            limit_bytes: 50,
        };
        let s = e.to_string();
        assert!(s.contains("broken pipe") && s.contains("100") && s.contains("50"));
        assert_eq!(e.kind(), "broken pipe");

        let o = SimError::OutOfMemory {
            stage: "groupByKey".into(),
            needed_bytes: 10,
            usable_bytes: 5,
        };
        assert!(o.to_string().contains("cannot spill"));
        assert_eq!(o.kind(), "out of memory");
    }
}
