//! Simulated failure modes — the "-" cells of the paper's Table 2/3.

use std::fmt;

/// An error raised by a simulated run. The paper's experiments failed in two
/// distinct ways, both reproduced mechanically (never hard-coded per cell):
///
/// * HadoopGIS: "broken pipeline, which is typical in Hadoop Streaming when
///   the data that pipes through multiple processors is too big";
/// * SpatialSpark: "out of memory and Spark is not able to spill data to
///   external storage".
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A streaming task attempted to pipe more bytes through an external
    /// process than the node can sustain.
    BrokenPipe { stage: String, payload_bytes: u64, limit_bytes: u64 },
    /// A Spark executor's modeled resident set exceeded its usable memory.
    OutOfMemory { stage: String, needed_bytes: u64, usable_bytes: u64 },
    /// A named input file does not exist in the simulated HDFS.
    FileNotFound(String),
    /// Every replica of an HDFS block lives on a crashed datanode, so the
    /// read cannot fail over anywhere (replication exhausted).
    BlockLost { file: String, block: u64 },
    /// A task failed on its last permitted attempt (Hadoop's
    /// `mapreduce.map.maxattempts`-style bound).
    TaskAttemptsExhausted { stage: String, task: u64, attempts: u32 },
    /// A stage lost its compute entirely: every slot that could run it sits
    /// on a crashed node.
    NodeLost { stage: String, node: u32 },
}

impl SimError {
    /// Short label matching the paper's failure vocabulary.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::BrokenPipe { .. } => "broken pipe",
            SimError::OutOfMemory { .. } => "out of memory",
            SimError::FileNotFound(_) => "file not found",
            SimError::BlockLost { .. } => "block lost",
            SimError::TaskAttemptsExhausted { .. } => "task attempts exhausted",
            SimError::NodeLost { .. } => "node lost",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BrokenPipe { stage, payload_bytes, limit_bytes } => write!(
                f,
                "broken pipe in stage {stage:?}: streaming task piped {payload_bytes} bytes \
                 (node limit {limit_bytes})"
            ),
            SimError::OutOfMemory { stage, needed_bytes, usable_bytes } => write!(
                f,
                "out of memory in stage {stage:?}: executor needs {needed_bytes} bytes \
                 (usable {usable_bytes}); Spark cannot spill"
            ),
            SimError::FileNotFound(name) => write!(f, "HDFS file not found: {name:?}"),
            SimError::BlockLost { file, block } => {
                write!(f, "HDFS block lost: {file:?} block {block} has no surviving replica")
            }
            SimError::TaskAttemptsExhausted { stage, task, attempts } => write!(
                f,
                "task {task} of stage {stage:?} failed {attempts} attempts (bound reached)"
            ),
            SimError::NodeLost { stage, node } => write!(
                f,
                "stage {stage:?} lost its compute: no surviving slot (last crash: node {node})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BrokenPipe { stage: "DJ".into(), payload_bytes: 100, limit_bytes: 50 };
        let s = e.to_string();
        assert!(s.contains("broken pipe") && s.contains("100") && s.contains("50"));
        assert_eq!(e.kind(), "broken pipe");

        let o =
            SimError::OutOfMemory { stage: "groupByKey".into(), needed_bytes: 10, usable_bytes: 5 };
        assert!(o.to_string().contains("cannot spill"));
        assert_eq!(o.kind(), "out of memory");
    }

    /// One value of every variant. Growing `SimError` without extending this
    /// list is a compile error (the `match` below has no `_` arm), so the
    /// failure vocabulary cannot drift silently.
    fn one_of_each() -> Vec<SimError> {
        vec![
            SimError::BrokenPipe { stage: "s".into(), payload_bytes: 2, limit_bytes: 1 },
            SimError::OutOfMemory { stage: "s".into(), needed_bytes: 2, usable_bytes: 1 },
            SimError::FileNotFound("f".into()),
            SimError::BlockLost { file: "f".into(), block: 0 },
            SimError::TaskAttemptsExhausted { stage: "s".into(), task: 3, attempts: 4 },
            SimError::NodeLost { stage: "s".into(), node: 7 },
        ]
    }

    #[test]
    fn kind_labels_are_exhaustive_and_stable() {
        for e in one_of_each() {
            // Match-on-all, deliberately without a `_` arm: a new variant
            // must be given a label here *and* in `kind()` to compile.
            let expected = match &e {
                SimError::BrokenPipe { .. } => "broken pipe",
                SimError::OutOfMemory { .. } => "out of memory",
                SimError::FileNotFound(_) => "file not found",
                SimError::BlockLost { .. } => "block lost",
                SimError::TaskAttemptsExhausted { .. } => "task attempts exhausted",
                SimError::NodeLost { .. } => "node lost",
            };
            assert_eq!(e.kind(), expected);
            assert!(!e.to_string().is_empty());
        }
        // Labels are pairwise distinct (a table cell's label identifies the
        // mechanism unambiguously).
        let mut labels: Vec<&str> = one_of_each().iter().map(|e| e.kind()).collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n, "duplicate kind() label");
    }
}
