//! Hardware configurations: the paper's four testbeds.

const GIB: u64 = 1 << 30;
const MIB_PER_S: f64 = (1 << 20) as f64;

/// Per-node hardware resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Parallel task slots per node (vCPUs / cores).
    pub cores: u32,
    /// Physical memory per node.
    pub memory_bytes: u64,
    /// Sequential disk read bandwidth per node, bytes/s — shared by all of
    /// the node's task slots (see [`NodeSpec::slot_disk_read_bw`]).
    pub disk_read_bw: f64,
    /// Sequential disk write bandwidth per node, bytes/s.
    pub disk_write_bw: f64,
    /// Network bandwidth per node, bytes/s (full bisection assumed).
    pub net_bw: f64,
    /// Relative per-core slowdown vs the workstation's 2.6 GHz cores
    /// (an EC2 vCPU of the era is a hyperthread on older silicon).
    pub cpu_scale: f64,
}

impl NodeSpec {
    /// Disk read bandwidth available to one task when all slots run
    /// (the node's disk is shared by its concurrent tasks).
    pub fn slot_disk_read_bw(&self) -> f64 {
        self.disk_read_bw / self.cores as f64
    }

    /// Disk write bandwidth per fully-loaded slot.
    pub fn slot_disk_write_bw(&self) -> f64 {
        self.disk_write_bw / self.cores as f64
    }

    /// Network bandwidth per fully-loaded slot.
    pub fn slot_net_bw(&self) -> f64 {
        self.net_bw / self.cores as f64
    }
}

/// A named cluster hardware configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    pub name: String,
    pub nodes: u32,
    pub node: NodeSpec,
}

impl ClusterConfig {
    /// The paper's workstation: "dual 8 core CPUs at 2.6 GHz and 128 GB
    /// memory", a single-node cluster. Disk bandwidth is a single local
    /// RAID-ish disk (~200 MB/s) — the paper attributes the small WS-side
    /// speedup of SpatialSpark on `taxi-nycb` to this single-node disk
    /// bottleneck, so the constant matters for shape fidelity.
    pub fn workstation() -> Self {
        ClusterConfig {
            name: "WS".to_string(),
            nodes: 1,
            node: NodeSpec {
                cores: 16,
                memory_bytes: 128 * GIB,
                // One local RAID volume heavily contended by 16 concurrent
                // tasks: effective sequential bandwidth well under the
                // device optimum.
                disk_read_bw: 120.0 * MIB_PER_S,
                disk_write_bw: 110.0 * MIB_PER_S,
                // Loopback: effectively unlimited next to disk.
                net_bw: 10_000.0 * MIB_PER_S,
                cpu_scale: 1.0,
            },
        }
    }

    /// An EC2 cluster of `n` g2.2xlarge nodes: 8 vCPUs, 15 GB memory each.
    /// EBS-era storage (~60 MB/s effective), 1 Gbit/s networking with
    /// oversubscription (~60 MiB/s effective), and vCPUs that are
    /// hyperthreads on slower silicon than the workstation's 2.6 GHz cores.
    pub fn ec2(n: u32) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        ClusterConfig {
            name: format!("EC2-{n}"),
            nodes: n,
            node: NodeSpec {
                cores: 8,
                memory_bytes: 15 * GIB,
                // g2.2xlarge has a 60 GB SSD instance store: good sequential
                // bandwidth per node.
                disk_read_bw: 150.0 * MIB_PER_S,
                disk_write_bw: 130.0 * MIB_PER_S,
                net_bw: 80.0 * MIB_PER_S,
                cpu_scale: 1.8,
            },
        }
    }

    /// The four configurations evaluated in the paper, in table order.
    pub fn paper_configs() -> Vec<ClusterConfig> {
        vec![
            ClusterConfig::workstation(),
            ClusterConfig::ec2(10),
            ClusterConfig::ec2(8),
            ClusterConfig::ec2(6),
        ]
    }

    /// Aggregate disk read bandwidth across nodes.
    pub fn aggregate_disk_read_bw(&self) -> f64 {
        self.nodes as f64 * self.node.disk_read_bw
    }

    /// Aggregate disk write bandwidth across nodes.
    pub fn aggregate_disk_write_bw(&self) -> f64 {
        self.nodes as f64 * self.node.disk_write_bw
    }

    /// Aggregate network bandwidth across nodes.
    pub fn aggregate_net_bw(&self) -> f64 {
        self.nodes as f64 * self.node.net_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_the_paper() {
        let cfgs = ClusterConfig::paper_configs();
        assert_eq!(cfgs.len(), 4);
        assert_eq!(cfgs[0].name, "WS");
        assert_eq!(cfgs[1].name, "EC2-10");
        assert_eq!(cfgs[3].nodes, 6);
        // "the workstation has 128 GB memory and the aggregated memory
        // capacity of the EC2-10 cluster is 150 GB"
        assert_eq!(cfgs[0].nodes as u64 * cfgs[0].node.memory_bytes, 128 * GIB);
        assert_eq!(cfgs[1].nodes as u64 * cfgs[1].node.memory_bytes, 150 * GIB);
    }

    #[test]
    fn ec2_aggregate_io_exceeds_workstation() {
        // The EC2-10 cluster has 5x the workstation's aggregate disk
        // bandwidth — the mechanism behind the paper's observation that
        // distributed I/O lifts the WS disk bottleneck.
        let ws = ClusterConfig::workstation();
        let ec2 = ClusterConfig::ec2(10);
        assert!(ec2.aggregate_disk_read_bw() > 4.0 * ws.aggregate_disk_read_bw());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_rejected() {
        let _ = ClusterConfig::ec2(0);
    }
}
