//! The calibrated cost model.
//!
//! Every constant below is tied to an observation in the paper (or a
//! well-known platform characteristic of 2014-era Hadoop/Spark deployments).
//! The simulation charges these costs against *extrapolated* data volumes —
//! the synthetic datasets are generated at a configurable scale factor with
//! full-scale volumes reported — so absolute simulated seconds land in the
//! same order of magnitude as the paper's tables, and ratios (the claims we
//! reproduce) are robust to the exact values.
//!
//! | Constant | Calibrated against |
//! |---|---|
//! | `hadoop_job_startup_ns` | §III.C: "Hadoop infrastructure overheads for small datasets ... may be high"; classic ~10-20 s MR job latency |
//! | `text_parse_ns_per_byte` | §II.A: HadoopGIS re-parses every record as text in every job |
//! | `streaming_pipe_ns_per_byte` | §II.A/C: Hadoop Streaming pipes all data through external processes |
//! | `record_overhead_hadoop_ns` vs `record_overhead_spark_ns` | Table 3: SpatialHadoop DJ vs SpatialSpark end-to-end gap |
//! | `hdfs_replication` | HDFS default 3-way replication; §II: SpatialHadoop/HadoopGIS write intermediates to HDFS |
//! | `streaming_pipe_limit_fraction` | Table 2/3 failure pattern: HadoopGIS "broken pipeline ... when the data that pipes through multiple processors is too big" |
//! | `spark_memory_fraction`, `spark_record_overhead_bytes`, `spark_vertex_bytes` | Table 2 failure pattern: SpatialSpark OOM on EC2-8/6, success on WS (128 GB) and EC2-10 (150 GB aggregate) |

use crate::SimNs;

/// All tunable constants of the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    // ---- storage & network ----
    /// HDFS replication factor: every HDFS write is charged this many times.
    pub hdfs_replication: u32,
    /// Bandwidth of HDFS-to-local-filesystem copies (HadoopGIS's serial
    /// partition step copies sample files back and forth), bytes/s.
    pub local_copy_bw: f64,
    /// Per-node in-memory shuffle bandwidth (Spark), bytes/s.
    pub mem_bw: f64,

    // ---- per-record / per-byte CPU ----
    /// Parsing text (TSV+WKT) into geometry objects, ns per byte.
    pub text_parse_ns_per_byte: f64,
    /// Serializing records back to text, ns per byte.
    pub serialize_ns_per_byte: f64,
    /// Moving a byte through a Hadoop-Streaming pipe (stdin/stdout of the
    /// external process), ns per byte — paid in *both* directions.
    pub streaming_pipe_ns_per_byte: f64,
    /// Fixed per-record framework overhead in Hadoop (object churn,
    /// key/value wrapping, spill bookkeeping), ns.
    pub record_overhead_hadoop_ns: f64,
    /// Fixed per-record framework overhead in Spark (closure dispatch on
    /// in-memory rows), ns.
    pub record_overhead_spark_ns: f64,
    /// One comparison in the MR shuffle sort (`n log2 n` comparisons), ns.
    pub sort_compare_ns: f64,
    /// Per-record framework overhead of a native (C++-style) execution
    /// engine with long-lived workers and zero-copy batches — the LDE
    /// extension system (the paper's own future work). An order of
    /// magnitude below the JVM engines.
    pub record_overhead_lde_ns: f64,
    /// SIMD lanes the LDE refinement kernel exploits (the paper: "capable
    /// of exploiting SIMD computing power on both multi-core CPUs and
    /// GPUs"); geometry refinement cost divides by this.
    pub lde_simd_lanes: f64,
    /// Per-record cost of an *interpreted* streaming reducer script
    /// (HadoopGIS's distributed-join reducer is Python driving GEOS through
    /// wrappers: parse line, build geometry, native call — milliseconds per
    /// record). Charged only on jobs that declare a script reducer; the
    /// `cat|sort|uniq` dedup reducer is C tools and does not pay it.
    pub streaming_script_record_ns: f64,

    // ---- framework fixed overheads ----
    /// MR job startup/teardown (JVM launches, scheduling), ns.
    pub hadoop_job_startup_ns: SimNs,
    /// Per-MR-task launch overhead, ns.
    pub hadoop_task_overhead_ns: SimNs,
    /// Spark job/stage submission overhead, ns.
    pub spark_job_startup_ns: SimNs,
    /// Per-Spark-task launch overhead, ns.
    pub spark_task_overhead_ns: SimNs,

    // ---- failure thresholds ----
    /// A single streaming task may pipe at most `node_memory × fraction`
    /// bytes before the external process dies (broken pipe).
    pub streaming_pipe_limit_fraction: f64,
    /// Fraction of node memory usable by Spark executors (the rest is OS,
    /// JVM and framework overhead).
    pub spark_memory_fraction: f64,
    /// Modeled JVM heap bytes per resident record (object headers, boxed
    /// fields, RDD/groupByKey list overhead).
    pub spark_record_overhead_bytes: f64,
    /// Modeled JVM heap bytes per geometry vertex (two doubles + array and
    /// boxing overhead).
    pub spark_vertex_bytes: f64,
    /// Serialized size of shuffled data as a fraction of its modeled
    /// JVM-resident size. Spark 1.x shuffles spill serialized blocks through
    /// the *local disk* even for "in-memory" jobs — on the single-disk
    /// workstation this is exactly what erases most of SpatialSpark's
    /// advantage on `taxi-nycb` (Table 2: 3098 s vs 3327 s).
    pub spark_shuffle_ser_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            hdfs_replication: 3,
            local_copy_bw: 150.0 * (1 << 20) as f64,
            mem_bw: 2.0 * (1 << 30) as f64,

            text_parse_ns_per_byte: 200.0,
            serialize_ns_per_byte: 15.0,
            streaming_pipe_ns_per_byte: 10.0,
            record_overhead_hadoop_ns: 45_000.0,
            record_overhead_spark_ns: 7_000.0,
            sort_compare_ns: 150.0,
            record_overhead_lde_ns: 800.0,
            lde_simd_lanes: 4.0,
            streaming_script_record_ns: 2_500_000.0,

            hadoop_job_startup_ns: 15_000_000_000,
            hadoop_task_overhead_ns: 300_000_000,
            spark_job_startup_ns: 1_000_000_000,
            spark_task_overhead_ns: 20_000_000,

            streaming_pipe_limit_fraction: 0.0014,
            spark_memory_fraction: 0.60,
            spark_record_overhead_bytes: 196.0,
            spark_vertex_bytes: 18.0,
            spark_shuffle_ser_fraction: 1.0,
        }
    }
}

impl CostModel {
    /// Time to read `bytes` sequentially at `bw` bytes/s.
    pub fn io_ns(&self, bytes: u64, bw: f64) -> SimNs {
        (bytes as f64 / bw * 1e9) as SimNs
    }

    /// Time to write `bytes` to HDFS at `bw` (replication charged).
    pub fn hdfs_write_ns(&self, bytes: u64, bw: f64) -> SimNs {
        self.io_ns(bytes * self.hdfs_replication as u64, bw)
    }

    /// CPU time to parse `bytes` of text into records.
    pub fn parse_ns(&self, bytes: u64) -> SimNs {
        (bytes as f64 * self.text_parse_ns_per_byte) as SimNs
    }

    /// CPU time to serialize `bytes` of text output.
    pub fn serialize_ns(&self, bytes: u64) -> SimNs {
        (bytes as f64 * self.serialize_ns_per_byte) as SimNs
    }

    /// Cost of piping `bytes` through a streaming process (one direction).
    pub fn pipe_ns(&self, bytes: u64) -> SimNs {
        (bytes as f64 * self.streaming_pipe_ns_per_byte) as SimNs
    }

    /// Per-record framework overhead for `records` records in Hadoop.
    pub fn hadoop_records_ns(&self, records: u64) -> SimNs {
        (records as f64 * self.record_overhead_hadoop_ns) as SimNs
    }

    /// Per-record framework overhead for `records` records in Spark.
    pub fn spark_records_ns(&self, records: u64) -> SimNs {
        (records as f64 * self.record_overhead_spark_ns) as SimNs
    }

    /// Cost of sorting `records` records in the shuffle (`n log2 n`).
    pub fn sort_ns(&self, records: u64) -> SimNs {
        if records < 2 {
            return 0;
        }
        let n = records as f64;
        (n * n.log2() * self.sort_compare_ns) as SimNs
    }

    /// Maximum bytes a single streaming task may pipe on a node with
    /// `node_memory` bytes of RAM.
    pub fn streaming_pipe_limit(&self, node_memory: u64) -> u64 {
        (node_memory as f64 * self.streaming_pipe_limit_fraction) as u64
    }

    /// Usable Spark executor memory on a node with `node_memory` bytes.
    pub fn spark_usable_memory(&self, node_memory: u64) -> u64 {
        (node_memory as f64 * self.spark_memory_fraction) as u64
    }

    /// Modeled JVM-resident footprint of a dataset slice.
    pub fn spark_footprint_bytes(&self, records: u64, vertices: u64) -> u64 {
        (records as f64 * self.spark_record_overhead_bytes
            + vertices as f64 * self.spark_vertex_bytes) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_cost_is_linear_in_bytes() {
        let m = CostModel::default();
        let bw = 100.0 * (1 << 20) as f64;
        assert_eq!(m.io_ns(0, bw), 0);
        let one = m.io_ns(1 << 20, bw);
        let ten = m.io_ns(10 << 20, bw);
        assert!((ten as f64 / one as f64 - 10.0).abs() < 0.01);
    }

    #[test]
    fn hdfs_write_charges_replication() {
        let m = CostModel::default();
        let bw = 100.0 * (1 << 20) as f64;
        assert_eq!(m.hdfs_write_ns(1 << 20, bw), m.io_ns(3 << 20, bw));
    }

    #[test]
    fn sort_cost_is_superlinear() {
        let m = CostModel::default();
        assert_eq!(m.sort_ns(0), 0);
        assert_eq!(m.sort_ns(1), 0);
        let small = m.sort_ns(1000);
        let big = m.sort_ns(10_000);
        assert!(big > small * 10, "n log n grows faster than n");
    }

    #[test]
    fn hadoop_records_cost_more_than_spark() {
        let m = CostModel::default();
        assert!(m.hadoop_records_ns(1_000_000) > 3 * m.spark_records_ns(1_000_000));
    }

    #[test]
    fn failure_thresholds_scale_with_node_memory() {
        let m = CostModel::default();
        let ws_limit = m.streaming_pipe_limit(128 << 30);
        let ec2_limit = m.streaming_pipe_limit(15 << 30);
        assert!(ws_limit > 8 * ec2_limit);
        assert!(m.spark_usable_memory(15 << 30) < 15 << 30);
    }

    #[test]
    fn spark_footprint_reflects_record_and_vertex_mix() {
        let m = CostModel::default();
        // Point-heavy data: overhead dominated by record count.
        let points = m.spark_footprint_bytes(1_000_000, 1_000_000);
        // Polyline data: same record count, many more vertices.
        let lines = m.spark_footprint_bytes(1_000_000, 30_000_000);
        assert!(lines > points);
        // But per raw byte, points are *more* expensive (the mechanism that
        // lets edge-linearwater fit where taxi barely does).
        let point_bytes_raw = 1_000_000u64 * 40;
        let line_bytes_raw = 1_000_000u64 * 40 * 30;
        assert!(points as f64 / point_bytes_raw as f64 > lines as f64 / line_bytes_raw as f64);
    }
}
