//! # sjc-core — the generalized distributed spatial join framework
//!
//! The paper's first contribution is a generalized three-stage framework —
//! **preprocessing → global join → local join** — in which the designs of
//! HadoopGIS, SpatialHadoop and SpatialSpark can be expressed and compared
//! (its Fig. 1). This crate is that framework made executable:
//!
//! * [`framework`] — the common vocabulary: [`framework::GeoRecord`],
//!   [`framework::JoinPredicate`], [`framework::JoinInput`], the
//!   [`framework::DistributedSpatialJoin`] trait and [`framework::JoinOutput`];
//! * [`hadoopgis`] — Hadoop Streaming + GEOS + 6-step preprocessing +
//!   reducer-side local join (§II of the paper, Fig. 1(a));
//! * [`spatialhadoop`] — native Hadoop + JTS + 2-job preprocessing with
//!   indexed block files and `_master` metadata + `getSplits` global join +
//!   map-side local join (Fig. 1(b));
//! * [`spatialspark`] — Spark RDDs + JTS + in-memory sampling, broadcast
//!   partition index, `groupByKey`/`join` global join, indexed nested loop
//!   local join (Fig. 1(c)); plus the broadcast-based variant the paper
//!   defers to future work;
//! * [`experiment`] — the paper's experiment grid (workloads × hardware ×
//!   systems) with failure capture and the IA/IB/DJ breakdown;
//! * [`report`] — printers that regenerate Table 1, Table 2, Table 3, the
//!   Fig. 1 dataflow traces and the in-text speedup analysis.
//!
//! The three systems produce **identical result pair sets** on identical
//! inputs (cross-checked by integration tests); they differ — exactly as in
//! the paper — in *how* the work flows and what it costs.

pub mod ablation;
pub mod common;
pub mod experiment;
pub mod framework;
pub mod hadoopgis;
pub mod json;
pub mod lde;
pub mod par;
pub mod report;
pub mod spatialhadoop;
pub mod spatialspark;

pub use experiment::{ExperimentGrid, SystemKind, Workload};
pub use framework::{DistributedSpatialJoin, GeoRecord, JoinInput, JoinOutput, JoinPredicate};
