//! Minimal JSON values and serialization (std-only `serde_json` stand-in).
//!
//! The reproduction needs exactly one serialization feature: dumping
//! machine-readable experiment results (`reproduce --json`) and asserting
//! their shape in tests. This module provides a small [`Json`] value tree, a
//! pretty printer, and [`ToJson`] impls for the experiment/trace types. The
//! encoding of `CellResult::outcome` mirrors the externally-tagged enum
//! layout (`{"Ok": {...}}` / `{"Err": "..."}`) the previous
//! serde-derived output used, so downstream consumers are unaffected.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sjc_cluster::metrics::{Phase, RunTrace, StageKind, StageTrace};

use crate::experiment::{CellResult, RunSummary, SystemKind};

/// A JSON value. Object keys keep insertion order via a Vec — the output is
/// deterministic and mirrors struct field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (simulated ns, byte counts).
    Int(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `Json::Null` when absent or not an object.
    pub fn get(&self, key: &str) -> &Json {
        const NULL: &Json = &Json::Null;
        match self {
            Json::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(NULL)
            }
            _ => NULL,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation (the `serde_json` default
    /// the `--json` output used).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` round-trips f64 exactly; integral floats print without a
        // decimal point, which is still a valid JSON number.
        let _ = write!(out, "{f}");
    } else {
        // JSON has no Inf/NaN; encode as null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value tree.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for SystemKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                SystemKind::HadoopGis => "HadoopGis",
                SystemKind::SpatialHadoop => "SpatialHadoop",
                SystemKind::SpatialSpark => "SpatialSpark",
            }
            .to_string(),
        )
    }
}

impl ToJson for StageKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                StageKind::MapReduceJob => "MapReduceJob",
                StageKind::MapOnlyJob => "MapOnlyJob",
                StageKind::SparkStage => "SparkStage",
                StageKind::LocalSerial => "LocalSerial",
                StageKind::FsCopy => "FsCopy",
            }
            .to_string(),
        )
    }
}

impl ToJson for Phase {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Phase::IndexA => "IndexA",
                Phase::IndexB => "IndexB",
                Phase::DistributedJoin => "DistributedJoin",
            }
            .to_string(),
        )
    }
}

impl ToJson for StageTrace {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("kind", self.kind.to_json()),
            ("phase", self.phase.to_json()),
            ("sim_ns", Json::Int(self.sim_ns)),
            ("hdfs_bytes_read", Json::Int(self.hdfs_bytes_read)),
            ("hdfs_bytes_written", Json::Int(self.hdfs_bytes_written)),
            ("shuffle_bytes", Json::Int(self.shuffle_bytes)),
            ("pipe_bytes", Json::Int(self.pipe_bytes)),
            ("tasks", Json::Int(self.tasks)),
        ])
    }
}

impl ToJson for RunTrace {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("system", Json::Str(self.system.clone())),
            ("stages", Json::Arr(self.stages.iter().map(ToJson::to_json).collect())),
        ])
    }
}

impl ToJson for RunSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("ia_s", Json::Float(self.ia_s)),
            ("ib_s", Json::Float(self.ib_s)),
            ("dj_s", Json::Float(self.dj_s)),
            ("total_s", Json::Float(self.total_s)),
            ("pairs", Json::Int(self.pairs)),
            ("trace", self.trace.to_json()),
        ])
    }
}

impl ToJson for CellResult {
    fn to_json(&self) -> Json {
        let outcome = match &self.outcome {
            Ok(summary) => Json::obj(vec![("Ok", summary.to_json())]),
            Err(label) => Json::obj(vec![("Err", Json::Str(label.clone()))]),
        };
        Json::obj(vec![
            ("system", self.system.to_json()),
            ("cluster", Json::Str(self.cluster.clone())),
            ("workload", Json::Str(self.workload.to_string())),
            ("outcome", outcome),
        ])
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: AsRef<str>, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_is_valid_and_ordered() {
        let v = Json::obj(vec![
            ("b", Json::Int(2)),
            ("a", Json::Arr(vec![Json::Float(1.5), Json::Null, Json::Bool(true)])),
            ("s", Json::Str("he\"llo\n".to_string())),
        ]);
        let s = v.to_string_pretty();
        assert!(s.starts_with('{') && s.ends_with('}'));
        // Insertion order preserved — "b" before "a".
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\\\"") && s.contains("\\n"));
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = Json::obj(vec![
            ("x", Json::Float(2.5)),
            ("arr", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(v.get("x").as_f64(), Some(2.5));
        assert_eq!(v.get("arr").as_array().map(|a| a.len()), Some(2));
        assert_eq!(v.get("missing").as_f64(), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_pretty(), "null");
    }
}
