//! LDE — the paper's *future work*, implemented.
//!
//! The conclusion of the paper points past all three JVM systems: the
//! authors' own next designs (ISP-MC+/ISP-GPU on Impala, **LDE-MC+/LDE-GPU
//! "directly on top of Apache Thrift for distributed data
//! communications"**) drop the Hadoop/Spark platforms entirely and exploit
//! SIMD, which "JVMs do not support yet". This module reproduces that
//! design direction as a fourth system:
//!
//! * **no platform jobs** — long-lived native workers receive partition-pair
//!   tasks over an RPC layer (one dispatch round, no job startup, no
//!   shuffle materialization);
//! * **streamed partitions** — each worker pulls exactly the two partitions
//!   of its task and releases them afterwards, so peak memory is bounded by
//!   a partition pair, not the dataset: the OOM cliff of SpatialSpark
//!   structurally cannot happen;
//! * **columnar SIMD refinement** — candidate pairs are refined in batches
//!   over coordinate arrays; the simulated cost divides by the SIMD lane
//!   count, and the per-record framework overhead is native-engine small.
//!
//! It reuses the same partitioner, local-join filter and geometry engine as
//! the other systems — results are identical (tests enforce it); only the
//! execution fabric differs.

use sjc_cluster::metrics::Phase;
use sjc_cluster::scheduler::lpt_makespan;
use sjc_cluster::{Cluster, RunTrace, SimError, StageKind, StageTrace};
use sjc_geom::{EngineKind, GeometryEngine, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::partition::{SpatialPartitioner, StrTilePartitioner};
use sjc_index::RTree;

use crate::common::{local_join, LocalJoinAlgo};
use crate::framework::{DistributedSpatialJoin, GeoRecord, JoinInput, JoinOutput, JoinPredicate};

/// The LDE-MC+ style system.
#[derive(Debug, Clone)]
pub struct LdeEngine {
    /// Target spatial partition count.
    pub partitions: usize,
    /// Local join algorithm for the filter step (the modeled system probes
    /// per-partition R-trees, so the default stays `IndexedNestedLoop`;
    /// `StripeSweep` is selectable for ablations).
    pub local_algo: LocalJoinAlgo,
}

impl Default for LdeEngine {
    fn default() -> Self {
        LdeEngine { partitions: 512, local_algo: LocalJoinAlgo::IndexedNestedLoop }
    }
}

impl DistributedSpatialJoin for LdeEngine {
    fn name(&self) -> &'static str {
        "LDE-MC+"
    }

    fn engine(&self) -> EngineKind {
        // Native engine with JTS-grade algorithms (the authors' own C++
        // kernels); the SIMD speedup is applied on top of the base profile.
        EngineKind::Jts
    }

    fn run(
        &self,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
        predicate: JoinPredicate,
    ) -> Result<JoinOutput, SimError> {
        let cost = &cluster.cost;
        let node = &cluster.config.node;
        let slots = cluster.total_slots();
        let jts = GeometryEngine::new(self.engine());
        let mult = left.multiplier.max(right.multiplier);
        let mut trace = RunTrace::new(self.name());

        // --- Stage 1: read + partition, fully in memory ---
        // Workers scan their input shards once; the coordinator derives
        // partitions from a sample and broadcasts cell MBRs over RPC.
        let stride = (right.records.len() / (10 * self.partitions)).max(1);
        let sample: Vec<Point> =
            right.records.iter().step_by(stride).map(|r| r.mbr.center()).collect();
        let partitioner = StrTilePartitioner::from_sample(right.domain, sample, self.partitions);
        let ncells = partitioner.cells().len();
        let cell_tree = RTree::bulk_load_str(
            partitioner
                .cells()
                .iter()
                .enumerate()
                .map(|(i, c)| IndexEntry::new(i as u64, *c))
                .collect(),
        );

        let mut read_stage = StageTrace::new(
            "scan inputs + derive partitions",
            StageKind::LocalSerial,
            Phase::IndexB,
        );
        {
            // Parallel scan of both inputs at native per-record cost.
            let total_bytes = left.sim_bytes + right.sim_bytes;
            let total_records = (left.records.len() + right.records.len()) as u64;
            let io = cost
                .io_ns((total_bytes as f64 * mult) as u64 / slots as u64, node.slot_disk_read_bw());
            let cpu = (cost.parse_ns((total_bytes as f64 * mult) as u64 / slots as u64) as f64
                + (total_records as f64 * mult / slots as f64) * cost.record_overhead_lde_ns)
                * node.cpu_scale;
            read_stage.sim_ns = io + cpu as u64;
            read_stage.hdfs_bytes_read = (total_bytes as f64 * mult) as u64;
            read_stage.tasks = slots as u64;
        }
        trace.push(read_stage);

        // --- Stage 2: assign records to cells (native probe, in memory) ---
        let mut assign_l: Vec<Vec<u64>> = vec![Vec::new(); ncells];
        let mut assign_r: Vec<Vec<u64>> = vec![Vec::new(); ncells];
        let mut probe_visits = 0u64;
        let mut buf = Vec::new();
        for (assign, input, widen) in [(&mut assign_l, left, true), (&mut assign_r, right, false)] {
            for rec in &input.records {
                let mbr = if widen { predicate.filter_mbr(&rec.mbr) } else { rec.mbr };
                probe_visits += cell_tree.query_counting(&mbr, &mut buf) as u64;
                if buf.is_empty() {
                    // sjc-lint: allow(no-panic-in-lib) — nearest_cell returns a cell id < ncells by the partitioner contract
                    assign[partitioner.nearest_cell(&mbr.center()) as usize].push(rec.id);
                } else {
                    for &c in &buf {
                        // sjc-lint: allow(no-panic-in-lib) — the cell tree indexes exactly the ncells partition cells
                        assign[c as usize].push(rec.id);
                    }
                }
            }
        }
        let mut assign_stage = StageTrace::new(
            "assign partition ids (in memory)",
            StageKind::LocalSerial,
            Phase::DistributedJoin,
        );
        {
            let records = (left.records.len() + right.records.len()) as f64 * mult;
            let cpu = (records * cost.record_overhead_lde_ns
                + probe_visits as f64 * mult * jts.filter_cost_ns() as f64)
                * node.cpu_scale
                / slots as f64;
            assign_stage.sim_ns = cpu as u64;
            assign_stage.tasks = slots as u64;
        }
        trace.push(assign_stage);

        // --- Stage 3: dispatch partition-pair tasks over RPC + local join ---
        // Each task streams its two partitions across the network once
        // (bounded memory!), filters, and SIMD-refines the candidates.
        let remote_fraction = if cluster.config.nodes > 1 {
            (cluster.config.nodes - 1) as f64 / cluster.config.nodes as f64
        } else {
            0.0
        };
        let mut pairs = Vec::new();
        let mut task_ns: Vec<u64> = Vec::with_capacity(ncells);
        let mut net_bytes = 0u64;
        let bpr_l = left.bytes_per_record();
        let bpr_r = right.bytes_per_record();
        // Per-cell record views are gathered into two reused buffers: the
        // cell loop clears and refills them instead of allocating fresh
        // Vecs ncells times.
        let mut lrecs: Vec<&GeoRecord> = Vec::new();
        let mut rrecs: Vec<&GeoRecord> = Vec::new();
        for cell in 0..ncells {
            lrecs.clear();
            rrecs.clear();
            // sjc-lint: allow(no-panic-in-lib) — cell < ncells = assign_l.len(); record ids are enumerate indices
            lrecs.extend(assign_l[cell].iter().map(|&i| &left.records[i as usize]));
            // sjc-lint: allow(no-panic-in-lib) — cell < ncells = assign_r.len(); record ids are enumerate indices
            rrecs.extend(assign_r[cell].iter().map(|&i| &right.records[i as usize]));
            if lrecs.is_empty() || rrecs.is_empty() {
                continue;
            }
            let (cell_pairs, jc) =
                local_join(&jts, predicate, self.local_algo, &lrecs, &rrecs, |am, bm| {
                    match predicate.filter_mbr(am).reference_point(bm) {
                        Some(rp) => partitioner.owner(&rp) == cell as u32,
                        None => false,
                    }
                });
            pairs.extend(cell_pairs);

            let part_bytes =
                ((lrecs.len() as f64 * bpr_l + rrecs.len() as f64 * bpr_r) * mult) as u64;
            net_bytes += (part_bytes as f64 * remote_fraction) as u64;
            let records = (lrecs.len() + rrecs.len()) as f64 * mult;
            // Columnar refinement: geometry cost divided by SIMD width.
            let cpu = (records * cost.record_overhead_lde_ns
                + ((jc.filter_ns + jc.refine_ns) as f64 * mult) / cost.lde_simd_lanes)
                * node.cpu_scale;
            let io = cost.io_ns((part_bytes as f64 * remote_fraction) as u64, node.slot_net_bw());
            task_ns.push(cpu as u64 + io);
        }
        let mut join_stage = StageTrace::new(
            "RPC dispatch + SIMD local join",
            StageKind::LocalSerial,
            Phase::DistributedJoin,
        );
        join_stage.sim_ns = 100_000_000 /* one RPC round */ + lpt_makespan(&task_ns, slots);
        join_stage.shuffle_bytes = net_bytes;
        join_stage.tasks = task_ns.len() as u64;
        trace.push(join_stage);

        Ok(JoinOutput { pairs, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::direct_join;
    use crate::experiment::Workload;
    use crate::spatialspark::SpatialSpark;
    use sjc_cluster::ClusterConfig;

    fn tiny_inputs() -> (JoinInput, JoinInput) {
        let (mut l, mut r) = Workload::taxi1m_nycb().prepare(2e-4, 7);
        l.multiplier = 1.0;
        r.multiplier = 1.0;
        (l, r)
    }

    #[test]
    fn matches_direct_join() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let out =
            LdeEngine::default().run(&cluster, &left, &right, JoinPredicate::Intersects).unwrap();
        let mut expected = direct_join(
            &GeometryEngine::jts(),
            JoinPredicate::Intersects,
            &left.records,
            &right.records,
        );
        expected.sort_unstable();
        assert!(!expected.is_empty());
        assert_eq!(out.sorted_pairs(), expected);
    }

    #[test]
    fn beats_spatialspark_where_both_run() {
        let (l, r) = Workload::taxi1m_nycb().prepare(1e-3, 20150701);
        let cluster = Cluster::new(ClusterConfig::ec2(10));
        let lde = LdeEngine::default().run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
        let spark =
            SpatialSpark::default().run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
        assert!(
            lde.trace.total_seconds() < spark.trace.total_seconds(),
            "LDE {} should beat SpatialSpark {}",
            lde.trace.total_seconds(),
            spark.trace.total_seconds()
        );
    }

    #[test]
    fn survives_where_spatialspark_oom() {
        // Bounded streaming memory: the full-scale workload that OOMs
        // SpatialSpark on EC2-6 completes on LDE.
        let (l, r) = Workload::taxi_nycb().prepare(1e-3, 20150701);
        let cluster = Cluster::new(ClusterConfig::ec2(6));
        assert!(SpatialSpark::default().run(&cluster, &l, &r, JoinPredicate::Intersects).is_err());
        assert!(LdeEngine::default().run(&cluster, &l, &r, JoinPredicate::Intersects).is_ok());
    }

    #[test]
    fn reads_inputs_once_and_never_writes() {
        let (l, r) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::ec2(10));
        let out = LdeEngine::default().run(&cluster, &l, &r, JoinPredicate::Intersects).unwrap();
        let read: u64 = out.trace.stages.iter().map(|s| s.hdfs_bytes_read).sum();
        assert_eq!(read, l.sim_bytes + r.sim_bytes);
        let written: u64 = out.trace.stages.iter().map(|s| s.hdfs_bytes_written).sum();
        assert_eq!(written, 0);
    }
}
