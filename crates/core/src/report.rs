//! Report printers: regenerate the paper's tables and figure as text.
//!
//! Every printer emits the measured (simulated) numbers in the paper's own
//! layout, alongside the paper's published values where applicable so the
//! shape comparison (who wins, by what factor, which cells fail) is
//! immediate. `EXPERIMENTS.md` is generated from these.

use std::fmt::Write as _;

use sjc_cluster::RunTrace;
use sjc_data::DatasetId;

use crate::experiment::{CellResult, SystemKind};

/// The paper's Table 2 (end-to-end seconds; `None` = failed cell), keyed by
/// (workload, system, config) in the same order our grid produces.
pub const PAPER_TABLE2: &[(&str, &str, &str, Option<f64>)] = &[
    ("taxi-nycb", "HadoopGIS", "WS", None),
    ("taxi-nycb", "HadoopGIS", "EC2-10", None),
    ("taxi-nycb", "HadoopGIS", "EC2-8", None),
    ("taxi-nycb", "HadoopGIS", "EC2-6", None),
    ("taxi-nycb", "SpatialHadoop", "WS", Some(3327.0)),
    ("taxi-nycb", "SpatialHadoop", "EC2-10", Some(2361.0)),
    ("taxi-nycb", "SpatialHadoop", "EC2-8", Some(2472.0)),
    ("taxi-nycb", "SpatialHadoop", "EC2-6", Some(3349.0)),
    ("taxi-nycb", "SpatialSpark", "WS", Some(3098.0)),
    ("taxi-nycb", "SpatialSpark", "EC2-10", Some(813.0)),
    ("taxi-nycb", "SpatialSpark", "EC2-8", None),
    ("taxi-nycb", "SpatialSpark", "EC2-6", None),
    ("edge-linearwater", "HadoopGIS", "WS", None),
    ("edge-linearwater", "HadoopGIS", "EC2-10", None),
    ("edge-linearwater", "HadoopGIS", "EC2-8", None),
    ("edge-linearwater", "HadoopGIS", "EC2-6", None),
    ("edge-linearwater", "SpatialHadoop", "WS", Some(14135.0)),
    ("edge-linearwater", "SpatialHadoop", "EC2-10", Some(5695.0)),
    ("edge-linearwater", "SpatialHadoop", "EC2-8", Some(8043.0)),
    ("edge-linearwater", "SpatialHadoop", "EC2-6", Some(9678.0)),
    ("edge-linearwater", "SpatialSpark", "WS", Some(4481.0)),
    ("edge-linearwater", "SpatialSpark", "EC2-10", Some(1119.0)),
    ("edge-linearwater", "SpatialSpark", "EC2-8", None),
    ("edge-linearwater", "SpatialSpark", "EC2-6", None),
];

/// The paper's Table 3 breakdown (IA, IB, DJ, TOT seconds; `None` cells
/// failed; SpatialSpark reports TOT only).
#[allow(clippy::type_complexity)]
pub const PAPER_TABLE3: &[(&str, &str, &str, Option<(f64, f64, f64, f64)>)] = &[
    ("taxi1m-nycb", "HadoopGIS", "WS", Some((206.0, 54.0, 3273.0, 3533.0))),
    ("taxi1m-nycb", "HadoopGIS", "EC2-10", None),
    ("taxi1m-nycb", "SpatialHadoop", "WS", Some((227.0, 52.0, 230.0, 482.0))),
    ("taxi1m-nycb", "SpatialHadoop", "EC2-10", Some((647.0, 187.0, 183.0, 1017.0))),
    ("taxi1m-nycb", "SpatialSpark", "WS", Some((0.0, 0.0, 0.0, 216.0))),
    ("taxi1m-nycb", "SpatialSpark", "EC2-10", Some((0.0, 0.0, 0.0, 67.0))),
    ("edge0.1-linearwater0.1", "HadoopGIS", "WS", Some((1550.0, 488.0, 1249.0, 3287.0))),
    ("edge0.1-linearwater0.1", "HadoopGIS", "EC2-10", None),
    ("edge0.1-linearwater0.1", "SpatialHadoop", "WS", Some((1013.0, 307.0, 220.0, 1540.0))),
    ("edge0.1-linearwater0.1", "SpatialHadoop", "EC2-10", Some((756.0, 596.0, 106.0, 1458.0))),
    ("edge0.1-linearwater0.1", "SpatialSpark", "WS", Some((0.0, 0.0, 0.0, 765.0))),
    ("edge0.1-linearwater0.1", "SpatialSpark", "EC2-10", Some((0.0, 0.0, 0.0, 48.0))),
];

/// Paper value lookup for Table 2.
pub fn paper_table2(workload: &str, system: &str, config: &str) -> Option<f64> {
    PAPER_TABLE2
        .iter()
        .find(|(w, s, c, _)| *w == workload && *s == system && *c == config)
        .and_then(|(_, _, _, v)| *v)
}

fn fmt_cell(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:>8.0}"),
        None => format!("{:>8}", "-"),
    }
}

/// Renders Table 1 (datasets) with the paper's full-scale volumes plus the
/// generated record counts at `scale`.
pub fn table1_string(scale: f64, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Experiment Dataset Sizes and Volumes");
    let _ = writeln!(
        out,
        "{:<16} {:>14} {:>10} {:>14} {:>12}",
        "Dataset", "#Records", "Size", "gen #records", "gen scale"
    );
    for id in DatasetId::table1() {
        let spec = id.spec();
        let ds = sjc_data::ScaledDataset::generate(id, scale, seed);
        let _ = writeln!(
            out,
            "{:<16} {:>14} {:>10} {:>14} {:>12.0e}",
            spec.name,
            spec.full_records,
            human_bytes(spec.full_bytes),
            ds.len(),
            scale
        );
    }
    out
}

/// Renders Table 2 in the paper's layout, with the paper's own values in
/// parentheses.
pub fn table2_string(cells: &[CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: End-to-End Runtimes, Full Datasets (simulated seconds; paper values in parentheses; '-' = failed)");
    let configs = ["WS", "EC2-10", "EC2-8", "EC2-6"];
    let _ = write!(out, "{:<22} {:<14}", "experiment", "system");
    for c in configs {
        let _ = write!(out, " {:>20}", c);
    }
    let _ = writeln!(out);
    for workload in ["taxi-nycb", "edge-linearwater"] {
        for sys in SystemKind::all() {
            let _ = write!(out, "{:<22} {:<14}", workload, sys.paper_name());
            for cfg in configs {
                let measured = cells
                    .iter()
                    .find(|c| c.workload == workload && c.system == sys && c.cluster == cfg)
                    .and_then(|c| c.total_s());
                let paper = paper_table2(workload, sys.paper_name(), cfg);
                let _ = write!(
                    out,
                    " {:>9}({:>8})",
                    fmt_cell(measured).trim_start(),
                    fmt_cell(paper).trim_start()
                );
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Renders Table 3 (IA/IB/DJ/TOT breakdown) in the paper's layout.
pub fn table3_string(cells: &[CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: Breakdown Runtimes, Sample Datasets (simulated seconds; paper values in parentheses)");
    let _ = writeln!(
        out,
        "{:<24} {:<14} {:<7} {:>14} {:>14} {:>14} {:>16}",
        "experiment", "system", "config", "IA", "IB", "DJ", "TOT"
    );
    for workload in ["taxi1m-nycb", "edge0.1-linearwater0.1"] {
        for sys in SystemKind::all() {
            for cfg in ["WS", "EC2-10"] {
                let cell = cells
                    .iter()
                    .find(|c| c.workload == workload && c.system == sys && c.cluster == cfg);
                let paper = PAPER_TABLE3
                    .iter()
                    .find(|(w, s, c, _)| *w == workload && *s == sys.paper_name() && *c == cfg)
                    .and_then(|(_, _, _, v)| *v);
                let _ = write!(out, "{:<24} {:<14} {:<7}", workload, sys.paper_name(), cfg);
                match cell.map(|c| c.outcome.as_ref()) {
                    Some(Ok(s)) => {
                        // Mirror the paper: SpatialSpark reports end-to-end
                        // only ("difficult to measure each individual step
                        // due to asynchronous communication").
                        let spark = sys == SystemKind::SpatialSpark;
                        let cols = if spark {
                            [None, None, None, Some(s.total_s)]
                        } else {
                            [Some(s.ia_s), Some(s.ib_s), Some(s.dj_s), Some(s.total_s)]
                        };
                        let paper_cols = match paper {
                            Some((ia, ib, dj, tot)) if !spark => {
                                [Some(ia), Some(ib), Some(dj), Some(tot)]
                            }
                            Some((_, _, _, tot)) => [None, None, None, Some(tot)],
                            None => [None; 4],
                        };
                        for (m, p) in cols.iter().zip(paper_cols) {
                            let _ = write!(
                                out,
                                " {:>6}({:>6})",
                                fmt_cell(*m).trim_start(),
                                fmt_cell(p).trim_start()
                            );
                        }
                        let _ = writeln!(out);
                    }
                    Some(Err(e)) => {
                        let _ = writeln!(
                            out,
                            "  failed: {e} (paper: {})",
                            if paper.is_some() { "ran" } else { "-" }
                        );
                    }
                    None => {
                        let _ = writeln!(out, "  (not run)");
                    }
                }
            }
        }
    }
    out
}

/// Renders the Fig.-1 reproduction: each system's stage dataflow with its
/// storage interactions, making the paper's qualitative contrast
/// quantitative.
pub fn fig1_string(traces: &[RunTrace]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 1: Generalized framework dataflow (per-system stage traces)");
    for trace in traces {
        let _ = writeln!(out, "\n=== {} ===", trace.system);
        let _ = writeln!(
            out,
            "  {:<44} {:<13} {:>9} {:>12} {:>12} {:>12} {:>12}",
            "stage", "kind", "sim s", "HDFS read", "HDFS write", "shuffle", "pipes"
        );
        for s in &trace.stages {
            let _ = writeln!(
                out,
                "  {:<44} {:<13} {:>9.1} {:>12} {:>12} {:>12} {:>12}",
                truncate(&s.name, 44),
                s.kind.label(),
                s.seconds(),
                human_bytes(s.hdfs_bytes_read),
                human_bytes(s.hdfs_bytes_written),
                human_bytes(s.shuffle_bytes),
                human_bytes(s.pipe_bytes),
            );
        }
        let _ = writeln!(
            out,
            "  -> {} stages, {} touching HDFS, total {:.1}s",
            trace.stages.len(),
            trace.hdfs_touching_stages(),
            trace.total_seconds()
        );
        if !trace.recovery.is_empty() {
            let _ = writeln!(
                out,
                "  -> recovered from {} fault events: {} extra attempts, {:.1}s wasted, {} reread",
                trace.recovery.len(),
                trace.total_attempts(),
                trace.total_wasted_ns() as f64 / 1e9,
                human_bytes(trace.total_bytes_reread()),
            );
        }
    }
    out
}

/// Renders a run's recovery ledger: what faults hit, what the system did
/// about them, and what the recovery cost in wasted simulated time. Empty
/// ledgers (fault-free runs) render a single line saying so.
pub fn recovery_string(traces: &[RunTrace]) -> String {
    use sjc_cluster::RecoveryKind;
    let mut out = String::new();
    let _ = writeln!(out, "Fault recovery ledger (per-system recovery events)");
    for trace in traces {
        let _ = writeln!(out, "\n=== {} ===", trace.system);
        if trace.recovery.is_empty() {
            let _ = writeln!(out, "  no faults injected, no recovery needed");
            continue;
        }
        // Aggregate by mechanism so a noisy run stays one screen tall.
        let mut retries = 0u64;
        let mut retry_ns = 0u64;
        let mut speculations = 0u64;
        let mut crashes = 0u64;
        let mut killed = 0u64;
        let mut reruns = 0u64;
        let mut resubmits = 0u64;
        let mut resubmit_parts = 0u64;
        let mut resubmit_ns = 0u64;
        let mut max_depth = 0u32;
        let mut failovers = 0u64;
        let mut ckpt_writes = 0u64;
        let mut ckpt_written = 0u64;
        let mut ckpt_restores = 0u64;
        let mut ckpt_restored = 0u64;
        let mut replaced = 0u64;
        let mut replace_ns = 0u64;
        let mut drained = 0u64;
        for e in &trace.recovery {
            match e.kind {
                RecoveryKind::TaskRetry { .. } => {
                    retries += 1;
                    retry_ns += e.wasted_ns;
                }
                RecoveryKind::Speculation { .. } => speculations += 1,
                RecoveryKind::NodeCrash { tasks_killed, .. } => {
                    crashes += 1;
                    killed += tasks_killed;
                }
                RecoveryKind::MapRerun { tasks } => reruns += tasks,
                RecoveryKind::StageResubmit { partitions, lineage_depth, .. } => {
                    resubmits += 1;
                    resubmit_parts += partitions;
                    resubmit_ns += e.wasted_ns;
                    max_depth = max_depth.max(lineage_depth);
                }
                RecoveryKind::ReplicaFailover { .. } => failovers += 1,
                RecoveryKind::CheckpointWrite { bytes } => {
                    ckpt_writes += 1;
                    ckpt_written += bytes;
                }
                RecoveryKind::CheckpointRestore { bytes } => {
                    ckpt_restores += 1;
                    ckpt_restored += bytes;
                }
                RecoveryKind::NodeReplaced { delay_ns, .. } => {
                    replaced += 1;
                    replace_ns += delay_ns;
                }
                RecoveryKind::Decommission { .. } => drained += 1,
            }
        }
        let _ = writeln!(
            out,
            "  task retries          {retries:>6}   ({:.1}s wasted on failed attempts)",
            retry_ns as f64 / 1e9
        );
        let _ = writeln!(out, "  speculative backups   {speculations:>6}");
        let _ = writeln!(out, "  crash kills           {crashes:>6}   ({killed} tasks killed)");
        let _ = writeln!(out, "  completed-map re-runs {reruns:>6}");
        // One line per resubmit burst: the partition recompute IS the
        // resubmission cost, so the ledger never double-lists them.
        let _ = writeln!(
            out,
            "  stage resubmits       {resubmits:>6}   ({resubmit_parts} partitions to lineage depth {max_depth}, {:.1}s recomputed)",
            resubmit_ns as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "  replica failovers     {failovers:>6}   ({} reread)",
            human_bytes(trace.total_bytes_reread())
        );
        if ckpt_writes > 0 || ckpt_restores > 0 {
            let _ = writeln!(
                out,
                "  checkpoints           {ckpt_writes:>6}   ({} written, {ckpt_restores} restores / {} reread)",
                human_bytes(ckpt_written),
                human_bytes(ckpt_restored)
            );
        }
        if replaced > 0 || drained > 0 {
            let _ = writeln!(
                out,
                "  elastic reschedules   {:>6}   ({replaced} nodes replaced after {:.1}s avg provision, {drained} drained)",
                replaced + drained,
                if replaced > 0 { replace_ns as f64 / 1e9 / replaced as f64 } else { 0.0 }
            );
        }
        let event_waste: u64 = trace.recovery.iter().map(|e| e.wasted_ns).sum();
        let _ = writeln!(
            out,
            "  -> total: {} recovery events, {:.1}s wasted work",
            trace.recovery.len(),
            event_waste as f64 / 1e9
        );
    }
    out
}

/// The in-text speedup claims of §III and their measured counterparts.
pub fn speedups_string(table2: &[CellResult], table3: &[CellResult]) -> String {
    let total = |cells: &[CellResult], w: &str, s: SystemKind, c: &str| -> Option<f64> {
        cells
            .iter()
            .find(|x| x.workload == w && x.system == s && x.cluster == c)
            .and_then(|x| x.total_s())
    };
    let ratio = |a: Option<f64>, b: Option<f64>| -> String {
        match (a, b) {
            (Some(a), Some(b)) if b > 0.0 => format!("{:.1}x", a / b),
            _ => "-".to_string(),
        }
    };
    let sh = SystemKind::SpatialHadoop;
    let ss = SystemKind::SpatialSpark;
    let mut out = String::new();
    let _ = writeln!(out, "In-text speedups (SpatialHadoop / SpatialSpark end-to-end):");
    let rows: [(&str, &str, &[CellResult], f64); 8] = [
        ("taxi-nycb", "EC2-10", table2, 2.9),
        ("edge-linearwater", "EC2-10", table2, 5.1),
        ("taxi-nycb", "WS", table2, 1.07),
        ("edge-linearwater", "WS", table2, 3.2),
        ("taxi1m-nycb", "WS", table3, 2.2),
        ("taxi1m-nycb", "EC2-10", table3, 15.0),
        ("edge0.1-linearwater0.1", "WS", table3, 2.0),
        ("edge0.1-linearwater0.1", "EC2-10", table3, 30.0),
    ];
    for (w, c, cells, paper) in rows {
        let m = ratio(total(cells, w, sh, c), total(cells, w, ss, c));
        let _ = writeln!(out, "  {w:<24} {c:<7} measured {m:>7}   paper {paper:.1}x");
    }

    // §III.C's structural observation: the DJ share of SpatialHadoop's
    // runtime dominates on full datasets but indexing dominates on the
    // sampled ones (especially on EC2).
    let dj_share = |cells: &[CellResult], w: &str, c: &str| -> Option<f64> {
        cells
            .iter()
            .find(|x| x.workload == w && x.system == sh && x.cluster == c)
            .and_then(|x| x.outcome.as_ref().ok())
            .map(|s| s.dj_s / s.total_s)
    };
    let _ = writeln!(
        out,
        "
SpatialHadoop DJ share of end-to-end runtime:"
    );
    let share_rows: [(&str, &str, &[CellResult], f64); 6] = [
        ("taxi-nycb", "WS", table2, 1950.0 / 3327.0),
        ("taxi-nycb", "EC2-10", table2, 1282.0 / 2361.0),
        ("edge-linearwater", "WS", table2, 9887.0 / 14135.0),
        ("edge-linearwater", "EC2-10", table2, 3886.0 / 5695.0),
        ("taxi1m-nycb", "EC2-10", table3, 183.0 / 1017.0),
        ("edge0.1-linearwater0.1", "EC2-10", table3, 106.0 / 1458.0),
    ];
    for (w, c, cells, paper) in share_rows {
        let m = match dj_share(cells, w, c) {
            Some(v) => format!("{:.0}%", v * 100.0),
            None => "-".to_string(),
        };
        let _ = writeln!(out, "  {w:<24} {c:<7} measured {m:>7}   paper {:>4.0}%", paper * 100.0);
    }
    let _ = writeln!(
        out,
        "  (full datasets: DJ dominates; sampled datasets: indexing dominates — §III.C)"
    );
    out
}

/// Scalability series: runtime vs cluster size — the paper's EC2-10/8/6
/// sweep ("the performance of the three EC2 configurations are roughly the
/// same ... which may indicate poor scalability") extended across a wider
/// node range and rendered as ASCII bars.
pub fn scalability_string(scale: f64, seed: u64) -> String {
    use crate::experiment::Workload;
    use crate::framework::{DistributedSpatialJoin, JoinPredicate};
    use crate::lde::LdeEngine;
    use crate::spatialhadoop::SpatialHadoop;
    use crate::spatialspark::SpatialSpark;
    use sjc_cluster::{Cluster, ClusterConfig};

    let mut out = String::new();
    let _ = writeln!(out, "Scalability: end-to-end simulated seconds vs EC2 node count");
    for w in [Workload::taxi1m_nycb(), Workload::edge_linearwater()] {
        let (l, r) = w.prepare(scale, seed);
        let _ = writeln!(
            out,
            "
[{}]",
            w.name
        );
        let systems: Vec<Box<dyn DistributedSpatialJoin>> = vec![
            Box::new(SpatialHadoop::default()),
            Box::new(SpatialSpark::default()),
            Box::new(LdeEngine::default()),
        ];
        for sys in systems {
            let mut series: Vec<(u32, Option<f64>)> = Vec::new();
            for n in [4u32, 6, 8, 10, 12, 16] {
                let cluster = Cluster::new(ClusterConfig::ec2(n));
                let cell = sys
                    .run(&cluster, &l, &r, JoinPredicate::Intersects)
                    .ok()
                    .map(|o| o.trace.total_seconds());
                series.push((n, cell));
            }
            let max = series.iter().filter_map(|&(_, v)| v).fold(1.0f64, f64::max);
            let _ = writeln!(out, "  {}", sys.name());
            for (n, v) in series {
                match v {
                    Some(secs) => {
                        let bar = "#".repeat(((secs / max) * 40.0).ceil() as usize);
                        let _ = writeln!(out, "    {n:>2} nodes {secs:>8.0} s  {bar}");
                    }
                    None => {
                        let _ = writeln!(out, "    {n:>2} nodes {:>10}", "(failed)");
                    }
                }
            }
        }
    }
    out
}

/// The future-work extension table: the LDE-style engine (the system the
/// paper's conclusion previews) against the two surviving JVM systems on
/// the full-scale workloads.
pub fn extension_string(scale: f64, seed: u64) -> String {
    use crate::experiment::Workload;
    use crate::framework::{DistributedSpatialJoin, JoinPredicate};
    use crate::lde::LdeEngine;
    use crate::spatialhadoop::SpatialHadoop;
    use crate::spatialspark::SpatialSpark;
    use sjc_cluster::{Cluster, ClusterConfig};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: the paper's future work (LDE-MC+: native engine, RPC dispatch, SIMD refinement)
         End-to-end simulated seconds; '-' = failed"
    );
    let configs = ClusterConfig::paper_configs();
    let _ = write!(out, "{:<22} {:<14}", "experiment", "system");
    for c in &configs {
        let _ = write!(out, " {:>9}", c.name);
    }
    let _ = writeln!(out);
    for w in [Workload::taxi_nycb(), Workload::edge_linearwater()] {
        let (l, r) = w.prepare(scale, seed);
        let systems: Vec<Box<dyn DistributedSpatialJoin>> = vec![
            Box::new(SpatialHadoop::default()),
            Box::new(SpatialSpark::default()),
            Box::new(LdeEngine::default()),
        ];
        for sys in systems {
            let _ = write!(out, "{:<22} {:<14}", w.name, sys.name());
            for cfg in &configs {
                let cluster = Cluster::new(cfg.clone());
                let cell = match sys.run(&cluster, &l, &r, JoinPredicate::Intersects) {
                    Ok(o) => format!("{:.0}", o.trace.total_seconds()),
                    Err(_) => "-".to_string(),
                };
                let _ = write!(out, " {cell:>9}");
            }
            let _ = writeln!(out);
        }
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        // Back off to a char boundary so multibyte names cannot split mid-char.
        let mut end = n.saturating_sub(1);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", s.get(..end).unwrap_or(""))
    }
}

/// Human-readable byte counts.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS.get(u).copied().unwrap_or("TB"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{RunSummary, SystemKind};
    use sjc_cluster::RunTrace;

    fn cell(w: &'static str, sys: SystemKind, cfg: &str, outcome: Result<f64, &str>) -> CellResult {
        CellResult {
            system: sys,
            cluster: cfg.to_string(),
            workload: w,
            outcome: outcome
                .map(|t| RunSummary {
                    ia_s: t / 4.0,
                    ib_s: t / 4.0,
                    dj_s: t / 2.0,
                    total_s: t,
                    pairs: 1,
                    trace: RunTrace::new("test"),
                })
                .map_err(str::to_string),
        }
    }

    #[test]
    fn table2_renders_values_and_failures() {
        let cells = vec![
            cell("taxi-nycb", SystemKind::SpatialHadoop, "WS", Ok(100.0)),
            cell("taxi-nycb", SystemKind::SpatialSpark, "WS", Err("out of memory")),
        ];
        let t = table2_string(&cells);
        assert!(t.contains("100("), "measured value rendered: {t}");
        assert!(t.contains("3327"), "paper value rendered");
        // Failed / missing cells render as dashes.
        assert!(t.contains("-("));
    }

    #[test]
    fn table3_hides_breakdown_for_spark() {
        let cells = vec![
            cell("taxi1m-nycb", SystemKind::SpatialSpark, "WS", Ok(200.0)),
            cell("taxi1m-nycb", SystemKind::SpatialHadoop, "WS", Ok(400.0)),
        ];
        let t = table3_string(&cells);
        // SpatialHadoop shows its IA (100) but SpatialSpark shows TOT only.
        assert!(
            t.contains("100("),
            "SpatialHadoop IA visible:
{t}"
        );
        let spark_line =
            t.lines().find(|l| l.contains("SpatialSpark") && l.contains("WS")).unwrap();
        assert!(spark_line.contains("200("), "TOT visible");
        assert!(!spark_line.contains("50("), "no IA column for Spark");
    }

    #[test]
    fn speedups_compute_ratios() {
        let t2 = vec![
            cell("taxi-nycb", SystemKind::SpatialHadoop, "EC2-10", Ok(300.0)),
            cell("taxi-nycb", SystemKind::SpatialSpark, "EC2-10", Ok(100.0)),
        ];
        let s = speedups_string(&t2, &[]);
        assert!(s.contains("3.0x"), "{s}");
        assert!(s.contains("paper 2.9x"));
    }

    #[test]
    fn fig1_counts_hdfs_touching_stages() {
        use sjc_cluster::metrics::{Phase, StageKind, StageTrace};
        let mut tr = RunTrace::new("X");
        let mut st = StageTrace::new("a", StageKind::MapReduceJob, Phase::IndexA);
        st.hdfs_bytes_read = 10;
        st.sim_ns = 2_000_000_000;
        tr.push(st);
        let s = fig1_string(&[tr]);
        assert!(s.contains("=== X ==="));
        assert!(s.contains("1 touching HDFS"));
        assert!(s.contains("2.0s"));
    }

    #[test]
    fn recovery_ledger_renders_events_and_empty_runs() {
        use sjc_cluster::{RecoveryEvent, RecoveryKind};
        let clean = RunTrace::new("Clean");
        let mut hit = RunTrace::new("Hit");
        hit.push_recovery([
            RecoveryEvent {
                stage: "s".into(),
                kind: RecoveryKind::TaskRetry { task: 3, attempt: 1 },
                wasted_ns: 2_000_000_000,
            },
            RecoveryEvent {
                stage: "s".into(),
                kind: RecoveryKind::NodeCrash { node: 1, tasks_killed: 4 },
                wasted_ns: 1_000_000_000,
            },
            RecoveryEvent {
                stage: "s".into(),
                kind: RecoveryKind::StageResubmit { attempt: 1, partitions: 8, lineage_depth: 2 },
                wasted_ns: 500_000_000,
            },
            RecoveryEvent {
                stage: "s".into(),
                kind: RecoveryKind::CheckpointWrite { bytes: 4096 },
                wasted_ns: 100_000_000,
            },
            RecoveryEvent {
                stage: "s".into(),
                kind: RecoveryKind::NodeReplaced { node: 1, delay_ns: 30_000_000_000 },
                wasted_ns: 0,
            },
        ]);
        let s = recovery_string(&[clean, hit]);
        assert!(s.contains("no faults injected"), "{s}");
        assert!(s.contains("task retries               1"), "{s}");
        assert!(s.contains("4 tasks killed"), "{s}");
        assert!(s.contains("8 partitions to lineage depth 2, 0.5s recomputed"), "{s}");
        assert!(s.contains("4.0 KB written"), "{s}");
        assert!(s.contains("1 nodes replaced after 30.0s avg provision"), "{s}");
        assert!(s.contains("3.6s wasted work"), "{s}");
        assert!(s.contains("5 recovery events"), "{s}");
    }

    #[test]
    fn paper_table2_lookup() {
        assert_eq!(paper_table2("taxi-nycb", "SpatialSpark", "EC2-10"), Some(813.0));
        assert_eq!(paper_table2("taxi-nycb", "HadoopGIS", "WS"), None);
        assert_eq!(paper_table2("edge-linearwater", "SpatialHadoop", "EC2-6"), Some(9678.0));
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(23 << 30), "23.0 GB");
    }

    #[test]
    fn table1_contains_all_rows() {
        let t = table1_string(1e-4, 1);
        for name in ["taxi", "nycb", "linearwater", "edges", "linearwater0.1", "edges0.1"] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("169720892"));
    }

    #[test]
    fn truncate_handles_long_names() {
        assert_eq!(truncate("short", 10), "short");
        let long = "a".repeat(60);
        assert!(truncate(&long, 44).len() <= 47); // utf-8 ellipsis
    }
}
