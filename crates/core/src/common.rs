//! Machinery shared by the three system implementations.

use sjc_geom::{GeometryEngine, Mbr};
use sjc_index::entry::IndexEntry;
use sjc_index::join::{indexed_nested_loop, plane_sweep, stripe_sweep, sync_rtree, CandidatePairs};

use crate::framework::{GeoRecord, JoinPredicate};

/// Which local (per-partition) join algorithm a system runs — the paper's
/// three filter algorithms (§II.C) plus the repo's cache-conscious default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalJoinAlgo {
    /// Build an R-tree on one side, probe with the other (SpatialSpark).
    IndexedNestedLoop,
    /// Sort by min-x and sweep (SpatialHadoop's default in the paper).
    PlaneSweep,
    /// Synchronized traversal of two R-trees (SpatialHadoop's alternative).
    SyncRTree,
    /// Striped SoA forward sweep (`sjc_index::join::stripe_sweep`): the
    /// default host kernel. Produces the plane sweep's exact pair set and
    /// exact `JoinStats` (canonical-cost accounting), so swapping it for
    /// `PlaneSweep` changes host wall time but never simulated time.
    #[default]
    StripeSweep,
}

/// Cost ledger of one local join execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalJoinCost {
    /// Simulated ns spent in the MBR filter (index traversal + comparisons).
    pub filter_ns: u64,
    /// Simulated ns spent in exact-geometry refinement.
    pub refine_ns: u64,
    /// Candidate pairs produced by the filter.
    pub candidates: u64,
    /// Result pairs surviving refinement (before de-dup suppression).
    pub results: u64,
}

/// Runs the filter + refinement of one partition pair.
///
/// `left`/`right` are the partition's records; `keep` is the
/// de-duplication predicate deciding whether *this* partition reports a
/// given MBR pair (reference-point rule — pass `|_, _| true` when the
/// caller guarantees no duplication). Returns `(left_id, right_id)` pairs
/// using the records' dataset-global ids.
pub fn local_join(
    engine: &GeometryEngine,
    predicate: JoinPredicate,
    algo: LocalJoinAlgo,
    left: &[&GeoRecord],
    right: &[&GeoRecord],
    keep: impl Fn(&Mbr, &Mbr) -> bool + Sync,
) -> (Vec<(u64, u64)>, LocalJoinCost) {
    let mut cost = LocalJoinCost::default();
    if left.is_empty() || right.is_empty() {
        return (Vec::new(), cost);
    }

    // Filter: local ids are positions into the slices; within-distance
    // joins widen the left MBRs so the filter stays conservative.
    let l_entries: Vec<IndexEntry> = left
        .iter()
        .enumerate()
        .map(|(i, r)| IndexEntry::new(i as u64, predicate.filter_mbr(&r.mbr)))
        .collect();
    let r_entries: Vec<IndexEntry> =
        right.iter().enumerate().map(|(i, r)| IndexEntry::new(i as u64, r.mbr)).collect();

    let CandidatePairs { pairs, stats } = match algo {
        LocalJoinAlgo::IndexedNestedLoop => indexed_nested_loop(&l_entries, &r_entries),
        LocalJoinAlgo::PlaneSweep => plane_sweep(&l_entries, &r_entries),
        LocalJoinAlgo::SyncRTree => sync_rtree(&l_entries, &r_entries),
        LocalJoinAlgo::StripeSweep => stripe_sweep(&l_entries, &r_entries),
    };
    cost.candidates = pairs.len() as u64;
    cost.filter_ns = stats.filter_tests * engine.filter_cost_ns()
        + stats.index_nodes_visited * engine.filter_cost_ns();

    // Refinement with exact geometry; de-dup decides which partition
    // reports the pair. Above a threshold the candidate list is refined in
    // parallel — per-pair work is pure, `par::par_map` preserves input
    // order, and the summed costs are exact integer adds, so results and
    // simulated time stay bit-identical to the serial path.
    const PAR_THRESHOLD: usize = 4096;
    // (refine ns, hit count, kept pair)
    type Refined = (u64, u64, Option<(u64, u64)>);
    let refine_one = |&(li, ri): &(u64, u64)| -> Refined {
        let l = left[li as usize]; // sjc-lint: allow(no-panic-in-lib) — filter emits indices into these exact slices
        let r = right[ri as usize]; // sjc-lint: allow(no-panic-in-lib) — filter emits indices into these exact slices
        let (hit, ns) = predicate.evaluate(engine, &l.geom, &r.geom);
        if hit {
            let kept = keep(&l.mbr, &r.mbr).then_some((l.id, r.id));
            (ns, 1, kept)
        } else {
            (ns, 0, None)
        }
    };
    let refined: Vec<Refined> = if pairs.len() >= PAR_THRESHOLD {
        crate::par::par_map(&pairs, refine_one)
    } else {
        pairs.iter().map(refine_one).collect()
    };
    let mut out = Vec::new();
    for (ns, hits, kept) in refined {
        cost.refine_ns += ns;
        cost.results += hits;
        if let Some(pair) = kept {
            out.push(pair);
        }
    }
    (out, cost)
}

/// Reference quadratic join over whole inputs (tests / tiny data).
pub fn direct_join(
    engine: &GeometryEngine,
    predicate: JoinPredicate,
    left: &[GeoRecord],
    right: &[GeoRecord],
) -> Vec<(u64, u64)> {
    let l: Vec<&GeoRecord> = left.iter().collect();
    let r: Vec<&GeoRecord> = right.iter().collect();
    local_join(engine, predicate, LocalJoinAlgo::default(), &l, &r, |_, _| true).0
}

/// Which spatial partitioner family a system derives from its sample —
/// the SATO-style design choice the `ablation_partitioner` bench sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Sample-free uniform grid (SpatialHadoop's original GRID).
    FixedGrid,
    /// Sort-Tile-Recursive tiles from sample points.
    StrTiles,
    /// Recursive median splits from sample points.
    Bsp,
}

impl PartitionerKind {
    /// Builds the partitioner over `domain` from `sample` centers.
    pub fn build(
        &self,
        domain: sjc_geom::Mbr,
        sample: Vec<sjc_geom::Point>,
        target_cells: usize,
    ) -> Box<dyn sjc_index::partition::SpatialPartitioner + Send + Sync> {
        use sjc_index::partition::{BspPartitioner, FixedGridPartitioner, StrTilePartitioner};
        match self {
            PartitionerKind::FixedGrid => {
                Box::new(FixedGridPartitioner::with_target_cells(domain, target_cells))
            }
            PartitionerKind::StrTiles => {
                Box::new(StrTilePartitioner::from_sample(domain, sample, target_cells))
            }
            PartitionerKind::Bsp => {
                Box::new(BspPartitioner::from_sample(domain, sample, target_cells))
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            PartitionerKind::FixedGrid => "fixed-grid",
            PartitionerKind::StrTiles => "STR tiles",
            PartitionerKind::Bsp => "BSP",
        }
    }
}

/// Number of spatial partitions a sample-driven system targets.
///
/// Fixed by configuration (sample rate and desired partition size), *not*
/// by dataset volume — which is exactly why per-partition payloads grow
/// with the data and eventually break HadoopGIS's pipes (§III.B).
pub fn default_partition_count() -> usize {
    64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::{Geometry, LineString, Point};

    fn rec(id: u64, x: f64, y: f64) -> GeoRecord {
        GeoRecord::new(id, Geometry::Point(Point::new(x, y)))
    }

    fn line(id: u64, pts: &[(f64, f64)]) -> GeoRecord {
        GeoRecord::new(
            id,
            Geometry::LineString(LineString::new(
                pts.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            )),
        )
    }

    #[test]
    fn all_algorithms_refine_identically() {
        let engine = GeometryEngine::jts();
        let left: Vec<GeoRecord> =
            (0..30).map(|i| line(i, &[(i as f64, 0.0), (i as f64 + 5.0, 5.0)])).collect();
        let right: Vec<GeoRecord> =
            (0..30).map(|i| line(i, &[(i as f64 + 5.0, 0.0), (i as f64, 5.0)])).collect();
        let l: Vec<&GeoRecord> = left.iter().collect();
        let r: Vec<&GeoRecord> = right.iter().collect();
        let mut results: Vec<Vec<(u64, u64)>> = [
            LocalJoinAlgo::IndexedNestedLoop,
            LocalJoinAlgo::PlaneSweep,
            LocalJoinAlgo::SyncRTree,
            LocalJoinAlgo::StripeSweep,
        ]
        .iter()
        .map(|&algo| {
            let (mut pairs, _) =
                local_join(&engine, JoinPredicate::Intersects, algo, &l, &r, |_, _| true);
            pairs.sort_unstable();
            pairs
        })
        .collect();
        let first = results.remove(0);
        assert!(!first.is_empty());
        for other in results {
            assert_eq!(other, first);
        }
    }

    #[test]
    fn refinement_removes_mbr_false_positives() {
        let engine = GeometryEngine::jts();
        // Two diagonal lines whose MBRs overlap but geometries don't touch.
        let left = [line(0, &[(0.0, 0.0), (10.0, 10.0)])];
        let right = [line(0, &[(0.0, 9.0), (0.5, 10.0)])];
        let l: Vec<&GeoRecord> = left.iter().collect();
        let r: Vec<&GeoRecord> = right.iter().collect();
        let (pairs, cost) = local_join(
            &engine,
            JoinPredicate::Intersects,
            LocalJoinAlgo::PlaneSweep,
            &l,
            &r,
            |_, _| true,
        );
        assert_eq!(cost.candidates, 1, "filter produces the false positive");
        assert!(pairs.is_empty(), "refinement removes it");
        assert!(cost.refine_ns > 0);
    }

    #[test]
    fn within_distance_widens_filter() {
        let engine = GeometryEngine::jts();
        let left = [rec(0, 0.0, 0.0)];
        let right = [rec(0, 3.0, 4.0)]; // distance 5
        let l: Vec<&GeoRecord> = left.iter().collect();
        let r: Vec<&GeoRecord> = right.iter().collect();
        let (hits, _) = local_join(
            &engine,
            JoinPredicate::WithinDistance(5.0),
            LocalJoinAlgo::IndexedNestedLoop,
            &l,
            &r,
            |_, _| true,
        );
        assert_eq!(hits, vec![(0, 0)]);
        let (misses, _) = local_join(
            &engine,
            JoinPredicate::WithinDistance(4.9),
            LocalJoinAlgo::IndexedNestedLoop,
            &l,
            &r,
            |_, _| true,
        );
        assert!(misses.is_empty());
    }

    #[test]
    fn partitioner_kinds_build_total_partitioners() {
        use sjc_geom::{Mbr, Point};
        let domain = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let sample: Vec<Point> =
            (0..200).map(|i| Point::new((i * 37 % 101) as f64, (i * 53 % 97) as f64)).collect();
        for kind in [PartitionerKind::FixedGrid, PartitionerKind::StrTiles, PartitionerKind::Bsp] {
            let p = kind.build(domain, sample.clone(), 16);
            assert!(!p.cells().is_empty(), "{}", kind.name());
            // Total assignment: every probe gets at least one cell and a
            // valid owner.
            for i in 0..50 {
                let probe = Point::new((i * 7 % 100) as f64, (i * 11 % 100) as f64);
                assert!(!p.assign(&probe.mbr()).is_empty());
                let o = p.owner(&probe);
                assert!((o as usize) < p.cells().len());
            }
        }
        assert_eq!(PartitionerKind::FixedGrid.name(), "fixed-grid");
    }

    #[test]
    fn dedup_predicate_suppresses_pairs() {
        let engine = GeometryEngine::jts();
        let left = [rec(7, 1.0, 1.0)];
        let right = [line(9, &[(0.0, 0.0), (2.0, 2.0)])];
        let l: Vec<&GeoRecord> = left.iter().collect();
        let r: Vec<&GeoRecord> = right.iter().collect();
        let (kept, cost) = local_join(
            &engine,
            JoinPredicate::Intersects,
            LocalJoinAlgo::PlaneSweep,
            &l,
            &r,
            |_, _| false,
        );
        assert!(kept.is_empty());
        assert_eq!(cost.results, 1, "the refinement hit is still counted");
    }

    #[test]
    fn direct_join_uses_global_ids() {
        let engine = GeometryEngine::jts();
        let left = vec![rec(100, 1.0, 1.0), rec(200, 50.0, 50.0)];
        let right = vec![line(300, &[(0.0, 0.0), (2.0, 2.0)])];
        let pairs = direct_join(&engine, JoinPredicate::Intersects, &left, &right);
        assert_eq!(pairs, vec![(100, 300)]);
    }
}
