//! HadoopGIS reproduction: Hadoop Streaming + GEOS (Fig. 1(a) of the paper).
//!
//! Everything is lines of text through external processes. The paper's
//! §II.A enumerates the six preprocessing steps verbatim; we run all six,
//! per dataset:
//!
//! 1. map-only job: convert the input to tab-separated text while loading;
//! 2. map-only job: sample data items, extract sample MBRs;
//! 3. MR job with a single reducer: compute the dataset extent;
//! 4. map-only job: normalize the sample MBRs;
//! 5. *local serial program*: copy samples out of HDFS, generate partitions,
//!    copy them back (two `FsCopy` stages around a `LocalSerial` stage);
//! 6. MR job: every record queries an R-tree **rebuilt in each map task**
//!    from the partition file, gets its partition id appended, is shuffled,
//!    and the reducer removes duplicates with the pipelined
//!    `cat-sort-unique` combination.
//!
//! The global join then *re-partitions from scratch*: partition ids from
//! step 6 cannot be reused (the paper calls this out as wasteful — a
//! limitation imposed by Hadoop Streaming), so the samples of **both**
//! datasets are concatenated on a local machine, new partitions are built,
//! and a final streaming MR job assigns both datasets to the new partitions
//! and runs the local join (GEOS refinement) inside its reducers.
//!
//! Failure mode: any streaming reducer whose stdin+stdout payload exceeds
//! the node's pipe capacity dies with a broken pipe — which is how every
//! full-dataset run in Table 2 ends for HadoopGIS.

use sjc_cluster::metrics::Phase;
use sjc_cluster::{
    Cluster, RecoveryEvent, RunTrace, SimError, SimHdfs, SimNs, StageKind, StageTrace,
};
use sjc_geom::wkt::to_wkt;
use sjc_geom::{EngineKind, GeometryEngine, Point};
use sjc_index::partition::{BspPartitioner, SpatialPartitioner};
use sjc_mapreduce::job::ScaleMode;
use sjc_mapreduce::{block_splits, JobConfig, MapReduceJob, StreamingJob};

use crate::common::{default_partition_count, local_join, LocalJoinAlgo};
use crate::framework::{DistributedSpatialJoin, GeoRecord, JoinInput, JoinOutput, JoinPredicate};

/// The HadoopGIS system.
#[derive(Debug, Clone)]
pub struct HadoopGis {
    /// Target partition count of the sample-derived partitioning.
    pub partitions: usize,
    /// Local join algorithm inside the reducers. Stays on the paper's
    /// indexed nested loop (§II.C): its charged cost depends on real
    /// R-tree traversal counts, which the analytic stripe-sweep accounting
    /// cannot reproduce. `StripeSweep` is selectable via the ablation grid.
    pub local_algo: LocalJoinAlgo,
    /// Geometry library cost profile (GEOS for the real system; the
    /// `ablation_geometry_engine` bench swaps in JTS).
    pub engine: EngineKind,
}

impl Default for HadoopGis {
    fn default() -> Self {
        HadoopGis {
            partitions: default_partition_count(),
            local_algo: LocalJoinAlgo::IndexedNestedLoop,
            engine: EngineKind::Geos,
        }
    }
}

/// Serialized TSV lines of a dataset. The WKT text sizes of the synthetic
/// geometry track the paper's Table-1 bytes/record closely, so pipe and
/// parse charges computed from real line lengths are faithful.
fn tsv_lines(input: &JoinInput) -> Vec<String> {
    input.records.iter().map(|r| format!("{}\t{}", r.id, to_wkt(&r.geom))).collect()
}

/// An `FsCopy` stage: HDFS <-> local filesystem transfer of `bytes`.
fn fs_copy(cluster: &Cluster, name: String, phase: Phase, bytes: u64) -> StageTrace {
    let mut st = StageTrace::new(name, StageKind::FsCopy, phase);
    st.sim_ns = cluster.cost.io_ns(bytes, cluster.cost.local_copy_bw);
    st.hdfs_bytes_read = bytes;
    st
}

/// Default HDFS block size (the streaming jobs split inputs by it).
fn hdfs_block() -> u64 {
    sjc_cluster::hdfs::DEFAULT_BLOCK_SIZE
}

impl HadoopGis {
    /// Steps 1–6 for one dataset. Returns the sample MBR centers (reused by
    /// the global join) and the converted TSV lines.
    #[allow(clippy::type_complexity)]
    fn preprocess(
        &self,
        cluster: &Cluster,
        hdfs: &mut SimHdfs,
        input: &JoinInput,
        phase: Phase,
        start_ns: SimNs,
    ) -> Result<(Vec<Point>, Vec<String>, Vec<StageTrace>, Vec<RecoveryEvent>), SimError> {
        let mut traces: Vec<StageTrace> = Vec::new();
        let mut recovery: Vec<RecoveryEvent> = Vec::new();
        // Each job starts where the previous stage (job, copy, or serial
        // step) of this run left off on the global simulated clock.
        let elapsed =
            |traces: &[StageTrace]| start_ns + traces.iter().map(|t| t.sim_ns).sum::<SimNs>();
        let bpr = input.bytes_per_record();
        let block = hdfs_block();
        let raw = tsv_lines(input);

        let mut engine = MapReduceJob::new(cluster, hdfs);
        let mut streaming = StreamingJob::new(&mut engine);

        // Step 1: convert to TSV while loading (identity mapper here — the
        // cost is reading + piping + rewriting every byte).
        let cfg1 =
            JobConfig::new(format!("{}: 1 convert to TSV", input.name), phase, input.multiplier)
                .starting_at(elapsed(&traces));
        let converted =
            streaming.map_only(&cfg1, block_splits(&raw, bpr, block), |l| vec![l.to_string()])?;
        recovery.extend(converted.recovery.iter().cloned());
        traces.push(converted.trace);
        let tsv = converted.lines;

        // Step 2: sample MBRs (systematic 1-in-k, k sized for ~10 samples
        // per partition).
        let stride = (input.records.len() / (10 * self.partitions)).max(1);
        // The sampled lines are every `stride`-th line in job order; taking
        // them from `tsv` up front keeps the mapper a pure (`Fn + Sync`)
        // membership test so the host can run map tasks in parallel. Lines
        // are unique (they start with the record id), so the set selects
        // exactly the lines the old 1-in-k invocation counter did.
        let keep: std::collections::BTreeSet<&str> =
            tsv.iter().step_by(stride).map(|s| s.as_str()).collect();
        let cfg2 =
            JobConfig::new(format!("{}: 2 sample MBRs", input.name), phase, input.multiplier)
                .starting_at(elapsed(&traces));
        let sampled = streaming.map_only(&cfg2, block_splits(&tsv, bpr, block), |l| {
            if keep.contains(l) {
                vec![l.split('\t').next().unwrap_or("0").to_string()]
            } else {
                Vec::new()
            }
        })?;
        recovery.extend(sampled.recovery.iter().cloned());
        traces.push(sampled.trace);
        let sample_ids: Vec<u64> = sampled
            .lines
            .iter()
            // sjc-lint: allow(no-panic-in-lib) — step 2's mapper emitted these lines from the TSV's numeric id column
            .map(|l| l.parse::<u64>().expect("sample lines carry record ids"))
            .collect();
        let sample_bytes = sample_ids.len() as u64 * 72;

        // Step 3: compute the extent of the samples (MR job, single reducer).
        let sample_lines: Vec<String> = sample_ids.iter().map(|i| i.to_string()).collect();
        let cfg3 =
            JobConfig::new(format!("{}: 3 compute extent", input.name), phase, input.multiplier)
                .write_output(false)
                .starting_at(elapsed(&traces));
        let extent_out = streaming.map_reduce(
            &cfg3,
            block_splits(&sample_lines, 72.0, block),
            |l| vec![("extent".to_string(), l.to_string())],
            |_, vs| vec![format!("count={}", vs.len())],
        )?;
        recovery.extend(extent_out.recovery.iter().cloned());
        traces.push(extent_out.trace);

        // Step 4: normalize sample MBRs (map-only over the samples).
        let cfg4 =
            JobConfig::new(format!("{}: 4 normalize samples", input.name), phase, input.multiplier)
                .starting_at(elapsed(&traces));
        let normalized =
            streaming.map_only(&cfg4, block_splits(&sample_lines, 72.0, block), |l| {
                vec![l.to_string()]
            })?;
        recovery.extend(normalized.recovery.iter().cloned());
        traces.push(normalized.trace);

        // Step 5: local serial partition generation with HDFS round-trips.
        traces.push(fs_copy(
            cluster,
            format!("{}: 5a copy samples to local", input.name),
            phase,
            sample_bytes,
        ));
        let centers: Vec<Point> = sample_ids
            .iter()
            // sjc-lint: allow(no-panic-in-lib) — record ids are the enumerate indices minted by JoinInput::from_dataset
            .map(|&i| input.records[i as usize].mbr.center())
            .collect();
        let mut gen_stage = StageTrace::new(
            format!("{}: 5b generate partitions (serial)", input.name),
            StageKind::LocalSerial,
            phase,
        );
        let n = centers.len().max(2) as f64;
        gen_stage.sim_ns = (n * n.log2() * 500.0) as u64; // serial script-speed sort/split
        traces.push(gen_stage);
        traces.push(fs_copy(
            cluster,
            format!("{}: 5c copy partitions to HDFS", input.name),
            phase,
            self.partitions as u64 * 72,
        ));
        let partitioner =
            BspPartitioner::from_sample(input.domain, centers.clone(), self.partitions);

        // Step 6: assign partition ids — the expensive step: every record is
        // parsed, probed against the sample partitions and rewritten, and
        // the reducer is the cat-sort-unique pipeline. (Each map task also
        // rebuilds the sample R-tree; at 64 cells that build is microseconds
        // against the task's pipe+parse bill, so it rides inside the
        // calibrated per-byte constants.)
        let cfg6 =
            JobConfig::new(format!("{}: 6 assign partitions", input.name), phase, input.multiplier)
                .starting_at(elapsed(&traces));
        let records = &input.records;
        let assigned = streaming.map_reduce(
            &cfg6,
            block_splits(&tsv, bpr, block),
            |l| {
                let id: u64 = l.split('\t').next().unwrap_or("0").parse().unwrap_or(0);
                partitioner
                    // sjc-lint: allow(no-panic-in-lib) — ids in the TSV are enumerate indices into input.records
                    .assign(&records[id as usize].mbr)
                    .into_iter()
                    .map(|c| (format!("{c:06}"), l.to_string()))
                    .collect()
            },
            |_pid, lines| {
                // cat | sort | unique — sorting is charged by the engine;
                // the dedup emits the unique lines.
                let mut sorted: Vec<&String> = lines.iter().collect();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.iter().map(|l| l.to_string()).collect()
            },
        )?;
        recovery.extend(assigned.recovery.iter().cloned());
        traces.push(assigned.trace);

        Ok((centers, tsv, traces, recovery))
    }
}

impl DistributedSpatialJoin for HadoopGis {
    fn name(&self) -> &'static str {
        "HadoopGIS"
    }

    fn engine(&self) -> EngineKind {
        self.engine
    }

    fn run(
        &self,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
        predicate: JoinPredicate,
    ) -> Result<JoinOutput, SimError> {
        let mut hdfs = SimHdfs::new(cluster.config.nodes);
        let mut trace = RunTrace::new(self.name());
        let geos = GeometryEngine::new(self.engine());

        // Preprocessing: the six steps, per dataset.
        let (centers_a, tsv_a, t, r) =
            self.preprocess(cluster, &mut hdfs, left, Phase::IndexA, trace.total_ns())?;
        trace.stages.extend(t);
        trace.push_recovery(r);
        let (centers_b, tsv_b, t, r) =
            self.preprocess(cluster, &mut hdfs, right, Phase::IndexB, trace.total_ns())?;
        trace.stages.extend(t);
        trace.push_recovery(r);

        // Global join: concatenate the samples locally and build *new*
        // partitions (the step-6 partition ids are discarded — wasteful, as
        // the paper notes, but Streaming leaves no alternative).
        let sample_bytes = (centers_a.len() + centers_b.len()) as u64 * 72;
        trace.push(fs_copy(
            cluster,
            "GJ: copy both samples to local".into(),
            Phase::DistributedJoin,
            sample_bytes,
        ));
        let mut combined = centers_a;
        combined.extend(centers_b);
        let mut gen = StageTrace::new(
            "GJ: build combined partitions (serial)",
            StageKind::LocalSerial,
            Phase::DistributedJoin,
        );
        let n = combined.len().max(2) as f64;
        gen.sim_ns = (n * n.log2() * 500.0) as u64;
        trace.push(gen);
        trace.push(fs_copy(
            cluster,
            "GJ: copy partitions to HDFS".into(),
            Phase::DistributedJoin,
            self.partitions as u64 * 72,
        ));
        let domain = left.domain.union(&right.domain);
        let partitioner = BspPartitioner::from_sample(domain, combined, self.partitions);

        // The distributed join MR job: both datasets are re-read, re-parsed,
        // re-assigned and shuffled; reducers run the local join with GEOS.
        let mut tagged: Vec<String> = Vec::with_capacity(tsv_a.len() + tsv_b.len());
        tagged.extend(tsv_a.iter().map(|l| format!("A\t{l}")));
        tagged.extend(tsv_b.iter().map(|l| format!("B\t{l}")));
        let bpr = (left.bytes_per_record() * tsv_a.len() as f64
            + right.bytes_per_record() * tsv_b.len() as f64)
            / tagged.len().max(1) as f64;

        let mult = left.multiplier.max(right.multiplier);
        let mut engine = MapReduceJob::new(cluster, &mut hdfs);
        let mut streaming = StreamingJob::new(&mut engine);
        // The join reducer is the Python-driven geometry script — the
        // per-record interpreter cost behind the paper's 14x / 5.7x DJ gap.
        // ~40% of the per-record cost is Python string handling, ~60% the
        // geometry-library call, so the script cost scales with the engine's
        // refinement factor (GEOS = 4x is the calibrated baseline).
        let script_factor = 0.4 + 0.6 * (geos.kind().refinement_factor() / 4.0);
        let cfg = JobConfig::new("distributed join (streaming MR)", Phase::DistributedJoin, mult)
            .map_scale(ScaleMode::MoreTasks)
            .script_reducer(true)
            .script_cost_factor(script_factor)
            .starting_at(trace.total_ns());
        let local_algo = self.local_algo;
        let outcome = streaming.map_reduce(
            &cfg,
            block_splits(&tagged, bpr, hdfs_block()),
            |l| {
                let mut it = l.splitn(3, '\t');
                let tag = it.next().unwrap_or("A");
                let id: u64 = it.next().unwrap_or("0").parse().unwrap_or(0);
                let rec = if tag == "A" {
                    // sjc-lint: allow(no-panic-in-lib) — tagged ids are enumerate indices into left.records
                    &left.records[id as usize]
                } else {
                    // sjc-lint: allow(no-panic-in-lib) — tagged ids are enumerate indices into right.records
                    &right.records[id as usize]
                };
                let mbr = if tag == "A" { predicate.filter_mbr(&rec.mbr) } else { rec.mbr };
                partitioner
                    .assign(&mbr)
                    .into_iter()
                    .map(|c| (format!("{c:06}"), l.to_string()))
                    .collect()
            },
            |pid, lines| {
                // sjc-lint: allow(no-panic-in-lib) — partition keys are minted as "{c:06}" by the map side of this very job
                let cell: u32 = pid.parse().expect("partition keys are numeric");
                let mut lrecs: Vec<&GeoRecord> = Vec::new();
                let mut rrecs: Vec<&GeoRecord> = Vec::new();
                for l in lines {
                    let mut it = l.splitn(3, '\t');
                    let tag = it.next().unwrap_or("A");
                    let id: u64 = it.next().unwrap_or("0").parse().unwrap_or(0);
                    if tag == "A" {
                        // sjc-lint: allow(no-panic-in-lib) — tagged ids are enumerate indices into left.records
                        lrecs.push(&left.records[id as usize]);
                    } else {
                        // sjc-lint: allow(no-panic-in-lib) — tagged ids are enumerate indices into right.records
                        rrecs.push(&right.records[id as usize]);
                    }
                }
                let (pairs, _cost) =
                    local_join(&geos, predicate, local_algo, &lrecs, &rrecs, |am, bm| {
                        match predicate.filter_mbr(am).reference_point(bm) {
                            Some(rp) => partitioner.owner(&rp) == cell,
                            None => false,
                        }
                    });
                pairs.into_iter().map(|(a, b)| format!("{a}\t{b}")).collect()
            },
        )?;
        trace.push_recovery(outcome.recovery.iter().cloned());
        trace.push(outcome.trace);

        let pairs = outcome
            .lines
            .iter()
            .map(|l| {
                let mut it = l.split('\t');
                // sjc-lint: allow(no-panic-in-lib) — the join reducer above emits exactly "leftid\trightid" lines
                let a = it.next().unwrap_or("0").parse::<u64>().expect("left id");
                // sjc-lint: allow(no-panic-in-lib) — right id of a self-emitted pair line
                let b = it.next().unwrap_or("0").parse::<u64>().expect("right id");
                (a, b)
            })
            .collect();
        Ok(JoinOutput { pairs, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::direct_join;
    use sjc_cluster::ClusterConfig;
    use sjc_data::{DatasetId, ScaledDataset};

    fn tiny_inputs() -> (JoinInput, JoinInput) {
        let taxi = ScaledDataset::generate(DatasetId::Taxi, 2e-5, 7);
        let nycb = ScaledDataset::generate(DatasetId::Nycb, 2e-5, 7);
        let mut l = JoinInput::from_dataset(&taxi);
        let mut r = JoinInput::from_dataset(&nycb);
        l.multiplier = 1.0;
        r.multiplier = 1.0;
        (l, r)
    }

    #[test]
    fn matches_direct_join() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let out =
            HadoopGis::default().run(&cluster, &left, &right, JoinPredicate::Intersects).unwrap();
        let mut expected = direct_join(
            &GeometryEngine::jts(),
            JoinPredicate::Intersects,
            &left.records,
            &right.records,
        );
        expected.sort_unstable();
        assert!(!expected.is_empty());
        assert_eq!(out.sorted_pairs(), expected);
    }

    #[test]
    fn runs_the_six_preprocessing_steps_per_dataset() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let out =
            HadoopGis::default().run(&cluster, &left, &right, JoinPredicate::Intersects).unwrap();
        // Steps 1,2,3,4,5a,5b,5c,6 = 8 stages per dataset, + 3 global-join
        // serial/copy stages + 1 distributed join job = 20.
        assert_eq!(out.trace.stages.len(), 20);
        let ia: Vec<&str> = out
            .trace
            .stages
            .iter()
            .filter(|s| s.phase == Phase::IndexA)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(ia.len(), 8);
        assert!(ia[0].contains("convert"));
        assert!(ia[7].contains("assign"));
        // Local serial + copies exist (the paper's step-5 critique).
        assert!(out.trace.stages.iter().any(|s| s.kind == StageKind::LocalSerial));
        assert!(out.trace.stages.iter().any(|s| s.kind == StageKind::FsCopy));
    }

    #[test]
    fn every_streaming_job_pays_pipes() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let out =
            HadoopGis::default().run(&cluster, &left, &right, JoinPredicate::Intersects).unwrap();
        for s in &out.trace.stages {
            if matches!(s.kind, StageKind::MapReduceJob | StageKind::MapOnlyJob) {
                assert!(s.pipe_bytes > 0, "stage {} pays no pipe bytes", s.name);
            }
        }
    }

    #[test]
    fn full_scale_multiplier_breaks_the_pipe() {
        // With the real full-dataset multiplier a streaming reducer exceeds
        // the pipe limit on every paper configuration — HadoopGIS's Table-2
        // row of dashes.
        let taxi = ScaledDataset::generate(DatasetId::Taxi, 2e-5, 7);
        let nycb = ScaledDataset::generate(DatasetId::Nycb, 2e-5, 7);
        let left = JoinInput::from_dataset(&taxi);
        let right = JoinInput::from_dataset(&nycb);
        for cfg in ClusterConfig::paper_configs() {
            let cluster = Cluster::new(cfg.clone());
            let res = HadoopGis::default().run(&cluster, &left, &right, JoinPredicate::Intersects);
            match res {
                Err(SimError::BrokenPipe { .. }) => {}
                other => panic!(
                    "{}: expected broken pipe, got {:?}",
                    cfg.name,
                    other.map(|o| o.pairs.len())
                ),
            }
        }
    }
}
