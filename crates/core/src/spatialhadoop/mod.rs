//! SpatialHadoop reproduction: native Hadoop + JTS (Fig. 1(b) of the paper).
//!
//! Pipeline (§II.A–C):
//!
//! 1. **Preprocessing, per dataset** — two MR jobs:
//!    * *sample job*: scan the input, draw a systematic sample, derive
//!      partition MBRs from it on the master, store them as a `_master`
//!      HDFS file;
//!    * *partition job*: map assigns every record the cell(s) it
//!      intersects; the shuffle groups records by cell id; reducers write
//!      one indexed block file per cell (the intra-block R-tree is "built
//!      virtually for free" next to the dominating disk I/O, but the write
//!      — with 3× replication — is exactly the indexing cost Table 3 shows
//!      exploding on EC2).
//! 2. **Global join** — *not* a distributed step: the job's `getSplits`
//!    override runs a serial plane-sweep over the two `_master` MBR lists
//!    on the master node and emits one input split per intersecting cell
//!    pair.
//! 3. **Local join** — a *map-only* job: each task random-accesses the two
//!    indexed block files of its cell pair and runs a plane-sweep (or
//!    synchronized R-tree) join plus JTS refinement. No shuffle, no
//!    reducers — the design the paper credits for SpatialHadoop's
//!    robustness.

use sjc_cluster::metrics::Phase;
use sjc_cluster::{
    Cluster, RecoveryEvent, RunTrace, SimError, SimHdfs, SimNs, StageKind, StageTrace,
};
use sjc_geom::{EngineKind, GeometryEngine, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::join::plane_sweep;
use sjc_index::partition::SpatialPartitioner;
use sjc_index::RTree;
use sjc_mapreduce::job::ScaleMode;
use sjc_mapreduce::{block_splits, JobConfig, MapReduceJob, MapTask};

use crate::common::{local_join, LocalJoinAlgo, PartitionerKind};
use crate::framework::{DistributedSpatialJoin, JoinInput, JoinOutput, JoinPredicate};

/// The SpatialHadoop system.
#[derive(Debug, Clone)]
pub struct SpatialHadoop {
    /// Local join algorithm (§II.C offers plane sweep and synchronized
    /// R-tree traversal). Defaults to the striped SoA sweep kernel, which
    /// computes the plane sweep's exact pair set and `JoinStats` faster on
    /// the host; the paper's algorithms stay selectable for the ablation.
    pub local_algo: LocalJoinAlgo,
    /// Systematic sample rate for partition derivation.
    pub sample_rate: f64,
    /// Target spatial partition count per dataset.
    pub partitions: usize,
    /// Spatial partitioner family (SpatialHadoop supports GRID and
    /// STR-style indexes; the ablation benches sweep this).
    pub partitioner: PartitionerKind,
    /// Geometry library cost profile (JTS for the real system; the
    /// `ablation_geometry_engine` bench swaps in GEOS).
    pub engine: EngineKind,
    /// Index the right dataset with the *left* dataset's grid. §II.B: when
    /// "the underlying grid configurations are not compatible ...
    /// re-partition is required. On the other hand ... SpatialHadoop can run
    /// faster when re-partitioning can be skipped" — compatible grids drop
    /// the right side's sample job and turn the global join into identity
    /// cell pairing.
    pub reuse_partitions: bool,
}

impl Default for SpatialHadoop {
    fn default() -> Self {
        SpatialHadoop {
            local_algo: LocalJoinAlgo::default(),
            sample_rate: 0.01,
            // SpatialHadoop sizes partitions toward HDFS blocks; 128 cells
            // approximates the block count of the full datasets.
            partitions: 128,
            partitioner: PartitionerKind::StrTiles,
            engine: EngineKind::Jts,
            reuse_partitions: false,
        }
    }
}

/// A fixed cell list adopted from another dataset's index (compatible-grid
/// mode): the generic trait machinery provides assignment and ownership.
struct SharedCells {
    cells: Vec<sjc_geom::Mbr>,
}

impl SpatialPartitioner for SharedCells {
    fn cells(&self) -> &[sjc_geom::Mbr] {
        &self.cells
    }
}

/// A dataset after preprocessing: its partitioner, per-cell record indices
/// and per-cell serialized bytes.
struct Indexed {
    partitioner: Box<dyn SpatialPartitioner + Send + Sync>,
    cells: Vec<Vec<u64>>,
    cell_bytes: Vec<u64>,
}

impl SpatialHadoop {
    /// The two preprocessing MR jobs for one dataset.
    // One argument per knob the two call sites actually vary; a params
    // struct would just re-spell this signature with extra ceremony.
    #[allow(clippy::too_many_arguments)]
    fn index_dataset(
        &self,
        cluster: &Cluster,
        hdfs: &mut SimHdfs,
        input: &JoinInput,
        phase: Phase,
        widen: Option<JoinPredicate>,
        shared_cells: Option<Vec<sjc_geom::Mbr>>,
        start_ns: SimNs,
    ) -> Result<(Indexed, Vec<StageTrace>, Vec<RecoveryEvent>), SimError> {
        let mut traces = Vec::new();
        let mut recovery = Vec::new();
        let mut engine = MapReduceJob::new(cluster, hdfs);
        let bpr = input.bytes_per_record();
        let block = engine.hdfs.block_size();

        let partitioner: Box<dyn SpatialPartitioner + Send + Sync> = match shared_cells {
            // Compatible-grid mode: adopt the other dataset's cells and skip
            // the sample job entirely.
            Some(cells) => Box::new(SharedCells { cells }),
            None => {
                // --- MR job 1: sample + derive partitions on the master ---
                let stride = (1.0 / self.sample_rate).round().max(1.0) as u64;
                let ids: Vec<u64> = (0..input.records.len() as u64).collect();
                let cfg1 =
                    JobConfig::new(format!("{}: sample", input.name), phase, input.multiplier)
                        .write_output(false)
                        .starting_at(start_ns);
                let sample_out =
                    engine.map_only(&cfg1, block_splits(&ids, bpr, block), |&i, em| {
                        if i % stride == 0 {
                            em.emit(i, 16);
                        }
                    })?;
                recovery.extend(sample_out.recovery.iter().cloned());
                traces.push(sample_out.trace);

                let sample_points: Vec<Point> = sample_out
                    .output
                    .iter()
                    // sjc-lint: allow(no-panic-in-lib) — sample ids are drawn from 0..records.len() above
                    .map(|&i| input.records[i as usize].mbr.center())
                    .collect();
                self.partitioner.build(input.domain, sample_points, self.partitions)
            }
        };
        let ids: Vec<u64> = (0..input.records.len() as u64).collect();
        // `_master` file: one MBR row per cell.
        let master_bytes = partitioner.cells().len() as u64 * 72;
        engine.hdfs.write_file(
            &format!("{}_master", input.name),
            master_bytes,
            partitioner.cells().len() as u64,
        );

        // --- MR job 2: assign partitions, shuffle, write indexed blocks ---
        let cell_rtree = RTree::bulk_load_str(
            partitioner
                .cells()
                .iter()
                .enumerate()
                .map(|(i, c)| IndexEntry::new(i as u64, *c))
                .collect(),
        );
        let jts = GeometryEngine::new(self.engine());
        let elapsed: SimNs = traces.iter().map(|t| t.sim_ns).sum();
        let cfg2 =
            JobConfig::new(format!("{}: partition+index", input.name), phase, input.multiplier)
                .starting_at(start_ns + elapsed);
        let outcome = engine.map_reduce(
            &cfg2,
            block_splits(&ids, bpr, block),
            |&i, em| {
                // sjc-lint: allow(no-panic-in-lib) — split ids are drawn from 0..records.len() above
                let rec = &input.records[i as usize];
                let mbr = match widen {
                    Some(p) => p.filter_mbr(&rec.mbr),
                    None => rec.mbr,
                };
                let mut hits = Vec::new();
                let visited = cell_rtree.query_counting(&mbr, &mut hits);
                em.charge(visited as u64 * jts.filter_cost_ns());
                if hits.is_empty() {
                    hits.push(partitioner.nearest_cell(&mbr.center()) as u64);
                }
                for cell in hits {
                    em.emit(cell as u32, i, bpr as u64);
                }
            },
            |cell, ids, em| {
                // Build the intra-block index (an STR sort) and write the
                // block: the write dominates, as the paper notes.
                em.charge(cluster.cost.sort_ns(ids.len() as u64));
                em.emit((*cell, ids.to_vec()), (ids.len() as f64 * bpr) as u64);
            },
        )?;
        recovery.extend(outcome.recovery.iter().cloned());
        traces.push(outcome.trace);

        let mut cells: Vec<Vec<u64>> = vec![Vec::new(); partitioner.cells().len()];
        let mut cell_bytes: Vec<u64> = vec![0; partitioner.cells().len()];
        for (cell, ids) in outcome.output {
            // sjc-lint: allow(no-panic-in-lib) — reducer keys are cell ids < partitioner.cells().len()
            cell_bytes[cell as usize] = (ids.len() as f64 * bpr) as u64;
            // sjc-lint: allow(no-panic-in-lib) — reducer keys are cell ids < partitioner.cells().len()
            cells[cell as usize] = ids;
        }
        Ok((Indexed { partitioner, cells, cell_bytes }, traces, recovery))
    }
}

impl DistributedSpatialJoin for SpatialHadoop {
    fn name(&self) -> &'static str {
        "SpatialHadoop"
    }

    fn engine(&self) -> EngineKind {
        self.engine
    }

    fn run(
        &self,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
        predicate: JoinPredicate,
    ) -> Result<JoinOutput, SimError> {
        let mut hdfs = SimHdfs::new(cluster.config.nodes);
        let mut trace = RunTrace::new(self.name());
        let jts = GeometryEngine::new(self.engine());

        // Preprocessing: index both datasets (IA, IB). Each job starts on
        // the run's global clock so scheduled node crashes land in whatever
        // stage is executing at that simulated instant.
        let (ia, t, r) = self.index_dataset(
            cluster,
            &mut hdfs,
            left,
            Phase::IndexA,
            Some(predicate),
            None,
            trace.total_ns(),
        )?;
        trace.stages.extend(t);
        trace.push_recovery(r);
        let shared =
            if self.reuse_partitions { Some(ia.partitioner.cells().to_vec()) } else { None };
        let (ib, t, r) = self.index_dataset(
            cluster,
            &mut hdfs,
            right,
            Phase::IndexB,
            None,
            shared,
            trace.total_ns(),
        )?;
        trace.stages.extend(t);
        trace.push_recovery(r);

        // Global join on the master: serial plane-sweep over the two
        // `_master` cell-MBR lists (the getSplits override).
        let a_entries: Vec<IndexEntry> = ia
            .partitioner
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| IndexEntry::new(i as u64, *c))
            .collect();
        let b_entries: Vec<IndexEntry> = ib
            .partitioner
            .cells()
            .iter()
            .enumerate()
            .map(|(i, c)| IndexEntry::new(i as u64, *c))
            .collect();
        let cand = if self.reuse_partitions {
            // Compatible grids: cell i pairs with cell i — no serial sweep.
            sjc_index::join::CandidatePairs {
                pairs: (0..ia.partitioner.cells().len() as u64).map(|i| (i, i)).collect(),
                stats: Default::default(),
            }
        } else {
            // Deliberately the classic sweep, not `stripe_sweep`: the pair
            // *order* here becomes the task order fed to the wave
            // scheduler, so switching kernels would reorder tasks and move
            // the simulated clock. The lists are tiny (one entry per cell).
            plane_sweep(&a_entries, &b_entries)
        };
        let mut gstage = StageTrace::new(
            "getSplits: pair partitions",
            StageKind::LocalSerial,
            Phase::DistributedJoin,
        );
        gstage.sim_ns = cand.stats.filter_tests * jts.filter_cost_ns()
            + cluster.cost.io_ns(
                (a_entries.len() + b_entries.len()) as u64 * 72,
                cluster.config.node.disk_read_bw,
            );
        gstage.hdfs_bytes_read = (a_entries.len() + b_entries.len()) as u64 * 72;
        trace.push(gstage);

        // Local join: map-only job, one task per intersecting cell pair.
        let mut engine = MapReduceJob::new(cluster, &mut hdfs);
        let tasks: Vec<MapTask<(u64, u64)>> = cand
            .pairs
            .iter()
            .map(|&(ca, cb)| {
                MapTask::new(
                    vec![(ca, cb)],
                    // sjc-lint: allow(no-panic-in-lib) — plane-sweep pairs carry cell ids of the two indexes
                    ia.cell_bytes[ca as usize] + ib.cell_bytes[cb as usize],
                )
            })
            .collect();
        let mult = left.multiplier.max(right.multiplier);
        let cfg = JobConfig::new("distributed join (map-only)", Phase::DistributedJoin, mult)
            .map_scale(ScaleMode::BiggerTasks)
            .parse_input(false) // indexed binary blocks, no text parse
            .starting_at(trace.total_ns());
        let outcome = engine.map_only(&cfg, tasks, |&(ca, cb), em| {
            // sjc-lint: allow(no-panic-in-lib) — ca is a cell id of index A; stored ids are enumerate indices
            let lrecs: Vec<&crate::framework::GeoRecord> = ia.cells[ca as usize]
                .iter()
                // sjc-lint: allow(no-panic-in-lib) — record ids are the enumerate indices minted by JoinInput::from_dataset
                .map(|&i| &left.records[i as usize])
                .collect();
            // sjc-lint: allow(no-panic-in-lib) — cb is a cell id of index B; stored ids are enumerate indices
            let rrecs: Vec<&crate::framework::GeoRecord> = ib.cells[cb as usize]
                .iter()
                // sjc-lint: allow(no-panic-in-lib) — record ids are the enumerate indices minted by JoinInput::from_dataset
                .map(|&i| &right.records[i as usize])
                .collect();
            let (pairs, cost) =
                local_join(&jts, predicate, self.local_algo, &lrecs, &rrecs, |am, bm| {
                    match predicate.filter_mbr(am).reference_point(bm) {
                        Some(rp) => {
                            ia.partitioner.owner(&rp) == ca as u32
                                && ib.partitioner.owner(&rp) == cb as u32
                        }
                        None => false,
                    }
                });
            // Deserializing the two block files' records into JVM objects is
            // the task's real per-record cost; the geometry work rides on top.
            em.charge(cluster.cost.hadoop_records_ns((lrecs.len() + rrecs.len()) as u64));
            em.charge(cost.filter_ns + cost.refine_ns);
            for p in pairs {
                em.emit(p, 24);
            }
        })?;
        trace.stages.extend(std::iter::once(outcome.trace));
        trace.push_recovery(outcome.recovery);

        Ok(JoinOutput { pairs: outcome.output, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::direct_join;
    use sjc_cluster::ClusterConfig;
    use sjc_data::{DatasetId, ScaledDataset};

    fn tiny_inputs() -> (JoinInput, JoinInput) {
        let taxi = ScaledDataset::generate(DatasetId::Taxi, 2e-5, 7);
        let nycb = ScaledDataset::generate(DatasetId::Nycb, 2e-5, 7);
        (JoinInput::from_dataset(&taxi), JoinInput::from_dataset(&nycb))
    }

    #[test]
    fn matches_direct_join() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let sys = SpatialHadoop::default();
        let out = sys.run(&cluster, &left, &right, JoinPredicate::Intersects).unwrap();
        let mut expected = direct_join(
            &GeometryEngine::jts(),
            JoinPredicate::Intersects,
            &left.records,
            &right.records,
        );
        expected.sort_unstable();
        assert!(!expected.is_empty(), "workload must have hits");
        assert_eq!(out.sorted_pairs(), expected);
    }

    #[test]
    fn emits_the_papers_stage_structure() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let out = SpatialHadoop::default()
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        // 2 jobs per dataset + getSplits + map-only join = 6 stages.
        assert_eq!(out.trace.stages.len(), 6);
        assert!(out.trace.phase_ns(Phase::IndexA) > 0);
        assert!(out.trace.phase_ns(Phase::IndexB) > 0);
        assert!(out.trace.phase_ns(Phase::DistributedJoin) > 0);
        // The join job is map-only.
        let join_stage = out.trace.stages.last().unwrap();
        assert_eq!(join_stage.kind, StageKind::MapOnlyJob);
        assert_eq!(join_stage.shuffle_bytes, 0, "no shuffle in the join job");
    }

    #[test]
    fn sync_rtree_variant_agrees() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let sweep = SpatialHadoop::default()
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        let sync =
            SpatialHadoop { local_algo: LocalJoinAlgo::SyncRTree, ..SpatialHadoop::default() }
                .run(&cluster, &left, &right, JoinPredicate::Intersects)
                .unwrap();
        assert_eq!(sweep.sorted_pairs(), sync.sorted_pairs());
    }

    #[test]
    fn compatible_grids_skip_work_without_changing_results() {
        // §II.B: when the grids are compatible, re-partitioning is skipped
        // and SpatialHadoop runs faster. Same results, fewer stages, less
        // simulated time.
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let default_run = SpatialHadoop::default()
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        let reuse_run = SpatialHadoop { reuse_partitions: true, ..SpatialHadoop::default() }
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        assert_eq!(reuse_run.pairs.len(), default_run.pairs.len(),);
        let mut a = default_run.pairs.clone();
        let mut b = reuse_run.pairs.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "identity pairing is exact under a shared grid");
        assert_eq!(
            reuse_run.trace.stages.len(),
            default_run.trace.stages.len() - 1,
            "the right side's sample job disappears"
        );
        assert!(
            reuse_run.trace.phase_ns(Phase::IndexB) < default_run.trace.phase_ns(Phase::IndexB),
            "IB gets cheaper"
        );
    }

    #[test]
    fn never_fails_by_design() {
        // SpatialHadoop is the paper's robustness winner: huge multipliers
        // (full datasets) never error.
        let (left, right) = tiny_inputs();
        for cfg in ClusterConfig::paper_configs() {
            let cluster = Cluster::new(cfg);
            assert!(SpatialHadoop::default()
                .run(&cluster, &left, &right, JoinPredicate::Intersects)
                .is_ok());
        }
    }
}
