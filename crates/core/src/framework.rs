//! The generalized framework: shared vocabulary of all three systems.

use sjc_cluster::{Cluster, RunTrace, SimError};
use sjc_data::ScaledDataset;
use sjc_geom::{EngineKind, Geometry, GeometryEngine, Mbr};

/// The spatial predicate refined in the local join stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinPredicate {
    /// Exact geometric intersection — covers both of the paper's
    /// experiments (point-in-polygon is point∩polygon; polyline-with-
    /// polyline is polyline∩polyline).
    Intersects,
    /// Left geometry contained in right geometry.
    Within,
    /// Geometries within distance `d` (the taxi-to-road-segment motivating
    /// example of the paper's introduction).
    WithinDistance(f64),
}

impl JoinPredicate {
    /// Evaluates the predicate with `engine`, returning the boolean result
    /// and the charged simulated cost.
    pub fn evaluate(
        &self,
        engine: &GeometryEngine,
        left: &Geometry,
        right: &Geometry,
    ) -> (bool, u64) {
        match self {
            JoinPredicate::Intersects => engine.intersects(left, right),
            JoinPredicate::Within => engine.contains(right, left),
            JoinPredicate::WithinDistance(d) => engine.within_distance(left, right, *d),
        }
    }

    /// Widens an MBR for the filter step (only within-distance joins need
    /// a buffer).
    pub fn filter_mbr(&self, mbr: &Mbr) -> Mbr {
        match self {
            JoinPredicate::WithinDistance(d) => mbr.buffered(*d),
            _ => *mbr,
        }
    }
}

/// One spatial record flowing through a system: a dataset-local id, the
/// geometry, and its precomputed MBR.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoRecord {
    pub id: u64,
    pub geom: Geometry,
    pub mbr: Mbr,
}

impl GeoRecord {
    pub fn new(id: u64, geom: Geometry) -> Self {
        let mbr = geom.mbr();
        GeoRecord { id, geom, mbr }
    }
}

/// One side of a distributed spatial join.
#[derive(Debug, Clone)]
pub struct JoinInput {
    pub name: String,
    pub records: Vec<GeoRecord>,
    /// Serialized size of the generated slice (Table-1 bytes/record).
    pub sim_bytes: u64,
    /// Full-scale records ÷ generated records.
    pub multiplier: f64,
    /// The spatial domain both join sides share.
    pub domain: Mbr,
}

impl JoinInput {
    /// Wraps a generated dataset as a join input.
    pub fn from_dataset(ds: &ScaledDataset) -> JoinInput {
        JoinInput {
            name: ds.spec.name.to_string(),
            records: ds
                .geoms
                .iter()
                .enumerate()
                .map(|(i, g)| GeoRecord::new(i as u64, g.clone()))
                .collect(),
            sim_bytes: ds.sim_bytes(),
            multiplier: ds.multiplier(),
            domain: ds.domain,
        }
    }

    /// Average serialized bytes per record.
    pub fn bytes_per_record(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.sim_bytes as f64 / self.records.len() as f64
        }
    }

    /// Total geometry vertices (generation scale).
    pub fn total_vertices(&self) -> u64 {
        self.records.iter().map(|r| r.geom.num_vertices() as u64).sum()
    }
}

/// The result of a distributed spatial join run.
#[derive(Debug, Clone)]
pub struct JoinOutput {
    /// Refined result pairs `(left id, right id)`, exactly once each.
    pub pairs: Vec<(u64, u64)>,
    /// The per-stage simulated execution ledger.
    pub trace: RunTrace,
}

impl JoinOutput {
    /// Pairs sorted for set comparison.
    pub fn sorted_pairs(mut self) -> Vec<(u64, u64)> {
        self.pairs.sort_unstable();
        self.pairs
    }
}

/// A complete distributed spatial join system (the trait the three
/// reproduced systems implement).
///
/// ```
/// use sjc_cluster::{Cluster, ClusterConfig};
/// use sjc_core::framework::{DistributedSpatialJoin, JoinInput, JoinPredicate};
/// use sjc_core::spatialspark::SpatialSpark;
/// use sjc_data::{DatasetId, ScaledDataset};
///
/// // A small taxi ⋈ census-blocks workload on a simulated 10-node cluster.
/// let taxi = ScaledDataset::generate(DatasetId::Taxi1m, 1e-4, 42);
/// let nycb = ScaledDataset::generate(DatasetId::Nycb, 1e-4, 42);
/// let cluster = Cluster::new(ClusterConfig::ec2(10));
///
/// let out = SpatialSpark::default()
///     .run(
///         &cluster,
///         &JoinInput::from_dataset(&taxi),
///         &JoinInput::from_dataset(&nycb),
///         JoinPredicate::Intersects,
///     )
///     .expect("fits in memory at this scale");
/// assert!(!out.pairs.is_empty());
/// assert!(out.trace.total_seconds() > 0.0);
/// ```
pub trait DistributedSpatialJoin {
    /// System name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// The geometry library the system links against.
    fn engine(&self) -> EngineKind;

    /// Runs the end-to-end join (preprocessing + global join + local join)
    /// of `left ⋈ right` under `predicate` on `cluster`.
    fn run(
        &self,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
        predicate: JoinPredicate,
    ) -> Result<JoinOutput, SimError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::{LineString, Point, Polygon};

    fn poly() -> Geometry {
        Geometry::Polygon(Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]))
    }

    #[test]
    fn predicate_evaluation() {
        let jts = GeometryEngine::jts();
        let p_in = Geometry::Point(Point::new(1.0, 1.0));
        let p_out = Geometry::Point(Point::new(5.0, 5.0));
        assert!(JoinPredicate::Intersects.evaluate(&jts, &p_in, &poly()).0);
        assert!(!JoinPredicate::Intersects.evaluate(&jts, &p_out, &poly()).0);
        assert!(JoinPredicate::Within.evaluate(&jts, &p_in, &poly()).0);
        let road = Geometry::LineString(LineString::new(vec![
            Point::new(0.0, 5.0),
            Point::new(10.0, 5.0),
        ]));
        assert!(JoinPredicate::WithinDistance(3.1).evaluate(&jts, &p_out, &road).0);
        assert!(!JoinPredicate::WithinDistance(0.5).evaluate(&jts, &p_in, &road).0);
    }

    #[test]
    fn within_distance_buffers_the_filter_mbr() {
        let m = Mbr::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(JoinPredicate::Intersects.filter_mbr(&m), m);
        let buffered = JoinPredicate::WithinDistance(2.0).filter_mbr(&m);
        assert_eq!(buffered, Mbr::new(-2.0, -2.0, 3.0, 3.0));
    }

    #[test]
    fn join_input_from_dataset() {
        let ds = sjc_data::ScaledDataset::generate(sjc_data::DatasetId::Nycb, 0.01, 1);
        let input = JoinInput::from_dataset(&ds);
        assert_eq!(input.records.len(), ds.len());
        assert!(input.multiplier > 50.0);
        assert!(input.bytes_per_record() > 100.0);
        // Ids are dense 0..n.
        assert_eq!(input.records.last().unwrap().id as usize, input.records.len() - 1);
    }
}
