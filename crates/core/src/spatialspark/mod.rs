//! SpatialSpark reproduction: Spark RDDs + JTS (Fig. 1(c) of the paper).
//!
//! The partition-based join pipeline (§II.A–C):
//!
//! 1. read both datasets from HDFS into memory — the **only** HDFS
//!    interaction in the whole run;
//! 2. sample *one* side (the right side) in memory; derive partition MBRs
//!    from the sample on the driver; build an R-tree over the partition
//!    MBRs and **broadcast** it to all executors (no HDFS, unlike both
//!    Hadoop systems);
//! 3. flat-map both sides against the broadcast index to tag every record
//!    with the partition id(s) it intersects;
//! 4. `groupByKey` both sides, then `join` the grouped lists on partition
//!    id — the in-memory equivalent of the Hadoop shuffle (and the step
//!    where insufficient executor memory kills the job: "Spark is not able
//!    to spill");
//! 5. map each `(pid, (L-list, R-list))` through an indexed nested-loop
//!    local join with JTS refinement and reference-point de-duplication;
//! 6. collect.
//!
//! The **broadcast-based** variant (the paper's earlier design, §II.B,
//! whose comparison the paper defers to future work) doubles as the
//! paper's *sequence-based partitioning* mode (§II.A: "does not require
//! preprocessing and is more efficient when the left side ... is a point
//! dataset"): the left side stays in its load-order chunks and no spatial
//! preprocessing happens. It skips partitioning entirely:
//! it broadcasts an R-tree over *all* right-side records and probes it from
//! a single map over the left side. [`SpatialSpark::broadcast_join`]
//! selects it; the `ablation_broadcast_join` bench compares the two.

use sjc_cluster::metrics::Phase;
use sjc_cluster::{Cluster, CostModel, SimError};
use sjc_geom::{EngineKind, GeometryEngine, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::partition::{SpatialPartitioner, StrTilePartitioner};
use sjc_index::RTree;
use sjc_rdd::{memory, SparkContext, SparkRecord};

use crate::common::{local_join, LocalJoinAlgo};
use crate::framework::{DistributedSpatialJoin, GeoRecord, JoinInput, JoinOutput, JoinPredicate};

/// The SpatialSpark system.
#[derive(Debug, Clone)]
pub struct SpatialSpark {
    /// Target spatial partition count (partition-based join).
    pub partitions: usize,
    /// Use the broadcast-based join instead of the partition-based one.
    pub broadcast_join: bool,
    /// Local join algorithm (indexed nested loop is the paper's choice;
    /// kept as the default so the simulated R-tree traversal costs match
    /// the modeled system — `StripeSweep` is selectable for ablations).
    pub local_algo: LocalJoinAlgo,
    /// Geometry library cost profile (JTS for the real system).
    pub engine: EngineKind,
}

impl Default for SpatialSpark {
    fn default() -> Self {
        SpatialSpark {
            // Spark wants a few tasks per core even on the biggest cluster;
            // 512 cells keeps the 80-slot EC2-10 configuration saturated.
            partitions: 512,
            broadcast_join: false,
            local_algo: LocalJoinAlgo::IndexedNestedLoop,
            engine: EngineKind::Jts,
        }
    }
}

/// A lightweight record reference flowing through RDDs: the dataset-local
/// index plus the vertex count that drives the JVM footprint model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct RecRef {
    idx: u32,
    verts: u32,
}

impl SparkRecord for RecRef {
    fn mem_bytes(&self, cost: &CostModel) -> u64 {
        cost.spark_footprint_bytes(1, self.verts as u64)
    }
}

fn rec_refs(input: &JoinInput) -> Vec<RecRef> {
    input
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| RecRef { idx: i as u32, verts: r.geom.num_vertices() as u32 })
        .collect()
}

impl SpatialSpark {
    fn run_partition_based(
        &self,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
        predicate: JoinPredicate,
    ) -> Result<JoinOutput, SimError> {
        let jts = GeometryEngine::new(self.engine());
        let mut ctx = SparkContext::new(cluster);

        // 1. Load both datasets (lazy read, charged at first materialization).
        let rdd_l = ctx.read_text(rec_refs(left), left.sim_bytes, left.multiplier);
        let mut rdd_r = ctx.read_text(rec_refs(right), right.sim_bytes, right.multiplier);

        // 2. In-memory sampling of the right side; partitions on the driver.
        // Rate targets ~10 samples per partition (the paper tunes sample
        // rates per dataset; this is the same knob, self-adjusted).
        let rate = ((10 * self.partitions) as f64 / right.records.len().max(1) as f64).min(1.0);
        let sample = rdd_r.sample_collect(
            &mut ctx,
            "sample right side (in-memory)",
            Phase::IndexB,
            rate,
            0x5EED,
        )?;
        let centers: Vec<Point> = sample
            .iter()
            // sjc-lint: allow(no-panic-in-lib) — RecRef idx values index the records slice they were minted from
            .map(|r| right.records[r.idx as usize].mbr.center())
            .collect();
        let partitioner = StrTilePartitioner::from_sample(right.domain, centers, self.partitions);
        let ncells = partitioner.cells().len();

        // Broadcast the partition-MBR R-tree (index over cells, not data).
        let cell_tree = RTree::bulk_load_str(
            partitioner
                .cells()
                .iter()
                .enumerate()
                .map(|(i, c)| IndexEntry::new(i as u64, *c))
                .collect(),
        );
        let bcast_bytes = (cell_tree.num_nodes() as u64) * 56 + ncells as u64 * 72;
        ctx.broadcast("broadcast partition index", Phase::IndexB, (), bcast_bytes);

        // 3. Tag records with partition ids (both sides).
        let probe = |tree: &RTree,
                     part: &StrTilePartitioner,
                     mbr: &sjc_geom::Mbr,
                     extra: &mut u64|
         -> Vec<u32> {
            let mut hits = Vec::new();
            let visited = tree.query_counting(mbr, &mut hits);
            *extra += visited as u64 * jts.filter_cost_ns();
            if hits.is_empty() {
                vec![part.nearest_cell(&mbr.center())]
            } else {
                hits.into_iter().map(|c| c as u32).collect()
            }
        };
        let tagged_l = rdd_l.flat_map(&ctx, |r: &RecRef, extra: &mut u64| {
            // sjc-lint: allow(no-panic-in-lib) — RecRef idx values index the records slice they were minted from
            let mbr = predicate.filter_mbr(&left.records[r.idx as usize].mbr);
            probe(&cell_tree, &partitioner, &mbr, extra)
                .into_iter()
                .map(|c| (c, *r))
                .collect::<Vec<_>>()
        });
        let tagged_r = rdd_r.flat_map(&ctx, |r: &RecRef, extra: &mut u64| {
            // sjc-lint: allow(no-panic-in-lib) — RecRef idx values index the records slice they were minted from
            let mbr = right.records[r.idx as usize].mbr;
            probe(&cell_tree, &partitioner, &mbr, extra)
                .into_iter()
                .map(|c| (c, *r))
                .collect::<Vec<_>>()
        });

        // 4. Group both sides by partition id, then join the grouped lists.
        let grouped_l =
            tagged_l.group_by_key(&mut ctx, "groupByKey left", Phase::DistributedJoin, ncells)?;
        let grouped_r =
            tagged_r.group_by_key(&mut ctx, "groupByKey right", Phase::DistributedJoin, ncells)?;
        let joined = grouped_l.join(
            grouped_r,
            &mut ctx,
            "join on partition id",
            Phase::DistributedJoin,
            ncells,
        )?;

        // 5. Local join per partition (indexed nested loop + JTS refine).
        let local_algo = self.local_algo;
        let result = joined.flat_map(&ctx, |(cell, (lrefs, rrefs)), extra| {
            // sjc-lint: allow(no-panic-in-lib) — RecRef idx values index the records slice they were minted from
            let lrecs: Vec<&GeoRecord> =
                lrefs.iter().map(|r| &left.records[r.idx as usize]).collect();
            // sjc-lint: allow(no-panic-in-lib) — RecRef idx values index the records slice they were minted from
            let rrecs: Vec<&GeoRecord> =
                rrefs.iter().map(|r| &right.records[r.idx as usize]).collect();
            let (pairs, cost) =
                local_join(&jts, predicate, local_algo, &lrecs, &rrecs, |am, bm| {
                    match predicate.filter_mbr(am).reference_point(bm) {
                        Some(rp) => partitioner.owner(&rp) == *cell,
                        None => false,
                    }
                });
            *extra += cost.filter_ns + cost.refine_ns;
            pairs
        });

        // 6. Collect to the driver.
        let pairs = result.collect(&mut ctx, "collect results", Phase::DistributedJoin)?;
        let mut trace = ctx.trace;
        trace.system = self.name().to_string();
        Ok(JoinOutput { pairs, trace })
    }

    fn run_broadcast_based(
        &self,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
        predicate: JoinPredicate,
    ) -> Result<JoinOutput, SimError> {
        let jts = GeometryEngine::new(self.engine());
        let mut ctx = SparkContext::new(cluster);

        let rdd_l = ctx.read_text(rec_refs(left), left.sim_bytes, left.multiplier);

        // Broadcast an R-tree over *all* right records. Every executor
        // holds the full right side: memory-check it explicitly.
        let entries: Vec<IndexEntry> =
            right.records.iter().map(|r| IndexEntry::new(r.id, r.mbr)).collect();
        let tree = RTree::bulk_load_str(entries);
        let right_mem: u64 = (right
            .records
            .iter()
            .map(|r| cluster.cost.spark_footprint_bytes(1, r.geom.num_vertices() as u64))
            .sum::<u64>() as f64
            * right.multiplier) as u64;
        let per_node: Vec<u64> = (0..cluster.config.nodes).map(|_| right_mem).collect();
        memory::check_fits(cluster, "broadcast full right index", &[&per_node])?;
        ctx.broadcast("broadcast full right index", Phase::IndexB, (), right_mem);

        // Probe directly: no partitioning, no shuffle, no duplicates.
        let result = rdd_l.flat_map(&ctx, |r: &RecRef, extra: &mut u64| {
            // sjc-lint: allow(no-panic-in-lib) — RecRef idx values index the records slice they were minted from
            let lrec = &left.records[r.idx as usize];
            let mut hits = Vec::new();
            let visited = tree.query_counting(&predicate.filter_mbr(&lrec.mbr), &mut hits);
            *extra += visited as u64 * jts.filter_cost_ns();
            let mut out = Vec::new();
            for rid in hits {
                // sjc-lint: allow(no-panic-in-lib) — R-tree hits carry the enumerate record ids they were built from
                let rrec = &right.records[rid as usize];
                let (hit, ns) = predicate.evaluate(&jts, &lrec.geom, &rrec.geom);
                *extra += ns;
                if hit {
                    out.push((lrec.id, rrec.id));
                }
            }
            out
        });
        let pairs = result.collect(&mut ctx, "collect results", Phase::DistributedJoin)?;
        let mut trace = ctx.trace;
        trace.system = "SpatialSpark (broadcast)".to_string();
        Ok(JoinOutput { pairs, trace })
    }
}

impl DistributedSpatialJoin for SpatialSpark {
    fn name(&self) -> &'static str {
        "SpatialSpark"
    }

    fn engine(&self) -> EngineKind {
        self.engine
    }

    fn run(
        &self,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
        predicate: JoinPredicate,
    ) -> Result<JoinOutput, SimError> {
        if self.broadcast_join {
            self.run_broadcast_based(cluster, left, right, predicate)
        } else {
            self.run_partition_based(cluster, left, right, predicate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::direct_join;
    use sjc_cluster::ClusterConfig;
    use sjc_data::{DatasetId, ScaledDataset};

    fn tiny_inputs() -> (JoinInput, JoinInput) {
        let taxi = ScaledDataset::generate(DatasetId::Taxi, 2e-5, 7);
        let nycb = ScaledDataset::generate(DatasetId::Nycb, 2e-5, 7);
        let mut l = JoinInput::from_dataset(&taxi);
        let mut r = JoinInput::from_dataset(&nycb);
        // Correctness tests run the tiny slice *as is* (multiplier 1): the
        // full-scale extrapolation and its failure modes are exercised by
        // the experiment-level tests instead.
        l.multiplier = 1.0;
        r.multiplier = 1.0;
        (l, r)
    }

    #[test]
    fn partition_based_matches_direct_join() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let out = SpatialSpark::default()
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        let mut expected = direct_join(
            &GeometryEngine::jts(),
            JoinPredicate::Intersects,
            &left.records,
            &right.records,
        );
        expected.sort_unstable();
        assert!(!expected.is_empty());
        assert_eq!(out.sorted_pairs(), expected);
    }

    #[test]
    fn broadcast_variant_matches_partition_based() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::workstation());
        let part = SpatialSpark::default()
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        let bcast = SpatialSpark { broadcast_join: true, ..SpatialSpark::default() }
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        assert_eq!(part.sorted_pairs(), bcast.sorted_pairs());
    }

    #[test]
    fn broadcast_join_ooms_on_big_right_sides_where_partitioning_survives() {
        // §II.B's scalability argument for the partition-based join: the
        // broadcast variant ships the whole right side to every executor,
        // so a full-scale edges dataset (~24 GB resident) blows a 15 GB
        // node even though the partition-based join fits the cluster.
        // Reverse the usual workload so the *big* dataset is the right side.
        let (r, l) = crate::experiment::Workload::edge_linearwater().prepare(1e-3, 20150701);
        let cluster = Cluster::new(ClusterConfig::ec2(10));
        let bcast = SpatialSpark { broadcast_join: true, ..SpatialSpark::default() };
        assert!(
            matches!(
                bcast.run(&cluster, &l, &r, JoinPredicate::Intersects),
                Err(sjc_cluster::SimError::OutOfMemory { .. })
            ),
            "broadcasting the full right side must OOM a 15 GB node"
        );
        assert!(
            SpatialSpark::default().run(&cluster, &l, &r, JoinPredicate::Intersects).is_ok(),
            "the partition-based join handles the same workload"
        );
    }

    #[test]
    fn touches_hdfs_only_at_load() {
        let (left, right) = tiny_inputs();
        let cluster = Cluster::new(ClusterConfig::ec2(10));
        let out = SpatialSpark::default()
            .run(&cluster, &left, &right, JoinPredicate::Intersects)
            .unwrap();
        // Fig. 1(c): HDFS is read once per input, never written.
        let written: u64 = out.trace.stages.iter().map(|s| s.hdfs_bytes_written).sum();
        assert_eq!(written, 0, "SpatialSpark never writes HDFS");
        let read: u64 = out.trace.stages.iter().map(|s| s.hdfs_bytes_read).sum();
        assert_eq!(
            read,
            (left.sim_bytes as f64 * left.multiplier) as u64
                + (right.sim_bytes as f64 * right.multiplier) as u64
        );
        assert!(out.trace.stages.iter().any(|s| s.shuffle_bytes > 0), "in-memory shuffles happen");
    }
}
