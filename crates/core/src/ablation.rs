//! Ablation studies: isolating the design choices the paper analyses.
//!
//! The paper compares three complete systems, so each observed difference
//! mixes several design choices (platform, access model, geometry library,
//! local join algorithm). Because our three implementations run on shared
//! substrates, we can flip one choice at a time — the experiments the paper
//! could not run. Each function returns labelled rows of simulated seconds;
//! the `reproduce ablations` command and the Criterion benches print them.

use sjc_cluster::{Cluster, ClusterConfig};
use sjc_geom::EngineKind;

use crate::common::{LocalJoinAlgo, PartitionerKind};
use crate::experiment::Workload;
use crate::framework::{DistributedSpatialJoin, JoinInput, JoinPredicate};
use crate::hadoopgis::HadoopGis;
use crate::lde::LdeEngine;
use crate::spatialhadoop::SpatialHadoop;
use crate::spatialspark::SpatialSpark;

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub label: String,
    /// End-to-end simulated seconds, or the failure kind.
    pub outcome: Result<f64, String>,
}

impl AblationRow {
    fn run(
        label: impl Into<String>,
        sys: &dyn DistributedSpatialJoin,
        cluster: &Cluster,
        left: &JoinInput,
        right: &JoinInput,
    ) -> AblationRow {
        let outcome = sys
            .run(cluster, left, right, JoinPredicate::Intersects)
            .map(|o| o.trace.total_seconds())
            .map_err(|e| e.kind().to_string());
        AblationRow { label: label.into(), outcome }
    }

    pub fn seconds(&self) -> Option<f64> {
        self.outcome.as_ref().ok().copied()
    }
}

fn ws() -> Cluster {
    Cluster::new(ClusterConfig::workstation())
}

/// GEOS vs JTS on the *same* system: the geometry-library factor of §II.C
/// in isolation. On HadoopGIS (whose join reducer is dominated by
/// per-record geometry calls) the engine matters enormously; on
/// SpatialHadoop (where refinement is a sliver of the pipeline) it barely
/// registers — which is exactly why the paper's HadoopGIS numbers implicate
/// GEOS while SpatialHadoop's do not.
pub fn geometry_engine(scale: f64, seed: u64) -> Vec<AblationRow> {
    let (l, r) = Workload::edge01_linearwater01().prepare(scale, seed);
    let cluster = ws();
    let mut rows = Vec::new();
    for engine in [EngineKind::Jts, EngineKind::Geos] {
        let sys = HadoopGis { engine, ..HadoopGis::default() };
        rows.push(AblationRow::run(
            format!("HadoopGIS + {}", engine.name()),
            &sys,
            &cluster,
            &l,
            &r,
        ));
    }
    for engine in [EngineKind::Jts, EngineKind::Geos] {
        let sys = SpatialHadoop { engine, ..SpatialHadoop::default() };
        rows.push(AblationRow::run(
            format!("SpatialHadoop + {}", engine.name()),
            &sys,
            &cluster,
            &l,
            &r,
        ));
    }
    rows
}

/// Streaming vs native data access with the geometry engine held equal:
/// HadoopGIS-with-JTS vs SpatialHadoop-with-JTS. What remains of the gap is
/// the access model (pipes, re-parsing, extra jobs, script reducers).
pub fn access_model(scale: f64, seed: u64) -> Vec<AblationRow> {
    let (l, r) = Workload::taxi1m_nycb().prepare(scale, seed);
    let cluster = ws();
    let streaming = HadoopGis { engine: EngineKind::Jts, ..HadoopGis::default() };
    let native = SpatialHadoop::default();
    vec![
        AblationRow::run(
            "streaming access (HadoopGIS pipeline, JTS)",
            &streaming,
            &cluster,
            &l,
            &r,
        ),
        AblationRow::run("native access (SpatialHadoop pipeline, JTS)", &native, &cluster, &l, &r),
    ]
}

/// The paper's three local-join algorithms (§II.C) plus the repo's striped
/// SoA sweep, inside SpatialHadoop.
pub fn local_join_algo(scale: f64, seed: u64) -> Vec<AblationRow> {
    let (l, r) = Workload::edge01_linearwater01().prepare(scale, seed);
    let cluster = ws();
    [
        LocalJoinAlgo::StripeSweep,
        LocalJoinAlgo::PlaneSweep,
        LocalJoinAlgo::SyncRTree,
        LocalJoinAlgo::IndexedNestedLoop,
    ]
    .into_iter()
    .map(|algo| {
        let sys = SpatialHadoop { local_algo: algo, ..SpatialHadoop::default() };
        AblationRow::run(format!("{algo:?}"), &sys, &cluster, &l, &r)
    })
    .collect()
}

/// One cell of the system × kernel ablation grid.
#[derive(Debug, Clone)]
pub struct KernelGridRow {
    pub system: &'static str,
    pub kernel: LocalJoinAlgo,
    /// End-to-end simulated seconds, or the failure kind.
    pub outcome: Result<f64, String>,
}

impl KernelGridRow {
    pub fn seconds(&self) -> Option<f64> {
        self.outcome.as_ref().ok().copied()
    }
}

/// Every system × every local-join kernel: the kernel-selection seam
/// exercised end-to-end, with the kernel as an explicit report column.
///
/// Within one system, `StripeSweep` must tie `PlaneSweep` to the simulated
/// nanosecond — the striped kernel reports the sweep's canonical
/// `JoinStats`, so only host wall time may differ (the tests pin this).
/// The R-tree kernels genuinely change simulated time because their
/// traversal counts are charged.
pub fn kernel_grid(scale: f64, seed: u64) -> Vec<KernelGridRow> {
    let (l, r) = Workload::taxi1m_nycb().prepare(scale, seed);
    let cluster = ws();
    const KERNELS: [LocalJoinAlgo; 4] = [
        LocalJoinAlgo::StripeSweep,
        LocalJoinAlgo::PlaneSweep,
        LocalJoinAlgo::SyncRTree,
        LocalJoinAlgo::IndexedNestedLoop,
    ];
    let mut rows = Vec::new();
    for kernel in KERNELS {
        let sys = SpatialHadoop { local_algo: kernel, ..SpatialHadoop::default() };
        rows.push(run_kernel_cell("SpatialHadoop", kernel, &sys, &cluster, &l, &r));
    }
    for kernel in KERNELS {
        let sys = HadoopGis { local_algo: kernel, ..HadoopGis::default() };
        rows.push(run_kernel_cell("HadoopGIS", kernel, &sys, &cluster, &l, &r));
    }
    for kernel in KERNELS {
        let sys = SpatialSpark { local_algo: kernel, ..SpatialSpark::default() };
        rows.push(run_kernel_cell("SpatialSpark", kernel, &sys, &cluster, &l, &r));
    }
    for kernel in KERNELS {
        let sys = LdeEngine { local_algo: kernel, ..LdeEngine::default() };
        rows.push(run_kernel_cell("LDE-MC+", kernel, &sys, &cluster, &l, &r));
    }
    rows
}

fn run_kernel_cell(
    system: &'static str,
    kernel: LocalJoinAlgo,
    sys: &dyn DistributedSpatialJoin,
    cluster: &Cluster,
    left: &JoinInput,
    right: &JoinInput,
) -> KernelGridRow {
    let outcome = sys
        .run(cluster, left, right, JoinPredicate::Intersects)
        .map(|o| o.trace.total_seconds())
        .map_err(|e| e.kind().to_string());
    KernelGridRow { system, kernel, outcome }
}

/// Formats the kernel grid as an aligned table with a kernel column.
pub fn format_kernel_grid(title: &str, rows: &[KernelGridRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "--- {title} ---");
    let _ = writeln!(out, "  {:<16} {:<20} {:>11}", "system", "kernel", "simulated");
    for row in rows {
        let kernel = format!("{:?}", row.kernel);
        match &row.outcome {
            Ok(s) => {
                let _ = writeln!(out, "  {:<16} {:<20} {:>9.1} s", row.system, kernel, s);
            }
            Err(e) => {
                let _ =
                    writeln!(out, "  {:<16} {:<20} {:>11}", row.system, kernel, format!("({e})"));
            }
        }
    }
    out
}

/// Partition-based vs broadcast-based SpatialSpark (§II.B — the comparison
/// the paper defers to future work), on both a small and a big right side.
pub fn broadcast_join(scale: f64, seed: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for (w, cfg) in [
        (Workload::taxi1m_nycb(), ClusterConfig::workstation()),
        (Workload::taxi1m_nycb(), ClusterConfig::ec2(10)),
        (Workload::edge01_linearwater01(), ClusterConfig::workstation()),
        (Workload::edge01_linearwater01(), ClusterConfig::ec2(10)),
    ] {
        let (l, r) = w.prepare(scale, seed);
        let cluster = Cluster::new(cfg.clone());
        for bcast in [false, true] {
            let sys = SpatialSpark { broadcast_join: bcast, ..SpatialSpark::default() };
            let kind = if bcast { "broadcast" } else { "partition" };
            rows.push(AblationRow::run(
                format!("{} on {} ({kind}-based)", w.name, cfg.name),
                &sys,
                &cluster,
                &l,
                &r,
            ));
        }
    }
    rows
}

/// Partition-count sweep for SpatialSpark — the sample-rate / granularity
/// knob of §II.A-B (too few partitions starve task slots and blow up
/// per-executor memory; too many pay per-task overhead).
pub fn partition_sweep(scale: f64, seed: u64) -> Vec<AblationRow> {
    let (l, r) = Workload::taxi1m_nycb().prepare(scale, seed);
    let cluster = Cluster::new(ClusterConfig::ec2(10));
    [32usize, 128, 512, 2048]
        .into_iter()
        .map(|p| {
            let sys = SpatialSpark { partitions: p, ..SpatialSpark::default() };
            AblationRow::run(format!("{p} partitions"), &sys, &cluster, &l, &r)
        })
        .collect()
}

/// Re-partitioning vs compatible grids in SpatialHadoop (§II.B: "SpatialHadoop
/// can run faster when re-partitioning can be skipped").
pub fn repartitioning(scale: f64, seed: u64) -> Vec<AblationRow> {
    let (l, r) = Workload::edge01_linearwater01().prepare(scale, seed);
    let cluster = ws();
    [false, true]
        .into_iter()
        .map(|reuse| {
            let sys = SpatialHadoop { reuse_partitions: reuse, ..SpatialHadoop::default() };
            let label = if reuse {
                "compatible grids (re-partitioning skipped)"
            } else {
                "independent grids (re-partitioning required)"
            };
            AblationRow::run(label, &sys, &cluster, &l, &r)
        })
        .collect()
}

/// Partitioner family sweep for SpatialHadoop (fixed grid vs STR tiles vs
/// BSP — the SATO design space of §II.A).
pub fn partitioner_kind(scale: f64, seed: u64) -> Vec<AblationRow> {
    let (l, r) = Workload::taxi1m_nycb().prepare(scale, seed);
    let cluster = ws();
    [PartitionerKind::FixedGrid, PartitionerKind::StrTiles, PartitionerKind::Bsp]
        .into_iter()
        .map(|k| {
            let sys = SpatialHadoop { partitioner: k, ..SpatialHadoop::default() };
            AblationRow::run(k.name(), &sys, &cluster, &l, &r)
        })
        .collect()
}

/// Formats a set of ablation rows as an aligned text block.
pub fn format_rows(title: &str, rows: &[AblationRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "--- {title} ---");
    for row in rows {
        match &row.outcome {
            Ok(s) => {
                let _ = writeln!(out, "  {:<48} {:>9.1} s", row.label, s);
            }
            Err(e) => {
                let _ = writeln!(out, "  {:<48} {:>11}", row.label, format!("({e})"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 1e-4;
    const SEED: u64 = 7;
    /// HadoopGIS pipe margins on `edge0.1` are slim (they were in the paper
    /// too — it barely succeeded on the workstation), so runs involving it
    /// use the calibration scale where partition skew estimates are stable.
    const HG_SCALE: f64 = 1e-3;

    #[test]
    fn geos_slower_than_jts_on_identical_system() {
        let rows = geometry_engine(HG_SCALE, SEED);
        let hg_jts = rows[0].seconds().expect("HadoopGIS+JTS succeeds");
        let hg_geos = rows[1].seconds().expect("HadoopGIS+GEOS succeeds");
        assert!(
            hg_geos > 1.2 * hg_jts,
            "on HadoopGIS the engine dominates: GEOS {hg_geos} vs JTS {hg_jts}"
        );
        let sh_jts = rows[2].seconds().expect("SpatialHadoop+JTS succeeds");
        let sh_geos = rows[3].seconds().expect("SpatialHadoop+GEOS succeeds");
        assert!(sh_geos >= sh_jts, "GEOS never beats JTS");
        assert!(
            (sh_geos - sh_jts) / sh_jts < 0.2,
            "on SpatialHadoop refinement is a sliver: {sh_jts} vs {sh_geos}"
        );
    }

    #[test]
    fn streaming_slower_than_native_with_equal_engine() {
        let rows = access_model(HG_SCALE, SEED);
        let streaming = rows[0].seconds().expect("streaming run succeeds");
        let native = rows[1].seconds().expect("native run succeeds");
        assert!(
            streaming > 2.0 * native,
            "streaming {streaming} should far exceed native {native}"
        );
    }

    #[test]
    fn local_join_algorithms_all_complete() {
        let rows = local_join_algo(SCALE, SEED);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.seconds().is_some(), "{} failed", r.label);
        }
        // Cost-neutral kernel swap: the striped kernel reports the sweep's
        // canonical JoinStats, so simulated time ties to the bit.
        assert_eq!(rows[0].seconds(), rows[1].seconds(), "StripeSweep must tie PlaneSweep");
    }

    #[test]
    fn kernel_grid_covers_all_systems_and_ties_sweep_kernels() {
        let rows = kernel_grid(SCALE, SEED);
        assert_eq!(rows.len(), 16, "4 systems x 4 kernels");
        for system in ["SpatialHadoop", "HadoopGIS", "SpatialSpark", "LDE-MC+"] {
            let cell = |kernel: LocalJoinAlgo| {
                rows.iter()
                    .find(|r| r.system == system && r.kernel == kernel)
                    .and_then(|r| r.seconds())
                    .unwrap_or_else(|| panic!("{system} {kernel:?} failed"))
            };
            assert_eq!(
                cell(LocalJoinAlgo::StripeSweep),
                cell(LocalJoinAlgo::PlaneSweep),
                "{system}: StripeSweep must be simulated-cost-neutral vs PlaneSweep"
            );
        }
        let table = format_kernel_grid("kernel grid", &rows);
        assert!(table.contains("kernel"), "report has a kernel column");
        assert!(table.contains("StripeSweep"));
    }

    #[test]
    fn partitioner_families_all_complete() {
        for r in partitioner_kind(SCALE, SEED) {
            assert!(r.seconds().is_some(), "{} failed", r.label);
        }
    }

    #[test]
    fn skipping_repartitioning_is_faster() {
        let rows = repartitioning(SCALE, SEED);
        let independent = rows[0].seconds().expect("independent grids run");
        let compatible = rows[1].seconds().expect("compatible grids run");
        assert!(compatible < independent, "{compatible} !< {independent}");
    }

    #[test]
    fn broadcast_join_wins_on_small_right_side() {
        // taxi1m ⋈ nycb: the right side is tiny, so broadcasting the full
        // index avoids the shuffle entirely and should win.
        let rows = broadcast_join(SCALE, SEED);
        let part = rows[0].seconds().expect("partition-based succeeds");
        let bcast = rows[1].seconds().expect("broadcast-based succeeds");
        assert!(bcast < part, "broadcast {bcast} should beat partition {part} on tiny right side");
    }
}
