//! Compat shim over the [`sjc_par`] deterministic parallel runtime.
//!
//! Historically this module carried the workspace's only parallel primitive
//! (a per-item atomic-cursor `par_map`). The runtime now lives in the
//! dedicated `sjc-par` crate — chunked range claiming on a cache-line-padded
//! cursor, plus flat-map / stable sort / fixed-shape reduce — and this module
//! re-exports the map primitive so existing `crate::par::par_map` call sites
//! keep working. The contract is unchanged and documented here on purpose:
//! **`par_map` is order-preserving** (slot `i` holds `f(&items[i])`), so
//! parallel and serial execution are bit-identical at every thread count —
//! the property the determinism integration tests pin down.

/// Applies `f` to every item of `items` in parallel (chunk-claimed, order
/// preserving), returning outputs in input order. Thread budget comes from
/// `sjc_par::Budget::resolve()` (`SJC_PAR_THREADS` / global override / hw).
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    sjc_par::par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map_exactly() {
        let items: Vec<f64> = (0..5000).map(|i| i as f64 * 0.1).collect();
        let par: Vec<f64> = par_map(&items, |&x| (x.sin() * 1e6).floor());
        let ser: Vec<f64> = items.iter().map(|&x| (x.sin() * 1e6).floor()).collect();
        assert_eq!(par, ser, "parallel and serial must be bit-identical");
    }
}
