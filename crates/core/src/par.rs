//! Deterministic data parallelism on std threads.
//!
//! A minimal replacement for the `rayon` idioms the workspace used
//! (`par_iter().map().collect()`): [`par_map`] fans a pure function out over
//! scoped threads and collects results **in input order**, so parallel and
//! serial execution are bit-identical — the property the determinism
//! integration tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `n` items.
fn workers(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    hw.min(n).max(1)
}

/// Applies `f` to every item of `items` in parallel, returning outputs in
/// input order. `f` must be pure (the callers' items are independent
/// simulation cells / candidate pairs), so scheduling order cannot affect
/// the result.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = workers(n);
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    // Work-stealing by atomic cursor: threads claim the next unprocessed
    // index and write its result into a preallocated slot, preserving order.
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_ptr = SendSlots(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            let slots_ptr = &slots_ptr;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // sjc-lint: allow(no-panic-in-lib) — the break above guarantees i < n = items.len()
                let out = f(&items[i]);
                // SAFETY: each index is claimed by exactly one thread (the
                // atomic fetch_add hands out distinct indices), so no two
                // threads write the same slot, and the scope outlives all
                // writers before `slots` is read again.
                unsafe { *slots_ptr.0.add(i) = Some(out) };
            });
        }
    });

    slots
        .into_iter()
        .map(|s| match s {
            Some(v) => v,
            // Unreachable: every index in 0..n is claimed and filled above.
            None => unreachable!("par_map slot left unfilled"), // sjc-lint: allow(no-panic-in-lib) — structurally impossible; every index is claimed by the atomic cursor
        })
        .collect()
}

/// Raw-pointer wrapper so the slot array can be shared with scoped threads.
struct SendSlots<U>(*mut Option<U>);
// SAFETY: disjoint-index writes only, synchronized by the thread scope join.
unsafe impl<U: Send> Sync for SendSlots<U> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map_exactly() {
        let items: Vec<f64> = (0..5000).map(|i| i as f64 * 0.1).collect();
        let par: Vec<f64> = par_map(&items, |&x| (x.sin() * 1e6).floor());
        let ser: Vec<f64> = items.iter().map(|&x| (x.sin() * 1e6).floor()).collect();
        assert_eq!(par, ser, "parallel and serial must be bit-identical");
    }
}
