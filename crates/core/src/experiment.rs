//! The paper's experiment grid: workloads × hardware × systems.

use sjc_cluster::metrics::Phase;
use sjc_cluster::{Cluster, ClusterConfig, FaultPlan, RunTrace, SimError};
use sjc_data::DatasetId;

use crate::framework::{DistributedSpatialJoin, JoinInput, JoinPredicate};
use crate::hadoopgis::HadoopGis;
use crate::spatialhadoop::SpatialHadoop;
use crate::spatialspark::SpatialSpark;

/// The three evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    HadoopGis,
    SpatialHadoop,
    SpatialSpark,
}

impl SystemKind {
    pub fn all() -> [SystemKind; 3] {
        [SystemKind::HadoopGis, SystemKind::SpatialHadoop, SystemKind::SpatialSpark]
    }

    /// Instantiates the system with its default (paper) configuration.
    pub fn instance(&self) -> Box<dyn DistributedSpatialJoin> {
        match self {
            SystemKind::HadoopGis => Box::new(HadoopGis::default()),
            SystemKind::SpatialHadoop => Box::new(SpatialHadoop::default()),
            SystemKind::SpatialSpark => Box::new(SpatialSpark::default()),
        }
    }

    pub fn paper_name(&self) -> &'static str {
        match self {
            SystemKind::HadoopGis => "HadoopGIS",
            SystemKind::SpatialHadoop => "SpatialHadoop",
            SystemKind::SpatialSpark => "SpatialSpark",
        }
    }
}

/// One experiment workload: a left and right dataset joined by intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    pub name: &'static str,
    pub left: DatasetId,
    pub right: DatasetId,
}

impl Workload {
    /// Table 2, row block 1: point-in-polygon at full scale.
    pub fn taxi_nycb() -> Workload {
        Workload { name: "taxi-nycb", left: DatasetId::Taxi, right: DatasetId::Nycb }
    }

    /// Table 2, row block 2: polyline intersection at full scale.
    pub fn edge_linearwater() -> Workload {
        Workload { name: "edge-linearwater", left: DatasetId::Edges, right: DatasetId::Linearwater }
    }

    /// Table 3, row block 1: one month of taxi data.
    pub fn taxi1m_nycb() -> Workload {
        Workload { name: "taxi1m-nycb", left: DatasetId::Taxi1m, right: DatasetId::Nycb }
    }

    /// Table 3, row block 2: the 10% TIGER samples.
    pub fn edge01_linearwater01() -> Workload {
        Workload {
            name: "edge0.1-linearwater0.1",
            left: DatasetId::Edges01,
            right: DatasetId::Linearwater01,
        }
    }

    /// Generates both inputs at `scale` with deterministic seeds.
    ///
    /// Both sides come from the process-wide dataset cache (repeat
    /// preparations of the same workload/scale/seed are free) and cache
    /// misses for the two sides generate concurrently.
    pub fn prepare(&self, scale: f64, seed: u64) -> (JoinInput, JoinInput) {
        let (l, r) = sjc_par::join(
            || sjc_data::generate_cached(self.left, scale, seed),
            || sjc_data::generate_cached(self.right, scale, seed),
        );
        (JoinInput::from_dataset(&l), JoinInput::from_dataset(&r))
    }
}

/// Summary of a successful run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Index-left / index-right / distributed-join / total simulated seconds
    /// (the paper's IA, IB, DJ, TOT columns).
    pub ia_s: f64,
    pub ib_s: f64,
    pub dj_s: f64,
    pub total_s: f64,
    /// Result pair count (generation scale).
    pub pairs: u64,
    pub trace: RunTrace,
}

impl RunSummary {
    fn from_output(out: crate::framework::JoinOutput) -> RunSummary {
        RunSummary {
            ia_s: out.trace.phase_seconds(Phase::IndexA),
            ib_s: out.trace.phase_seconds(Phase::IndexB),
            dj_s: out.trace.phase_seconds(Phase::DistributedJoin),
            total_s: out.trace.total_seconds(),
            pairs: out.pairs.len() as u64,
            trace: out.trace,
        }
    }
}

/// One cell of an experiment table.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub system: SystemKind,
    pub cluster: String,
    pub workload: &'static str,
    /// `Err` carries the failure label (`broken pipe` / `out of memory`) —
    /// the paper's "-" cells.
    pub outcome: Result<RunSummary, String>,
}

impl CellResult {
    /// Total seconds, or `None` for a failed cell.
    pub fn total_s(&self) -> Option<f64> {
        self.outcome.as_ref().ok().map(|s| s.total_s)
    }
}

/// The experiment driver.
#[derive(Debug, Clone)]
pub struct ExperimentGrid {
    /// Generation scale (domain-area fraction; see `sjc-data`).
    pub scale: f64,
    pub seed: u64,
}

impl Default for ExperimentGrid {
    fn default() -> Self {
        ExperimentGrid { scale: 1e-3, seed: 20150701 }
    }
}

impl ExperimentGrid {
    /// Runs one system on one cluster for an already-prepared workload.
    pub fn run_cell(
        &self,
        system: SystemKind,
        config: &ClusterConfig,
        workload: &Workload,
        left: &JoinInput,
        right: &JoinInput,
    ) -> CellResult {
        self.run_cell_faulted(system, config, workload, left, right, &FaultPlan::none())
    }

    /// [`ExperimentGrid::run_cell`] under a fault plan: the same cell, with
    /// the plan's crashes/stragglers/disk errors injected into every stage.
    pub fn run_cell_faulted(
        &self,
        system: SystemKind,
        config: &ClusterConfig,
        workload: &Workload,
        left: &JoinInput,
        right: &JoinInput,
        faults: &FaultPlan,
    ) -> CellResult {
        let cluster = Cluster::with_faults(config.clone(), faults.clone());
        let outcome: Result<RunSummary, SimError> = system
            .instance()
            .run(&cluster, left, right, JoinPredicate::Intersects)
            .map(RunSummary::from_output);
        CellResult {
            system,
            cluster: config.name.clone(),
            workload: workload.name,
            outcome: outcome.map_err(|e| e.kind().to_string()),
        }
    }

    /// Table 2: full-dataset workloads on all four hardware configurations.
    pub fn table2(&self) -> Vec<CellResult> {
        self.run_grid(
            &[Workload::taxi_nycb(), Workload::edge_linearwater()],
            &ClusterConfig::paper_configs(),
        )
    }

    /// Table 3: sampled workloads on WS and EC2-10 (the paper omits the
    /// other configs because they behave like EC2-10).
    pub fn table3(&self) -> Vec<CellResult> {
        self.run_grid(
            &[Workload::taxi1m_nycb(), Workload::edge01_linearwater01()],
            &[ClusterConfig::workstation(), ClusterConfig::ec2(10)],
        )
    }

    /// Table 2 under per-config fault plans: `plan_for` derives the plan
    /// from each cluster configuration (plans are sized by node count, so
    /// they cannot be shared across configs). Used by the fault-sweep bench.
    pub fn table2_faulted(
        &self,
        plan_for: &(dyn Fn(&ClusterConfig) -> FaultPlan + Sync),
    ) -> Vec<CellResult> {
        self.run_grid_faulted(
            &[Workload::taxi_nycb(), Workload::edge_linearwater()],
            &ClusterConfig::paper_configs(),
            plan_for,
        )
    }

    fn run_grid(&self, workloads: &[Workload], configs: &[ClusterConfig]) -> Vec<CellResult> {
        self.run_grid_faulted(workloads, configs, &|_| FaultPlan::none())
    }

    fn run_grid_faulted(
        &self,
        workloads: &[Workload],
        configs: &[ClusterConfig],
        plan_for: &(dyn Fn(&ClusterConfig) -> FaultPlan + Sync),
    ) -> Vec<CellResult> {
        let mut out = Vec::new();
        // The (system, config) grid is the same for every workload — built
        // once, outside the workload loop.
        let cells: Vec<(SystemKind, &ClusterConfig)> = SystemKind::all()
            .into_iter()
            .flat_map(|sys| configs.iter().map(move |cfg| (sys, cfg)))
            .collect();
        for w in workloads {
            let (left, right) = w.prepare(self.scale, self.seed);
            // Cells are pure functions of (system, config, workload, plan):
            // run them in parallel, collect in deterministic grid order.
            out.extend(crate::par::par_map(&cells, |(sys, cfg)| {
                self.run_cell_faulted(*sys, cfg, w, &left, &right, &plan_for(cfg))
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_define_the_papers_experiments() {
        assert_eq!(Workload::taxi_nycb().left, DatasetId::Taxi);
        assert_eq!(Workload::edge01_linearwater01().right, DatasetId::Linearwater01);
    }

    #[test]
    fn run_cell_produces_summary_or_failure_label() {
        let grid = ExperimentGrid { scale: 2e-5, seed: 1 };
        let w = Workload::taxi_nycb();
        let (l, r) = w.prepare(grid.scale, grid.seed);
        let cell =
            grid.run_cell(SystemKind::SpatialHadoop, &ClusterConfig::workstation(), &w, &l, &r);
        let summary = cell.outcome.expect("SpatialHadoop never fails");
        assert!(summary.total_s > 0.0);
        let parts = summary.ia_s + summary.ib_s + summary.dj_s;
        assert!((parts - summary.total_s).abs() < 1e-6, "breakdown sums to total");
        assert!(summary.pairs > 0);
    }

    #[test]
    fn cell_results_serialize_to_stable_json() {
        use crate::json::ToJson;
        let grid = ExperimentGrid { scale: 2e-5, seed: 1 };
        let w = Workload::taxi_nycb();
        let (l, r) = w.prepare(grid.scale, grid.seed);
        let cell =
            grid.run_cell(SystemKind::SpatialHadoop, &ClusterConfig::workstation(), &w, &l, &r);
        let json = cell.to_json();
        assert_eq!(json.get("workload").as_str(), Some("taxi-nycb"));
        assert_eq!(json.get("cluster").as_str(), Some("WS"));
        let ok = json.get("outcome").get("Ok");
        assert!(ok.get("total_s").as_f64().unwrap() > 0.0);
        assert!(ok.get("trace").get("stages").as_array().unwrap().len() >= 5);
        // The rendered text is parseable-shaped JSON with stable field order.
        let text = json.to_string_pretty();
        assert!(text.contains("\"workload\": \"taxi-nycb\""));
    }

    #[test]
    fn failed_cells_carry_the_failure_kind() {
        let grid = ExperimentGrid { scale: 2e-5, seed: 1 };
        let w = Workload::taxi_nycb();
        let (l, r) = w.prepare(grid.scale, grid.seed);
        let cell = grid.run_cell(SystemKind::HadoopGis, &ClusterConfig::ec2(10), &w, &l, &r);
        assert_eq!(cell.outcome.unwrap_err(), "broken pipe");
    }
}
