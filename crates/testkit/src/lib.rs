//! # sjc-testkit — deterministic, std-only property testing
//!
//! A tiny substitute for the `proptest` crate that the offline build cannot
//! pull in. Every test draws its cases from a [`TestRng`] seeded with a
//! constant, so failures are reproducible by construction: a failing case is
//! reported with the seed and case index that produced it, and re-running the
//! test replays the identical sequence. There is no shrinking — generators
//! here are simple enough that the raw case is readable.
//!
//! ```
//! use sjc_testkit::{cases, TestRng};
//!
//! // 100 deterministic cases of (vec of tasks, slot count).
//! cases(0xC0FFEE, 100, |rng| {
//!     let tasks = rng.vec_u64(1..1_000, 1..20);
//!     let slots = rng.usize_in(1..8);
//!     assert!(tasks.len() < 20 && slots < 8);
//! });
//! ```

use std::ops::Range;

/// SplitMix64: a tiny, high-quality, seedable PRNG (public-domain algorithm
/// by Sebastiano Vigna). Deterministic across platforms and Rust versions —
/// which is the whole point for this workspace.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        range.start + self.f64_unit() * (range.end - range.start)
    }

    /// Uniform `u64` in `[lo, hi)`. Uses rejection-free modulo reduction —
    /// bias is negligible for test-case generation.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        let span = range.end.saturating_sub(range.start).max(1);
        range.start + self.next_u64() % span
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// Vector of uniform `u64` values; element range `elems`, length drawn
    /// from `len`.
    pub fn vec_u64(&mut self, elems: Range<u64>, len: Range<usize>) -> Vec<u64> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.u64_in(elems.clone())).collect()
    }

    /// Vector of uniform `f64` values.
    pub fn vec_f64(&mut self, elems: Range<f64>, len: Range<usize>) -> Vec<f64> {
        let n = self.usize_in(len);
        (0..n).map(|_| self.f64_in(elems.clone())).collect()
    }
}

/// Runs `body` against `n` deterministic cases drawn from `seed`.
///
/// Panics (test failure) are annotated with the seed and case index via a
/// stderr line printed *before* re-raising, so a failing case is
/// reproducible: temporarily change `n` to `index + 1` (or bisect with the
/// printed index) and debug the single case.
pub fn cases<F: FnMut(&mut TestRng)>(seed: u64, n: usize, mut body: F) {
    for case in 0..n {
        // Each case gets an independent stream derived from (seed, case) so
        // editing the body of one case cannot perturb later ones.
        let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("sjc-testkit: case {case} of seed {seed:#x} failed; re-run is deterministic");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let f = rng.f64_unit();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            assert!((3..17).contains(&rng.usize_in(3..17)));
            let v = rng.vec_u64(5..10, 2..4);
            assert!(v.len() >= 2 && v.len() < 4);
            assert!(v.iter().all(|&x| (5..10).contains(&x)));
        }
    }

    #[test]
    fn cases_replays_identical_streams() {
        let mut first: Vec<u64> = Vec::new();
        cases(123, 10, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        cases(123, 10, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        cases(1, 5, |_| panic!("boom"));
    }
}
