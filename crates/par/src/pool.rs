//! The lazily-initialized persistent worker pool.
//!
//! Every parallel primitive in this crate used to spawn (and join) a fresh
//! set of `std::thread::scope` threads per call. Thread creation costs tens
//! of microseconds, so the many fine-grained parallel calls of the
//! three-stage join pipeline paid spawn overhead that dwarfed the work —
//! `BENCH_baseline.json` showed every workload scaling *negatively* with
//! threads. This module replaces per-call spawning with a process-lifetime
//! pool: workers are spawned once (lazily, on the first parallel call that
//! wants help), park on a condvar between jobs, and claim work from an
//! injector queue of submitted jobs.
//!
//! ## Determinism
//!
//! The pool never decides *what* a result is — only *who* computes it.
//! A job is one lifetime-erased claim-loop closure; every participant
//! (helpers and the submitting caller alike) runs the same loop, which
//! claims chunk ranges from an atomic cursor and writes results into
//! caller-owned, index-addressed slots. Which thread claims which chunk
//! varies run to run; the slot a result lands in never does. All
//! 1-vs-8-thread bit-identity guarantees therefore hold exactly as they did
//! under scoped spawning.
//!
//! ## Job lifecycle and memory safety
//!
//! The claim loop borrows the caller's stack (items, closure, output
//! slots), so its lifetime is erased before it enters the shared queue. The
//! invariant that makes this sound: **[`run`] does not return until every
//! helper pass that claimed the job has been counted back in** under the
//! pool mutex. Per job the queue tracks `slots_left` (helper passes still
//! claimable) and `running` (passes currently executing). The caller
//! participates first, then revokes the remaining `slots_left` and waits
//! until `running == 0`, at which point the entry is removed and no worker
//! can reach the erased pointers again — a worker's last touch of a job is
//! the queue-mutex unlock that publishes its decrement.
//!
//! ## Panics and nesting
//!
//! A panic in any pass is caught, parked in the job's caller-owned slot,
//! and re-raised on the caller after every pass has finished (matching the
//! propagation the scoped version got from `Scope::join`). Workers mark
//! themselves with a thread-local flag; a parallel call issued *from* a
//! worker runs serially on that worker ([`on_worker`]), so nested
//! parallelism cannot deadlock the fixed-size pool.

use std::cell::Cell;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Hard cap on pool size — a backstop against absurd `SJC_PAR_THREADS`
/// values, far above any real hardware budget this workspace targets.
const MAX_WORKERS: usize = 256;

/// A caught panic payload, parked until the job's caller can re-raise it.
type Payload = Box<dyn std::any::Any + Send + 'static>;

/// One submitted job in the injector queue. `work` and `panic_slot` point
/// into the stack frame of the [`run`] call that owns the job; see the
/// module docs for the invariant that keeps them valid.
struct JobEntry {
    id: u64,
    work: *const (dyn Fn() + Sync + 'static),
    panic_slot: *const Mutex<Option<Payload>>,
    /// Helper passes still claimable. The caller's own pass is not counted.
    slots_left: usize,
    /// Helper passes currently executing.
    running: usize,
}

// SAFETY: the raw pointers are only dereferenced by workers between
// claiming the job and reporting the pass done, and `run` keeps the
// pointees alive until no pass is claimable or running.
unsafe impl Send for JobEntry {}

struct State {
    jobs: Vec<JobEntry>,
    next_id: u64,
    /// Workers spawned so far (process lifetime; they never exit).
    workers: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Wakes parked workers when a job with open helper slots arrives.
    work_ready: Condvar,
    /// Wakes waiting callers when a helper pass finishes.
    pass_done: Condvar,
}

// sjc-lint: allow(cache-purity) — lazily builds the process-global worker pool; scheduling state only decides which thread computes what, never the results (pinned by the 1-vs-8-thread bit-identity tests)
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State { jobs: Vec::new(), next_id: 0, workers: 0 }),
        work_ready: Condvar::new(),
        pass_done: Condvar::new(),
    })
}

thread_local! {
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on a pool worker thread. The primitives consult this to run nested
/// parallel calls serially instead of blocking a worker on other workers.
pub(crate) fn on_worker() -> bool {
    IS_WORKER.with(|w| w.get())
}

/// Locks the pool state, recovering from poisoning: the state (claim
/// counters, queue membership) is updated atomically under the lock, so a
/// panic elsewhere never leaves it torn.
fn lock_state(p: &'static Pool) -> MutexGuard<'static, State> {
    p.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// The body every pool thread runs forever: claim a helper pass, execute
/// the job's claim loop, report the pass done, park when idle.
fn worker_loop(p: &'static Pool) {
    IS_WORKER.with(|w| w.set(true));
    let mut st = lock_state(p);
    loop {
        let claimed = st.jobs.iter_mut().find(|j| j.slots_left > 0).map(|j| {
            j.slots_left -= 1;
            j.running += 1;
            (j.id, j.work, j.panic_slot)
        });
        let Some((id, work, panic_slot)) = claimed else {
            st = p.work_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            continue;
        };
        drop(st);
        // SAFETY: the pass was claimed above (`running` incremented under
        // the lock), so the submitting `run` call is still blocked in its
        // wait loop and the pointees are alive.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (*work)();
        }));
        if let Err(payload) = result {
            // SAFETY: as above — the job cannot be retired while this pass
            // is counted as running.
            let slot = unsafe { &*panic_slot };
            let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
            guard.get_or_insert(payload);
            drop(guard);
        }
        st = lock_state(p);
        if let Some(pos) = st.jobs.iter().position(|j| j.id == id) {
            // sjc-lint: allow(panic-path) — `pos` was just returned by position() on the same locked vec
            let job = &mut st.jobs[pos];
            job.running -= 1;
            if job.slots_left == 0 && job.running == 0 {
                st.jobs.swap_remove(pos);
            }
        }
        // The submitting caller may be waiting for this pass; its final
        // observation of `running == 0` happens-after this unlock, which is
        // the worker's last touch of the job.
        p.pass_done.notify_all();
    }
}

/// Spawns workers until the pool holds `want` (capped at [`MAX_WORKERS`]).
/// Spawn failure degrades to fewer helpers — never to an error: the caller
/// always participates, so progress is guaranteed with zero workers.
fn ensure_workers(st: &mut State, p: &'static Pool, want: usize) {
    let want = want.min(MAX_WORKERS);
    while st.workers < want {
        let spawned = std::thread::Builder::new()
            .name("sjc-par-worker".to_string())
            .spawn(move || worker_loop(p));
        if spawned.is_err() {
            break;
        }
        st.workers += 1;
    }
}

/// Runs `work` on up to `helpers` pool workers concurrently with the
/// caller's own invocation, returning once every started pass has
/// finished. `work` must be a claim-loop: safe to invoke from several
/// threads at once, partitioning the underlying items among invocations
/// (the primitives do this with an atomic cursor). Panics from any pass are
/// re-raised on the caller.
pub(crate) fn run(helpers: usize, work: &(dyn Fn() + Sync)) {
    if helpers == 0 || on_worker() {
        // Serial fast path, and the nested-parallelism rule: a worker never
        // blocks on other workers, it just does the work itself.
        work();
        return;
    }
    let p = pool();
    let panic_slot: Mutex<Option<Payload>> = Mutex::new(None);

    // SAFETY: lifetime erasure only — the pointee outlives the job because
    // this function does not return (nor unwind: see the catch below) until
    // the queue entry is gone and `running == 0`.
    let work_ptr: *const (dyn Fn() + Sync + 'static) =
        unsafe { std::mem::transmute(work as *const (dyn Fn() + Sync)) };

    let id = {
        let mut st = lock_state(p);
        let id = st.next_id;
        st.next_id += 1;
        ensure_workers(&mut st, p, helpers);
        st.jobs.push(JobEntry {
            id,
            work: work_ptr,
            panic_slot: &panic_slot,
            slots_left: helpers,
            running: 0,
        });
        id
    };
    p.work_ready.notify_all();

    // The caller is a full participant — with zero free workers it simply
    // runs the whole claim loop itself.
    let caller_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));

    // Revoke the unclaimed helper passes and wait out the running ones.
    let mut st = lock_state(p);
    // When the entry is already gone the last helper pass retired it.
    while let Some(pos) = st.jobs.iter().position(|j| j.id == id) {
        // sjc-lint: allow(panic-path) — `pos` was just returned by position() on the same locked vec
        let job = &mut st.jobs[pos];
        job.slots_left = 0;
        if job.running == 0 {
            st.jobs.swap_remove(pos);
            break;
        }
        st = p.pass_done.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    drop(st);

    // From here no thread can reach `work` or `panic_slot`; re-raise the
    // caller's own panic first (it is the primary failure), then a helper's.
    if let Err(payload) = caller_result {
        std::panic::resume_unwind(payload);
    }
    let helper_panic = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(payload) = helper_panic {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn caller_alone_completes_all_work_with_zero_helpers() {
        let cursor = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        let work = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= 100 {
                break;
            }
            hits.fetch_add(1, Ordering::Relaxed);
        };
        run(0, &work);
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn helpers_and_caller_cover_every_claim_exactly_once() {
        for helpers in [1, 3, 7] {
            let n = 10_000;
            let cursor = AtomicUsize::new(0);
            let seen: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let work = || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                seen[i].fetch_add(1, Ordering::Relaxed);
            };
            run(helpers, &work);
            assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1), "helpers={helpers}");
        }
    }

    #[test]
    fn panic_in_a_pass_propagates_to_the_caller_after_the_job_retires() {
        let hit = AtomicBool::new(false);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cursor = AtomicUsize::new(0);
            let work = || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 8 {
                    break;
                }
                if i == 3 {
                    panic!("boom");
                }
                hit.store(true, Ordering::Relaxed);
            };
            run(2, &work);
        }));
        assert!(result.is_err(), "the pass panic must re-raise on the caller");
    }

    #[test]
    fn concurrent_jobs_from_many_threads_all_complete() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let cursor = AtomicUsize::new(0);
                        let sum = AtomicUsize::new(0);
                        let work = || loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= 64 {
                                break;
                            }
                            sum.fetch_add(i, Ordering::Relaxed);
                        };
                        run(3, &work);
                        assert_eq!(sum.load(Ordering::Relaxed), 64 * 63 / 2);
                    }
                });
            }
        });
    }
}
