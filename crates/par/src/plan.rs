//! Adaptive granularity: how a parallel call is split into chunks, and
//! when it should not be split at all.
//!
//! The old runtime used one fixed heuristic (`SPAWN_MIN` items) tuned for
//! per-call thread spawning. The persistent pool changes the cost model —
//! engaging a helper now costs a condvar wake plus a queue transaction, not
//! a thread spawn — so the decision is made by a pure, unit-testable
//! planner instead:
//!
//! * **serial fast path** — when the *estimated total work* (items × a
//!   static per-item cost weight) is below [`SERIAL_CUTOVER_WORK`], every
//!   helper woken would cost more than it contributes; the call runs on the
//!   caller. This is what keeps `data_gen`-sized workloads from paying any
//!   coordination tax at 8 threads.
//! * **cost-aware chunk sizing** — cheap items get big chunks (amortizing
//!   the atomic claim), expensive items get small ones (load balance). The
//!   floor is `CLAIM_AMORTIZE_WORK / cost` items per chunk, the target is
//!   ~[`CHUNKS_PER_WORKER`] chunks per participant.
//! * **oversubscription guard** — an *ambient* budget (resolved from
//!   `SJC_PAR_THREADS` or the global override) is capped at
//!   [`crate::hardware_threads`]: more CPU-bound threads than cores only
//!   adds context-switch overhead, which is exactly the negative scaling
//!   the old baseline measured. An *explicit* budget
//!   ([`crate::Budget::explicit`]) is honored verbatim so tests can drive
//!   the pool oversubscribed on any box.
//!
//! Everything here is a pure function of its arguments (the
//! `SJC_PAR_GRANULARITY` override is read once per process and passed in),
//! so the planner itself is deterministic and directly testable.

use std::sync::OnceLock;

use crate::Budget;

/// Minimum estimated work (items × cost weight) before any helper is woken.
/// A pool hand-off costs a few microseconds end to end; at the default item
/// cost this engages helpers from ~1k items upward.
pub const SERIAL_CUTOVER_WORK: u64 = 4096;

/// Target work units per chunk so the atomic range-claim stays negligible.
const CLAIM_AMORTIZE_WORK: u64 = 256;

/// Target chunks per participating thread: enough stealable slack for the
/// tail without re-introducing per-item claim traffic.
const CHUNKS_PER_WORKER: usize = 8;

/// Chunks are capped at this multiple of the claim-amortize floor, so
/// expensive items keep fine-grained dispatch (better tail balance) while
/// cheap items still get claim-amortizing large chunks.
const CHUNK_SPREAD: usize = 16;

/// Default per-item cost weight used by the `par_*` entry points: a typical
/// mapped item (a record transform, a key extraction) is a few times the
/// cost of a trivial integer op (weight 1).
pub const DEFAULT_ITEM_COST: u32 = 4;

/// Per-item weight for coarse tasks (a cell, a stripe, a reduce group):
/// always worth dispatching individually.
pub const COARSE_ITEM_COST: u32 = 256;

/// How one parallel call executes: `helpers == 0` is the serial fast path;
/// otherwise the caller plus up to `helpers` pool workers claim ranges of
/// `chunk` items each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    pub chunk: usize,
    pub helpers: usize,
}

impl ChunkPlan {
    pub fn is_serial(&self) -> bool {
        self.helpers == 0
    }
}

/// The `SJC_PAR_GRANULARITY` override: a floor on items per chunk (also
/// raising the serial cutover to one chunk's worth of items). Read once —
/// the environment is fixed for the process, and re-parsing it on every
/// parallel call would put a syscall on the hot path.
// sjc-lint: allow(cache-purity) — memoizes a process-constant env var; the value cannot change between a cold and a warm cache hit, and chunking never alters results anyway
pub(crate) fn granularity_override() -> Option<usize> {
    static OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("SJC_PAR_GRANULARITY")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Plans a call over `n` items at the default cost weight.
pub fn plan(n: usize, budget: Budget) -> ChunkPlan {
    plan_with(n, budget, DEFAULT_ITEM_COST, granularity_override())
}

/// Plans a call over `n` items whose per-item cost weight is `cost`
/// (relative to a trivial integer op = 1).
pub fn plan_weighted(n: usize, budget: Budget, cost: u32) -> ChunkPlan {
    plan_with(n, budget, cost, granularity_override())
}

/// The pure planner. `min_chunk_override` is the `SJC_PAR_GRANULARITY`
/// value; tests pass it directly instead of mutating the environment.
pub fn plan_with(
    n: usize,
    budget: Budget,
    cost: u32,
    min_chunk_override: Option<usize>,
) -> ChunkPlan {
    let cost = u64::from(cost.max(1));
    let threads = budget.effective_threads();
    let work = (n as u64).saturating_mul(cost);
    let serial_floor = min_chunk_override.unwrap_or(0);
    if threads <= 1 || work < SERIAL_CUTOVER_WORK || n <= serial_floor {
        return ChunkPlan { chunk: n.max(1), helpers: 0 };
    }

    // Floor: enough work per chunk to amortize the claim; cap: a bounded
    // multiple of that floor, so high item costs force finer dispatch.
    // Between the two, target ~CHUNKS_PER_WORKER chunks per participant.
    // The override floor wins over everything.
    let amortize_floor = (CLAIM_AMORTIZE_WORK / cost).max(1) as usize;
    let balance_target = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let chunk = balance_target
        .min(amortize_floor * CHUNK_SPREAD)
        .max(amortize_floor)
        .max(serial_floor)
        .min(n);

    let n_chunks = n.div_ceil(chunk);
    let helpers = threads.min(n_chunks).saturating_sub(1);
    ChunkPlan { chunk, helpers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_inputs_take_the_serial_fast_path_even_at_eight_threads() {
        // The data_gen regression: sub-threshold workloads must not wake a
        // single helper no matter the requested budget.
        for n in [0, 1, 16, 100, 1000] {
            let p = plan_with(n, Budget::explicit(8), 1, None);
            assert!(p.is_serial(), "n={n} plan={p:?}");
        }
        // Just past the cutover the same budget engages helpers.
        let p = plan_with(SERIAL_CUTOVER_WORK as usize, Budget::explicit(8), 1, None);
        assert!(!p.is_serial(), "{p:?}");
    }

    #[test]
    fn cost_weight_moves_the_serial_cutover() {
        // 100 coarse tasks are worth dispatching; 100 trivial items are not.
        assert!(!plan_with(100, Budget::explicit(4), COARSE_ITEM_COST, None).is_serial());
        assert!(plan_with(100, Budget::explicit(4), 1, None).is_serial());
    }

    #[test]
    fn chunks_amortize_claims_for_cheap_items_and_shrink_for_expensive_ones() {
        let cheap = plan_with(100_000, Budget::explicit(4), 1, None);
        let dear = plan_with(100_000, Budget::explicit(4), COARSE_ITEM_COST, None);
        assert!(cheap.chunk >= 256, "{cheap:?}");
        assert!(dear.chunk < cheap.chunk, "{dear:?} vs {cheap:?}");
        assert_eq!(dear.helpers, 3);
    }

    #[test]
    fn helpers_never_exceed_the_chunk_count() {
        let p = plan_with(5000, Budget::explicit(64), DEFAULT_ITEM_COST, None);
        assert!(p.helpers < 5000usize.div_ceil(p.chunk), "{p:?}");
        // One-chunk calls are serial: a lone helper would leave the caller
        // idle-waiting on it.
        let one = plan_with(4096, Budget::explicit(8), 1, Some(4096));
        assert!(one.is_serial(), "{one:?}");
    }

    #[test]
    fn granularity_override_floors_chunk_size_and_serial_threshold() {
        // Below the override everything is serial…
        assert!(plan_with(2000, Budget::explicit(8), COARSE_ITEM_COST, Some(2048)).is_serial());
        // …above it, chunks never drop below the override.
        let p = plan_with(100_000, Budget::explicit(8), COARSE_ITEM_COST, Some(2048));
        assert!(!p.is_serial() && p.chunk >= 2048, "{p:?}");
    }

    #[test]
    fn explicit_budgets_are_never_capped_to_hardware() {
        // The ambient-cap half lives next to the resolution test in lib.rs
        // (both mutate the process-global override and must not race).
        let hw = crate::hardware_threads();
        assert_eq!(Budget::explicit(hw + 7).effective_threads(), hw + 7);
    }
}
