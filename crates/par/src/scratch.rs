//! Thread-local scratch arena: typed buffer reuse across hot-path calls.
//!
//! The `hot-alloc` analyzer pass forbids per-iteration allocation inside
//! measured loops; this module is the sanctioned alternative. A hot
//! function *takes* a cleared, capacity-retaining `Vec<T>` from its
//! thread's arena, fills it, and *puts* it back when done — so the stripe
//! sweep's pair buffers, the SoA staging columns, and the scheduler's
//! per-wave vectors are allocated once per thread, not once per cell.
//!
//! ## Rules (see DESIGN.md §16)
//!
//! 1. A taken buffer is always **empty** (cleared on `put`, cleared again
//!    on `take`); only its capacity is recycled. Never rely on contents.
//! 2. `put` only what you own — never a buffer something else still
//!    borrows. The type system enforces this (`put_vec` takes by value).
//! 3. Capacity is advisory: the arena holds at most [`MAX_PER_TYPE`]
//!    buffers per element type and drops oversized ones
//!    ([`MAX_KEEP_BYTES`]), so a one-off giant query cannot pin its peak
//!    footprint forever.
//! 4. The arena is **per thread** (pool workers each have their own), so
//!    take/put never synchronize and buffers stay cache-warm on the thread
//!    that filled them. Migrating a buffer across threads (fill on a
//!    worker, put on the caller) is allowed — it only moves capacity.
//! 5. Determinism is unaffected by construction: a recycled buffer is
//!    indistinguishable from a fresh one to any correct user (rule 1).
//!
//! Forgetting to `put` is not a leak — the buffer just drops normally and
//! the next `take` falls back to a fresh allocation. [`with_vec`] wraps the
//! take/put pair for straight-line uses.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Buffers retained per element type and thread.
const MAX_PER_TYPE: usize = 16;

/// Largest per-buffer capacity (in bytes) the arena keeps on `put`.
const MAX_KEEP_BYTES: usize = 1 << 22;

thread_local! {
    /// Per-thread free lists, keyed by the buffer's concrete `Vec<T>` type.
    /// A `HashMap` is fine here: iteration order is never observed — every
    /// access is a point lookup by `TypeId`.
    static ARENA: RefCell<HashMap<TypeId, Vec<Box<dyn Any>>>> =
        RefCell::new(HashMap::new());
}

/// Takes an empty `Vec<T>` from this thread's arena, reusing a recycled
/// buffer's capacity when one is available.
pub fn take_vec<T: 'static>() -> Vec<T> {
    let recycled =
        ARENA.with(|arena| arena.borrow_mut().get_mut(&TypeId::of::<Vec<T>>()).and_then(Vec::pop));
    match recycled.and_then(|boxed| boxed.downcast::<Vec<T>>().ok()) {
        Some(boxed) => {
            let mut v = *boxed;
            v.clear();
            v
        }
        None => Vec::new(),
    }
}

/// Returns a buffer to this thread's arena for later reuse. The contents
/// are dropped immediately; only the capacity is retained (bounded by
/// [`MAX_PER_TYPE`] and [`MAX_KEEP_BYTES`]).
pub fn put_vec<T: 'static>(mut v: Vec<T>) {
    // Clear before entering the arena borrow: element drops can run
    // arbitrary user code, which must not observe a held RefCell.
    v.clear();
    if v.capacity() == 0 || v.capacity().saturating_mul(size_of::<T>()) > MAX_KEEP_BYTES {
        return;
    }
    ARENA.with(|arena| {
        let mut map = arena.borrow_mut();
        let stack = map.entry(TypeId::of::<Vec<T>>()).or_default();
        if stack.len() < MAX_PER_TYPE {
            stack.push(Box::new(v));
        }
    });
}

/// Runs `f` with a scratch `Vec<T>`, returning the buffer to the arena
/// afterwards. Nesting is fine — inner calls simply take another buffer.
pub fn with_vec<T: 'static, R>(f: impl FnOnce(&mut Vec<T>) -> R) -> R {
    let mut v = take_vec();
    let out = f(&mut v);
    put_vec(v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_after_put_reuses_capacity_and_is_empty() {
        let mut v: Vec<u64> = take_vec();
        v.extend(0..1000);
        let cap = v.capacity();
        put_vec(v);
        let v2: Vec<u64> = take_vec();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap, "capacity {} not recycled", v2.capacity());
    }

    #[test]
    fn types_do_not_cross_and_oversized_buffers_are_dropped() {
        put_vec::<u32>(Vec::with_capacity(64));
        let v: Vec<(u32, u32)> = take_vec();
        assert_eq!(v.capacity(), 0, "a Vec<u32> must not surface as Vec<(u32,u32)>");
        // A buffer past the byte cap is not retained.
        put_vec::<u64>(Vec::with_capacity(MAX_KEEP_BYTES / size_of::<u64>() + 1));
        let big: Vec<u64> = take_vec();
        assert_eq!(big.capacity(), 0);
    }

    #[test]
    fn with_vec_nests_without_aliasing() {
        let total = with_vec::<u64, u64>(|outer| {
            outer.extend(0..10);
            let inner_sum = with_vec::<u64, u64>(|inner| {
                inner.extend(100..110);
                inner.iter().sum()
            });
            outer.iter().sum::<u64>() + inner_sum
        });
        assert_eq!(total, (0..10u64).sum::<u64>() + (100..110u64).sum::<u64>());
    }
}
