//! Deterministic host-side parallelism for the spatial-join workspace.
//!
//! Every primitive in this crate obeys one contract: **the result is a pure
//! function of the inputs — never of the thread count, the chunk schedule, or
//! which worker ran first.** Simulated `RunTrace` numbers therefore do not
//! move by a nanosecond when `SJC_PAR_THREADS` changes; only host wall-clock
//! does. Concretely:
//!
//! * [`par_map`] is **order-preserving**: output slot `i` holds `f(&items[i])`,
//!   exactly as the serial `items.iter().map(f).collect()` would produce.
//!   Workers claim *chunks* of indices from a single cache-line-padded atomic
//!   cursor (range claiming, not per-item `fetch_add`), so contention and
//!   false sharing stay negligible while the slot-indexed writes keep order.
//! * [`par_map_flat`] is an order-preserving flat-map: each chunk appends into
//!   its own buffer and the buffers are concatenated in chunk order, so the
//!   output equals the serial flat-map byte for byte.
//! * [`par_map_weighted`] / [`par_map_flat_weighted`] are the same maps with
//!   **skew-aware (LPT) dispatch**: items are *processed* in descending
//!   estimated-cost order ([`lpt_order`]) so one fat cell cannot serialize the
//!   tail, but results are still *written* to their input-order slots — the
//!   output is bit-identical to the unweighted variant.
//! * [`par_sort_by`] is a **stable** parallel merge sort (ties keep their
//!   original relative order, merges prefer the left run). A stable sort has a
//!   unique answer, so the result is identical to `slice::sort_by` for every
//!   thread count.
//! * [`par_reduce`] folds over **fixed-shape** chunks (`REDUCE_CHUNK`
//!   elements, independent of the thread count) and combines the partials
//!   serially left-to-right, so float/accumulator results are
//!   schedule-independent even for non-associative operations.
//! * [`par_chunks_mut`] is the in-place sibling of [`par_map`]: workers claim
//!   chunk indices and receive disjoint `&mut` sub-slices, so each chunk sees
//!   exactly the transformation the serial `chunks_mut` pass would apply.
//! * [`join`] runs two closures concurrently and returns both results in
//!   argument order.
//!
//! Execution happens on a **lazily-initialized persistent worker pool**
//! ([`pool`]): workers are spawned once and parked between calls, so a
//! parallel call costs a condvar wake instead of a thread spawn/join. How a
//! call is split — or whether it runs serially — is decided by the pure
//! chunk planner in [`plan`] (cost-aware chunk sizing, a serial fast path
//! below a work threshold, and an oversubscription guard that caps *ambient*
//! budgets at the hardware parallelism). Hot paths reuse buffers through the
//! thread-local [`scratch`] arena instead of reallocating per call.
//!
//! Thread budget resolution (first match wins): explicit
//! [`set_global_threads`] override → `SJC_PAR_THREADS` env var →
//! `std::thread::available_parallelism()`. A budget of 1 short-circuits to
//! plain serial execution, which tests use to force determinism comparisons.
//! Ambient budgets above the core count are capped by the planner
//! ([`Budget::effective_threads`]); [`Budget::explicit`] is honored verbatim
//! so tests can drive the pool oversubscribed.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicUsize, Ordering};

mod pool;

pub mod plan;
pub mod scratch;

/// Minimum chunk the parallel sort hands one worker — large enough to
/// amortize the claim and the merge bookkeeping.
const MIN_SORT_CHUNK: usize = 64;

/// Fixed fold-chunk width for [`par_reduce`]. Must not depend on the thread
/// count: the reduction tree's shape is what makes accumulator results
/// schedule-independent.
const REDUCE_CHUNK: usize = 1024;

/// Below this length a parallel sort is slower than `slice::sort_by`.
const SORT_MIN: usize = 4096;

/// Process-global thread override (0 = unset). Set by tests and by `perfsnap`
/// to flip between serial and parallel execution in-process without touching
/// the environment.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-global thread budget; `0` clears the override so the
/// `SJC_PAR_THREADS` env var / hardware parallelism apply again.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::SeqCst);
}

/// A resolved thread budget. Carries the number of worker threads the
/// primitives may use; `Budget::explicit(1)` forces serial execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    threads: usize,
    /// Ambient budgets (resolved from the override / env / hardware) are
    /// capped at the hardware parallelism by [`Budget::effective_threads`];
    /// explicit budgets are not, so tests can oversubscribe deliberately.
    capped: bool,
}

impl Budget {
    /// Resolves the ambient budget: global override → `SJC_PAR_THREADS` →
    /// hardware parallelism.
    pub fn resolve() -> Budget {
        let over = GLOBAL_THREADS.load(Ordering::SeqCst);
        if over > 0 {
            return Budget { threads: over, capped: true };
        }
        if let Some(n) = std::env::var("SJC_PAR_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return Budget { threads: n, capped: true };
        }
        Budget { threads: hardware_threads(), capped: true }
    }

    /// An explicit budget of exactly `n` threads (`n` is clamped to ≥ 1).
    /// Never capped to the hardware parallelism.
    pub fn explicit(n: usize) -> Budget {
        Budget { threads: n.max(1), capped: false }
    }

    /// Number of worker threads this budget allows, as requested.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The thread count the planner actually schedules for: ambient budgets
    /// are capped at [`hardware_threads`] — running more CPU-bound threads
    /// than cores only adds context-switch overhead (the negative scaling
    /// the pre-pool baseline measured) — while explicit budgets pass
    /// through untouched.
    pub fn effective_threads(&self) -> usize {
        if self.capped {
            self.threads.min(hardware_threads())
        } else {
            self.threads
        }
    }
}

/// Hardware parallelism with a serial fallback.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Work-claim cursor padded to a cache line so the hot atomic never false-
/// shares with neighboring data.
#[repr(align(64))]
struct PaddedCursor(AtomicUsize);

/// Raw pointer wrapper so worker threads can write disjoint output slots.
/// Safety rests on the chunk claiming below: `fetch_add` hands each worker a
/// half-open range no other worker ever sees, so every slot is written at
/// most once and without overlap.
struct SendSlots<U>(*mut U);
unsafe impl<U: Send> Sync for SendSlots<U> {}

/// Claims task indices `0..n_tasks` from a shared cursor across the caller
/// and up to `helpers` pool workers. `task` must be safe to run for
/// distinct indices concurrently; every index runs exactly once.
fn run_indexed(helpers: usize, n_tasks: usize, task: impl Fn(usize) + Sync) {
    let helpers = helpers.min(n_tasks.saturating_sub(1));
    if helpers == 0 {
        for i in 0..n_tasks {
            task(i);
        }
        return;
    }
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let work = || loop {
        let i = cursor.0.fetch_add(1, Ordering::Relaxed);
        if i >= n_tasks {
            break;
        }
        task(i);
    };
    pool::run(helpers, &work);
}

/// Order-preserving parallel map: returns `f` applied to every item, in input
/// order, using the ambient [`Budget`].
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_budget(Budget::resolve(), items, f)
}

/// [`par_map`] with an explicit thread budget.
pub fn par_map_budget<T: Sync, U: Send>(
    budget: Budget,
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    par_map_cost(budget, items, plan::DEFAULT_ITEM_COST, f)
}

/// [`par_map_budget`] with an explicit per-item cost weight for the planner.
fn par_map_cost<T: Sync, U: Send>(
    budget: Budget,
    items: &[T],
    cost: u32,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    let p = plan::plan_weighted(n, budget, cost);
    if p.is_serial() || pool::on_worker() {
        return items.iter().map(f).collect();
    }
    let chunk = p.chunk;
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let out = SendSlots(slots.as_mut_ptr());
    let work = || {
        // Capture the whole wrapper, not its raw-pointer field (edition-2021
        // closures capture disjoint fields by default, which would sidestep
        // the `Sync` impl on `SendSlots`).
        let out = &out;
        loop {
            let start = cursor.0.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                // SAFETY: `i` lies inside this participant's exclusively
                // claimed range; no other thread writes slot `i`.
                unsafe {
                    *out.0.add(i) = Some(f(item));
                }
            }
        }
    };
    pool::run(p.helpers, &work);
    // sjc-lint: allow(panic-path) — chunk claiming fills every slot; an empty one is a runtime bug this expect should surface loudly
    slots.into_iter().map(|s| s.expect("chunk claiming covers every index exactly once")).collect()
}

/// Order-preserving parallel flat-map: `f` appends any number of outputs per
/// item into the provided buffer; buffers are concatenated in input order.
pub fn par_map_flat<T: Sync, U: Send + 'static>(
    items: &[T],
    f: impl Fn(&T, &mut Vec<U>) + Sync,
) -> Vec<U> {
    par_map_flat_budget(Budget::resolve(), items, f)
}

/// [`par_map_flat`] with an explicit thread budget.
pub fn par_map_flat_budget<T: Sync, U: Send + 'static>(
    budget: Budget,
    items: &[T],
    f: impl Fn(&T, &mut Vec<U>) + Sync,
) -> Vec<U> {
    let n = items.len();
    let p = plan::plan(n, budget);
    if p.is_serial() || pool::on_worker() {
        let mut out = Vec::new();
        for item in items {
            f(item, &mut out);
        }
        return out;
    }
    let chunk = p.chunk;
    let n_chunks = n.div_ceil(chunk);
    let mut bufs: Vec<Option<Vec<U>>> = Vec::with_capacity(n_chunks);
    bufs.resize_with(n_chunks, || None);
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let out = SendSlots(bufs.as_mut_ptr());
    let work = || {
        let out = &out; // capture the wrapper, not its raw-pointer field
        loop {
            let start = cursor.0.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            // The chunk buffer comes from the participant's scratch arena, so
            // repeated flat-map calls reuse capacity instead of reallocating.
            let mut buf = scratch::take_vec();
            // sjc-lint: allow(panic-path) — start < n guarded above and end is clamped to n, so the range is in bounds
            for item in &items[start..end] {
                f(item, &mut buf);
            }
            // SAFETY: chunk index `start / chunk` is unique to this claimed
            // range; no other thread writes this buffer slot.
            unsafe {
                *out.0.add(start / chunk) = Some(buf);
            }
        }
    };
    pool::run(p.helpers, &work);
    concat_buffers(bufs)
}

/// Concatenates per-chunk buffers in slot order, recycling the emptied
/// buffers through the scratch arena.
fn concat_buffers<U: 'static>(bufs: Vec<Option<Vec<U>>>) -> Vec<U> {
    let total: usize = bufs.iter().map(|b| b.as_ref().map_or(0, Vec::len)).sum();
    let mut flat = Vec::with_capacity(total);
    for buf in bufs {
        // sjc-lint: allow(panic-path) — chunk claiming fills every buffer; an empty one is a runtime bug this expect should surface loudly
        let mut buf = buf.expect("chunk claiming covers every chunk exactly once");
        flat.append(&mut buf);
        scratch::put_vec(buf);
    }
    flat
}

/// Stable longest-processing-time-first schedule: the indices of `weights`
/// sorted by descending weight, ties broken by ascending index. The result
/// is always a permutation of `0..weights.len()`; the weighted primitives
/// *process* items in this order while *writing* results to input-order
/// slots, so skew-aware scheduling never changes an output.
pub fn lpt_order(weights: &[u64]) -> Vec<u32> {
    let mut order: Vec<u32> = Vec::with_capacity(weights.len());
    lpt_sort(weights, &mut order);
    order
}

/// [`lpt_order`] into a caller-provided (scratch) buffer.
fn lpt_sort(weights: &[u64], order: &mut Vec<u32>) {
    order.clear();
    order.extend(0..weights.len() as u32);
    // sjc-lint: allow(panic-path) — `order` holds exactly the indices 0..weights.len()
    order.sort_by(|&a, &b| weights[b as usize].cmp(&weights[a as usize]).then(a.cmp(&b)));
}

/// [`par_map`] with skew-aware dispatch: `weight` estimates each item's
/// relative cost, and items are processed heaviest-first (greedy LPT — with
/// dynamic claiming, descending-cost processing order *is* the
/// longest-processing-time-first assignment). The output is bit-identical
/// to [`par_map`]: only the processing order changes.
pub fn par_map_weighted<T: Sync, U: Send>(
    items: &[T],
    weight: impl Fn(&T) -> u64,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    par_map_weighted_budget(Budget::resolve(), items, weight, f)
}

/// [`par_map_weighted`] with an explicit thread budget.
pub fn par_map_weighted_budget<T: Sync, U: Send>(
    budget: Budget,
    items: &[T],
    weight: impl Fn(&T) -> u64,
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    let p = plan::plan_weighted(n, budget, plan::COARSE_ITEM_COST);
    if p.is_serial() || pool::on_worker() || n > u32::MAX as usize {
        return items.iter().map(f).collect();
    }
    let mut weights: Vec<u64> = scratch::take_vec();
    weights.extend(items.iter().map(&weight));
    let mut order: Vec<u32> = scratch::take_vec();
    lpt_sort(&weights, &mut order);

    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let out = SendSlots(slots.as_mut_ptr());
    let order_ref: &[u32] = &order;
    let work = || {
        let out = &out; // capture the wrapper, not its raw-pointer field
        loop {
            let k = cursor.0.fetch_add(1, Ordering::Relaxed);
            let Some(&slot) = order_ref.get(k) else { break };
            let i = slot as usize;
            let Some(item) = items.get(i) else { break };
            // SAFETY: `order` is a permutation, so slot `i` is claimed by
            // exactly one participant.
            unsafe {
                *out.0.add(i) = Some(f(item));
            }
        }
    };
    pool::run(p.helpers, &work);
    scratch::put_vec(weights);
    scratch::put_vec(order);
    // sjc-lint: allow(panic-path) — the LPT order is a permutation, so every slot is filled exactly once
    slots.into_iter().map(|s| s.expect("LPT claiming covers every index exactly once")).collect()
}

/// [`par_map_flat`] with skew-aware (LPT) dispatch: per-item output buffers
/// are filled heaviest-first and concatenated in input order, so the output
/// is bit-identical to the unweighted flat-map.
pub fn par_map_flat_weighted<T: Sync, U: Send + 'static>(
    items: &[T],
    weight: impl Fn(&T) -> u64,
    f: impl Fn(&T, &mut Vec<U>) + Sync,
) -> Vec<U> {
    par_map_flat_weighted_budget(Budget::resolve(), items, weight, f)
}

/// [`par_map_flat_weighted`] with an explicit thread budget.
pub fn par_map_flat_weighted_budget<T: Sync, U: Send + 'static>(
    budget: Budget,
    items: &[T],
    weight: impl Fn(&T) -> u64,
    f: impl Fn(&T, &mut Vec<U>) + Sync,
) -> Vec<U> {
    let n = items.len();
    let p = plan::plan_weighted(n, budget, plan::COARSE_ITEM_COST);
    if p.is_serial() || pool::on_worker() || n > u32::MAX as usize {
        let mut out = Vec::new();
        for item in items {
            f(item, &mut out);
        }
        return out;
    }
    let mut weights: Vec<u64> = scratch::take_vec();
    weights.extend(items.iter().map(&weight));
    let mut order: Vec<u32> = scratch::take_vec();
    lpt_sort(&weights, &mut order);

    let mut bufs: Vec<Option<Vec<U>>> = Vec::with_capacity(n);
    bufs.resize_with(n, || None);
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let out = SendSlots(bufs.as_mut_ptr());
    let order_ref: &[u32] = &order;
    let work = || {
        let out = &out; // capture the wrapper, not its raw-pointer field
        loop {
            let k = cursor.0.fetch_add(1, Ordering::Relaxed);
            let Some(&slot) = order_ref.get(k) else { break };
            let i = slot as usize;
            let Some(item) = items.get(i) else { break };
            let mut buf = scratch::take_vec();
            f(item, &mut buf);
            // SAFETY: `order` is a permutation, so buffer slot `i` is claimed
            // by exactly one participant.
            unsafe {
                *out.0.add(i) = Some(buf);
            }
        }
    };
    pool::run(p.helpers, &work);
    scratch::put_vec(weights);
    scratch::put_vec(order);
    concat_buffers(bufs)
}

/// Stable parallel merge sort: identical output to `slice::sort_by` (which is
/// stable) for every thread count, because a stable sort's result is unique.
pub fn par_sort_by<T: Sync>(v: &mut [T], cmp: impl Fn(&T, &T) -> CmpOrdering + Sync) {
    par_sort_by_budget(Budget::resolve(), v, cmp)
}

/// [`par_sort_by`] with an explicit thread budget.
pub fn par_sort_by_budget<T: Sync>(
    budget: Budget,
    v: &mut [T],
    cmp: impl Fn(&T, &T) -> CmpOrdering + Sync,
) {
    let n = v.len();
    let threads = budget.effective_threads();
    if threads == 1 || n < SORT_MIN || n > u32::MAX as usize || pool::on_worker() {
        v.sort_by(cmp);
        return;
    }
    // Sort a permutation (u32 indices are cheap to merge), then apply it.
    // Stability: chunk sorts use std's stable sort, and merges prefer the
    // left (earlier-index) run on ties, so the permutation equals the one a
    // serial stable sort would produce. The index and merge buffers come
    // from the scratch arena — repeated sorts reuse their capacity.
    let mut idx: Vec<u32> = scratch::take_vec();
    idx.extend(0..n as u32);
    let mut buf: Vec<u32> = scratch::take_vec();
    buf.resize(n, 0);
    let chunk = n.div_ceil(threads).max(MIN_SORT_CHUNK);

    {
        let n_chunks = n.div_ceil(chunk);
        let base = SendSlots(idx.as_mut_ptr());
        let vr: &[T] = v;
        run_indexed(threads - 1, n_chunks, |ci| {
            let base = &base; // capture the wrapper, not its raw-pointer field
            let start = ci * chunk;
            let len = chunk.min(n - start);
            // SAFETY: chunk `ci` is claimed exactly once and the chunks are
            // disjoint sub-ranges of `idx`.
            let piece = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
            // sjc-lint: allow(panic-path) — `idx` holds the permutation 0..n, always in bounds for `v`
            piece.sort_by(|&a, &b| cmp(&vr[a as usize], &vr[b as usize]));
        });
    }

    {
        let mut width = chunk;
        let mut src = &mut idx;
        let mut dst = &mut buf;
        while width < n {
            merge_round(v, src, dst, width, &cmp, threads - 1);
            std::mem::swap(&mut src, &mut dst);
            width *= 2;
        }
        let perm: &[u32] = src;

        // Apply the permutation by moving every element exactly once.
        let mut moved: Vec<T> = Vec::with_capacity(n);
        // SAFETY: `perm` is a permutation of 0..n (built from
        // `(0..n).collect()` and only reordered), so each element is read
        // exactly once, then the whole block is moved back and `moved` is
        // emptied without dropping.
        unsafe {
            for &i in perm {
                moved.push(std::ptr::read(v.as_ptr().add(i as usize)));
            }
            std::ptr::copy_nonoverlapping(moved.as_ptr(), v.as_mut_ptr(), n);
            moved.set_len(0);
        }
    }
    scratch::put_vec(idx);
    scratch::put_vec(buf);
}

/// One parallel round of pairwise run merges from `src` into `dst`.
fn merge_round<T: Sync>(
    v: &[T],
    src: &[u32],
    dst: &mut [u32],
    width: usize,
    cmp: &(impl Fn(&T, &T) -> CmpOrdering + Sync),
    helpers: usize,
) {
    let n = src.len();
    let n_merges = n.div_ceil(2 * width);
    let base = SendSlots(dst.as_mut_ptr());
    run_indexed(helpers, n_merges, |mi| {
        let base = &base; // capture the wrapper, not its raw-pointer field
        let start = mi * 2 * width;
        let end = (start + 2 * width).min(n);
        let mid = (start + width).min(n);
        // SAFETY: merge `mi` is claimed exactly once and `start..end` ranges
        // are disjoint sub-ranges of `dst`.
        let out = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
        // sjc-lint: allow(panic-path) — start ≤ mid ≤ end ≤ n = src.len() by the min() clamps above
        let a = &src[start..mid];
        // sjc-lint: allow(panic-path) — start ≤ mid ≤ end ≤ n = src.len() by the min() clamps above
        let b = &src[mid..end];
        merge_runs(v, a, b, out, cmp);
    });
}

/// Stable two-run merge: on ties the left run (earlier original index) wins.
fn merge_runs<T>(
    v: &[T],
    a: &[u32],
    b: &[u32],
    out: &mut [u32],
    cmp: &impl Fn(&T, &T) -> CmpOrdering,
) {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        // sjc-lint: allow(panic-path) — i/j are loop-bounded and a/b hold indices of the permutation 0..v.len()
        if cmp(&v[a[i] as usize], &v[b[j] as usize]) != CmpOrdering::Greater {
            // sjc-lint: allow(panic-path) — k = i + j < a.len() + b.len() = out.len()
            out[k] = a[i];
            i += 1;
        } else {
            // sjc-lint: allow(panic-path) — k = i + j < a.len() + b.len() = out.len()
            out[k] = b[j];
            j += 1;
        }
        k += 1;
    }
    // sjc-lint: allow(panic-path) — k + remaining tail lengths equals out.len() exactly
    out[k..k + a.len() - i].copy_from_slice(&a[i..]);
    k += a.len() - i;
    // sjc-lint: allow(panic-path) — k + remaining tail lengths equals out.len() exactly
    out[k..k + b.len() - j].copy_from_slice(&b[j..]);
}

/// Fixed-shape parallel reduction. Items are folded in `REDUCE_CHUNK`-sized
/// chunks (boundaries independent of the thread count) and the per-chunk
/// partials are combined serially left-to-right, so the result — including
/// float accumulations — is schedule-independent.
pub fn par_reduce<T: Sync, A: Send>(
    items: &[T],
    identity: impl Fn() -> A + Sync,
    fold: impl Fn(A, &T) -> A + Sync,
    combine: impl Fn(A, A) -> A,
) -> A {
    par_reduce_budget(Budget::resolve(), items, identity, fold, combine)
}

/// [`par_reduce`] with an explicit thread budget.
pub fn par_reduce_budget<T: Sync, A: Send>(
    budget: Budget,
    items: &[T],
    identity: impl Fn() -> A + Sync,
    fold: impl Fn(A, &T) -> A + Sync,
    combine: impl Fn(A, A) -> A,
) -> A {
    let chunks: Vec<&[T]> = items.chunks(REDUCE_CHUNK).collect();
    // Each fold chunk is REDUCE_CHUNK items of real work: coarse tasks.
    let partials =
        par_map_cost(budget, &chunks, plan::COARSE_ITEM_COST, |c| c.iter().fold(identity(), &fold));
    partials.into_iter().fold(identity(), combine)
}

/// Runs `f` over disjoint `chunk`-sized sub-slices of `v` concurrently,
/// passing each chunk's index. Chunk boundaries depend only on `chunk` and
/// `v.len()` — never on the thread count — and each chunk is claimed exactly
/// once, so any deterministic per-chunk `f` leaves the slice in the same
/// state at every thread count (the in-place sibling of [`par_map`], used
/// for e.g. sorting independent strips of one buffer).
pub fn par_chunks_mut<T: Send>(v: &mut [T], chunk: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    par_chunks_mut_budget(Budget::resolve(), v, chunk, f)
}

/// [`par_chunks_mut`] with an explicit thread budget.
pub fn par_chunks_mut_budget<T: Send>(
    budget: Budget,
    v: &mut [T],
    chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = v.len();
    let chunk = chunk.max(1);
    let num_chunks = n.div_ceil(chunk);
    let threads = budget.effective_threads();
    if threads == 1 || num_chunks <= 1 || pool::on_worker() {
        for (i, c) in v.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let base = SendSlots(v.as_mut_ptr());
    run_indexed(threads - 1, num_chunks, |i| {
        let base = &base; // capture the wrapper, not its raw-pointer field
        let start = i * chunk;
        let len = chunk.min(n - start);
        // SAFETY: chunk index `i` is claimed by exactly one participant
        // and chunks are disjoint sub-ranges of `v`, so this &mut slice
        // never aliases another's.
        let piece = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
        f(i, piece);
    });
}

/// Runs two closures concurrently (when the budget allows) and returns both
/// results in argument order.
pub fn join<A: Send, B: Send>(
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    join_budget(Budget::resolve(), fa, fb)
}

/// [`join`] with an explicit thread budget.
pub fn join_budget<A: Send, B: Send>(
    budget: Budget,
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    if budget.effective_threads() == 1 || pool::on_worker() {
        return (fa(), fb());
    }
    // Both halves are claimed from a two-slot cursor, so the caller and at
    // most one pool helper split them; with no free helper the caller just
    // runs both. The result slots are written by whichever participant
    // claimed each half — argument order is restored on return.
    use std::sync::Mutex;
    let fa_slot = Mutex::new(Some(fa));
    let fb_slot = Mutex::new(Some(fb));
    let ra: Mutex<Option<A>> = Mutex::new(None);
    let rb: Mutex<Option<B>> = Mutex::new(None);
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let work = || loop {
        match cursor.0.fetch_add(1, Ordering::Relaxed) {
            0 => {
                let taken = fa_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(fa) = taken {
                    let a = fa();
                    *ra.lock().unwrap_or_else(|e| e.into_inner()) = Some(a);
                }
            }
            1 => {
                let taken = fb_slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(fb) = taken {
                    let b = fb();
                    *rb.lock().unwrap_or_else(|e| e.into_inner()) = Some(b);
                }
            }
            _ => break,
        }
    };
    pool::run(1, &work);
    let a = ra.into_inner().unwrap_or_else(|e| e.into_inner());
    let b = rb.into_inner().unwrap_or_else(|e| e.into_inner());
    match (a, b) {
        (Some(a), Some(b)) => (a, b),
        // sjc-lint: allow(panic-path) — both halves were claimed and ran (pool::run returned without re-raising), so both slots are filled
        _ => unreachable!("join halves always run exactly once"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_testkit::cases;

    fn budgets() -> Vec<Budget> {
        vec![
            Budget::explicit(1),
            Budget::explicit(2),
            Budget::explicit(8),
            Budget::explicit(hardware_threads()),
        ]
    }

    #[test]
    fn par_map_matches_serial_for_arbitrary_inputs() {
        cases(0x5eed1, 40, |rng| {
            let items = rng.vec_u64(0..u64::MAX, 0..5000);
            let serial: Vec<u64> =
                items.iter().map(|&x| x.wrapping_mul(31).rotate_left(7)).collect();
            for b in budgets() {
                let par = par_map_budget(b, &items, |&x| x.wrapping_mul(31).rotate_left(7));
                assert_eq!(par, serial, "budget {b:?}");
            }
        });
    }

    #[test]
    fn par_map_flat_matches_serial_for_arbitrary_inputs() {
        cases(0x5eed2, 40, |rng| {
            let items = rng.vec_u64(0..u64::MAX, 0..3000);
            let expand = |&x: &u64, out: &mut Vec<u64>| {
                for k in 0..(x % 4) {
                    out.push(x.wrapping_add(k));
                }
            };
            let mut serial = Vec::new();
            for item in &items {
                expand(item, &mut serial);
            }
            for b in budgets() {
                let par = par_map_flat_budget(b, &items, expand);
                assert_eq!(par, serial, "budget {b:?}");
            }
        });
    }

    #[test]
    fn weighted_maps_match_their_unweighted_siblings_bit_for_bit() {
        cases(0x5eed7, 30, |rng| {
            let items = rng.vec_u64(0..u64::MAX, 0..3000);
            let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(17)).collect();
            let mut serial_flat = Vec::new();
            for &x in &items {
                for k in 0..(x % 3) {
                    serial_flat.push(x ^ k);
                }
            }
            for b in budgets() {
                // Skewed weights: the item value itself, so heavy and light
                // items interleave arbitrarily.
                let par =
                    par_map_weighted_budget(b, &items, |&x| x % 1000, |&x| x.wrapping_mul(17));
                assert_eq!(par, serial, "budget {b:?}");
                let flat = par_map_flat_weighted_budget(
                    b,
                    &items,
                    |&x| x % 1000,
                    |&x, out| {
                        for k in 0..(x % 3) {
                            out.push(x ^ k);
                        }
                    },
                );
                assert_eq!(flat, serial_flat, "budget {b:?}");
            }
        });
    }

    #[test]
    fn lpt_order_is_a_descending_permutation() {
        cases(0x5eed8, 60, |rng| {
            let weights = rng.vec_u64(0..1000, 0..2000);
            let order = lpt_order(&weights);
            // A permutation: every index exactly once.
            let mut seen = vec![false; weights.len()];
            for &i in &order {
                assert!(!seen[i as usize], "index {i} scheduled twice");
                seen[i as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "some index never scheduled");
            // Non-increasing weights, ties in ascending index order.
            for pair in order.windows(2) {
                let (a, b) = (pair[0] as usize, pair[1] as usize);
                assert!(
                    weights[a] > weights[b] || (weights[a] == weights[b] && pair[0] < pair[1]),
                    "not an LPT order at {pair:?}"
                );
            }
        });
    }

    #[test]
    fn par_sort_matches_std_stable_sort_with_ties() {
        cases(0x5eed3, 30, |rng| {
            let n = rng.usize_in(0..20_000);
            // Pairs (key, payload) with heavy key collisions: stability shows
            // up as payload order within equal keys.
            let items: Vec<(u64, u64)> = (0..n).map(|i| (rng.u64_in(0..50), i as u64)).collect();
            let mut serial = items.clone();
            serial.sort_by_key(|a| a.0);
            for b in budgets() {
                let mut par = items.clone();
                par_sort_by_budget(b, &mut par, |a, bb| a.0.cmp(&bb.0));
                assert_eq!(par, serial, "budget {b:?}");
            }
        });
    }

    #[test]
    fn par_reduce_is_schedule_independent_even_for_floats() {
        cases(0x5eed4, 30, |rng| {
            let n = rng.usize_in(0..10_000);
            let items: Vec<f64> = (0..n).map(|_| rng.f64_in(-1.0..1.0)).collect();
            let sum = |b: Budget| {
                par_reduce_budget(b, &items, || 0.0f64, |acc, &x| acc + x, |a, bb| a + bb)
            };
            let reference = sum(Budget::explicit(1));
            for b in budgets() {
                // Float addition is non-associative, but the fixed chunk
                // shape makes every budget produce bit-identical sums.
                assert_eq!(sum(b).to_bits(), reference.to_bits(), "budget {b:?}");
            }
        });
    }

    #[test]
    fn par_reduce_integer_sum_equals_serial_fold() {
        let items: Vec<u64> = (0..12_345).collect();
        let serial: u64 = items.iter().sum();
        for b in budgets() {
            let par = par_reduce_budget(b, &items, || 0u64, |acc, &x| acc + x, |a, bb| a + bb);
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial_chunked_pass() {
        cases(0x5eed5, 30, |rng| {
            let items = rng.vec_u64(0..u64::MAX, 0..8000);
            let chunk = rng.usize_in(1..300);
            let mut serial = items.clone();
            for (i, c) in serial.chunks_mut(chunk).enumerate() {
                c.sort_unstable();
                for x in c.iter_mut() {
                    *x = x.wrapping_add(i as u64);
                }
            }
            for b in budgets() {
                let mut par = items.clone();
                par_chunks_mut_budget(b, &mut par, chunk, |i, c| {
                    c.sort_unstable();
                    for x in c.iter_mut() {
                        *x = x.wrapping_add(i as u64);
                    }
                });
                assert_eq!(par, serial, "budget {b:?} chunk {chunk}");
            }
        });
    }

    #[test]
    fn join_returns_in_argument_order() {
        for threads in [1, 2] {
            let (a, b) = join_budget(Budget::explicit(threads), || "left", || "right");
            assert_eq!((a, b), ("left", "right"));
        }
    }

    #[test]
    fn nested_parallel_calls_run_serially_on_workers_and_stay_correct() {
        // The experiment driver nests par_map inside join closures; with a
        // persistent pool this must neither deadlock nor change results.
        let outer: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = outer.iter().map(|&x| (0..2000).map(|k| x + k).sum()).collect();
        for b in budgets() {
            let got = par_map_cost(b, &outer, plan::COARSE_ITEM_COST, |&x| {
                let inner: Vec<u64> = (0..2000).map(|k| x + k).collect();
                par_reduce_budget(b, &inner, || 0u64, |a, &v| a + v, |a, c| a + c)
            });
            assert_eq!(got, expected, "budget {b:?}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_budget(Budget::explicit(8), &empty, |&x| x).is_empty());
        assert!(par_map_flat_budget(Budget::explicit(8), &empty, |&x, o| o.push(x)).is_empty());
        assert!(par_map_weighted_budget(Budget::explicit(8), &empty, |_| 1, |&x| x).is_empty());
        let mut one = vec![42u64];
        par_sort_by_budget(Budget::explicit(8), &mut one, |a, b| a.cmp(b));
        assert_eq!(one, vec![42]);
        // Zero chunks → no partials → the fold over partials returns identity.
        let s =
            par_reduce_budget(Budget::explicit(8), &empty, || 7u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(s, 7);
    }

    #[test]
    fn budget_resolution_prefers_global_override_and_caps_ambient_budgets() {
        // One test owns the process-global override: splitting these
        // assertions across tests would race under the parallel harness.
        set_global_threads(3);
        let resolved = Budget::resolve();
        set_global_threads(0);
        assert_eq!(resolved.threads(), 3);
        // Ambient budgets above the core count are capped by the planner;
        // the requested count itself is preserved for reporting.
        assert_eq!(resolved.effective_threads(), 3.min(hardware_threads()));
        let over = hardware_threads() + 7;
        set_global_threads(over);
        let ambient = Budget::resolve();
        set_global_threads(0);
        assert_eq!(ambient.threads(), over);
        assert_eq!(ambient.effective_threads(), hardware_threads());
    }
}
