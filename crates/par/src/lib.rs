//! Deterministic host-side parallelism for the spatial-join workspace.
//!
//! Every primitive in this crate obeys one contract: **the result is a pure
//! function of the inputs — never of the thread count, the chunk schedule, or
//! which worker ran first.** Simulated `RunTrace` numbers therefore do not
//! move by a nanosecond when `SJC_PAR_THREADS` changes; only host wall-clock
//! does. Concretely:
//!
//! * [`par_map`] is **order-preserving**: output slot `i` holds `f(&items[i])`,
//!   exactly as the serial `items.iter().map(f).collect()` would produce.
//!   Workers claim *chunks* of indices from a single cache-line-padded atomic
//!   cursor (range claiming, not per-item `fetch_add`), so contention and
//!   false sharing stay negligible while the slot-indexed writes keep order.
//! * [`par_map_flat`] is an order-preserving flat-map: each chunk appends into
//!   its own buffer and the buffers are concatenated in chunk order, so the
//!   output equals the serial flat-map byte for byte.
//! * [`par_sort_by`] is a **stable** parallel merge sort (ties keep their
//!   original relative order, merges prefer the left run). A stable sort has a
//!   unique answer, so the result is identical to `slice::sort_by` for every
//!   thread count.
//! * [`par_reduce`] folds over **fixed-shape** chunks (`REDUCE_CHUNK`
//!   elements, independent of the thread count) and combines the partials
//!   serially left-to-right, so float/accumulator results are
//!   schedule-independent even for non-associative operations.
//! * [`par_chunks_mut`] is the in-place sibling of [`par_map`]: workers claim
//!   chunk indices and receive disjoint `&mut` sub-slices, so each chunk sees
//!   exactly the transformation the serial `chunks_mut` pass would apply.
//! * [`join`] runs two closures concurrently and returns both results in
//!   argument order.
//!
//! Thread budget resolution (first match wins): explicit
//! [`set_global_threads`] override → `SJC_PAR_THREADS` env var →
//! `std::thread::available_parallelism()`. A budget of 1 short-circuits to
//! plain serial execution, which tests use to force determinism comparisons.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum chunk a worker claims at once — large enough to amortize the
/// atomic claim and keep adjacent workers off each other's cache lines.
const MIN_CHUNK: usize = 64;

/// Below this many items the spawn cost dwarfs the work; run serially.
/// (Purely a wall-clock heuristic — results are identical either way.)
const SPAWN_MIN: usize = 2 * MIN_CHUNK;

/// Fixed fold-chunk width for [`par_reduce`]. Must not depend on the thread
/// count: the reduction tree's shape is what makes accumulator results
/// schedule-independent.
const REDUCE_CHUNK: usize = 1024;

/// Below this length a parallel sort is slower than `slice::sort_by`.
const SORT_MIN: usize = 4096;

/// Process-global thread override (0 = unset). Set by tests and by `perfsnap`
/// to flip between serial and parallel execution in-process without touching
/// the environment.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-global thread budget; `0` clears the override so the
/// `SJC_PAR_THREADS` env var / hardware parallelism apply again.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::SeqCst);
}

/// A resolved thread budget. Carries the number of worker threads the
/// primitives may use; `Budget::explicit(1)` forces serial execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    threads: usize,
}

impl Budget {
    /// Resolves the ambient budget: global override → `SJC_PAR_THREADS` →
    /// hardware parallelism.
    pub fn resolve() -> Budget {
        let over = GLOBAL_THREADS.load(Ordering::SeqCst);
        if over > 0 {
            return Budget { threads: over };
        }
        if let Some(n) = std::env::var("SJC_PAR_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return Budget { threads: n };
        }
        Budget { threads: hardware_threads() }
    }

    /// An explicit budget of exactly `n` threads (`n` is clamped to ≥ 1).
    pub fn explicit(n: usize) -> Budget {
        Budget { threads: n.max(1) }
    }

    /// Number of worker threads this budget allows.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Hardware parallelism with a serial fallback.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Work-claim cursor padded to a cache line so the hot atomic never false-
/// shares with neighboring data.
#[repr(align(64))]
struct PaddedCursor(AtomicUsize);

/// Raw pointer wrapper so worker threads can write disjoint output slots.
/// Safety rests on the chunk claiming below: `fetch_add` hands each worker a
/// half-open range no other worker ever sees, so every slot is written at
/// most once and without overlap.
struct SendSlots<U>(*mut U);
unsafe impl<U: Send> Sync for SendSlots<U> {}

fn chunk_size(n: usize, threads: usize) -> usize {
    // ~8 chunks per worker gives the tail enough stealable slack without
    // re-introducing per-item claim traffic.
    (n / (threads * 8)).max(MIN_CHUNK)
}

/// Order-preserving parallel map: returns `f` applied to every item, in input
/// order, using the ambient [`Budget`].
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_budget(Budget::resolve(), items, f)
}

/// [`par_map`] with an explicit thread budget.
pub fn par_map_budget<T: Sync, U: Send>(
    budget: Budget,
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    let threads = budget.threads().min(n.div_ceil(MIN_CHUNK)).max(1);
    if threads == 1 || n < SPAWN_MIN {
        return items.iter().map(f).collect();
    }
    let chunk = chunk_size(n, threads);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let out = SendSlots(slots.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let out = &out;
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let start = cursor.0.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                    // SAFETY: `i` lies inside this worker's exclusively
                    // claimed range; no other thread writes slot `i`.
                    unsafe {
                        *out.0.add(i) = Some(f(item));
                    }
                }
            });
        }
    });
    // sjc-lint: allow(panic-path) — chunk claiming fills every slot; an empty one is a runtime bug this expect should surface loudly
    slots.into_iter().map(|s| s.expect("chunk claiming covers every index exactly once")).collect()
}

/// Order-preserving parallel flat-map: `f` appends any number of outputs per
/// item into the provided buffer; buffers are concatenated in input order.
pub fn par_map_flat<T: Sync, U: Send>(items: &[T], f: impl Fn(&T, &mut Vec<U>) + Sync) -> Vec<U> {
    par_map_flat_budget(Budget::resolve(), items, f)
}

/// [`par_map_flat`] with an explicit thread budget.
pub fn par_map_flat_budget<T: Sync, U: Send>(
    budget: Budget,
    items: &[T],
    f: impl Fn(&T, &mut Vec<U>) + Sync,
) -> Vec<U> {
    let n = items.len();
    let threads = budget.threads().min(n.div_ceil(MIN_CHUNK)).max(1);
    if threads == 1 || n < SPAWN_MIN {
        let mut out = Vec::new();
        for item in items {
            f(item, &mut out);
        }
        return out;
    }
    let chunk = chunk_size(n, threads);
    let n_chunks = n.div_ceil(chunk);
    let mut bufs: Vec<Option<Vec<U>>> = Vec::with_capacity(n_chunks);
    bufs.resize_with(n_chunks, || None);
    let cursor = PaddedCursor(AtomicUsize::new(0));
    let out = SendSlots(bufs.as_mut_ptr());
    std::thread::scope(|s| {
        for _ in 0..threads {
            let out = &out;
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let start = cursor.0.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let mut buf = Vec::new();
                // sjc-lint: allow(panic-path) — start < n guarded above and end is clamped to n, so the range is in bounds
                for item in &items[start..end] {
                    f(item, &mut buf);
                }
                // SAFETY: chunk index `start / chunk` is unique to this
                // claimed range; no other thread writes this buffer slot.
                unsafe {
                    *out.0.add(start / chunk) = Some(buf);
                }
            });
        }
    });
    let mut flat = Vec::new();
    for buf in bufs {
        // sjc-lint: allow(panic-path) — chunk claiming fills every buffer; an empty one is a runtime bug this expect should surface loudly
        flat.extend(buf.expect("chunk claiming covers every chunk exactly once"));
    }
    flat
}

/// Stable parallel merge sort: identical output to `slice::sort_by` (which is
/// stable) for every thread count, because a stable sort's result is unique.
pub fn par_sort_by<T: Sync>(v: &mut [T], cmp: impl Fn(&T, &T) -> CmpOrdering + Sync) {
    par_sort_by_budget(Budget::resolve(), v, cmp)
}

/// [`par_sort_by`] with an explicit thread budget.
pub fn par_sort_by_budget<T: Sync>(
    budget: Budget,
    v: &mut [T],
    cmp: impl Fn(&T, &T) -> CmpOrdering + Sync,
) {
    let n = v.len();
    let threads = budget.threads();
    if threads == 1 || n < SORT_MIN || n > u32::MAX as usize {
        v.sort_by(cmp);
        return;
    }
    // Sort a permutation (u32 indices are cheap to merge), then apply it.
    // Stability: chunk sorts use std's stable sort, and merges prefer the
    // left (earlier-index) run on ties, so the permutation equals the one a
    // serial stable sort would produce.
    let mut idx: Vec<u32> = (0..n as u32).collect();
    let mut buf: Vec<u32> = vec![0; n];
    let chunk = n.div_ceil(threads).max(MIN_CHUNK);

    std::thread::scope(|s| {
        for piece in idx.chunks_mut(chunk) {
            let cmp = &cmp;
            let v: &[T] = v;
            s.spawn(move || {
                // sjc-lint: allow(panic-path) — `idx` holds the permutation 0..n, always in bounds for `v`
                piece.sort_by(|&a, &b| cmp(&v[a as usize], &v[b as usize]));
            });
        }
    });

    let mut width = chunk;
    let mut src = &mut idx;
    let mut dst = &mut buf;
    while width < n {
        merge_round(v, src, dst, width, &cmp);
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }
    let perm: &[u32] = src;

    // Apply the permutation by moving every element exactly once.
    let mut moved: Vec<T> = Vec::with_capacity(n);
    // SAFETY: `perm` is a permutation of 0..n (built from `(0..n).collect()`
    // and only reordered), so each element is read exactly once, then the
    // whole block is moved back and `moved` is emptied without dropping.
    unsafe {
        for &i in perm {
            moved.push(std::ptr::read(v.as_ptr().add(i as usize)));
        }
        std::ptr::copy_nonoverlapping(moved.as_ptr(), v.as_mut_ptr(), n);
        moved.set_len(0);
    }
}

/// One parallel round of pairwise run merges from `src` into `dst`.
fn merge_round<T: Sync>(
    v: &[T],
    src: &[u32],
    dst: &mut [u32],
    width: usize,
    cmp: &(impl Fn(&T, &T) -> CmpOrdering + Sync),
) {
    let n = src.len();
    std::thread::scope(|s| {
        let mut rest = dst;
        let mut start = 0;
        while start < n {
            let end = (start + 2 * width).min(n);
            let (head, tail) = rest.split_at_mut(end - start);
            rest = tail;
            let mid = (start + width).min(n);
            // sjc-lint: allow(panic-path) — start ≤ mid ≤ end ≤ n = src.len() by the min() clamps above
            let a = &src[start..mid];
            // sjc-lint: allow(panic-path) — start ≤ mid ≤ end ≤ n = src.len() by the min() clamps above
            let b = &src[mid..end];
            s.spawn(move || merge_runs(v, a, b, head, cmp));
            start = end;
        }
    });
}

/// Stable two-run merge: on ties the left run (earlier original index) wins.
fn merge_runs<T>(
    v: &[T],
    a: &[u32],
    b: &[u32],
    out: &mut [u32],
    cmp: &impl Fn(&T, &T) -> CmpOrdering,
) {
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        // sjc-lint: allow(panic-path) — i/j are loop-bounded and a/b hold indices of the permutation 0..v.len()
        if cmp(&v[a[i] as usize], &v[b[j] as usize]) != CmpOrdering::Greater {
            // sjc-lint: allow(panic-path) — k = i + j < a.len() + b.len() = out.len()
            out[k] = a[i];
            i += 1;
        } else {
            // sjc-lint: allow(panic-path) — k = i + j < a.len() + b.len() = out.len()
            out[k] = b[j];
            j += 1;
        }
        k += 1;
    }
    // sjc-lint: allow(panic-path) — k + remaining tail lengths equals out.len() exactly
    out[k..k + a.len() - i].copy_from_slice(&a[i..]);
    k += a.len() - i;
    // sjc-lint: allow(panic-path) — k + remaining tail lengths equals out.len() exactly
    out[k..k + b.len() - j].copy_from_slice(&b[j..]);
}

/// Fixed-shape parallel reduction. Items are folded in `REDUCE_CHUNK`-sized
/// chunks (boundaries independent of the thread count) and the per-chunk
/// partials are combined serially left-to-right, so the result — including
/// float accumulations — is schedule-independent.
pub fn par_reduce<T: Sync, A: Send>(
    items: &[T],
    identity: impl Fn() -> A + Sync,
    fold: impl Fn(A, &T) -> A + Sync,
    combine: impl Fn(A, A) -> A,
) -> A {
    par_reduce_budget(Budget::resolve(), items, identity, fold, combine)
}

/// [`par_reduce`] with an explicit thread budget.
pub fn par_reduce_budget<T: Sync, A: Send>(
    budget: Budget,
    items: &[T],
    identity: impl Fn() -> A + Sync,
    fold: impl Fn(A, &T) -> A + Sync,
    combine: impl Fn(A, A) -> A,
) -> A {
    let chunks: Vec<&[T]> = items.chunks(REDUCE_CHUNK).collect();
    let partials = par_map_budget(budget, &chunks, |c| c.iter().fold(identity(), &fold));
    partials.into_iter().fold(identity(), combine)
}

/// Runs `f` over disjoint `chunk`-sized sub-slices of `v` concurrently,
/// passing each chunk's index. Chunk boundaries depend only on `chunk` and
/// `v.len()` — never on the thread count — and each chunk is claimed exactly
/// once, so any deterministic per-chunk `f` leaves the slice in the same
/// state at every thread count (the in-place sibling of [`par_map`], used
/// for e.g. sorting independent strips of one buffer).
pub fn par_chunks_mut<T: Send>(v: &mut [T], chunk: usize, f: impl Fn(usize, &mut [T]) + Sync) {
    par_chunks_mut_budget(Budget::resolve(), v, chunk, f)
}

/// [`par_chunks_mut`] with an explicit thread budget.
pub fn par_chunks_mut_budget<T: Send>(
    budget: Budget,
    v: &mut [T],
    chunk: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = v.len();
    let chunk = chunk.max(1);
    let num_chunks = n.div_ceil(chunk);
    let threads = budget.threads().min(num_chunks).max(1);
    if threads == 1 || num_chunks <= 1 {
        for (i, c) in v.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    let base = SendSlots(v.as_mut_ptr());
    let cursor = PaddedCursor(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let base = &base;
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || loop {
                let i = cursor.0.fetch_add(1, Ordering::Relaxed);
                if i >= num_chunks {
                    break;
                }
                let start = i * chunk;
                let len = chunk.min(n - start);
                // SAFETY: chunk index `i` is claimed by exactly one worker
                // and chunks are disjoint sub-ranges of `v`, so this &mut
                // slice never aliases another worker's.
                let piece = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
                f(i, piece);
            });
        }
    });
}

/// Runs two closures concurrently (when the budget allows) and returns both
/// results in argument order.
pub fn join<A: Send, B: Send>(
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    join_budget(Budget::resolve(), fa, fb)
}

/// [`join`] with an explicit thread budget.
pub fn join_budget<A: Send, B: Send>(
    budget: Budget,
    fa: impl FnOnce() -> A + Send,
    fb: impl FnOnce() -> B + Send,
) -> (A, B) {
    if budget.threads() == 1 {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let a = fa();
        let b = match hb.join() {
            Ok(b) => b,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_testkit::cases;

    fn budgets() -> Vec<Budget> {
        vec![Budget::explicit(1), Budget::explicit(2), Budget::explicit(hardware_threads())]
    }

    #[test]
    fn par_map_matches_serial_for_arbitrary_inputs() {
        cases(0x5eed1, 40, |rng| {
            let items = rng.vec_u64(0..u64::MAX, 0..5000);
            let serial: Vec<u64> =
                items.iter().map(|&x| x.wrapping_mul(31).rotate_left(7)).collect();
            for b in budgets() {
                let par = par_map_budget(b, &items, |&x| x.wrapping_mul(31).rotate_left(7));
                assert_eq!(par, serial, "budget {b:?}");
            }
        });
    }

    #[test]
    fn par_map_flat_matches_serial_for_arbitrary_inputs() {
        cases(0x5eed2, 40, |rng| {
            let items = rng.vec_u64(0..u64::MAX, 0..3000);
            let expand = |&x: &u64, out: &mut Vec<u64>| {
                for k in 0..(x % 4) {
                    out.push(x.wrapping_add(k));
                }
            };
            let mut serial = Vec::new();
            for item in &items {
                expand(item, &mut serial);
            }
            for b in budgets() {
                let par = par_map_flat_budget(b, &items, expand);
                assert_eq!(par, serial, "budget {b:?}");
            }
        });
    }

    #[test]
    fn par_sort_matches_std_stable_sort_with_ties() {
        cases(0x5eed3, 30, |rng| {
            let n = rng.usize_in(0..20_000);
            // Pairs (key, payload) with heavy key collisions: stability shows
            // up as payload order within equal keys.
            let items: Vec<(u64, u64)> = (0..n).map(|i| (rng.u64_in(0..50), i as u64)).collect();
            let mut serial = items.clone();
            serial.sort_by_key(|a| a.0);
            for b in budgets() {
                let mut par = items.clone();
                par_sort_by_budget(b, &mut par, |a, bb| a.0.cmp(&bb.0));
                assert_eq!(par, serial, "budget {b:?}");
            }
        });
    }

    #[test]
    fn par_reduce_is_schedule_independent_even_for_floats() {
        cases(0x5eed4, 30, |rng| {
            let n = rng.usize_in(0..10_000);
            let items: Vec<f64> = (0..n).map(|_| rng.f64_in(-1.0..1.0)).collect();
            let sum = |b: Budget| {
                par_reduce_budget(b, &items, || 0.0f64, |acc, &x| acc + x, |a, bb| a + bb)
            };
            let reference = sum(Budget::explicit(1));
            for b in budgets() {
                // Float addition is non-associative, but the fixed chunk
                // shape makes every budget produce bit-identical sums.
                assert_eq!(sum(b).to_bits(), reference.to_bits(), "budget {b:?}");
            }
        });
    }

    #[test]
    fn par_reduce_integer_sum_equals_serial_fold() {
        let items: Vec<u64> = (0..12_345).collect();
        let serial: u64 = items.iter().sum();
        for b in budgets() {
            let par = par_reduce_budget(b, &items, || 0u64, |acc, &x| acc + x, |a, bb| a + bb);
            assert_eq!(par, serial);
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial_chunked_pass() {
        cases(0x5eed5, 30, |rng| {
            let items = rng.vec_u64(0..u64::MAX, 0..8000);
            let chunk = rng.usize_in(1..300);
            let mut serial = items.clone();
            for (i, c) in serial.chunks_mut(chunk).enumerate() {
                c.sort_unstable();
                for x in c.iter_mut() {
                    *x = x.wrapping_add(i as u64);
                }
            }
            for b in budgets() {
                let mut par = items.clone();
                par_chunks_mut_budget(b, &mut par, chunk, |i, c| {
                    c.sort_unstable();
                    for x in c.iter_mut() {
                        *x = x.wrapping_add(i as u64);
                    }
                });
                assert_eq!(par, serial, "budget {b:?} chunk {chunk}");
            }
        });
    }

    #[test]
    fn join_returns_in_argument_order() {
        for threads in [1, 2] {
            let (a, b) = join_budget(Budget::explicit(threads), || "left", || "right");
            assert_eq!((a, b), ("left", "right"));
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(par_map_budget(Budget::explicit(8), &empty, |&x| x).is_empty());
        assert!(par_map_flat_budget(Budget::explicit(8), &empty, |&x, o| o.push(x)).is_empty());
        let mut one = vec![42u64];
        par_sort_by_budget(Budget::explicit(8), &mut one, |a, b| a.cmp(b));
        assert_eq!(one, vec![42]);
        // Zero chunks → no partials → the fold over partials returns identity.
        let s =
            par_reduce_budget(Budget::explicit(8), &empty, || 7u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(s, 7);
    }

    #[test]
    fn budget_resolution_prefers_global_override() {
        set_global_threads(3);
        assert_eq!(Budget::resolve().threads(), 3);
        set_global_threads(0);
    }
}
