//! The [`Rdd`] type and its narrow transformations.

use sjc_cluster::metrics::Phase;
use sjc_cluster::{SimError, SimNs};

use crate::context::SparkContext;
use crate::record::SparkRecord;

/// A partitioned, in-memory dataset.
///
/// Narrow transformations (`map`, `flat_map`, `filter`, `sample`) run
/// eagerly on the host but *pipeline* in the simulation: their cost
/// accumulates in `pending_ns` per partition and only becomes a stage
/// makespan when a wide operation or action closes the stage — exactly how
/// Spark fuses narrow ops into one stage.
pub struct Rdd<T> {
    pub(crate) parts: Vec<Vec<T>>,
    /// Full-scale pending CPU per partition since the last stage boundary.
    pub(crate) pending_ns: Vec<SimNs>,
    /// Full-scale HDFS bytes read but not yet attributed to a stage.
    pub(crate) pending_hdfs_read: u64,
    /// Full-scale modeled resident bytes per partition.
    pub(crate) mem_full: Vec<u64>,
    pub(crate) multiplier: f64,
    /// Narrow-op chain length since the last materialization boundary
    /// (load or shuffle). Losing a cached partition to a node crash costs a
    /// recompute proportional to this depth — Spark's lineage recovery.
    pub(crate) lineage_depth: u32,
}

impl<T: SparkRecord + Clone> Rdd<T> {
    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total records (generation scale).
    pub fn count(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Full-scale modeled resident footprint.
    pub fn mem_full_total(&self) -> u64 {
        self.mem_full.iter().sum()
    }

    /// Per-partition full-scale footprints (for memory checks).
    pub fn mem_full(&self) -> &[u64] {
        &self.mem_full
    }

    pub fn multiplier(&self) -> f64 {
        self.multiplier
    }

    /// Length of the narrow-op chain a lost partition would replay.
    pub fn lineage_depth(&self) -> u32 {
        self.lineage_depth
    }

    /// Narrow map. `f` receives each record and a per-record extra-cost
    /// accumulator (generation-scale ns) for spatial work such as index
    /// probes.
    pub fn map<U: SparkRecord>(
        self,
        ctx: &SparkContext<'_>,
        f: impl Fn(&T, &mut SimNs) -> U + Sync,
    ) -> Rdd<U> {
        self.transform(ctx, |rec, extra, out| out.push(f(rec, extra)))
    }

    /// Narrow flat-map.
    pub fn flat_map<U: SparkRecord>(
        self,
        ctx: &SparkContext<'_>,
        f: impl Fn(&T, &mut SimNs) -> Vec<U> + Sync,
    ) -> Rdd<U> {
        self.transform(ctx, |rec, extra, out| out.extend(f(rec, extra)))
    }

    /// Narrow filter.
    pub fn filter(self, ctx: &SparkContext<'_>, pred: impl Fn(&T) -> bool + Sync) -> Rdd<T> {
        self.transform(ctx, |rec, _extra, out| {
            if pred(rec) {
                out.push(rec.clone());
            }
        })
    }

    /// Narrow per-partition map (Spark's `mapPartitions`): `f` sees a whole
    /// partition at once — the idiom for amortizing per-partition setup
    /// (index builds, connection pools). `extra` charges generation-scale
    /// ns of setup/compute for the partition.
    pub fn map_partitions<U: SparkRecord>(
        self,
        ctx: &SparkContext<'_>,
        f: impl Fn(&[T], &mut SimNs) -> Vec<U> + Sync,
    ) -> Rdd<U> {
        self.transform_parts(ctx, |_, src, extra| f(src, extra))
    }

    /// Deterministic Bernoulli sample (Spark's `RDD.sample`): record `i` of
    /// a partition survives when a seeded hash of its index falls below
    /// `fraction`.
    ///
    /// The serial implementation threaded one LCG counter through every
    /// record in partition order; to evaluate partitions in parallel with a
    /// bit-identical keep set, each partition jumps the counter ahead by the
    /// number of records in all earlier partitions ([`lcg_jump`] is exact).
    pub fn sample(self, ctx: &SparkContext<'_>, fraction: f64, seed: u64) -> Rdd<T> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let threshold = (fraction * u64::MAX as f64) as u64;
        let offsets = record_offsets(&self.parts);
        self.transform_parts(ctx, move |i, src, _extra| {
            let mut counter = lcg_jump(seed, offsets.get(i).copied().unwrap_or(0));
            let mut out = Vec::new();
            for rec in src {
                counter = lcg_step(counter);
                if (counter >> 1) < (threshold >> 1) {
                    out.push(rec.clone());
                }
            }
            out
        })
    }

    /// Shared narrow-op machinery: runs `op` per record, charges the Spark
    /// per-record overhead plus accumulated extra cost, recomputes memory.
    fn transform<U: SparkRecord>(
        self,
        ctx: &SparkContext<'_>,
        op: impl Fn(&T, &mut SimNs, &mut Vec<U>) + Sync,
    ) -> Rdd<U> {
        self.transform_parts(ctx, |_, src, extra| {
            let mut out: Vec<U> = Vec::with_capacity(src.len());
            for rec in src {
                op(rec, extra, &mut out);
            }
            out
        })
    }

    /// Partition-parallel core of every narrow op: partitions are
    /// independent, so `op` runs on them concurrently (`sjc-par`,
    /// order-preserving) and the per-partition pending-cost/memory vectors
    /// are reassembled in partition order — bit-identical to the old serial
    /// loop at every thread count. `op` receives the partition index so
    /// sequence-dependent ops (`sample`) can jump their state exactly.
    fn transform_parts<U: SparkRecord>(
        self,
        ctx: &SparkContext<'_>,
        op: impl Fn(usize, &[T], &mut SimNs) -> Vec<U> + Sync,
    ) -> Rdd<U> {
        let cost = &ctx.cluster.cost;
        let cpu_scale = ctx.cluster.config.node.cpu_scale;
        let mult = self.multiplier;
        let depth = self.lineage_depth.saturating_add(1);
        let indexed: Vec<(usize, Vec<T>, SimNs)> = self
            .parts
            .into_iter()
            .zip(self.pending_ns)
            .enumerate()
            .map(|(i, (src, old))| (i, src, old))
            .collect();
        // LPT dispatch: fat partitions first, so skewed spatial partitioning
        // cannot serialize the tail; partition-order results are unchanged.
        let results: Vec<(Vec<U>, SimNs, u64)> = sjc_par::par_map_weighted(
            &indexed,
            |(_, src, _)| src.len() as u64,
            |(i, src, old)| {
                let mut extra: SimNs = 0;
                let out = op(*i, src, &mut extra);
                let ns = cost.spark_records_ns(src.len() as u64) + extra;
                let ns = (ns as f64 * cpu_scale) as u64;
                let pending = old + (ns as f64 * mult) as SimNs;
                let mem: u64 = out.iter().map(|r| r.mem_bytes(cost)).sum();
                (out, pending, (mem as f64 * mult) as u64)
            },
        );
        let mut parts = Vec::with_capacity(results.len());
        let mut pending = Vec::with_capacity(results.len());
        let mut mem_full = Vec::with_capacity(results.len());
        for (out, p, m) in results {
            parts.push(out);
            pending.push(p);
            mem_full.push(m);
        }
        Rdd {
            parts,
            pending_ns: pending,
            pending_hdfs_read: self.pending_hdfs_read,
            mem_full,
            multiplier: mult,
            lineage_depth: depth,
        }
    }

    /// Action: draw a deterministic systematic sample and collect it to the
    /// driver, treating the RDD as *cached* afterwards — the action pays
    /// the pending load/compute cost (plus a memory scan), and subsequent
    /// uses of this RDD read from the cache for free. This mirrors
    /// SpatialSpark's `input.cache(); input.sample(...)` pattern where the
    /// sampling action is what first materializes the dataset.
    pub fn sample_collect(
        &mut self,
        ctx: &mut SparkContext<'_>,
        name: &str,
        phase: Phase,
        fraction: f64,
        seed: u64,
    ) -> Result<Vec<T>, SimError> {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let cost = &ctx.cluster.cost;
        // Consume pending: the cache is warm after this action.
        let cpu_scale = ctx.cluster.config.node.cpu_scale;
        let mut pending = std::mem::replace(&mut self.pending_ns, vec![0; self.parts.len()]);
        for (p, part) in pending.iter_mut().zip(&self.parts) {
            *p += (cost.spark_records_ns(part.len() as u64) as f64 * cpu_scale * self.multiplier)
                as SimNs;
        }
        let hdfs = std::mem::take(&mut self.pending_hdfs_read);
        ctx.close_stage(name, phase, &pending, hdfs, 0, self.lineage_depth, self.mem_full_total())?;

        let threshold = (fraction * u64::MAX as f64) as u64;
        let offsets = record_offsets(&self.parts);
        let indexed: Vec<(usize, &Vec<T>)> = self.parts.iter().enumerate().collect();
        let sampled: Vec<Vec<T>> = sjc_par::par_map(&indexed, |&(i, part)| {
            // Same stream as the old serial scan: partition `i` resumes the
            // LCG where the previous partition left it (exact jump-ahead).
            let mut state = lcg_jump(seed | 1, offsets.get(i).copied().unwrap_or(0));
            let mut kept = Vec::new();
            for rec in part {
                state = lcg_step(state);
                if (state >> 1) < (threshold >> 1) {
                    // sjc-lint: allow(hot-alloc) — the clone IS the sample output: kept records must be owned by the result
                    kept.push(rec.clone());
                }
            }
            kept
        });
        Ok(sampled.into_iter().flatten().collect())
    }

    /// Action: count records, closing the stage (cheaper than `collect` —
    /// only per-partition counts travel to the driver).
    pub fn count_action(
        self,
        ctx: &mut SparkContext<'_>,
        name: &str,
        phase: Phase,
    ) -> Result<usize, SimError> {
        let n = self.count();
        ctx.close_stage(
            name,
            phase,
            &self.pending_ns,
            self.pending_hdfs_read,
            0,
            self.lineage_depth,
            self.mem_full_total(),
        )?;
        Ok(n)
    }

    /// Lazily concatenates two RDDs (Spark's `union`): partitions of both
    /// parents side by side, no shuffle, no stage boundary.
    pub fn union(mut self, other: Rdd<T>) -> Rdd<T> {
        assert!(
            (self.multiplier - other.multiplier).abs() / self.multiplier.max(1e-12) < 0.5,
            "uniting RDDs with wildly different workload multipliers loses meaning"
        );
        self.parts.extend(other.parts);
        self.pending_ns.extend(other.pending_ns);
        self.mem_full.extend(other.mem_full);
        self.pending_hdfs_read += other.pending_hdfs_read;
        self.lineage_depth = self.lineage_depth.max(other.lineage_depth);
        self
    }

    /// Action: collect all records to the driver, closing the stage.
    pub fn collect(
        self,
        ctx: &mut SparkContext<'_>,
        name: &str,
        phase: Phase,
    ) -> Result<Vec<T>, SimError> {
        let pending = self.pending_ns.clone();
        let resident = self.mem_full_total();
        ctx.close_stage(
            name,
            phase,
            &pending,
            self.pending_hdfs_read,
            0,
            self.lineage_depth,
            resident,
        )?;
        Ok(self.parts.into_iter().flatten().collect())
    }
}

impl<T: SparkRecord + Clone> Rdd<T> {
    /// Repartitions into `n` round-robin partitions (used by tests and the
    /// broadcast-join variant to control parallelism).
    pub fn repartition(self, ctx: &SparkContext<'_>, n: usize) -> Rdd<T> {
        let n = n.max(1);
        let cost = &ctx.cluster.cost;
        let mult = self.multiplier;
        let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        // sjc-lint: allow(serial-hot-loop) — round-robin scatter is a cheap move-only pass whose output order defines the partitioning
        for (i, rec) in self.parts.into_iter().flatten().enumerate() {
            // sjc-lint: allow(no-panic-in-lib) — i % n < n = parts.len()
            parts[i % n].push(rec);
        }
        let carried: SimNs = self.pending_ns.iter().sum::<SimNs>() / n.max(1) as u64;
        let pending = vec![carried; n];
        let mem_full = parts
            .iter()
            .map(|p| {
                let m: u64 = p.iter().map(|r| r.mem_bytes(cost)).sum();
                (m as f64 * mult) as u64
            })
            .collect();
        Rdd {
            parts,
            pending_ns: pending,
            pending_hdfs_read: self.pending_hdfs_read,
            mem_full,
            multiplier: mult,
            lineage_depth: self.lineage_depth,
        }
    }
}

/// One step of the sampling LCG (Knuth's MMIX multiplier/increment).
#[inline]
fn lcg_step(state: u64) -> u64 {
    state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD)
}

const LCG_MUL: u64 = 6364136223846793005;
const LCG_ADD: u64 = 1442695040888963407;

/// Advances the sampling LCG by `n` steps in O(log n) — the affine map
/// `s → m·s + a` composed with itself squares to `s → m²·s + (m·a + a)`, so
/// binary decomposition of `n` yields the exact same state the serial
/// per-record loop would reach. This is what lets `sample` evaluate
/// partitions concurrently with a bit-identical keep set.
fn lcg_jump(state: u64, n: u64) -> u64 {
    let (mut mul, mut add) = (LCG_MUL, LCG_ADD);
    let (mut acc_mul, mut acc_add) = (1u64, 0u64);
    let mut n = n;
    while n > 0 {
        if n & 1 == 1 {
            acc_mul = acc_mul.wrapping_mul(mul);
            acc_add = acc_add.wrapping_mul(mul).wrapping_add(add);
        }
        add = add.wrapping_mul(mul).wrapping_add(add);
        mul = mul.wrapping_mul(mul);
        n >>= 1;
    }
    state.wrapping_mul(acc_mul).wrapping_add(acc_add)
}

/// Number of records in all partitions before each partition — the LCG jump
/// distance for partition `i`.
fn record_offsets<T>(parts: &[Vec<T>]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(parts.len());
    let mut acc = 0u64;
    // sjc-lint: allow(serial-hot-loop) — prefix sum over partition lengths is O(parts) and inherently sequential
    for part in parts {
        offsets.push(acc);
        acc += part.len() as u64;
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_cluster::{Cluster, ClusterConfig};

    #[test]
    fn lcg_jump_matches_serial_stepping() {
        for &seed in &[0u64, 1, 42, u64::MAX, 0xDEADBEEF] {
            let mut serial = seed;
            for n in 0..=257u64 {
                assert_eq!(lcg_jump(seed, n), serial, "seed {seed} jump {n}");
                serial = lcg_step(serial);
            }
            // A big jump checked against composing two smaller exact jumps.
            assert_eq!(lcg_jump(seed, 1_000_000), lcg_jump(lcg_jump(seed, 999_743), 257));
        }
    }

    fn ctx_cluster() -> Cluster {
        Cluster::new(ClusterConfig::workstation())
    }

    #[test]
    fn map_filter_flat_map_semantics() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let rdd = ctx.read_text((0u64..100).collect(), 4000, 1.0);
        let out = rdd
            .map(&ctx, |x, _| x * 2)
            .filter(&ctx, |x| x % 4 == 0)
            .flat_map(&ctx, |x, _| vec![*x, *x + 1])
            .collect(&mut ctx, "t", Phase::DistributedJoin)
            .unwrap();
        // 0..100 doubled → 0,2,..198; keep multiples of 4 → 50 values; ×2.
        assert_eq!(out.len(), 100);
        assert!(out.contains(&0) && out.contains(&1) && out.contains(&196) && out.contains(&197));
        assert_eq!(ctx.trace.stages.len(), 1, "narrow ops fused into one stage");
    }

    #[test]
    fn sample_is_deterministic_and_proportional() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let a = ctx
            .read_text((0u64..10_000).collect(), 40_000, 1.0)
            .sample(&ctx, 0.1, 42)
            .collect(&mut ctx, "s", Phase::IndexA)
            .unwrap();
        let mut ctx2 = SparkContext::new(&cluster);
        let b = ctx2
            .read_text((0u64..10_000).collect(), 40_000, 1.0)
            .sample(&ctx2, 0.1, 42)
            .collect(&mut ctx2, "s", Phase::IndexA)
            .unwrap();
        assert_eq!(a, b, "same seed, same sample");
        assert!((800..1200).contains(&a.len()), "~10% kept, got {}", a.len());
    }

    #[test]
    fn pending_cost_accumulates_across_narrow_ops() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let rdd = ctx.read_text((0u64..1000).collect(), 40_000, 1.0);
        let after_load: SimNs = rdd.pending_ns.iter().sum();
        let mapped = rdd.map(&ctx, |x, extra| {
            *extra += 100;
            x + 1
        });
        let after_map: SimNs = mapped.pending_ns.iter().sum();
        assert!(after_map > after_load);
    }

    #[test]
    fn multiplier_scales_memory_not_results() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let small = ctx.read_text((0u64..1000).collect(), 40_000, 1.0);
        let mut ctx2 = SparkContext::new(&cluster);
        let big = ctx2.read_text((0u64..1000).collect(), 40_000, 1000.0);
        assert_eq!(small.count(), big.count());
        assert!(big.mem_full_total() > 500 * small.mem_full_total());
    }

    #[test]
    fn map_partitions_sees_whole_partitions() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let rdd = ctx.read_text((0u64..100).collect(), 4000, 1.0);
        let n_parts = rdd.num_partitions();
        // Emit one record per partition: its size.
        let sizes = rdd
            .map_partitions(&ctx, |part, extra| {
                *extra += 1000;
                vec![part.len() as u64]
            })
            .collect(&mut ctx, "sizes", Phase::IndexA)
            .unwrap();
        assert_eq!(sizes.len(), n_parts);
        assert_eq!(sizes.iter().sum::<u64>(), 100);
    }

    #[test]
    fn count_action_counts_without_collecting() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let n = ctx
            .read_text((0u64..1234).collect(), 4000, 1.0)
            .filter(&ctx, |x| x % 2 == 0)
            .count_action(&mut ctx, "count", Phase::IndexA)
            .unwrap();
        assert_eq!(n, 617);
        assert_eq!(ctx.trace.stages.len(), 1);
    }

    #[test]
    fn union_concatenates_without_a_stage() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let a = ctx.read_text((0u64..10).collect(), 400, 1.0);
        let b = ctx.read_text((100u64..110).collect(), 400, 1.0);
        let stages_before = ctx.trace.stages.len();
        let u = a.union(b);
        assert_eq!(ctx.trace.stages.len(), stages_before, "union is lazy");
        let mut all = u.collect(&mut ctx, "c", Phase::IndexA).unwrap();
        all.sort_unstable();
        let expected: Vec<u64> = (0..10).chain(100..110).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn repartition_preserves_records() {
        let cluster = ctx_cluster();
        let mut ctx = SparkContext::new(&cluster);
        let rdd = ctx.read_text((0u64..100).collect(), 4000, 1.0).repartition(&ctx, 7);
        assert_eq!(rdd.num_partitions(), 7);
        let mut out = rdd.collect(&mut ctx, "r", Phase::IndexA).unwrap();
        out.sort_unstable();
        assert_eq!(out, (0u64..100).collect::<Vec<_>>());
    }
}
