//! The [`SparkRecord`] trait: modeled JVM-resident size of a record.
//!
//! Spark 1.x held deserialized Scala objects on the heap; their resident
//! size — object headers, boxing, pointer fan-out — is several times the
//! serialized text size and *that* is what OOMs executors. Every record type
//! flowing through the RDD engine models its resident bytes here, using the
//! calibrated constants of [`CostModel`].

use sjc_cluster::CostModel;

/// Modeled JVM-resident footprint of a record.
///
/// `Send + Sync` is a supertrait: records are plain data and flow through
/// the `sjc-par` partition-parallel runtime.
pub trait SparkRecord: Send + Sync {
    /// Resident bytes of one record under `cost`'s JVM expansion model.
    fn mem_bytes(&self, cost: &CostModel) -> u64;
}

/// Shuffle-partitioning hash — Spark's `HashPartitioner` delegates to Java
/// `hashCode`, which is the *identity* for integers. That detail matters:
/// dense small-int keys (partition ids!) spread perfectly over shuffle
/// partitions, where a scrambling hash would collide them (balls-in-bins)
/// and manufacture skew the real system doesn't have.
pub trait SparkKey: Send + Sync {
    fn partition_hash(&self) -> u64;
}

impl SparkKey for u32 {
    fn partition_hash(&self) -> u64 {
        *self as u64
    }
}

impl SparkKey for u64 {
    fn partition_hash(&self) -> u64 {
        *self
    }
}

impl SparkKey for String {
    fn partition_hash(&self) -> u64 {
        // Java String.hashCode (s[0]*31^(n-1) + ...), widened to u64.
        let mut h: i32 = 0;
        for b in self.bytes() {
            h = h.wrapping_mul(31).wrapping_add(b as i32);
        }
        h as u32 as u64
    }
}

impl SparkRecord for u64 {
    fn mem_bytes(&self, _cost: &CostModel) -> u64 {
        16 // boxed long
    }
}

impl SparkRecord for u32 {
    fn mem_bytes(&self, _cost: &CostModel) -> u64 {
        16
    }
}

impl SparkRecord for String {
    fn mem_bytes(&self, _cost: &CostModel) -> u64 {
        40 + 2 * self.len() as u64 // JVM String: header + UTF-16 chars
    }
}

/// Tuples model a `Tuple2` wrapper plus both fields.
impl<A: SparkRecord, B: SparkRecord> SparkRecord for (A, B) {
    fn mem_bytes(&self, cost: &CostModel) -> u64 {
        24 + self.0.mem_bytes(cost) + self.1.mem_bytes(cost)
    }
}

/// Lists model an `ArrayBuffer` plus elements.
impl<T: SparkRecord> SparkRecord for Vec<T> {
    fn mem_bytes(&self, cost: &CostModel) -> u64 {
        48 + self.iter().map(|t| t.mem_bytes(cost)).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_footprint_sums_elements() {
        let cost = CostModel::default();
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.mem_bytes(&cost), 48 + 3 * 16);
    }

    #[test]
    fn tuple_footprint_adds_wrapper() {
        let cost = CostModel::default();
        assert_eq!((1u64, 2u64).mem_bytes(&cost), 24 + 32);
    }

    #[test]
    fn string_footprint_scales_with_length() {
        let cost = CostModel::default();
        assert!(("x".repeat(100)).mem_bytes(&cost) > ("x".to_string()).mem_bytes(&cost));
    }
}
