//! # sjc-rdd — a Spark-like in-memory RDD engine
//!
//! The platform substrate under our SpatialSpark reproduction. Mirrors the
//! Spark 1.x execution model the paper evaluated:
//!
//! * typed, partitioned datasets ([`Rdd`]) with narrow transformations
//!   (`map`, `flat_map`, `filter`, `sample`) that *pipeline* — their CPU
//!   cost accumulates per partition and is only turned into a stage
//!   makespan at the next shuffle or action;
//! * wide operations (`group_by_key`, `join`) that shuffle **in memory**
//!   ([`shuffle`]) — no HDFS writes between stages, the paper's core
//!   explanation for SpatialSpark's efficiency;
//! * [`broadcast`] variables shipped once per node (how SpatialSpark
//!   distributes its sampled partition R-tree);
//! * executor memory accounting ([`memory`]): every shuffle materialization
//!   checks the modeled JVM-resident footprint per executor against usable
//!   node memory and fails with [`sjc_cluster::SimError::OutOfMemory`] —
//!   "Spark is not able to spill data to external storage", the paper's
//!   observed SpatialSpark failure on EC2-8/6.
//!
//! Like the MapReduce engine, all computation is real; the simulated clock
//! and the memory ledger work on full-scale extrapolated volumes.

pub mod broadcast;
pub mod context;
pub mod memory;
pub mod rdd;
pub mod record;
pub mod shuffle;

pub use broadcast::Broadcast;
pub use context::SparkContext;
pub use rdd::Rdd;
pub use record::{SparkKey, SparkRecord};
