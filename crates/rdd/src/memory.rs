//! Executor memory accounting — the OOM mechanism.
//!
//! Spark 1.1 (the paper's version) could not spill `groupByKey` state:
//! when a shuffle's materialized groups exceeded executor memory the job
//! died. We model executors one-per-node; partitions hash to executors
//! round-robin; at every shuffle materialization the *live* footprint per
//! executor (shuffle input still resident + shuffle output being built)
//! must fit in the node's usable memory.

use sjc_cluster::{Cluster, SimError};

/// Per-executor footprint of one RDD under Spark's dynamic task placement,
/// approximated by longest-processing-time balancing: the scheduler hands
/// the next partition to the least-loaded executor, so big partitions
/// spread out rather than stacking on one node.
pub fn per_executor_bytes(part_mem_full: &[u64], nodes: usize) -> Vec<u64> {
    let nodes = nodes.max(1);
    let mut out = vec![0u64; nodes];
    let mut sorted: Vec<u64> = part_mem_full.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    for m in sorted {
        // `out` holds nodes.max(1) >= 1 executors, so a minimum always exists.
        if let Some(min) = out.iter_mut().min_by_key(|b| **b) {
            *min += m;
        }
    }
    out
}

/// Checks that the live sets fit on every executor.
///
/// `live_rdds` are per-partition full-scale footprints of every dataset that
/// must be resident simultaneously during the materialization.
///
/// Setting `SJC_MEM_DEBUG=1` prints every check's totals (used when
/// calibrating the footprint constants against Table 2).
pub fn check_fits(cluster: &Cluster, stage: &str, live_rdds: &[&[u64]]) -> Result<(), SimError> {
    let nodes = cluster.config.nodes as usize;
    let usable = cluster.cost.spark_usable_memory(cluster.config.node.memory_bytes);
    // Pool all live partitions and balance them together — the scheduler
    // sees one task queue, not one queue per RDD.
    let all: Vec<u64> = live_rdds.iter().flat_map(|r| r.iter().copied()).collect();
    let per_exec = per_executor_bytes(&all, nodes);
    let needed = per_exec.iter().copied().max().unwrap_or(0);
    if std::env::var_os("SJC_MEM_DEBUG").is_some() {
        let total: u64 = all.iter().sum();
        eprintln!(
            "[mem] {} stage={stage:?} total={:.2}GB peak={:.2}GB usable={:.2}GB",
            cluster.config.name,
            total as f64 / 1e9,
            needed as f64 / 1e9,
            usable as f64 / 1e9
        );
    }
    if needed > usable {
        return Err(SimError::OutOfMemory {
            stage: stage.to_string(),
            needed_bytes: needed,
            usable_bytes: usable,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_cluster::ClusterConfig;

    #[test]
    fn partitions_balance_across_executors() {
        // LPT placement: 40 and 30 land on different executors, then 20 and
        // 10 fill toward balance.
        let mut per = per_executor_bytes(&[10, 20, 30, 40], 2);
        per.sort_unstable();
        assert_eq!(per, vec![50, 50]);
        // A single giant partition cannot be split.
        let per = per_executor_bytes(&[100, 1, 1], 2);
        assert_eq!(*per.iter().max().unwrap(), 100);
    }

    #[test]
    fn fits_on_big_nodes_fails_on_small() {
        // 60 GB spread over partitions.
        let parts: Vec<u64> = vec![6 << 30; 10];
        let ws = Cluster::new(ClusterConfig::workstation());
        assert!(check_fits(&ws, "s", &[&parts]).is_ok(), "128 GB node holds 60 GB");

        let ec2 = Cluster::new(ClusterConfig::ec2(4));
        // 4 nodes × 15 GB × 0.6 = 9 GB usable each; 15 GB lands per node.
        assert!(check_fits(&ec2, "s", &[&parts]).is_err());
    }

    #[test]
    fn aggregate_memory_helps_until_skew_bites() {
        let ec2_10 = Cluster::new(ClusterConfig::ec2(10));
        // Balanced 50 GB over 100 partitions → 5 GB per node: fits in 9 GB.
        let balanced: Vec<u64> = vec![(50u64 << 30) / 100; 100];
        assert!(check_fits(&ec2_10, "s", &[&balanced]).is_ok());
        // Same total but one hot partition of 10 GB blows a single node.
        let mut skewed = vec![(40u64 << 30) / 99; 99];
        skewed.push(10 << 30);
        assert!(check_fits(&ec2_10, "s", &[&skewed]).is_err());
    }

    #[test]
    fn multiple_live_rdds_accumulate() {
        let ec2 = Cluster::new(ClusterConfig::ec2(2));
        let a: Vec<u64> = vec![5 << 30; 2]; // 5 GB per executor
        assert!(check_fits(&ec2, "s", &[&a]).is_ok(), "5 GB < 9 GB usable");
        assert!(check_fits(&ec2, "s", &[&a, &a]).is_err(), "10 GB > 9 GB usable");
    }
}
