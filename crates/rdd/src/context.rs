//! The Spark driver context: owns the run trace and stage accounting.

use sjc_cluster::metrics::Phase;
use sjc_cluster::scheduler::{faulty_makespan, lpt_makespan};
use sjc_cluster::{
    Cluster, RecoveryEvent, RecoveryKind, RunTrace, SimError, SimNs, StageKind, StageTrace,
    MAX_STAGE_RESUBMITS,
};

use crate::rdd::Rdd;
use crate::record::SparkRecord;

/// Driver-side context for building and executing RDDs.
pub struct SparkContext<'a> {
    pub cluster: &'a Cluster,
    pub trace: RunTrace,
    /// Default number of partitions for loaded datasets (Spark uses
    /// 2–3 × total cores).
    pub default_parallelism: usize,
    /// Completed stages since the last durable checkpoint — drives the
    /// plan's checkpoint cadence and bounds lineage replay depth.
    stages_since_checkpoint: u32,
    /// Whether any checkpoint has been written this run.
    checkpointed: bool,
    /// Logical (pre-replication) bytes of the last durable checkpoint.
    checkpoint_bytes: u64,
}

impl<'a> SparkContext<'a> {
    pub fn new(cluster: &'a Cluster) -> Self {
        SparkContext {
            cluster,
            trace: RunTrace::new("spark"),
            default_parallelism: cluster.total_slots() * 2,
            stages_since_checkpoint: 0,
            checkpointed: false,
            checkpoint_bytes: 0,
        }
    }

    /// Loads a dataset "from HDFS": the only point where SpatialSpark
    /// touches the distributed file system. Charges the read and text parse
    /// into the partitions' pending cost (Spark is lazy — the load is paid
    /// when the first stage runs).
    pub fn read_text<T: SparkRecord>(
        &mut self,
        records: Vec<T>,
        input_bytes: u64,
        multiplier: f64,
    ) -> Rdd<T> {
        let parts = self.default_parallelism.max(1);
        let n = records.len();
        let chunk = n.div_ceil(parts).max(1);
        let cost = &self.cluster.cost;
        let node = &self.cluster.config.node;

        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(parts);
        let mut it = records.into_iter();
        loop {
            let mut part: Vec<T> = Vec::with_capacity(chunk);
            part.extend(it.by_ref().take(chunk));
            if part.is_empty() {
                break;
            }
            partitions.push(part);
        }
        if partitions.is_empty() {
            partitions.push(Vec::new());
        }

        let bytes_per_rec = if n == 0 { 0.0 } else { input_bytes as f64 / n as f64 };
        let mut pending = Vec::with_capacity(partitions.len());
        let mut mem_full = Vec::with_capacity(partitions.len());
        for p in &partitions {
            let part_bytes = (p.len() as f64 * bytes_per_rec) as u64;
            let io = cost.io_ns(part_bytes, node.slot_disk_read_bw());
            let cpu = cost.parse_ns(part_bytes) + cost.spark_records_ns(p.len() as u64);
            let ns = io + (cpu as f64 * node.cpu_scale) as u64;
            pending.push((ns as f64 * multiplier) as SimNs);
            let mem: u64 = p.iter().map(|r| r.mem_bytes(cost)).sum();
            mem_full.push((mem as f64 * multiplier) as u64);
        }

        Rdd {
            parts: partitions,
            pending_ns: pending,
            pending_hdfs_read: (input_bytes as f64 * multiplier) as u64,
            mem_full,
            multiplier,
            lineage_depth: 1,
        }
    }

    /// Closes a stage: schedules the per-partition pending durations onto
    /// the cluster, emits a [`StageTrace`], and returns its simulated time.
    ///
    /// Under a fault plan the stage runs through the event scheduler on the
    /// run's global clock. A node crash inside the stage window destroys the
    /// cached parent partitions that lived on it; unlike Hadoop (which
    /// re-runs one task), Spark recomputes those partitions through their
    /// **lineage** — the resubmitted wave costs `lineage_depth ×` the lost
    /// partitions' work, bounded by [`MAX_STAGE_RESUBMITS`]. When the plan's
    /// [`sjc_cluster::CheckpointPolicy`] is enabled, lineage replay
    /// truncates at the last durable checkpoint (at most
    /// `stages_since_checkpoint + 1` stages deep, the lost partitions'
    /// checkpointed parents re-read over the network), and `resident_bytes`
    /// — the stage's materialized output footprint — is what a checkpoint
    /// write at this stage persists.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn close_stage(
        &mut self,
        name: &str,
        phase: Phase,
        pending_ns: &[SimNs],
        hdfs_read: u64,
        shuffle_bytes: u64,
        lineage_depth: u32,
        resident_bytes: u64,
    ) -> Result<SimNs, SimError> {
        let cost = self.cluster.cost.clone();
        let with_overhead: Vec<SimNs> =
            pending_ns.iter().map(|&p| p + cost.spark_task_overhead_ns).collect();
        if std::env::var_os("SJC_STAGE_DEBUG").is_some() {
            let sum: u128 = pending_ns.iter().map(|&p| p as u128).sum();
            let max = pending_ns.iter().copied().max().unwrap_or(0);
            eprintln!(
                "[stage] {} {name:?} tasks={} sum={:.1}s max={:.1}s",
                self.cluster.config.name,
                pending_ns.len(),
                sum as f64 / 1e9,
                max as f64 / 1e9,
            );
        }
        let plan = self.cluster.faults.clone();
        if plan.is_none() {
            let makespan = lpt_makespan(&with_overhead, self.cluster.total_slots());
            let total = cost.spark_job_startup_ns + makespan;
            let mut st = StageTrace::new(name, StageKind::SparkStage, phase);
            st.sim_ns = total;
            st.hdfs_bytes_read = hdfs_read;
            st.shuffle_bytes = shuffle_bytes;
            st.tasks = pending_ns.len() as u64;
            self.trace.push(st);
            return Ok(total);
        }

        let cores = self.cluster.config.node.cores;
        let nodes = self.cluster.config.nodes;
        let start = self.trace.total_ns() + cost.spark_job_startup_ns;
        let mut st = StageTrace::new(name, StageKind::SparkStage, phase);
        let mut events: Vec<RecoveryEvent> = Vec::new();
        let mut makespan = 0u64;
        let mut work = with_overhead;
        let mut resubmit: u32 = 0;
        loop {
            let dead_before = plan.dead_nodes_at(start + makespan);
            let sched = faulty_makespan(&work, cores, nodes, &plan, name, start + makespan, false)?;
            st.attempts += sched.attempts;
            st.speculative += sched.speculative;
            st.wasted_ns += sched.wasted_ns;
            events.extend(sched.events);
            makespan += sched.makespan;
            let dead_after = plan.dead_nodes_at(start + makespan);
            // sjc-lint: allow(hot-alloc) — crash-recovery bookkeeping: runs once per stage resubmission (≤ MAX_STAGE_RESUBMITS), not per task
            let newly: Vec<u32> =
                dead_after.iter().copied().filter(|n| !dead_before.contains(n)).collect();
            if newly.is_empty() {
                break;
            }
            // Cached partitions live round-robin across nodes; the ones on
            // the fresh casualties recompute through their lineage — at
            // most back to the last durable checkpoint.
            let full_depth = lineage_depth.max(1);
            let depth = if self.checkpointed {
                full_depth.min(self.stages_since_checkpoint + 1)
            } else {
                full_depth
            };
            // sjc-lint: allow(hot-alloc) — crash-recovery bookkeeping: the lost set becomes the next resubmission's work list (≤ MAX_STAGE_RESUBMITS rounds)
            let lost: Vec<SimNs> = pending_ns
                .iter()
                .enumerate()
                .filter(|(i, _)| newly.contains(&((*i as u32) % nodes)))
                .map(|(_, &p)| (p + cost.spark_task_overhead_ns).saturating_mul(depth as u64))
                .collect();
            if lost.is_empty() {
                break;
            }
            resubmit += 1;
            if resubmit > MAX_STAGE_RESUBMITS {
                return Err(SimError::NodeLost {
                    // sjc-lint: allow(hot-alloc) — cold error return: allocates once, then the run is over
                    stage: name.to_string(),
                    node: newly.first().copied().unwrap_or(0),
                });
            }
            let lost_work: SimNs = lost.iter().sum();
            st.wasted_ns += lost_work;
            // One event carries the whole resubmission: the attempt, the
            // lost partitions, the (checkpoint-truncated) replay depth, and
            // the full recompute cost as its wasted_ns.
            events.push(RecoveryEvent {
                // sjc-lint: allow(hot-alloc) — crash-recovery event: one per stage resubmission (≤ MAX_STAGE_RESUBMITS), not per task
                stage: name.to_string(),
                kind: RecoveryKind::StageResubmit {
                    attempt: resubmit,
                    partitions: lost.len() as u64,
                    lineage_depth: depth,
                },
                wasted_ns: lost_work,
            });
            // Truncated replay starts from checkpointed parents: the lost
            // partitions' share of the checkpoint comes back over the NIC.
            if depth < full_depth && self.checkpoint_bytes > 0 {
                let node = &self.cluster.config.node;
                let live = nodes.saturating_sub(dead_after.len() as u32).max(1);
                let reread = (self.checkpoint_bytes as f64 * lost.len() as f64
                    / pending_ns.len().max(1) as f64) as u64;
                let live_slots = (live as u64 * cores as u64).max(1);
                let extra = cost.io_ns(reread / live_slots, node.slot_net_bw());
                makespan += extra;
                st.bytes_reread += reread;
                events.push(RecoveryEvent {
                    // sjc-lint: allow(hot-alloc) — crash-recovery event: one per stage resubmission (≤ MAX_STAGE_RESUBMITS), not per task
                    stage: name.to_string(),
                    kind: RecoveryKind::CheckpointRestore { bytes: reread },
                    wasted_ns: extra,
                });
            }
            work = lost;
        }

        // Input blocks whose primary died before the stage started come
        // from remote replicas over the NIC.
        let dead0 = plan.dead_nodes_at(start);
        if !dead0.is_empty() && hdfs_read > 0 {
            let node = &self.cluster.config.node;
            let live = nodes.saturating_sub(dead0.len() as u32).max(1);
            let reread = (hdfs_read as f64 * dead0.len() as f64 / nodes as f64) as u64;
            let live_slots = (live as u64 * node.cores as u64).max(1);
            let extra = cost.io_ns(reread / live_slots, node.slot_net_bw());
            makespan += extra;
            st.bytes_reread = reread;
            events.push(RecoveryEvent {
                stage: name.to_string(),
                kind: RecoveryKind::ReplicaFailover {
                    blocks: reread.div_ceil(sjc_cluster::hdfs::DEFAULT_BLOCK_SIZE),
                },
                wasted_ns: extra,
            });
        }

        // Checkpoint cadence: every `interval_stages` completed stages the
        // stage's resident output is persisted to HDFS through the
        // replication pipeline. The write is the insurance premium — it
        // costs critical-path time even when no fault ever fires.
        if plan.checkpoint.enabled() {
            if self.stages_since_checkpoint + 1 >= plan.checkpoint.interval_stages {
                if resident_bytes > 0 {
                    let node = &self.cluster.config.node;
                    let write_bw = if nodes > 1 {
                        node.slot_disk_write_bw().min(node.slot_net_bw() / 2.0)
                    } else {
                        node.slot_disk_write_bw()
                    };
                    let replicated =
                        resident_bytes.saturating_mul(plan.checkpoint.replication.max(1) as u64);
                    let slots = (nodes as u64 * cores as u64).max(1);
                    let write_ns = cost.io_ns(replicated / slots, write_bw);
                    makespan += write_ns;
                    st.hdfs_bytes_written += resident_bytes;
                    events.push(RecoveryEvent {
                        stage: name.to_string(),
                        kind: RecoveryKind::CheckpointWrite { bytes: resident_bytes },
                        wasted_ns: write_ns,
                    });
                }
                self.checkpointed = true;
                self.checkpoint_bytes = resident_bytes;
                self.stages_since_checkpoint = 0;
            } else {
                self.stages_since_checkpoint += 1;
            }
        }

        let total = cost.spark_job_startup_ns + makespan;
        st.sim_ns = total;
        st.hdfs_bytes_read = hdfs_read;
        st.shuffle_bytes = shuffle_bytes;
        st.tasks = pending_ns.len() as u64;
        self.trace.push(st);
        self.trace.push_recovery(events);
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_cluster::{ClusterConfig, CostModel, FaultPlan};

    #[test]
    fn read_text_partitions_and_charges() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let records: Vec<u64> = (0..1000).collect();
        let rdd = ctx.read_text(records, 40_000, 10.0);
        assert_eq!(rdd.parts.iter().map(Vec::len).sum::<usize>(), 1000);
        assert!(rdd.parts.len() <= ctx.default_parallelism);
        assert!(rdd.pending_ns.iter().all(|&ns| ns > 0));
        assert_eq!(rdd.pending_hdfs_read, 400_000);
    }

    #[test]
    fn empty_dataset_still_has_one_partition() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let rdd: Rdd<u64> = ctx.read_text(Vec::new(), 0, 1.0);
        assert_eq!(rdd.parts.len(), 1);
    }

    #[test]
    fn close_stage_emits_trace() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let ns =
            ctx.close_stage("s1", Phase::DistributedJoin, &[1000, 2000], 77, 88, 1, 0).unwrap();
        assert!(ns >= 2000);
        assert_eq!(ctx.trace.stages.len(), 1);
        assert_eq!(ctx.trace.stages[0].hdfs_bytes_read, 77);
        assert_eq!(ctx.trace.stages[0].shuffle_bytes, 88);
    }

    #[test]
    fn mid_stage_crash_costs_a_lineage_recompute() {
        let config = ClusterConfig::ec2(4);
        let startup = CostModel::default().spark_job_startup_ns;
        // Node 2 dies half a task into the first (and only) wave.
        let plan = FaultPlan::seeded(1, &config).crash_at(2, startup + 500_000);
        let clean = Cluster::new(config.clone());
        let faulted = Cluster::with_faults(config, plan);
        let pending = vec![1_000_000u64; 32];
        let run = |cluster: &Cluster, depth: u32| {
            let mut ctx = SparkContext::new(cluster);
            let ns = ctx
                .close_stage("s", Phase::DistributedJoin, &pending, 1 << 20, 0, depth, 0)
                .unwrap();
            (ns, ctx.trace)
        };
        let (base, t0) = run(&clean, 1);
        assert!(t0.recovery.is_empty(), "no faults, no recovery log");
        let (hit, t1) = run(&faulted, 1);
        assert!(hit > base, "the crash costs simulated time");
        // The resubmission is one event carrying both the lost partitions
        // and the recompute cost — never a zero-cost marker.
        let resubmits: Vec<_> = t1
            .recovery
            .iter()
            .filter(|e| matches!(e.kind, RecoveryKind::StageResubmit { .. }))
            .collect();
        assert!(!resubmits.is_empty(), "lost cached partitions resubmit: {:?}", t1.recovery);
        for e in &resubmits {
            assert!(e.wasted_ns > 0, "the resubmit event carries the recompute cost: {e:?}");
            if let RecoveryKind::StageResubmit { partitions, lineage_depth, .. } = e.kind {
                assert!(partitions > 0);
                assert_eq!(lineage_depth, 1);
            }
        }
        assert!(t1.total_wasted_ns() > 0);
        // A longer narrow-op chain makes the same crash strictly costlier —
        // the Hadoop-vs-Spark recovery asymmetry the fault model exists for.
        let (deep, _) = run(&faulted, 5);
        assert!(deep > hit, "lineage depth scales recovery cost");
    }

    #[test]
    fn a_durable_checkpoint_truncates_lineage_replay() {
        let config = ClusterConfig::ec2(4);
        let startup = CostModel::default().spark_job_startup_ns;
        let pending = vec![10_000_000_000u64; 32];
        let resident: u64 = 64 << 20;

        // Find where stage 1 ends fault-free, then schedule the crash well
        // inside stage 2's window (margins dwarf the checkpoint write).
        let clean = Cluster::new(config.clone());
        let stage1_end = {
            let mut ctx = SparkContext::new(&clean);
            ctx.close_stage("s1", Phase::DistributedJoin, &pending, 0, 0, 1, resident).unwrap();
            ctx.trace.total_ns()
        };
        let crash_at = stage1_end + startup + 5_000_000_000;

        let run = |ckpt_interval: u32| {
            let mut plan = FaultPlan::seeded(1, &config).crash_at(2, crash_at);
            if ckpt_interval > 0 {
                plan = plan.with_checkpoints(ckpt_interval, 3);
            }
            let cluster = Cluster::with_faults(config.clone(), plan);
            let mut ctx = SparkContext::new(&cluster);
            ctx.close_stage("s1", Phase::DistributedJoin, &pending, 0, 0, 1, resident).unwrap();
            ctx.close_stage("s2", Phase::DistributedJoin, &pending, 0, 0, 5, resident).unwrap();
            ctx.trace
        };

        let lineage = run(0);
        let ckpt = run(1);

        let depth_of = |t: &sjc_cluster::RunTrace| {
            t.recovery
                .iter()
                .find_map(|e| match e.kind {
                    RecoveryKind::StageResubmit { lineage_depth, .. } => Some(lineage_depth),
                    _ => None,
                })
                .expect("a resubmit happened")
        };
        // Without a checkpoint the crash replays the full 5-deep chain;
        // with one taken after every stage it replays only this stage.
        assert_eq!(depth_of(&lineage), 5);
        assert_eq!(depth_of(&ckpt), 1);
        assert!(
            ckpt.recovery.iter().any(|e| matches!(e.kind, RecoveryKind::CheckpointWrite { .. })),
            "the premium is metered: {:?}",
            ckpt.recovery
        );
        assert!(
            ckpt.recovery
                .iter()
                .any(|e| matches!(e.kind, RecoveryKind::CheckpointRestore { bytes } if bytes > 0)),
            "truncated replay re-reads checkpointed parents: {:?}",
            ckpt.recovery
        );
        // Checkpointed recovery is strictly cheaper end to end: replaying 1
        // stage instead of 5 dwarfs the write premium.
        assert!(
            ckpt.total_ns() < lineage.total_ns(),
            "checkpointing must win here: {} >= {}",
            ckpt.total_ns(),
            lineage.total_ns()
        );
        assert!(ckpt.total_wasted_ns() < lineage.total_wasted_ns());
    }

    #[test]
    fn disabled_checkpoint_interval_is_bit_identical() {
        // Interval 0 (= ∞) must not even change the code path taken.
        let config = ClusterConfig::ec2(4);
        let plan = FaultPlan::seeded(3, &config).crash_at(1, 2_000_000_000);
        let base = Cluster::with_faults(config.clone(), plan.clone());
        let inf = Cluster::with_faults(config, plan.with_checkpoints(0, 3));
        let pending = vec![5_000_000u64; 48];
        let run = |cluster: &Cluster| {
            let mut ctx = SparkContext::new(cluster);
            ctx.close_stage("s", Phase::DistributedJoin, &pending, 1 << 22, 9, 3, 1 << 26).unwrap();
            (ctx.trace.total_ns(), ctx.trace.recovery.len())
        };
        assert_eq!(run(&base), run(&inf));
    }
}
