//! The Spark driver context: owns the run trace and stage accounting.

use sjc_cluster::metrics::Phase;
use sjc_cluster::scheduler::{faulty_makespan, lpt_makespan};
use sjc_cluster::{
    Cluster, RecoveryEvent, RecoveryKind, RunTrace, SimError, SimNs, StageKind, StageTrace,
    MAX_STAGE_RESUBMITS,
};

use crate::rdd::Rdd;
use crate::record::SparkRecord;

/// Driver-side context for building and executing RDDs.
pub struct SparkContext<'a> {
    pub cluster: &'a Cluster,
    pub trace: RunTrace,
    /// Default number of partitions for loaded datasets (Spark uses
    /// 2–3 × total cores).
    pub default_parallelism: usize,
}

impl<'a> SparkContext<'a> {
    pub fn new(cluster: &'a Cluster) -> Self {
        SparkContext {
            cluster,
            trace: RunTrace::new("spark"),
            default_parallelism: cluster.total_slots() * 2,
        }
    }

    /// Loads a dataset "from HDFS": the only point where SpatialSpark
    /// touches the distributed file system. Charges the read and text parse
    /// into the partitions' pending cost (Spark is lazy — the load is paid
    /// when the first stage runs).
    pub fn read_text<T: SparkRecord>(
        &mut self,
        records: Vec<T>,
        input_bytes: u64,
        multiplier: f64,
    ) -> Rdd<T> {
        let parts = self.default_parallelism.max(1);
        let n = records.len();
        let chunk = n.div_ceil(parts).max(1);
        let cost = &self.cluster.cost;
        let node = &self.cluster.config.node;

        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(parts);
        let mut it = records.into_iter();
        loop {
            let mut part: Vec<T> = Vec::with_capacity(chunk);
            part.extend(it.by_ref().take(chunk));
            if part.is_empty() {
                break;
            }
            partitions.push(part);
        }
        if partitions.is_empty() {
            partitions.push(Vec::new());
        }

        let bytes_per_rec = if n == 0 { 0.0 } else { input_bytes as f64 / n as f64 };
        let mut pending = Vec::with_capacity(partitions.len());
        let mut mem_full = Vec::with_capacity(partitions.len());
        for p in &partitions {
            let part_bytes = (p.len() as f64 * bytes_per_rec) as u64;
            let io = cost.io_ns(part_bytes, node.slot_disk_read_bw());
            let cpu = cost.parse_ns(part_bytes) + cost.spark_records_ns(p.len() as u64);
            let ns = io + (cpu as f64 * node.cpu_scale) as u64;
            pending.push((ns as f64 * multiplier) as SimNs);
            let mem: u64 = p.iter().map(|r| r.mem_bytes(cost)).sum();
            mem_full.push((mem as f64 * multiplier) as u64);
        }

        Rdd {
            parts: partitions,
            pending_ns: pending,
            pending_hdfs_read: (input_bytes as f64 * multiplier) as u64,
            mem_full,
            multiplier,
            lineage_depth: 1,
        }
    }

    /// Closes a stage: schedules the per-partition pending durations onto
    /// the cluster, emits a [`StageTrace`], and returns its simulated time.
    ///
    /// Under a fault plan the stage runs through the event scheduler on the
    /// run's global clock. A node crash inside the stage window destroys the
    /// cached parent partitions that lived on it; unlike Hadoop (which
    /// re-runs one task), Spark recomputes those partitions through their
    /// **lineage** — the resubmitted wave costs `lineage_depth ×` the lost
    /// partitions' work, bounded by [`MAX_STAGE_RESUBMITS`].
    pub(crate) fn close_stage(
        &mut self,
        name: &str,
        phase: Phase,
        pending_ns: &[SimNs],
        hdfs_read: u64,
        shuffle_bytes: u64,
        lineage_depth: u32,
    ) -> Result<SimNs, SimError> {
        let cost = self.cluster.cost.clone();
        let with_overhead: Vec<SimNs> =
            pending_ns.iter().map(|&p| p + cost.spark_task_overhead_ns).collect();
        if std::env::var_os("SJC_STAGE_DEBUG").is_some() {
            let sum: u128 = pending_ns.iter().map(|&p| p as u128).sum();
            let max = pending_ns.iter().copied().max().unwrap_or(0);
            eprintln!(
                "[stage] {} {name:?} tasks={} sum={:.1}s max={:.1}s",
                self.cluster.config.name,
                pending_ns.len(),
                sum as f64 / 1e9,
                max as f64 / 1e9,
            );
        }
        let plan = self.cluster.faults.clone();
        if plan.is_none() {
            let makespan = lpt_makespan(&with_overhead, self.cluster.total_slots());
            let total = cost.spark_job_startup_ns + makespan;
            let mut st = StageTrace::new(name, StageKind::SparkStage, phase);
            st.sim_ns = total;
            st.hdfs_bytes_read = hdfs_read;
            st.shuffle_bytes = shuffle_bytes;
            st.tasks = pending_ns.len() as u64;
            self.trace.push(st);
            return Ok(total);
        }

        let cores = self.cluster.config.node.cores;
        let nodes = self.cluster.config.nodes;
        let start = self.trace.total_ns() + cost.spark_job_startup_ns;
        let mut st = StageTrace::new(name, StageKind::SparkStage, phase);
        let mut events: Vec<RecoveryEvent> = Vec::new();
        let mut makespan = 0u64;
        let mut work = with_overhead;
        let mut resubmit: u32 = 0;
        loop {
            let dead_before = plan.dead_nodes_at(start + makespan);
            let sched = faulty_makespan(&work, cores, nodes, &plan, name, start + makespan, false)?;
            st.attempts += sched.attempts;
            st.speculative += sched.speculative;
            st.wasted_ns += sched.wasted_ns;
            events.extend(sched.events);
            makespan += sched.makespan;
            let dead_after = plan.dead_nodes_at(start + makespan);
            // sjc-lint: allow(hot-alloc) — crash-recovery bookkeeping: runs once per stage resubmission (≤ MAX_STAGE_RESUBMITS), not per task
            let newly: Vec<u32> =
                dead_after.iter().copied().filter(|n| !dead_before.contains(n)).collect();
            if newly.is_empty() {
                break;
            }
            // Cached partitions live round-robin across nodes; the ones on
            // the fresh casualties recompute through their whole lineage.
            let depth = lineage_depth.max(1);
            // sjc-lint: allow(hot-alloc) — crash-recovery bookkeeping: the lost set becomes the next resubmission's work list (≤ MAX_STAGE_RESUBMITS rounds)
            let lost: Vec<SimNs> = pending_ns
                .iter()
                .enumerate()
                .filter(|(i, _)| newly.contains(&((*i as u32) % nodes)))
                .map(|(_, &p)| (p + cost.spark_task_overhead_ns).saturating_mul(depth as u64))
                .collect();
            if lost.is_empty() {
                break;
            }
            resubmit += 1;
            if resubmit > MAX_STAGE_RESUBMITS {
                return Err(SimError::NodeLost {
                    // sjc-lint: allow(hot-alloc) — cold error return: allocates once, then the run is over
                    stage: name.to_string(),
                    node: newly.first().copied().unwrap_or(0),
                });
            }
            let lost_work: SimNs = lost.iter().sum();
            st.wasted_ns += lost_work;
            events.push(RecoveryEvent {
                // sjc-lint: allow(hot-alloc) — crash-recovery event: one per stage resubmission (≤ MAX_STAGE_RESUBMITS), not per task
                stage: name.to_string(),
                kind: RecoveryKind::PartitionRecompute {
                    partitions: lost.len() as u64,
                    lineage_depth: depth,
                },
                wasted_ns: lost_work,
            });
            events.push(RecoveryEvent {
                // sjc-lint: allow(hot-alloc) — crash-recovery event: one per stage resubmission (≤ MAX_STAGE_RESUBMITS), not per task
                stage: name.to_string(),
                kind: RecoveryKind::StageResubmit { attempt: resubmit },
                wasted_ns: 0,
            });
            work = lost;
        }

        // Input blocks whose primary died before the stage started come
        // from remote replicas over the NIC.
        let dead0 = plan.dead_nodes_at(start);
        if !dead0.is_empty() && hdfs_read > 0 {
            let node = &self.cluster.config.node;
            let live = nodes.saturating_sub(dead0.len() as u32).max(1);
            let reread = (hdfs_read as f64 * dead0.len() as f64 / nodes as f64) as u64;
            let live_slots = (live as u64 * node.cores as u64).max(1);
            let extra = cost.io_ns(reread / live_slots, node.slot_net_bw());
            makespan += extra;
            st.bytes_reread = reread;
            events.push(RecoveryEvent {
                stage: name.to_string(),
                kind: RecoveryKind::ReplicaFailover {
                    blocks: reread.div_ceil(sjc_cluster::hdfs::DEFAULT_BLOCK_SIZE),
                },
                wasted_ns: extra,
            });
        }

        let total = cost.spark_job_startup_ns + makespan;
        st.sim_ns = total;
        st.hdfs_bytes_read = hdfs_read;
        st.shuffle_bytes = shuffle_bytes;
        st.tasks = pending_ns.len() as u64;
        self.trace.push(st);
        self.trace.push_recovery(events);
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_cluster::{ClusterConfig, CostModel, FaultPlan};

    #[test]
    fn read_text_partitions_and_charges() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let records: Vec<u64> = (0..1000).collect();
        let rdd = ctx.read_text(records, 40_000, 10.0);
        assert_eq!(rdd.parts.iter().map(Vec::len).sum::<usize>(), 1000);
        assert!(rdd.parts.len() <= ctx.default_parallelism);
        assert!(rdd.pending_ns.iter().all(|&ns| ns > 0));
        assert_eq!(rdd.pending_hdfs_read, 400_000);
    }

    #[test]
    fn empty_dataset_still_has_one_partition() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let rdd: Rdd<u64> = ctx.read_text(Vec::new(), 0, 1.0);
        assert_eq!(rdd.parts.len(), 1);
    }

    #[test]
    fn close_stage_emits_trace() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let ns = ctx.close_stage("s1", Phase::DistributedJoin, &[1000, 2000], 77, 88, 1).unwrap();
        assert!(ns >= 2000);
        assert_eq!(ctx.trace.stages.len(), 1);
        assert_eq!(ctx.trace.stages[0].hdfs_bytes_read, 77);
        assert_eq!(ctx.trace.stages[0].shuffle_bytes, 88);
    }

    #[test]
    fn mid_stage_crash_costs_a_lineage_recompute() {
        let config = ClusterConfig::ec2(4);
        let startup = CostModel::default().spark_job_startup_ns;
        // Node 2 dies half a task into the first (and only) wave.
        let plan = FaultPlan::seeded(1, &config).crash_at(2, startup + 500_000);
        let clean = Cluster::new(config.clone());
        let faulted = Cluster::with_faults(config, plan);
        let pending = vec![1_000_000u64; 32];
        let run = |cluster: &Cluster, depth: u32| {
            let mut ctx = SparkContext::new(cluster);
            let ns =
                ctx.close_stage("s", Phase::DistributedJoin, &pending, 1 << 20, 0, depth).unwrap();
            (ns, ctx.trace)
        };
        let (base, t0) = run(&clean, 1);
        assert!(t0.recovery.is_empty(), "no faults, no recovery log");
        let (hit, t1) = run(&faulted, 1);
        assert!(hit > base, "the crash costs simulated time");
        assert!(
            t1.recovery.iter().any(|e| matches!(e.kind, RecoveryKind::PartitionRecompute { .. })),
            "lost cached partitions recompute via lineage: {:?}",
            t1.recovery
        );
        assert!(t1.total_wasted_ns() > 0);
        // A longer narrow-op chain makes the same crash strictly costlier —
        // the Hadoop-vs-Spark recovery asymmetry the fault model exists for.
        let (deep, _) = run(&faulted, 5);
        assert!(deep > hit, "lineage depth scales recovery cost");
    }
}
