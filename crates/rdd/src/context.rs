//! The Spark driver context: owns the run trace and stage accounting.

use sjc_cluster::metrics::Phase;
use sjc_cluster::scheduler::lpt_makespan;
use sjc_cluster::{Cluster, RunTrace, SimNs, StageKind, StageTrace};

use crate::rdd::Rdd;
use crate::record::SparkRecord;

/// Driver-side context for building and executing RDDs.
pub struct SparkContext<'a> {
    pub cluster: &'a Cluster,
    pub trace: RunTrace,
    /// Default number of partitions for loaded datasets (Spark uses
    /// 2–3 × total cores).
    pub default_parallelism: usize,
}

impl<'a> SparkContext<'a> {
    pub fn new(cluster: &'a Cluster) -> Self {
        SparkContext {
            cluster,
            trace: RunTrace::new("spark"),
            default_parallelism: cluster.total_slots() * 2,
        }
    }

    /// Loads a dataset "from HDFS": the only point where SpatialSpark
    /// touches the distributed file system. Charges the read and text parse
    /// into the partitions' pending cost (Spark is lazy — the load is paid
    /// when the first stage runs).
    pub fn read_text<T: SparkRecord>(
        &mut self,
        records: Vec<T>,
        input_bytes: u64,
        multiplier: f64,
    ) -> Rdd<T> {
        let parts = self.default_parallelism.max(1);
        let n = records.len();
        let chunk = n.div_ceil(parts).max(1);
        let cost = &self.cluster.cost;
        let node = &self.cluster.config.node;

        let mut partitions: Vec<Vec<T>> = Vec::with_capacity(parts);
        let mut it = records.into_iter();
        loop {
            let part: Vec<T> = it.by_ref().take(chunk).collect();
            if part.is_empty() {
                break;
            }
            partitions.push(part);
        }
        if partitions.is_empty() {
            partitions.push(Vec::new());
        }

        let bytes_per_rec = if n == 0 { 0.0 } else { input_bytes as f64 / n as f64 };
        let mut pending = Vec::with_capacity(partitions.len());
        let mut mem_full = Vec::with_capacity(partitions.len());
        for p in &partitions {
            let part_bytes = (p.len() as f64 * bytes_per_rec) as u64;
            let io = cost.io_ns(part_bytes, node.slot_disk_read_bw());
            let cpu = cost.parse_ns(part_bytes) + cost.spark_records_ns(p.len() as u64);
            let ns = io + (cpu as f64 * node.cpu_scale) as u64;
            pending.push((ns as f64 * multiplier) as SimNs);
            let mem: u64 = p.iter().map(|r| r.mem_bytes(cost)).sum();
            mem_full.push((mem as f64 * multiplier) as u64);
        }

        Rdd {
            parts: partitions,
            pending_ns: pending,
            pending_hdfs_read: (input_bytes as f64 * multiplier) as u64,
            mem_full,
            multiplier,
        }
    }

    /// Closes a stage: schedules the per-partition pending durations onto
    /// the cluster, emits a [`StageTrace`], and returns its simulated time.
    pub(crate) fn close_stage(
        &mut self,
        name: &str,
        phase: Phase,
        pending_ns: &[SimNs],
        hdfs_read: u64,
        shuffle_bytes: u64,
    ) -> SimNs {
        let cost = &self.cluster.cost;
        let with_overhead: Vec<SimNs> = pending_ns
            .iter()
            .map(|&p| p + cost.spark_task_overhead_ns)
            .collect();
        let makespan = lpt_makespan(&with_overhead, self.cluster.total_slots());
        let total = cost.spark_job_startup_ns + makespan;
        if std::env::var_os("SJC_STAGE_DEBUG").is_some() {
            let sum: u128 = pending_ns.iter().map(|&p| p as u128).sum();
            let max = pending_ns.iter().copied().max().unwrap_or(0);
            eprintln!(
                "[stage] {} {name:?} tasks={} sum={:.1}s max={:.1}s makespan={:.1}s",
                self.cluster.config.name,
                pending_ns.len(),
                sum as f64 / 1e9,
                max as f64 / 1e9,
                makespan as f64 / 1e9
            );
        }

        let mut st = StageTrace::new(name, StageKind::SparkStage, phase);
        st.sim_ns = total;
        st.hdfs_bytes_read = hdfs_read;
        st.shuffle_bytes = shuffle_bytes;
        st.tasks = pending_ns.len() as u64;
        self.trace.push(st);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_cluster::ClusterConfig;

    #[test]
    fn read_text_partitions_and_charges() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let records: Vec<u64> = (0..1000).collect();
        let rdd = ctx.read_text(records, 40_000, 10.0);
        assert_eq!(rdd.parts.iter().map(Vec::len).sum::<usize>(), 1000);
        assert!(rdd.parts.len() <= ctx.default_parallelism);
        assert!(rdd.pending_ns.iter().all(|&ns| ns > 0));
        assert_eq!(rdd.pending_hdfs_read, 400_000);
    }

    #[test]
    fn empty_dataset_still_has_one_partition() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let rdd: Rdd<u64> = ctx.read_text(Vec::new(), 0, 1.0);
        assert_eq!(rdd.parts.len(), 1);
    }

    #[test]
    fn close_stage_emits_trace() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let ns = ctx.close_stage("s1", Phase::DistributedJoin, &[1000, 2000], 77, 88);
        assert!(ns >= 2000);
        assert_eq!(ctx.trace.stages.len(), 1);
        assert_eq!(ctx.trace.stages[0].hdfs_bytes_read, 77);
        assert_eq!(ctx.trace.stages[0].shuffle_bytes, 88);
    }
}
