//! Wide operations: `group_by_key` and `join` — the in-memory shuffle.
//!
//! These close a stage (turning pipelined pending cost into a makespan),
//! move bytes through memory/network rather than HDFS, and are where the
//! engine enforces executor memory: Spark 1.1's `groupByKey` materializes
//! every group on its target executor with no spill path.

use std::collections::BTreeMap;
use std::hash::Hash;

use sjc_cluster::metrics::Phase;
use sjc_cluster::SimError;

use crate::context::SparkContext;
use crate::memory::check_fits;
use crate::rdd::Rdd;
use crate::record::{SparkKey, SparkRecord};

fn hash_of<K: SparkKey>(k: &K) -> u64 {
    k.partition_hash()
}

/// Groups one join side's `(key, value)` partitions into a single map:
/// partition-local maps build in parallel and merge in partition order, so
/// each key's value order is identical to a serial flattened scan.
fn build_side<P, K, V>(parts: &[Vec<P>], kv: impl Fn(&P) -> (&K, &V) + Sync) -> BTreeMap<K, Vec<V>>
where
    P: Send + Sync,
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    // LPT by partition size: skewed build sides schedule their fat
    // partitions first; partition-order merging below is unchanged.
    let locals: Vec<BTreeMap<K, Vec<V>>> = sjc_par::par_map_weighted(
        parts,
        |part| part.len() as u64,
        |part| {
            let mut local: BTreeMap<K, Vec<V>> = BTreeMap::new();
            for rec in part {
                let (k, v) = kv(rec);
                // sjc-lint: allow(hot-alloc) — the shuffle map owns its keys/values: the clone materializes the build side itself
                local.entry(k.clone()).or_default().push(v.clone());
            }
            local
        },
    );
    let mut merged: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for local in locals {
        for (k, vs) in local {
            merged.entry(k).or_default().extend(vs);
        }
    }
    merged
}

/// Result of [`Rdd::join`]: per key, one output record per matching
/// value pair.
pub type JoinResult<K, A, B> = Result<Rdd<(K, (A, B))>, SimError>;

impl<K, V> Rdd<(K, V)>
where
    K: SparkRecord + SparkKey + Ord + Hash + Clone,
    V: SparkRecord + Clone,
{
    /// Groups values by key into `num_partitions` hash partitions, closing
    /// the current stage.
    pub fn group_by_key(
        self,
        ctx: &mut SparkContext<'_>,
        name: &str,
        phase: Phase,
        num_partitions: usize,
    ) -> Result<Rdd<(K, Vec<V>)>, SimError> {
        let p = num_partitions.max(1);
        let cost = ctx.cluster.cost.clone();
        let node = ctx.cluster.config.node;
        let nodes = ctx.cluster.config.nodes;
        let mult = self.multiplier;

        // Real shuffle: group deterministically. Each map task groups its
        // own partition in parallel; the locals merge in partition order, so
        // every key's value order (partition-major, then record order) is
        // identical to the old single-threaded scan.
        let remote_fraction = if nodes > 1 { (nodes - 1) as f64 / nodes as f64 } else { 0.0 };
        let inputs: Vec<(&Vec<(K, V)>, u64)> =
            self.parts.iter().zip(self.mem_full.iter().copied()).collect();
        let locals: Vec<(u64, BTreeMap<K, Vec<V>>)> =
            sjc_par::par_map(&inputs, |&(part, part_mem)| {
                // Shuffle-write side: serialize and spill to the *local disk*
                // (Spark 1.x materializes shuffle blocks on disk even for
                // in-memory jobs), plus the cross-node network share.
                let ser = (part_mem as f64 * cost.spark_shuffle_ser_fraction) as u64;
                let cpu = (cost.serialize_ns(ser) as f64 * node.cpu_scale) as u64;
                let mut ns = cpu + cost.io_ns(ser, node.slot_disk_write_bw());
                ns += cost.io_ns((ser as f64 * remote_fraction) as u64, node.slot_net_bw());
                let mut local: BTreeMap<K, Vec<V>> = BTreeMap::new();
                for (k, v) in part {
                    // sjc-lint: allow(hot-alloc) — the grouped output owns its keys/values: the clone materializes the result
                    local.entry(k.clone()).or_default().push(v.clone());
                }
                (ns, local)
            });
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        let mut write_pending = self.pending_ns.clone();
        for (wp, (ns, local)) in write_pending.iter_mut().zip(locals) {
            *wp += ns;
            for (k, vs) in local {
                groups.entry(k).or_default().extend(vs);
            }
        }

        // Build output partitions.
        let mut parts: Vec<Vec<(K, Vec<V>)>> = (0..p).map(|_| Vec::new()).collect();
        // sjc-lint: allow(serial-hot-loop) — hash-partition scatter must run in key order; the grouping work already ran in parallel above
        for (k, vs) in groups {
            let idx = (hash_of(&k) % p as u64) as usize;
            // sjc-lint: allow(no-panic-in-lib) — idx = hash % p < p = parts.len()
            parts[idx].push((k, vs));
        }

        let costs: Vec<(u64, u64)> = sjc_par::par_map(&parts, |part| {
            let mem: u64 = part.iter().map(|r| r.mem_bytes(&cost)).sum();
            let mem_f = (mem as f64 * mult) as u64;
            let records: u64 = part.iter().map(|(_, vs)| vs.len() as u64).sum();
            // Shuffle-read side: fetch the serialized blocks from disk and
            // deserialize them back into JVM objects.
            let ser = (mem_f as f64 * cost.spark_shuffle_ser_fraction) as u64;
            let mut ns = cost.io_ns(ser, node.slot_disk_read_bw());
            let cpu =
                cost.serialize_ns(ser) + cost.spark_records_ns((records as f64 * mult) as u64);
            ns += (cpu as f64 * node.cpu_scale) as u64;
            (mem_f, ns)
        });
        let mut mem_full = Vec::with_capacity(p);
        let mut read_pending = Vec::with_capacity(p);
        for (mem_f, ns) in costs {
            mem_full.push(mem_f);
            read_pending.push(ns);
        }

        // Memory check: shuffle input and materialized groups are live
        // simultaneously.
        check_fits(ctx.cluster, name, &[&self.mem_full, &mem_full])?;

        // Close the map-side stage (pending narrow work + shuffle write).
        let shuffle_bytes: u64 = self.mem_full.iter().sum();
        ctx.close_stage(
            name,
            phase,
            &write_pending,
            self.pending_hdfs_read,
            shuffle_bytes,
            self.lineage_depth,
            mem_full.iter().sum(),
        )?;

        // A shuffle materializes its output; recompute scope restarts here.
        Ok(Rdd {
            parts,
            pending_ns: read_pending,
            pending_hdfs_read: 0,
            mem_full,
            multiplier: mult,
            lineage_depth: 1,
        })
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: SparkRecord + SparkKey + Ord + Hash + Clone,
    V: SparkRecord + Clone,
{
    /// `reduceByKey`: folds same-key values with `f`, combining **map-side
    /// first** so only one value per (task, key) is shuffled — the reason
    /// Spark lore says "use reduceByKey, not groupByKey". The spatial join
    /// cannot use it (the local join needs the full record lists), which is
    /// precisely why SpatialSpark's groupByKey OOMs where an aggregation
    /// would not; the `rdd_extra_ops` tests demonstrate the difference.
    pub fn reduce_by_key(
        self,
        ctx: &mut SparkContext<'_>,
        name: &str,
        phase: Phase,
        num_partitions: usize,
        f: impl Fn(&V, &V) -> V + Sync,
    ) -> Result<Rdd<(K, V)>, SimError> {
        let p = num_partitions.max(1);
        let cost = ctx.cluster.cost.clone();
        let node = ctx.cluster.config.node;
        let nodes = ctx.cluster.config.nodes;
        let mult = self.multiplier;
        let remote_fraction = if nodes > 1 { (nodes - 1) as f64 / nodes as f64 } else { 0.0 };

        // Map-side combine: each task's partition is independent, so the
        // combines run in parallel and the results land back in task order.
        let combined: Vec<(u64, BTreeMap<K, V>)> = sjc_par::par_map(&self.parts, |part| {
            let mut local: BTreeMap<K, V> = BTreeMap::new();
            for (k, v) in part {
                match local.get_mut(k) {
                    Some(acc) => *acc = f(acc, v),
                    None => {
                        // sjc-lint: allow(hot-alloc) — first sight of a key: the combiner map must own it; every later record folds in place
                        local.insert(k.clone(), v.clone());
                    }
                }
            }
            // Combine cost: one pass over the partition's records.
            let combine_cpu =
                (cost.spark_records_ns(part.len() as u64) as f64 * node.cpu_scale * mult) as u64;
            // Shuffle write: only the combined values leave the task.
            let combined_mem: u64 = local
                .iter()
                .map(|r| {
                    let pair_ref: (&K, &V) = r;
                    24 + pair_ref.0.mem_bytes(&cost) + pair_ref.1.mem_bytes(&cost)
                })
                .sum();
            let combined_full =
                (combined_mem as f64 * mult / part.len().max(1) as f64 * local.len() as f64) as u64; // conservative: scale by density
            let ser = (combined_full as f64 * cost.spark_shuffle_ser_fraction) as u64;
            let ns = combine_cpu
                + (cost.serialize_ns(ser) as f64 * node.cpu_scale) as u64
                + cost.io_ns(ser, node.slot_disk_write_bw())
                + cost.io_ns((ser as f64 * remote_fraction) as u64, node.slot_net_bw());
            (ns, local)
        });
        let mut write_pending = self.pending_ns.clone();
        let mut combined_parts: Vec<BTreeMap<K, V>> = Vec::with_capacity(self.parts.len());
        for (wp, (ns, local)) in write_pending.iter_mut().zip(combined) {
            *wp += ns;
            combined_parts.push(local);
        }

        // Merge combined values across tasks.
        let mut merged: BTreeMap<K, V> = BTreeMap::new();
        for local in combined_parts {
            for (k, v) in local {
                match merged.get_mut(&k) {
                    Some(acc) => *acc = f(acc, &v),
                    None => {
                        merged.insert(k, v);
                    }
                }
            }
        }
        let mut parts: Vec<Vec<(K, V)>> = (0..p).map(|_| Vec::new()).collect();
        for (k, v) in merged {
            let idx = (hash_of(&k) % p as u64) as usize;
            // sjc-lint: allow(no-panic-in-lib) — idx = hash % p < p = parts.len()
            parts[idx].push((k, v));
        }

        let mut mem_full = Vec::with_capacity(p);
        let mut read_pending = Vec::with_capacity(p);
        // Combined results are one value per key: modeled at generation
        // scale directly (keys don't multiply with the workload).
        for (mem, ns) in sjc_par::par_map(&parts, |part| {
            let mem: u64 = part.iter().map(|r| r.mem_bytes(&cost)).sum();
            (mem, cost.spark_records_ns(part.len() as u64))
        }) {
            mem_full.push(mem);
            read_pending.push(ns);
        }
        check_fits(ctx.cluster, name, &[&self.mem_full, &mem_full])?;
        let shuffle_bytes: u64 = mem_full.iter().sum();
        ctx.close_stage(
            name,
            phase,
            &write_pending,
            self.pending_hdfs_read,
            shuffle_bytes,
            self.lineage_depth,
            shuffle_bytes,
        )?;

        Ok(Rdd {
            parts,
            pending_ns: read_pending,
            pending_hdfs_read: 0,
            mem_full,
            multiplier: mult,
            lineage_depth: 1,
        })
    }
}

impl<K, A> Rdd<(K, A)>
where
    K: SparkRecord + SparkKey + Ord + Hash + Clone,
    A: SparkRecord + Clone,
{
    /// Inner hash join on the key, closing both sides' stages. Matches
    /// Spark's `join`: one output record per pair of matching values.
    pub fn join<B>(
        self,
        other: Rdd<(K, B)>,
        ctx: &mut SparkContext<'_>,
        name: &str,
        phase: Phase,
        num_partitions: usize,
    ) -> JoinResult<K, A, B>
    where
        B: SparkRecord + Clone,
    {
        let p = num_partitions.max(1);
        let cost = ctx.cluster.cost.clone();
        let node = ctx.cluster.config.node;
        let nodes = ctx.cluster.config.nodes;
        let mult = self.multiplier;
        let remote_fraction = if nodes > 1 { (nodes - 1) as f64 / nodes as f64 } else { 0.0 };

        // Close both input stages with their shuffle-write costs.
        let spill = |m: u64| {
            let ser = (m as f64 * cost.spark_shuffle_ser_fraction) as u64;
            (cost.serialize_ns(ser) as f64 * node.cpu_scale) as u64
                + cost.io_ns(ser, node.slot_disk_write_bw())
                + cost.io_ns((ser as f64 * remote_fraction) as u64, node.slot_net_bw())
        };
        let mut left_pending = self.pending_ns.clone();
        for (i, &m) in self.mem_full.iter().enumerate() {
            // sjc-lint: allow(no-panic-in-lib) — pending_ns and mem_full are kept parallel to parts
            left_pending[i] += spill(m);
        }
        let mut right_pending = other.pending_ns.clone();
        for (i, &m) in other.mem_full.iter().enumerate() {
            // sjc-lint: allow(no-panic-in-lib) — pending_ns and mem_full are kept parallel to parts
            right_pending[i] += spill(m);
        }

        // Hash-table builds: both sides group per partition in parallel and
        // merge in partition order (value order matches the serial flatten).
        let (left, right) = sjc_par::join(
            || build_side(&self.parts, |(k, a)| (k, a)),
            || build_side(&other.parts, |(k, b)| (k, b)),
        );

        // Cartesian products per matching key run in parallel; the scatter
        // into hash partitions replays them in key order, so output record
        // order is identical to the serial nested loop.
        type KeyBatch<K, A, B> = Option<(usize, Vec<(K, (A, B))>)>;
        let left_list: Vec<(&K, &Vec<A>)> = left.iter().collect();
        // Cross products are quadratic in the per-key value counts — the
        // canonical skew hazard. LPT by the output cardinality keeps one hot
        // key off the tail; key-order scatter below is unchanged.
        let produced: Vec<KeyBatch<K, A, B>> = sjc_par::par_map_weighted(
            &left_list,
            |(k, avs)| {
                (avs.len() as u64).saturating_mul(right.get(k).map_or(0, |bvs| bvs.len() as u64))
            },
            |&(k, avs)| {
                right.get(k).map(|bvs| {
                    let idx = (hash_of(k) % p as u64) as usize;
                    let mut out = Vec::with_capacity(avs.len() * bvs.len());
                    for a in avs {
                        for b in bvs {
                            // sjc-lint: allow(hot-alloc) — join output pairs own their records: the clones materialize the cross product itself
                            out.push((k.clone(), (a.clone(), b.clone())));
                        }
                    }
                    (idx, out)
                })
            },
        );
        let mut parts: Vec<Vec<(K, (A, B))>> = (0..p).map(|_| Vec::new()).collect();
        for (idx, recs) in produced.into_iter().flatten() {
            // sjc-lint: allow(no-panic-in-lib) — idx = hash % p < p = parts.len()
            parts[idx].extend(recs);
        }

        let mut mem_full = Vec::with_capacity(p);
        let mut read_pending = Vec::with_capacity(p);
        for (mem_f, ns) in sjc_par::par_map(&parts, |part| {
            let mem: u64 = part.iter().map(|r| r.mem_bytes(&cost)).sum();
            let mem_f = (mem as f64 * mult) as u64;
            let ser = (mem_f as f64 * cost.spark_shuffle_ser_fraction) as u64;
            let cpu =
                cost.serialize_ns(ser) + cost.spark_records_ns((part.len() as f64 * mult) as u64);
            let ns =
                cost.io_ns(ser, node.slot_disk_read_bw()) + (cpu as f64 * node.cpu_scale) as u64;
            (mem_f, ns)
        }) {
            mem_full.push(mem_f);
            read_pending.push(ns);
        }

        check_fits(ctx.cluster, name, &[&self.mem_full, &other.mem_full, &mem_full])?;

        let shuffle_bytes: u64 =
            self.mem_full.iter().sum::<u64>() + other.mem_full.iter().sum::<u64>();
        let hdfs = self.pending_hdfs_read + other.pending_hdfs_read;
        let mut all_pending = left_pending;
        all_pending.extend(right_pending);
        ctx.close_stage(
            name,
            phase,
            &all_pending,
            hdfs,
            shuffle_bytes,
            self.lineage_depth.max(other.lineage_depth),
            mem_full.iter().sum(),
        )?;

        Ok(Rdd {
            parts,
            pending_ns: read_pending,
            pending_hdfs_read: 0,
            mem_full,
            multiplier: mult,
            lineage_depth: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_cluster::{Cluster, ClusterConfig};

    #[test]
    fn group_by_key_collects_all_values() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let pairs: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, i)).collect();
        let grouped = ctx
            .read_text(pairs, 4000, 1.0)
            .group_by_key(&mut ctx, "g", Phase::DistributedJoin, 4)
            .unwrap();
        let out = grouped.collect(&mut ctx, "c", Phase::DistributedJoin).unwrap();
        assert_eq!(out.len(), 5);
        for (k, vs) in &out {
            assert_eq!(vs.len(), 20);
            assert!(vs.iter().all(|v| v % 5 == *k));
        }
    }

    #[test]
    fn join_matches_keys() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut ctx = SparkContext::new(&cluster);
        let left: Vec<(u64, u64)> = vec![(1, 10), (2, 20), (3, 30)];
        let right: Vec<(u64, u64)> = vec![(2, 200), (3, 300), (3, 301), (4, 400)];
        let l = ctx.read_text(left, 100, 1.0);
        let r = ctx.read_text(right, 100, 1.0);
        let joined = l.join(r, &mut ctx, "j", Phase::DistributedJoin, 2).unwrap();
        let mut out = joined.collect(&mut ctx, "c", Phase::DistributedJoin).unwrap();
        out.sort();
        assert_eq!(out, vec![(2, (20, 200)), (3, (30, 300)), (3, (30, 301))]);
    }

    #[test]
    fn shuffle_emits_stage_with_shuffle_bytes_and_no_hdfs_writes() {
        let cluster = Cluster::new(ClusterConfig::ec2(4));
        let mut ctx = SparkContext::new(&cluster);
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 10, i)).collect();
        ctx.read_text(pairs, 40_000, 1.0)
            .group_by_key(&mut ctx, "g", Phase::DistributedJoin, 8)
            .unwrap();
        let stage = &ctx.trace.stages[0];
        assert!(stage.shuffle_bytes > 0);
        assert_eq!(stage.hdfs_bytes_written, 0, "Spark never writes intermediates to HDFS");
        assert!(stage.hdfs_bytes_read > 0, "the initial load is attributed here");
    }

    #[test]
    fn oversized_shuffle_oom_on_small_nodes_only() {
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i % 100, i)).collect();
        // Each (u64,u64) models 24+32=56 B; 10k records ≈ 560 KB, the
        // grouped lists add ~170 KB. ×3e4 the live set during the shuffle
        // is ~22 GB (~11 GB per EC2-2 executor, over its 9 GB usable),
        // while the 76.8 GB workstation holds it comfortably.
        let mult = 3e4;
        let run = |cfg: ClusterConfig| {
            let cluster = Cluster::new(cfg);
            let mut ctx = SparkContext::new(&cluster);
            ctx.read_text(pairs.clone(), 400_000, mult)
                .group_by_key(&mut ctx, "g", Phase::DistributedJoin, 64)
                .map(|_| ())
        };
        assert!(run(ClusterConfig::ec2(2)).is_err(), "small cluster OOMs");
        assert!(run(ClusterConfig::workstation()).is_ok(), "128 GB WS survives");
    }

    #[test]
    fn reduce_by_key_matches_group_then_fold() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let pairs: Vec<(u64, u64)> = (0..1000).map(|i| (i % 13, i)).collect();
        let mut ctx = SparkContext::new(&cluster);
        let reduced = ctx
            .read_text(pairs.clone(), 8000, 1.0)
            .reduce_by_key(&mut ctx, "rbk", Phase::DistributedJoin, 8, |a, b| a + b)
            .unwrap();
        let mut got = reduced.collect(&mut ctx, "c", Phase::DistributedJoin).unwrap();
        got.sort();
        let mut expected: std::collections::BTreeMap<u64, u64> = Default::default();
        for (k, v) in pairs {
            *expected.entry(k).or_default() += v;
        }
        assert_eq!(got, expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn reduce_by_key_survives_where_group_by_key_oom() {
        // The famous Spark pattern: an aggregation expressed as groupByKey
        // materializes every value and dies; as reduceByKey it combines
        // map-side and sails through. The spatial join *must* group, which
        // is why SpatialSpark inherits the fragile variant.
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i % 100, i)).collect();
        let mult = 3e4;
        let cluster = Cluster::new(ClusterConfig::ec2(2));

        let mut ctx = SparkContext::new(&cluster);
        let grouped = ctx.read_text(pairs.clone(), 400_000, mult).group_by_key(
            &mut ctx,
            "g",
            Phase::DistributedJoin,
            64,
        );
        assert!(grouped.is_err(), "groupByKey at this scale OOMs");

        let mut ctx2 = SparkContext::new(&cluster);
        let reduced = ctx2.read_text(pairs, 400_000, mult).reduce_by_key(
            &mut ctx2,
            "r",
            Phase::DistributedJoin,
            64,
            |a, b| a.wrapping_add(*b),
        );
        assert!(reduced.is_ok(), "reduceByKey combines map-side and fits");
    }

    #[test]
    fn oom_error_reports_sizes() {
        let cluster = Cluster::new(ClusterConfig::ec2(2));
        let mut ctx = SparkContext::new(&cluster);
        let pairs: Vec<(u64, u64)> = (0..10_000).map(|i| (i % 100, i)).collect();
        let err = ctx
            .read_text(pairs, 400_000, 1e9)
            .group_by_key(&mut ctx, "g", Phase::DistributedJoin, 64)
            .err()
            .expect("must OOM");
        match err {
            SimError::OutOfMemory { needed_bytes, usable_bytes, .. } => {
                assert!(needed_bytes > usable_bytes);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }
}
