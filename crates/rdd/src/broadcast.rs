//! Broadcast variables.
//!
//! SpatialSpark builds a spatial index over sampled partition MBRs and
//! broadcasts it "to all computing nodes by Spark runtime without involving
//! HDFS" (§II.B) — unlike HadoopGIS, where every map task re-reads the MBR
//! file from HDFS and rebuilds its own index. A broadcast is charged once
//! per node over the network.

use sjc_cluster::metrics::Phase;
use sjc_cluster::{StageKind, StageTrace};

use crate::context::SparkContext;

/// A value shipped once to every executor.
pub struct Broadcast<B> {
    value: B,
    pub bytes: u64,
}

impl<B> Broadcast<B> {
    /// Accesses the broadcast value (free on executors after shipping).
    pub fn value(&self) -> &B {
        &self.value
    }
}

impl<'a> SparkContext<'a> {
    /// Broadcasts `value` of serialized size `bytes` to all nodes; charges
    /// a network-bound stage (the driver streams to each executor).
    pub fn broadcast<B>(&mut self, name: &str, phase: Phase, value: B, bytes: u64) -> Broadcast<B> {
        let nodes = self.cluster.config.nodes as u64;
        let cost = &self.cluster.cost;
        let node = &self.cluster.config.node;
        let mut st = StageTrace::new(name, StageKind::SparkStage, phase);
        // Torrent-style broadcast: total traffic ~ bytes × nodes, but it
        // flows in parallel; wall time ~ one transfer plus driver serialize.
        st.sim_ns = cost.serialize_ns(bytes) + cost.io_ns(bytes, node.net_bw);
        st.shuffle_bytes = bytes * nodes;
        st.tasks = nodes;
        self.trace.push(st);
        Broadcast { value, bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_cluster::{Cluster, ClusterConfig};

    #[test]
    fn broadcast_ships_once_per_node() {
        let cluster = Cluster::new(ClusterConfig::ec2(10));
        let mut ctx = SparkContext::new(&cluster);
        let b = ctx.broadcast("bcast index", Phase::DistributedJoin, vec![1, 2, 3], 1 << 20);
        assert_eq!(b.value(), &vec![1, 2, 3]);
        let stage = &ctx.trace.stages[0];
        assert_eq!(stage.shuffle_bytes, 10 << 20);
        assert_eq!(stage.hdfs_bytes_read, 0, "no HDFS involved");
        assert!(stage.sim_ns > 0);
    }

    #[test]
    fn broadcast_wall_time_independent_of_node_count() {
        let t = |n: u32| {
            let cluster = Cluster::new(ClusterConfig::ec2(n));
            let mut ctx = SparkContext::new(&cluster);
            ctx.broadcast("b", Phase::DistributedJoin, (), 8 << 20);
            ctx.trace.stages[0].sim_ns
        };
        assert_eq!(t(2), t(10), "parallel torrent distribution");
    }
}
