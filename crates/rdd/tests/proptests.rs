//! Property-based tests for the RDD engine: transformation semantics match
//! plain iterator chains, shuffles match hash-map folds, memory accounting
//! is monotone (seeded `sjc-testkit` cases).

use sjc_cluster::metrics::Phase;
use sjc_cluster::{Cluster, ClusterConfig};
use sjc_rdd::SparkContext;
use sjc_testkit::{cases, TestRng};
use std::collections::BTreeMap;

const N: usize = 64;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::workstation())
}

fn pairs(
    rng: &mut TestRng,
    keys: std::ops::Range<u64>,
    vals: std::ops::Range<u64>,
    len: std::ops::Range<usize>,
) -> Vec<(u64, u64)> {
    let n = rng.usize_in(len);
    (0..n).map(|_| (rng.u64_in(keys.clone()), rng.u64_in(vals.clone()))).collect()
}

#[test]
fn map_filter_matches_iterators() {
    cases(0x4D01, N, |rng| {
        let xs = rng.vec_u64(0..10_000, 0..500);
        let cluster = cluster();
        let mut ctx = SparkContext::new(&cluster);
        let mut got = ctx
            .read_text(xs.clone(), xs.len() as u64 * 8, 1.0)
            .map(&ctx, |x, _| x * 3)
            .filter(&ctx, |x| x % 2 == 0)
            .collect(&mut ctx, "t", Phase::DistributedJoin)
            .unwrap();
        got.sort_unstable();
        let mut expected: Vec<u64> = xs.iter().map(|x| x * 3).filter(|x| x % 2 == 0).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

#[test]
fn group_by_key_matches_btreemap() {
    cases(0x4D02, N, |rng| {
        let pairs = pairs(rng, 0..30, 0..1000, 0..400);
        let cluster = cluster();
        let mut ctx = SparkContext::new(&cluster);
        let grouped = ctx
            .read_text(pairs.clone(), pairs.len() as u64 * 16, 1.0)
            .group_by_key(&mut ctx, "g", Phase::DistributedJoin, 8)
            .unwrap()
            .collect(&mut ctx, "c", Phase::DistributedJoin)
            .unwrap();
        let mut expected: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (k, v) in pairs {
            expected.entry(k).or_default().push(v);
        }
        let mut got: BTreeMap<u64, Vec<u64>> = grouped.into_iter().collect();
        for vs in got.values_mut() {
            vs.sort_unstable();
        }
        let expected: BTreeMap<u64, Vec<u64>> = expected
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort_unstable();
                (k, vs)
            })
            .collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn reduce_by_key_matches_fold() {
    cases(0x4D03, N, |rng| {
        let pairs = pairs(rng, 0..20, 0..100, 0..300);
        let cluster = cluster();
        let mut ctx = SparkContext::new(&cluster);
        let reduced = ctx
            .read_text(pairs.clone(), pairs.len() as u64 * 16, 1.0)
            .reduce_by_key(&mut ctx, "r", Phase::DistributedJoin, 4, |a, b| a + b)
            .unwrap()
            .collect(&mut ctx, "c", Phase::DistributedJoin)
            .unwrap();
        let mut expected: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in pairs {
            *expected.entry(k).or_default() += v;
        }
        let got: BTreeMap<u64, u64> = reduced.into_iter().collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn join_matches_nested_loops() {
    cases(0x4D04, N, |rng| {
        let left = pairs(rng, 0..12, 0..50, 0..60);
        let right = pairs(rng, 0..12, 100..150, 0..60);
        let cluster = cluster();
        let mut ctx = SparkContext::new(&cluster);
        let l = ctx.read_text(left.clone(), left.len() as u64 * 16, 1.0);
        let r = ctx.read_text(right.clone(), right.len() as u64 * 16, 1.0);
        let mut got = l
            .join(r, &mut ctx, "j", Phase::DistributedJoin, 4)
            .unwrap()
            .collect(&mut ctx, "c", Phase::DistributedJoin)
            .unwrap();
        got.sort_unstable();
        let mut expected: Vec<(u64, (u64, u64))> = Vec::new();
        for (k, a) in &left {
            for (k2, b) in &right {
                if k == k2 {
                    expected.push((*k, (*a, *b)));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

#[test]
fn memory_footprint_scales_with_multiplier() {
    cases(0x4D05, N, |rng| {
        let xs = rng.vec_u64(0..100, 1..200);
        let mult = rng.f64_in(1.0..10_000.0);
        let cluster = cluster();
        let mut ctx = SparkContext::new(&cluster);
        let small = ctx.read_text(xs.clone(), xs.len() as u64 * 8, 1.0).mem_full_total();
        let mut ctx2 = SparkContext::new(&cluster);
        let big = ctx2.read_text(xs, 0, mult).mem_full_total();
        // Allow integer rounding slack on tiny inputs.
        assert!(big as f64 >= small as f64 * (mult - 1.0).max(1.0) * 0.5);
    });
}

#[test]
fn sample_fraction_bounds_hold() {
    cases(0x4D06, N, |rng| {
        let xs = rng.vec_u64(0..1000, 200..800);
        let fraction = rng.f64_in(0.0..1.0);
        let cluster = cluster();
        let ctx = SparkContext::new(&cluster);
        let mut ctx2 = SparkContext::new(&cluster);
        let rdd = ctx2.read_text(xs.clone(), xs.len() as u64 * 8, 1.0);
        let sampled = rdd.sample(&ctx, fraction, 99);
        let n = sampled.count();
        assert!(n <= xs.len());
        // Loose concentration bound: within ±40% + 20 of the expectation.
        let exp = fraction * xs.len() as f64;
        assert!((n as f64) <= exp * 1.4 + 20.0, "n={n} exp={exp}");
        assert!((n as f64) >= exp * 0.6 - 20.0, "n={n} exp={exp}");
    });
}
