//! # sjc-mapreduce — MapReduce over the cluster simulator
//!
//! A Hadoop-shaped execution engine: jobs of map tasks, a sort-based
//! shuffle, and reduce tasks, with all data movement charged to the
//! simulated clock of a [`sjc_cluster::Cluster`]. Two data-access modes
//! mirror the paper's contrast:
//!
//! * **native** ([`job`]) — typed records, caller-controlled splits
//!   (including SpatialHadoop's `getSplits` trick of pairing indexed block
//!   files into map tasks), no per-stage re-parsing;
//! * **streaming** ([`streaming`]) — records are lines of text piped through
//!   external processes: every stage pays parse + serialize + pipe costs,
//!   and a single task piping more than the node's limit fails with
//!   [`sjc_cluster::SimError::BrokenPipe`] — HadoopGIS's observed failure
//!   mode.
//!
//! **Extrapolation.** A job carries a workload `multiplier` (full-scale
//! records ÷ generated records). Map work scales as *more block-sized
//! splits* of the same size; reduce groups (spatial partitions, whose count
//! is fixed by configuration) scale as *bigger groups*. Task durations and
//! failure checks use the extrapolated volumes, so Table 2's full-dataset
//! failures emerge from the same mechanism at any generation scale.

pub mod counters;
pub mod input_format;
pub mod job;
pub mod streaming;

pub use counters::Counters;
pub use input_format::{block_splits, MapTask};
pub use job::{JobConfig, JobStats, MapEmitter, MapReduceJob, ReduceEmitter};
pub use streaming::{StreamingJob, StreamingOutcome};
