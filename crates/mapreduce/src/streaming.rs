//! Hadoop-Streaming mode: text lines piped through external processes.
//!
//! HadoopGIS is built on Hadoop Streaming: mappers and reducers are python
//! / C++ programs reading stdin and writing stdout. Relative to native jobs
//! this adds, per stage: pipe transfer of every byte in both directions,
//! text re-parsing and re-serialization (records have no binary
//! representation between stages), and a hard failure when one task's pipe
//! payload exceeds what the node can buffer — the paper's "broken pipeline
//! ... when the data that pipes through multiple processors is too big".

use sjc_cluster::{RecoveryEvent, SimError, StageTrace};

use crate::input_format::MapTask;
use crate::job::{JobConfig, JobStats, MapReduceJob};

/// Result of a successful streaming job.
#[derive(Debug)]
pub struct StreamingOutcome {
    /// Output lines (reduce output, or map output for map-only jobs).
    pub lines: Vec<String>,
    pub stats: JobStats,
    pub trace: StageTrace,
    /// Recovery actions the underlying engine took (empty without faults).
    pub recovery: Vec<RecoveryEvent>,
}

/// A streaming job runner borrowing the native engine.
pub struct StreamingJob<'a, 'b> {
    pub engine: &'b mut MapReduceJob<'a>,
}

impl<'a, 'b> StreamingJob<'a, 'b> {
    pub fn new(engine: &'b mut MapReduceJob<'a>) -> Self {
        StreamingJob { engine }
    }

    /// Runs a streaming map-only job: `mapper` maps one input line to output
    /// lines.
    pub fn map_only(
        &mut self,
        cfg: &JobConfig,
        tasks: Vec<MapTask<String>>,
        mapper: impl Fn(&str) -> Vec<String> + Sync,
    ) -> Result<StreamingOutcome, SimError> {
        let cost = self.engine.cluster.cost.clone();
        let outcome = self.engine.map_only(cfg, tasks, |line: &String, em| {
            let in_bytes = line.len() as u64 + 1;
            let mut pipe_out = 0u64;
            for out in mapper(line) {
                pipe_out += out.len() as u64 + 1;
                let b = out.len() as u64 + 1;
                em.emit(out, b);
            }
            // stdin + stdout traffic of the external process, plus its own
            // text parse of the line.
            em.charge(cost.pipe_ns(in_bytes + pipe_out) + cost.parse_ns(in_bytes));
        })?;
        let mut trace = outcome.trace;
        trace.pipe_bytes = ((outcome.stats.input_bytes + outcome.stats.output_bytes) as f64
            * cfg.multiplier) as u64;
        Ok(StreamingOutcome {
            lines: outcome.output,
            stats: outcome.stats,
            trace,
            recovery: outcome.recovery,
        })
    }

    /// Runs a streaming map-reduce job. `mapper` emits `(key, value)` line
    /// pairs; `reducer` consumes one key's sorted values.
    ///
    /// Fails with [`SimError::BrokenPipe`] when any single reduce task's
    /// full-scale pipe payload exceeds the node's streaming limit.
    pub fn map_reduce(
        &mut self,
        cfg: &JobConfig,
        tasks: Vec<MapTask<String>>,
        mapper: impl Fn(&str) -> Vec<(String, String)> + Sync,
        reducer: impl Fn(&str, &[String]) -> Vec<String> + Sync,
    ) -> Result<StreamingOutcome, SimError> {
        let cost = self.engine.cluster.cost.clone();
        let node_memory = self.engine.cluster.config.node.memory_bytes;
        let outcome = self.engine.map_reduce(
            cfg,
            tasks,
            |line: &String, em| {
                let in_bytes = line.len() as u64 + 1;
                let mut pipe_out = 0u64;
                for (k, v) in mapper(line) {
                    let b = (k.len() + v.len() + 2) as u64;
                    pipe_out += b;
                    em.emit(k, v, b);
                }
                em.charge(cost.pipe_ns(in_bytes + pipe_out) + cost.parse_ns(in_bytes));
            },
            |key: &String, values: &[String], em| {
                let in_bytes: u64 = values.iter().map(|v| (key.len() + v.len() + 2) as u64).sum();
                let mut out_bytes = 0u64;
                for out in reducer(key, values) {
                    let b = out.len() as u64 + 1;
                    out_bytes += b;
                    em.emit(out, b);
                }
                em.charge(cost.pipe_ns(in_bytes + out_bytes) + cost.parse_ns(in_bytes));
                if cfg.script_reducer {
                    em.charge(
                        (values.len() as f64
                            * cost.streaming_script_record_ns
                            * cfg.script_cost_factor) as u64,
                    );
                }
            },
        )?;

        // Broken-pipe check: each reduce group is piped through one external
        // process (stdin: the group's records; stdout: its results); at full
        // scale the payload is multiplier × bigger. A group's stdout volume
        // equals its emitter byte count, which the engine records per group
        // (key order) in `group_out_bytes`.
        let limit = cost.streaming_pipe_limit(node_memory);
        for (i, &gb) in outcome.group_bytes.iter().enumerate() {
            let out = outcome.group_out_bytes.get(i).copied().unwrap_or(0);
            let full = ((gb + out) as f64 * cfg.multiplier) as u64;
            if full > limit {
                return Err(SimError::BrokenPipe {
                    // sjc-lint: allow(hot-alloc) — cold error return: allocates once, then the run is over
                    stage: cfg.name.clone(),
                    payload_bytes: full,
                    limit_bytes: limit,
                });
            }
        }

        let mut trace = outcome.trace;
        trace.pipe_bytes = ((outcome.stats.input_bytes
            + 2 * outcome.stats.shuffle_bytes
            + outcome.stats.output_bytes) as f64
            * cfg.multiplier) as u64;
        Ok(StreamingOutcome {
            lines: outcome.output,
            stats: outcome.stats,
            trace,
            recovery: outcome.recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::block_splits;
    use sjc_cluster::metrics::Phase;
    use sjc_cluster::{Cluster, ClusterConfig, SimHdfs};

    fn lines(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{i}\tpayload-{i}")).collect()
    }

    #[test]
    fn streaming_wordcount() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let mut job = StreamingJob::new(&mut engine);
        let input: Vec<String> = vec!["a b a".into(), "b a c".into()];
        let tasks = block_splits(&input, 6.0, 1 << 20);
        let cfg = JobConfig::new("wc", Phase::DistributedJoin, 1.0);
        let out = job
            .map_reduce(
                &cfg,
                tasks,
                |line| line.split(' ').map(|w| (w.to_string(), "1".to_string())).collect(),
                |k, vs| vec![format!("{k}\t{}", vs.len())],
            )
            .unwrap();
        let mut got = out.lines.clone();
        got.sort();
        assert_eq!(got, vec!["a\t3", "b\t2", "c\t1"]);
        assert!(out.trace.pipe_bytes > 0, "pipes are metered");
    }

    #[test]
    fn streaming_costs_more_than_native() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let input = lines(5000);
        let tasks = block_splits(&input, 16.0, 16 << 10);

        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let cfg = JobConfig::new("native", Phase::IndexA, 1.0);
        let native = engine
            .map_reduce(
                &cfg,
                tasks.clone(),
                // Same intermediate volume as the streaming variant below
                // (key digit + "1" + separators), so the comparison isolates
                // pipe/parse overheads rather than shuffle volume.
                |l: &String, em| em.emit(l.len() as u64 % 7, 1u64, 4),
                |_, vs, em| em.emit(vs.len(), 8),
            )
            .unwrap();

        let mut hdfs2 = SimHdfs::new(1);
        let mut engine2 = MapReduceJob::new(&cluster, &mut hdfs2);
        let mut sjob = StreamingJob::new(&mut engine2);
        let scfg = JobConfig::new("streaming", Phase::IndexA, 1.0);
        let streaming = sjob
            .map_reduce(
                &scfg,
                tasks,
                |l| vec![((l.len() % 7).to_string(), "1".to_string())],
                |_, vs| vec![vs.len().to_string()],
            )
            .unwrap();
        assert!(
            streaming.trace.sim_ns > native.trace.sim_ns,
            "streaming {} <= native {}",
            streaming.trace.sim_ns,
            native.trace.sim_ns
        );
    }

    #[test]
    fn oversized_group_breaks_the_pipe() {
        let cluster = Cluster::new(ClusterConfig::ec2(2));
        let mut hdfs = SimHdfs::new(2);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let mut job = StreamingJob::new(&mut engine);
        let input = lines(1000);
        let tasks = block_splits(&input, 20.0, 1 << 20);
        // Everything lands on one key; with a huge multiplier the group's
        // full-scale payload blows the 15 GB node's pipe limit.
        let cfg = JobConfig::new("hot", Phase::DistributedJoin, 2e7);
        let err = job
            .map_reduce(
                &cfg,
                tasks,
                |l| vec![("hot".to_string(), l.to_string())],
                |_, vs| vec![vs.len().to_string()],
            )
            .unwrap_err();
        match err {
            SimError::BrokenPipe { payload_bytes, limit_bytes, .. } => {
                assert!(payload_bytes > limit_bytes);
            }
            other => panic!("expected BrokenPipe, got {other:?}"),
        }
    }

    #[test]
    fn same_job_survives_on_bigger_nodes() {
        // The identical workload that breaks EC2 nodes passes on the 128 GB
        // workstation — the paper's Table-3 HadoopGIS pattern.
        let input = lines(1000);
        // 1000 lines spread over 64 keys ≈ 290 B/group; ×3e5 ≈ 87 MB per
        // streaming reducer: above an EC2 node's ~16 MB pipe limit, below
        // the workstation's ~137 MB.
        let mult = 3e5;
        let run = |cfg_cluster: ClusterConfig| {
            let cluster = Cluster::new(cfg_cluster);
            let mut hdfs = SimHdfs::new(cluster.config.nodes);
            let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
            let mut job = StreamingJob::new(&mut engine);
            let tasks = block_splits(&input, 20.0, 1 << 20);
            let cfg = JobConfig::new("hot", Phase::DistributedJoin, mult);
            job.map_reduce(
                &cfg,
                tasks,
                |l| {
                    let id: u64 = l.split('\t').next().unwrap().parse().unwrap();
                    vec![((id % 64).to_string(), l.to_string())]
                },
                |_, vs| vec![vs.len().to_string()],
            )
            .map(|_| ())
        };
        assert!(run(ClusterConfig::ec2(10)).is_err(), "EC2 node breaks");
        assert!(run(ClusterConfig::workstation()).is_ok(), "WS node survives");
    }

    #[test]
    fn map_only_streaming_counts_pipe_bytes() {
        let cluster = Cluster::new(ClusterConfig::workstation());
        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let mut job = StreamingJob::new(&mut engine);
        let input = lines(100);
        let tasks = block_splits(&input, 16.0, 1 << 20);
        let cfg = JobConfig::new("convert", Phase::IndexA, 1.0);
        let out = job.map_only(&cfg, tasks, |l| vec![l.to_uppercase()]).unwrap();
        assert_eq!(out.lines.len(), 100);
        assert!(out.trace.pipe_bytes > 0);
    }
}
