//! Named job counters — Hadoop's ubiquitous diagnostics channel.
//!
//! Real Hadoop jobs report `Map input records`, `Spilled Records`,
//! `HDFS_BYTES_WRITTEN` and user-defined counters; operators read them to
//! find skew and waste. The simulated engine exposes the same idea: cheap
//! named accumulators that map/reduce closures bump and callers inspect.

use std::collections::BTreeMap;

/// A set of named monotone counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.values.entry(name.to_string()).or_default() += delta;
    }

    /// Increments `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value (0 when never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another counter set into this one (used when aggregating
    /// per-task counters into job totals).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.values {
            self.add(k, *v);
        }
    }

    /// Iterates counters in deterministic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders the counters as Hadoop's job-completion report does.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in self.iter() {
            let _ = writeln!(out, "\t{k}={v}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_incr_get() {
        let mut c = Counters::new();
        assert_eq!(c.get("x"), 0);
        c.incr("x");
        c.add("x", 41);
        assert_eq!(c.get("x"), 42);
        assert_eq!(c.get("never"), 0);
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = Counters::new();
        a.add("records", 10);
        a.add("spills", 1);
        let mut b = Counters::new();
        b.add("records", 5);
        b.add("bytes", 100);
        a.merge(&b);
        assert_eq!(a.get("records"), 15);
        assert_eq!(a.get("spills"), 1);
        assert_eq!(a.get("bytes"), 100);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.add("zeta", 1);
        c.add("alpha", 2);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn report_formats_lines() {
        let mut c = Counters::new();
        c.add("Map input records", 1000);
        assert_eq!(c.report(), "\tMap input records=1000\n");
        assert!(Counters::new().report().is_empty());
    }
}
