//! The native (typed) MapReduce engine.

use std::collections::BTreeMap;

use sjc_cluster::metrics::Phase;
use sjc_cluster::scheduler::{faulty_makespan, lpt_makespan, replicated_makespan, TaskSchedule};
use sjc_cluster::{
    Cluster, RecoveryEvent, RecoveryKind, SimError, SimHdfs, SimNs, StageKind, StageTrace,
};

use crate::input_format::MapTask;

/// How a job's work grows from generation scale to full scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleMode {
    /// Scans: the full run has `multiplier ×` as many block-sized map tasks
    /// of the same size (Hadoop's one-task-per-block).
    MoreTasks,
    /// Partition-bound tasks: the task count is fixed by configuration and
    /// each task's data grows by `multiplier` (reduce groups, and
    /// SpatialHadoop's partition-pair map tasks).
    BiggerTasks,
}

/// Configuration of one MapReduce job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    pub name: String,
    pub phase: Phase,
    /// Full-scale records ÷ generated records.
    pub multiplier: f64,
    /// Charge text-parse CPU for the input bytes (TSV/WKT ingestion).
    pub parse_input_text: bool,
    /// Charge an HDFS write (with replication) for the job output.
    pub write_output_to_hdfs: bool,
    /// How map-task work extrapolates (reduce is always [`ScaleMode::BiggerTasks`]).
    pub map_scale: ScaleMode,
    /// Charge the interpreted-script per-record cost in streaming reducers
    /// (see `CostModel::streaming_script_record_ns`).
    pub script_reducer: bool,
    /// Multiplier on the script per-record cost (the geometry-library share
    /// of the script's work scales with the engine's refinement factor).
    pub script_cost_factor: f64,
    /// Absolute simulated time at which the job starts. Only consulted by
    /// the fault-aware scheduler (node crashes are scheduled on the run's
    /// global clock); the zero-fault closed forms are start-invariant.
    pub start_ns: SimNs,
}

impl JobConfig {
    pub fn new(name: impl Into<String>, phase: Phase, multiplier: f64) -> Self {
        JobConfig {
            name: name.into(),
            phase,
            multiplier: multiplier.max(1.0),
            parse_input_text: true,
            write_output_to_hdfs: true,
            map_scale: ScaleMode::MoreTasks,
            script_reducer: false,
            script_cost_factor: 1.0,
            start_ns: 0,
        }
    }

    /// Places the job at an absolute point on the run's simulated clock so
    /// fault schedules (crash times) line up across stages.
    pub fn starting_at(mut self, ns: SimNs) -> Self {
        self.start_ns = ns;
        self
    }

    pub fn script_reducer(mut self, yes: bool) -> Self {
        self.script_reducer = yes;
        self
    }

    pub fn script_cost_factor(mut self, factor: f64) -> Self {
        self.script_cost_factor = factor;
        self
    }

    pub fn map_scale(mut self, mode: ScaleMode) -> Self {
        self.map_scale = mode;
        self
    }

    pub fn parse_input(mut self, yes: bool) -> Self {
        self.parse_input_text = yes;
        self
    }

    pub fn write_output(mut self, yes: bool) -> Self {
        self.write_output_to_hdfs = yes;
        self
    }
}

/// Collector passed to map functions.
#[derive(Debug)]
pub struct MapEmitter<K, V> {
    pairs: Vec<(K, V)>,
    bytes: u64,
    extra_cpu_ns: SimNs,
}

impl<K, V> MapEmitter<K, V> {
    fn new() -> Self {
        MapEmitter { pairs: Vec::new(), bytes: 0, extra_cpu_ns: 0 }
    }

    /// Emits an intermediate pair; `bytes` is its serialized size (drives
    /// shuffle volume).
    pub fn emit(&mut self, key: K, value: V, bytes: u64) {
        self.pairs.push((key, value));
        self.bytes += bytes;
    }

    /// Charges extra simulated CPU to the current task (e.g. R-tree probe
    /// costs computed by the spatial layer).
    pub fn charge(&mut self, ns: SimNs) {
        self.extra_cpu_ns += ns;
    }
}

/// Collector passed to reduce functions (and map-only map functions).
#[derive(Debug)]
pub struct ReduceEmitter<O> {
    out: Vec<O>,
    bytes: u64,
    extra_cpu_ns: SimNs,
}

impl<O> ReduceEmitter<O> {
    fn new() -> Self {
        ReduceEmitter { out: Vec::new(), bytes: 0, extra_cpu_ns: 0 }
    }

    /// Emits an output record of `bytes` serialized size.
    pub fn emit(&mut self, value: O, bytes: u64) {
        self.out.push(value);
        self.bytes += bytes;
    }

    /// Charges extra simulated CPU to the current task.
    pub fn charge(&mut self, ns: SimNs) {
        self.extra_cpu_ns += ns;
    }
}

/// Aggregate statistics of a finished job (generation-scale volumes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobStats {
    pub map_tasks: u64,
    pub reduce_tasks: u64,
    pub input_bytes: u64,
    pub shuffle_bytes: u64,
    pub output_bytes: u64,
    pub records_in: u64,
    pub records_out: u64,
}

/// Output of a map-reduce run: reduce outputs, per-group shuffled byte
/// sizes (for failure checks and diagnostics), stats and the stage trace.
pub struct JobOutcome<O> {
    pub output: Vec<O>,
    /// (group count, shuffled bytes) per reduce group, generation scale.
    pub group_bytes: Vec<u64>,
    /// Bytes emitted by each reduce group, in the same (key-sorted) order as
    /// `group_bytes`. Streaming-mode pipe checks read this instead of
    /// threading a side channel through the reducer closure.
    pub group_out_bytes: Vec<u64>,
    pub stats: JobStats,
    pub trace: StageTrace,
    /// Recovery actions taken while scheduling this job (empty under
    /// [`sjc_cluster::FaultPlan::none`]).
    pub recovery: Vec<RecoveryEvent>,
}

/// Cap on materialized full-scale task lists fed to the event scheduler.
const MAX_MATERIALIZED_TASKS: u64 = 1 << 16;

/// Materializes the full-scale task multiset (`durations` replicated
/// `copies` times) for the fault-aware scheduler. Once the list would
/// exceed [`MAX_MATERIALIZED_TASKS`], replicas batch into proportionally
/// longer tasks — total work is preserved exactly, only the granularity at
/// which crashes can interrupt it coarsens.
fn replicate_tasks(durations: &[SimNs], copies: u64) -> Vec<SimNs> {
    let total = (durations.len() as u64).saturating_mul(copies);
    let batch = total.div_ceil(MAX_MATERIALIZED_TASKS).max(1);
    let whole = copies / batch;
    let rem = copies % batch;
    let mut out = Vec::new();
    for &d in durations {
        for _ in 0..whole {
            out.push(d.saturating_mul(batch));
        }
        if rem > 0 {
            out.push(d.saturating_mul(rem));
        }
    }
    out
}

/// The engine: borrows the cluster (cost context) and HDFS (byte ledger).
pub struct MapReduceJob<'a> {
    pub cluster: &'a Cluster,
    pub hdfs: &'a mut SimHdfs,
}

impl<'a> MapReduceJob<'a> {
    pub fn new(cluster: &'a Cluster, hdfs: &'a mut SimHdfs) -> Self {
        MapReduceJob { cluster, hdfs }
    }

    /// Effective per-slot HDFS write bandwidth: on a multi-node cluster the
    /// replication pipeline streams two remote copies through the NIC, so a
    /// writer is capped by `min(disk, net / 2)` — on 1 Gbit/s EC2 networks
    /// this, not the SSD, bounds SpatialHadoop's index writes.
    fn hdfs_write_bw(&self) -> f64 {
        let node = &self.cluster.config.node;
        if self.cluster.config.nodes > 1 {
            node.slot_disk_write_bw().min(node.slot_net_bw() / 2.0)
        } else {
            node.slot_disk_write_bw()
        }
    }

    /// Penalty for input blocks whose primary replica died before the stage
    /// started: the dead fraction of the full-scale input is re-fetched from
    /// remote replicas over the NIC, spread across surviving slots. Returns
    /// `(extra_ns, bytes_reread, event)`.
    fn failover_penalty(
        &self,
        stage: &str,
        start: SimNs,
        full_input_bytes: u64,
    ) -> (SimNs, u64, Option<RecoveryEvent>) {
        let plan = &self.cluster.faults;
        let dead = plan.dead_nodes_at(start);
        if dead.is_empty() || full_input_bytes == 0 {
            return (0, 0, None);
        }
        let nodes = self.cluster.config.nodes;
        let node = &self.cluster.config.node;
        let live = nodes.saturating_sub(dead.len() as u32).max(1);
        let reread = (full_input_bytes as f64 * dead.len() as f64 / nodes as f64) as u64;
        let live_slots = (live as u64 * node.cores as u64).max(1);
        let extra = self.cluster.cost.io_ns(reread / live_slots, node.slot_net_bw());
        let ev = RecoveryEvent {
            stage: stage.to_string(),
            kind: RecoveryKind::ReplicaFailover {
                blocks: reread.div_ceil(self.hdfs.block_size().max(1)),
            },
            wasted_ns: extra,
        };
        (extra, reread, Some(ev))
    }

    fn map_task_duration<T>(
        &self,
        cfg: &JobConfig,
        task: &MapTask<T>,
        emitted_bytes: u64,
        extra_cpu: SimNs,
    ) -> SimNs {
        let c = &self.cluster.cost;
        let node = &self.cluster.config.node;
        // I/O at the slot's share of the node disk; CPU scaled by the
        // node's per-core speed.
        let mut io = c.io_ns(task.input_bytes, node.slot_disk_read_bw());
        let mut cpu = 0u64;
        if cfg.parse_input_text {
            cpu += c.parse_ns(task.input_bytes);
        }
        cpu += c.hadoop_records_ns(task.records.len() as u64);
        cpu += extra_cpu;
        // Spill the map output to local disk (Hadoop always materializes).
        cpu += c.serialize_ns(emitted_bytes);
        io += c.io_ns(emitted_bytes, node.slot_disk_write_bw());
        io + (cpu as f64 * node.cpu_scale) as SimNs
    }

    /// Runs a map-only job (no shuffle; output written to HDFS if configured).
    ///
    /// Map tasks execute in parallel on the host (`sjc-par`); the simulated
    /// cost accounting is merged serially in task order afterwards, so the
    /// outcome is bit-identical at every thread count.
    pub fn map_only<T: Sync, O: Send>(
        &mut self,
        cfg: &JobConfig,
        tasks: Vec<MapTask<T>>,
        map: impl Fn(&T, &mut ReduceEmitter<O>) + Sync,
    ) -> Result<JobOutcome<O>, SimError> {
        let c = self.cluster.cost.clone();
        let node = self.cluster.config.node;
        let slots = self.cluster.total_slots();

        let mut output = Vec::new();
        let mut durations: Vec<SimNs> = Vec::with_capacity(tasks.len());
        let mut stats = JobStats { map_tasks: tasks.len() as u64, ..JobStats::default() };

        // Skew-aware dispatch: process fat tasks first (LPT by record count)
        // so one oversized partition cannot serialize the host-parallel tail;
        // results still land in task order, so nothing downstream changes.
        let ems: Vec<ReduceEmitter<O>> = sjc_par::par_map_weighted(
            &tasks,
            |task| task.records.len() as u64,
            |task| {
                let mut em = ReduceEmitter::new();
                for rec in &task.records {
                    map(rec, &mut em);
                }
                em
            },
        );

        // sjc-lint: allow(serial-hot-loop) — cost merge in task order; the map closures already ran in parallel above
        for (task, em) in tasks.iter().zip(ems) {
            stats.records_in += task.records.len() as u64;
            stats.records_out += em.out.len() as u64;
            stats.input_bytes += task.input_bytes;
            stats.output_bytes += em.bytes;

            let io = c.io_ns(task.input_bytes, node.slot_disk_read_bw());
            let mut cpu = 0u64;
            if cfg.parse_input_text {
                cpu += c.parse_ns(task.input_bytes);
            }
            cpu += c.hadoop_records_ns(task.records.len() as u64);
            cpu += em.extra_cpu_ns;
            let mut ns = io + (cpu as f64 * node.cpu_scale) as SimNs;
            if cfg.write_output_to_hdfs {
                ns += (c.serialize_ns(em.bytes) as f64 * node.cpu_scale) as SimNs
                    + c.hdfs_write_ns(em.bytes, self.hdfs_write_bw());
            }
            durations.push(ns);
            output.extend(em.out);
        }

        let plan = &self.cluster.faults;
        let start = cfg.start_ns + c.hadoop_job_startup_ns;
        let full_tasks: Vec<SimNs> = match cfg.map_scale {
            ScaleMode::MoreTasks => {
                let with_overhead: Vec<SimNs> =
                    durations.iter().map(|d| d + c.hadoop_task_overhead_ns).collect();
                if plan.is_none() {
                    let makespan = replicated_makespan(&with_overhead, slots, cfg.multiplier);
                    return Ok(self.finish_map_only(cfg, makespan, None, output, stats));
                }
                replicate_tasks(&with_overhead, cfg.multiplier.round().max(1.0) as u64)
            }
            ScaleMode::BiggerTasks => {
                let scaled: Vec<SimNs> = durations
                    .iter()
                    .map(|d| c.hadoop_task_overhead_ns + (*d as f64 * cfg.multiplier) as SimNs)
                    .collect();
                if plan.is_none() {
                    let makespan = lpt_makespan(&scaled, slots);
                    return Ok(self.finish_map_only(cfg, makespan, None, output, stats));
                }
                scaled
            }
        };
        let sched = faulty_makespan(
            &full_tasks,
            self.cluster.config.node.cores,
            self.cluster.config.nodes,
            plan,
            &cfg.name,
            start,
            false,
        )?;
        Ok(self.finish_map_only(cfg, sched.makespan, Some(sched), output, stats))
    }

    /// Shared tail of [`Self::map_only`]: trace assembly and byte ledger.
    fn finish_map_only<O>(
        &mut self,
        cfg: &JobConfig,
        makespan: SimNs,
        sched: Option<TaskSchedule>,
        output: Vec<O>,
        stats: JobStats,
    ) -> JobOutcome<O> {
        let c = self.cluster.cost.clone();
        let mut trace = StageTrace::new(cfg.name.clone(), StageKind::MapOnlyJob, cfg.phase);
        trace.sim_ns = c.hadoop_job_startup_ns + makespan;
        trace.hdfs_bytes_read = (stats.input_bytes as f64 * cfg.multiplier) as u64;
        if cfg.write_output_to_hdfs {
            trace.hdfs_bytes_written = (stats.output_bytes as f64 * cfg.multiplier) as u64;
            self.hdfs.total_bytes_written += trace.hdfs_bytes_written;
        }
        self.hdfs.total_bytes_read += trace.hdfs_bytes_read;
        trace.tasks = (stats.map_tasks as f64 * cfg.multiplier) as u64;

        let mut recovery = Vec::new();
        if let Some(s) = sched {
            trace.attempts = s.attempts;
            trace.speculative = s.speculative;
            trace.wasted_ns = s.wasted_ns;
            recovery = s.events;
            // Input blocks whose primary died before the job started come
            // from remote replicas.
            let start = cfg.start_ns + c.hadoop_job_startup_ns;
            let (extra, reread, ev) =
                self.failover_penalty(&cfg.name, start, trace.hdfs_bytes_read);
            trace.sim_ns += extra;
            trace.bytes_reread = reread;
            recovery.extend(ev);
        }

        JobOutcome {
            output,
            group_bytes: Vec::new(),
            group_out_bytes: Vec::new(),
            stats,
            trace,
            recovery,
        }
    }

    /// Runs a full map → shuffle → reduce job with a map-side **combiner**:
    /// per map task, same-key values are pre-aggregated before the shuffle,
    /// cutting shuffle volume — the classic Hadoop optimization for
    /// aggregation-shaped jobs. `combine` folds one task's values for one
    /// key into fewer `(value, serialized_bytes)` pairs.
    pub fn map_combine_reduce<T: Sync, K, V, O>(
        &mut self,
        cfg: &JobConfig,
        tasks: Vec<MapTask<T>>,
        map: impl Fn(&T, &mut MapEmitter<K, V>) + Sync,
        combine: impl Fn(&K, Vec<V>) -> Vec<(V, u64)> + Sync,
        reduce: impl Fn(&K, &[V], &mut ReduceEmitter<O>) + Sync,
    ) -> Result<JobOutcome<O>, SimError>
    where
        K: Ord + Clone + Send + Sync,
        V: Send + Sync,
        O: Send,
    {
        let cost = self.cluster.cost.clone();
        let combiner = |em: MapEmitter<K, V>| -> MapEmitter<K, V> {
            let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
            let n = em.pairs.len() as u64;
            for (k, v) in em.pairs {
                grouped.entry(k).or_default().push(v);
            }
            let mut out = MapEmitter::new();
            // The combine pass sorts the task's output; charge it.
            out.extra_cpu_ns = em.extra_cpu_ns + cost.sort_ns(n);
            for (k, vs) in grouped {
                for (v, bytes) in combine(&k, vs) {
                    out.emit(k.clone(), v, bytes);
                }
            }
            out
        };
        self.map_reduce_inner(cfg, tasks, &map, Some(&combiner), &reduce)
    }

    /// Runs a full map → shuffle → reduce job. Keys are grouped with a
    /// deterministic sort order.
    pub fn map_reduce<T: Sync, K, V, O>(
        &mut self,
        cfg: &JobConfig,
        tasks: Vec<MapTask<T>>,
        map: impl Fn(&T, &mut MapEmitter<K, V>) + Sync,
        reduce: impl Fn(&K, &[V], &mut ReduceEmitter<O>) + Sync,
    ) -> Result<JobOutcome<O>, SimError>
    where
        K: Ord + Clone + Send + Sync,
        V: Send + Sync,
        O: Send,
    {
        self.map_reduce_inner(cfg, tasks, &map, None, &reduce)
    }

    /// Host-parallel core: map tasks and reduce groups each run through
    /// `sjc_par::par_map` (order-preserving), then the simulated durations,
    /// stats, shuffle grouping and output are merged serially in task / key
    /// order — so every simulated number is independent of the thread count.
    #[allow(clippy::type_complexity)]
    fn map_reduce_inner<T: Sync, K, V, O>(
        &mut self,
        cfg: &JobConfig,
        tasks: Vec<MapTask<T>>,
        map: &(dyn Fn(&T, &mut MapEmitter<K, V>) + Sync),
        combiner: Option<&(dyn Fn(MapEmitter<K, V>) -> MapEmitter<K, V> + Sync)>,
        reduce: &(dyn Fn(&K, &[V], &mut ReduceEmitter<O>) + Sync),
    ) -> Result<JobOutcome<O>, SimError>
    where
        K: Ord + Clone + Send + Sync,
        V: Send + Sync,
        O: Send,
    {
        let c = self.cluster.cost.clone();
        let node = self.cluster.config.node;
        let nodes = self.cluster.config.nodes;
        let slots = self.cluster.total_slots();

        // ---- map phase (real execution + per-task cost) ----
        let mut stats = JobStats { map_tasks: tasks.len() as u64, ..JobStats::default() };
        let mut map_durations = Vec::with_capacity(tasks.len());
        // Group by key with byte accounting: BTreeMap gives deterministic
        // group order (Hadoop's shuffle sorts keys).
        let mut groups: BTreeMap<K, (Vec<V>, u64)> = BTreeMap::new();
        // LPT dispatch by record count: see `map_only` — processing order
        // changes, the task-order results do not.
        let ems: Vec<MapEmitter<K, V>> = sjc_par::par_map_weighted(
            &tasks,
            |task| task.records.len() as u64,
            |task| {
                let mut em = MapEmitter::new();
                for rec in &task.records {
                    map(rec, &mut em);
                }
                match combiner {
                    Some(comb) => comb(em),
                    None => em,
                }
            },
        );
        // sjc-lint: allow(serial-hot-loop) — shuffle grouping must append values in task order; map closures already ran in parallel above
        for (task, em) in tasks.iter().zip(ems) {
            stats.records_in += task.records.len() as u64;
            stats.input_bytes += task.input_bytes;
            stats.shuffle_bytes += em.bytes;
            let dur = self.map_task_duration(cfg, task, em.bytes, em.extra_cpu_ns);
            map_durations.push(dur + c.hadoop_task_overhead_ns);
            let n_pairs = em.pairs.len().max(1) as u64;
            let bytes_per_pair = em.bytes / n_pairs;
            for (k, v) in em.pairs {
                let e = groups.entry(k).or_insert_with(|| (Vec::new(), 0));
                e.0.push(v);
                e.1 += bytes_per_pair;
            }
        }
        let plan = self.cluster.faults.clone();
        let start = cfg.start_ns + c.hadoop_job_startup_ns;
        // Map wave. Under faults the full-scale task list runs through the
        // event scheduler with `rerun_on_crash`: a completed map task whose
        // host dies before the shuffle re-executes (its output is gone).
        // With an enabled checkpoint policy the spilled map output is
        // persisted to HDFS instead, so those re-runs are unnecessary —
        // `rerun_on_crash` turns off and the loss becomes a remote re-read.
        let rerun_lost_maps = !plan.checkpoint.enabled();
        let mut map_sched: Option<TaskSchedule> = None;
        let mut map_makespan = match cfg.map_scale {
            ScaleMode::MoreTasks => {
                if plan.is_none() {
                    replicated_makespan(&map_durations, slots, cfg.multiplier)
                } else {
                    let full =
                        replicate_tasks(&map_durations, cfg.multiplier.round().max(1.0) as u64);
                    let s = faulty_makespan(
                        &full,
                        node.cores,
                        nodes,
                        &plan,
                        &format!("{}/map", cfg.name),
                        start,
                        rerun_lost_maps,
                    )?;
                    let m = s.makespan;
                    map_sched = Some(s);
                    m
                }
            }
            ScaleMode::BiggerTasks => {
                let scaled: Vec<SimNs> =
                    map_durations.iter().map(|d| (*d as f64 * cfg.multiplier) as SimNs).collect();
                if plan.is_none() {
                    lpt_makespan(&scaled, slots)
                } else {
                    let s = faulty_makespan(
                        &scaled,
                        node.cores,
                        nodes,
                        &plan,
                        &format!("{}/map", cfg.name),
                        start,
                        rerun_lost_maps,
                    )?;
                    let m = s.makespan;
                    map_sched = Some(s);
                    m
                }
            }
        };

        // Checkpointed map output: the write streams the full-scale spill
        // through the HDFS replication pipeline on the critical path, and
        // nodes that died within the map window cost a remote re-read of
        // their share of the checkpoint instead of re-executing their maps.
        let mut ckpt_events: Vec<RecoveryEvent> = Vec::new();
        let mut ckpt_written: u64 = 0;
        let mut ckpt_reread: u64 = 0;
        if !plan.is_none() && plan.checkpoint.enabled() {
            let full_shuffle = (stats.shuffle_bytes as f64 * cfg.multiplier) as u64;
            if full_shuffle > 0 {
                let repl = plan.checkpoint.replication.max(1) as u64;
                let write_ns = c.io_ns(
                    full_shuffle.saturating_mul(repl) / (slots as u64).max(1),
                    self.hdfs_write_bw(),
                );
                map_makespan += write_ns;
                ckpt_written = full_shuffle;
                ckpt_events.push(RecoveryEvent {
                    stage: cfg.name.clone(),
                    kind: RecoveryKind::CheckpointWrite { bytes: full_shuffle },
                    wasted_ns: write_ns,
                });
                let dead_before = plan.dead_nodes_at(start);
                let dead_after = plan.dead_nodes_at(start + map_makespan);
                let newly = dead_after.iter().filter(|n| !dead_before.contains(n)).count();
                if newly > 0 {
                    let live = nodes.saturating_sub(dead_after.len() as u32).max(1);
                    let reread = (full_shuffle as f64 * newly as f64 / nodes as f64) as u64;
                    let live_slots = (live as u64 * node.cores as u64).max(1);
                    let extra = c.io_ns(reread / live_slots, node.slot_net_bw());
                    map_makespan += extra;
                    ckpt_reread = reread;
                    ckpt_events.push(RecoveryEvent {
                        stage: cfg.name.clone(),
                        kind: RecoveryKind::CheckpointRestore { bytes: reread },
                        wasted_ns: extra,
                    });
                }
            }
        }

        // ---- shuffle + reduce phase ----
        // Each group is one spatial partition: fixed count, data grows with
        // the multiplier.
        let mut reduce_durations = Vec::with_capacity(groups.len());
        let mut group_bytes = Vec::with_capacity(groups.len());
        let mut group_out_bytes = Vec::with_capacity(groups.len());
        let mut output = Vec::new();
        let remote_fraction = if nodes > 1 { (nodes - 1) as f64 / nodes as f64 } else { 0.0 };
        let group_list: Vec<(&K, &(Vec<V>, u64))> = groups.iter().collect();
        // Reduce groups are the spatial cells — the skew hazard the LPT
        // schedule exists for: one fat NYC-census cell dispatched last would
        // serialize the whole tail. Weight by group size; output order
        // (sorted key order) is unchanged by contract.
        let reduce_ems: Vec<ReduceEmitter<O>> = sjc_par::par_map_weighted(
            &group_list,
            |(_, (vs, _))| vs.len() as u64,
            |&(k, (vs, _))| {
                let mut em = ReduceEmitter::new();
                reduce(k, vs, &mut em);
                em
            },
        );
        // sjc-lint: allow(serial-hot-loop) — output and durations merge in sorted key order; reduce closures already ran in parallel above
        for ((_, (vs, bytes)), em) in group_list.into_iter().zip(reduce_ems) {
            stats.records_out += em.out.len() as u64;
            stats.output_bytes += em.bytes;
            group_bytes.push(*bytes);
            group_out_bytes.push(em.bytes);

            let full_bytes = (*bytes as f64 * cfg.multiplier) as u64;
            let full_records = (vs.len() as f64 * cfg.multiplier) as u64;
            // Fetch spilled map output: disk read + cross-node transfer.
            let mut io = c.io_ns(full_bytes, node.slot_disk_read_bw());
            io += c.io_ns((full_bytes as f64 * remote_fraction) as u64, node.slot_net_bw());
            // Merge-sort the group (Hadoop sorts by key; within-partition
            // sorting of values is what the streaming dedup relies on).
            let mut cpu = c.sort_ns(full_records);
            cpu += c.hadoop_records_ns(full_records);
            cpu += (em.extra_cpu_ns as f64 * cfg.multiplier) as SimNs;
            if cfg.write_output_to_hdfs {
                let out_full = (em.bytes as f64 * cfg.multiplier) as u64;
                cpu += c.serialize_ns(out_full);
                io += c.hdfs_write_ns(out_full, self.hdfs_write_bw());
            }
            let ns = io + (cpu as f64 * node.cpu_scale) as SimNs;
            reduce_durations.push(c.hadoop_task_overhead_ns + ns);
            output.extend(em.out);
        }
        stats.reduce_tasks = groups.len() as u64;
        // Reduce wave: group durations are already full-scale; under faults
        // it starts on the global clock where the map wave ended.
        let mut reduce_sched: Option<TaskSchedule> = None;
        let reduce_makespan = if plan.is_none() {
            lpt_makespan(&reduce_durations, slots)
        } else {
            let s = faulty_makespan(
                &reduce_durations,
                node.cores,
                nodes,
                &plan,
                &format!("{}/reduce", cfg.name),
                start + map_makespan,
                false,
            )?;
            let m = s.makespan;
            reduce_sched = Some(s);
            m
        };

        let mut trace = StageTrace::new(cfg.name.clone(), StageKind::MapReduceJob, cfg.phase);
        trace.sim_ns = c.hadoop_job_startup_ns + map_makespan + reduce_makespan;
        trace.hdfs_bytes_read = (stats.input_bytes as f64 * cfg.multiplier) as u64;
        trace.shuffle_bytes = (stats.shuffle_bytes as f64 * cfg.multiplier) as u64;
        if cfg.write_output_to_hdfs {
            trace.hdfs_bytes_written = (stats.output_bytes as f64 * cfg.multiplier) as u64;
            self.hdfs.total_bytes_written += trace.hdfs_bytes_written;
        }
        self.hdfs.total_bytes_read += trace.hdfs_bytes_read;
        trace.tasks = ((stats.map_tasks as f64) * cfg.multiplier) as u64 + stats.reduce_tasks;

        if ckpt_written > 0 {
            trace.hdfs_bytes_written += ckpt_written;
            self.hdfs.total_bytes_written += ckpt_written;
        }

        let mut recovery = Vec::new();
        for s in [map_sched, reduce_sched].into_iter().flatten() {
            trace.attempts += s.attempts;
            trace.speculative += s.speculative;
            trace.wasted_ns += s.wasted_ns;
            recovery.extend(s.events);
        }
        recovery.extend(ckpt_events);
        if !plan.is_none() {
            let (extra, reread, ev) =
                self.failover_penalty(&cfg.name, start, trace.hdfs_bytes_read);
            trace.sim_ns += extra;
            trace.bytes_reread = reread + ckpt_reread;
            recovery.extend(ev);
        }

        Ok(JobOutcome { output, group_bytes, group_out_bytes, stats, trace, recovery })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::block_splits;
    use sjc_cluster::{ClusterConfig, FaultPlan};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::workstation())
    }

    #[test]
    fn word_count_semantics() {
        let cluster = cluster();
        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let words = vec!["a", "b", "a", "c", "b", "a"];
        let tasks = block_splits(&words, 2.0, 4); // 2 words per task
        let cfg = JobConfig::new("wordcount", Phase::DistributedJoin, 1.0);
        let outcome = engine
            .map_reduce(
                &cfg,
                tasks,
                |w, em| em.emit(w.to_string(), 1u64, 2),
                |k, vs, em| em.emit((k.clone(), vs.iter().sum::<u64>()), 8),
            )
            .unwrap();
        let mut counts = outcome.output.clone();
        counts.sort();
        assert_eq!(counts, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
        assert_eq!(outcome.stats.map_tasks, 3);
        assert_eq!(outcome.stats.reduce_tasks, 3);
        assert!(outcome.trace.sim_ns >= cluster.cost.hadoop_job_startup_ns);
    }

    #[test]
    fn map_only_passthrough() {
        let cluster = cluster();
        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let cfg = JobConfig::new("scan", Phase::IndexA, 1.0);
        let tasks = vec![MapTask::new(vec![1u32, 2, 3], 30)];
        let outcome = engine.map_only(&cfg, tasks, |r, em| em.emit(r * 10, 4)).unwrap();
        assert_eq!(outcome.output, vec![10, 20, 30]);
        assert_eq!(outcome.stats.records_in, 3);
        assert_eq!(outcome.trace.hdfs_bytes_read, 30);
    }

    #[test]
    fn multiplier_scales_time_and_bytes() {
        let cluster = cluster();
        let run = |mult: f64| {
            let mut hdfs = SimHdfs::new(1);
            let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
            let cfg = JobConfig::new("scan", Phase::IndexA, mult);
            let records: Vec<u32> = (0..10_000).collect();
            let tasks = block_splits(&records, 100.0, 64 << 10);
            engine.map_only(&cfg, tasks, |r, em| em.emit(*r, 100)).unwrap()
        };
        let base = run(1.0);
        let scaled = run(100.0);
        // Compare data-dependent time (net of the fixed job startup).
        let startup = cluster.cost.hadoop_job_startup_ns;
        assert!(scaled.trace.sim_ns - startup > 10 * (base.trace.sim_ns - startup));
        assert_eq!(scaled.trace.hdfs_bytes_read, 100 * base.trace.hdfs_bytes_read);
        assert_eq!(base.output, scaled.output, "multiplier never changes results");
    }

    #[test]
    fn skewed_reduce_group_dominates_makespan() {
        let cluster = cluster();
        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let cfg = JobConfig::new("skew", Phase::DistributedJoin, 1.0).write_output(false);
        // 1000 records: 90% to key 0, the rest spread over 9 keys.
        let records: Vec<u64> = (0..1000).collect();
        let tasks = block_splits(&records, 1000.0, 64 << 20);
        let outcome = engine
            .map_reduce(
                &cfg,
                tasks,
                |r, em| {
                    let key = if r % 10 == 0 { (r % 9) + 1 } else { 0 };
                    em.emit(key, *r, 1 << 20); // 1 MB per record
                },
                |_k, vs, em| em.emit(vs.len() as u64, 8),
            )
            .unwrap();
        let max = *outcome.group_bytes.iter().max().unwrap();
        let min = *outcome.group_bytes.iter().min().unwrap();
        assert!(max > 50 * min, "skew visible in group bytes");
    }

    #[test]
    fn combiner_reduces_shuffle_volume_not_results() {
        let cluster = cluster();
        let words: Vec<u64> = (0..10_000).map(|i| i % 7).collect();
        let tasks = || block_splits(&words, 8.0, 8 << 10); // ~1024 words/task

        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let cfg = JobConfig::new("wc", Phase::DistributedJoin, 1.0).write_output(false);
        let plain = engine
            .map_reduce(
                &cfg,
                tasks(),
                |w, em| em.emit(*w, 1u64, 16),
                |k, vs, em| em.emit((*k, vs.iter().sum::<u64>()), 16),
            )
            .unwrap();

        let mut hdfs2 = SimHdfs::new(1);
        let mut engine2 = MapReduceJob::new(&cluster, &mut hdfs2);
        let combined = engine2
            .map_combine_reduce(
                &cfg,
                tasks(),
                |w, em| em.emit(*w, 1u64, 16),
                |_k, vs| vec![(vs.iter().sum::<u64>(), 16)],
                |k, vs, em| em.emit((*k, vs.iter().sum::<u64>()), 16),
            )
            .unwrap();

        let mut a = plain.output.clone();
        let mut b = combined.output.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "combining never changes the result");
        assert!(
            combined.stats.shuffle_bytes * 10 < plain.stats.shuffle_bytes,
            "combiner collapses {} shuffle bytes to {}",
            plain.stats.shuffle_bytes,
            combined.stats.shuffle_bytes
        );
    }

    #[test]
    fn bigger_tasks_scale_linearly_more_tasks_amortize() {
        let cluster = cluster();
        let records: Vec<u32> = (0..1600).collect();
        let run = |mode: ScaleMode| {
            let mut hdfs = SimHdfs::new(1);
            let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
            let cfg = JobConfig::new("m", Phase::IndexA, 50.0).map_scale(mode).write_output(false);
            let tasks = block_splits(&records, 1000.0, 100 << 10); // 16 tasks
            engine.map_only(&cfg, tasks, |r, em| em.emit(*r, 0)).unwrap().trace.sim_ns
        };
        // BiggerTasks: 16 tasks × 50x data on 16 slots — one huge wave.
        // MoreTasks: 800 unit tasks on 16 slots — perfectly amortized; both
        // end up near total_work/slots, BiggerTasks only pays overhead once.
        let more = run(ScaleMode::MoreTasks);
        let bigger = run(ScaleMode::BiggerTasks);
        let ratio = more as f64 / bigger as f64;
        assert!((0.5..2.0).contains(&ratio), "same area bound, got ratio {ratio}");
    }

    #[test]
    fn replicated_task_lists_batch_but_preserve_work() {
        let durations = vec![10u64, 20, 30];
        let small = replicate_tasks(&durations, 3);
        assert_eq!(small.len(), 9);
        assert_eq!(small.iter().sum::<u64>(), 3 * 60);
        // Far over the cap: batching kicks in, total work is exact.
        let copies = 10 * MAX_MATERIALIZED_TASKS;
        let big = replicate_tasks(&durations, copies);
        assert!(big.len() as u64 <= MAX_MATERIALIZED_TASKS + durations.len() as u64);
        assert_eq!(big.iter().sum::<u64>(), copies * 60);
    }

    #[test]
    fn faulted_cluster_recovers_and_preserves_results() {
        let config = ClusterConfig::ec2(4);
        let clean = Cluster::new(config.clone());
        // Node 1 dies before the job starts; 5% of attempts hit transient
        // disk errors.
        let plan = FaultPlan::seeded(7, &config).with_disk_errors(0.05).crash_at(1, 1);
        let faulted = Cluster::with_faults(config, plan);
        let run = |cluster: &Cluster| {
            let mut hdfs = SimHdfs::new(4);
            let mut engine = MapReduceJob::new(cluster, &mut hdfs);
            let words: Vec<u64> = (0..4000).map(|i| i % 97).collect();
            let tasks = block_splits(&words, 16.0, 2 << 10);
            let cfg = JobConfig::new("wc", Phase::DistributedJoin, 4.0);
            engine
                .map_reduce(
                    &cfg,
                    tasks,
                    |w, em| em.emit(*w, 1u64, 8),
                    |k, vs, em| em.emit((*k, vs.len() as u64), 8),
                )
                .unwrap()
        };
        let base = run(&clean);
        let hit = run(&faulted);
        let mut a = base.output.clone();
        let mut b = hit.output.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "recovered runs return identical results");
        assert!(hit.trace.sim_ns > base.trace.sim_ns, "faults cost time");
        assert!(hit.trace.attempts > 0);
        assert!(!hit.recovery.is_empty(), "recovery actions are logged");
        assert!(hit.trace.bytes_reread > 0, "dead node forces remote re-reads");
        assert_eq!(base.trace.attempts, 0, "zero-fault path does not meter attempts");
    }

    #[test]
    fn checkpointed_map_output_turns_reruns_into_rereads() {
        let config = ClusterConfig::ec2(4);
        // Map-heavy, shuffle-light: big text inputs, 8-byte emissions. The
        // run is dominated by the map wave, so a crash at 60% of the
        // data-dependent time lands mid-map with plenty of completed tasks.
        let run = |plan: Option<FaultPlan>| {
            let cluster = match plan {
                Some(p) => Cluster::with_faults(config.clone(), p),
                None => Cluster::new(config.clone()),
            };
            let mut hdfs = SimHdfs::new(4);
            let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
            let words: Vec<u64> = (0..4000).map(|i| i % 97).collect();
            let tasks = block_splits(&words, 4096.0, 256 << 10);
            let cfg = JobConfig::new("wc", Phase::DistributedJoin, 4.0).write_output(false);
            engine
                .map_reduce(
                    &cfg,
                    tasks,
                    |w, em| em.emit(*w, 1u64, 8),
                    |k, vs, em| em.emit((*k, vs.len() as u64), 8),
                )
                .unwrap()
        };
        let base = run(None);
        let startup = Cluster::new(config.clone()).cost.hadoop_job_startup_ns;
        let crash_ns = startup + (base.trace.sim_ns - startup) * 3 / 5;
        let crash = FaultPlan::seeded(7, &config).crash_at(2, crash_ns);

        let rerun = run(Some(crash.clone()));
        assert!(
            rerun.recovery.iter().any(|e| matches!(e.kind, RecoveryKind::MapRerun { .. })),
            "without a checkpoint, completed maps on the dead host re-execute: {:?}",
            rerun.recovery
        );

        let ckpt = run(Some(crash.with_checkpoints(1, 3)));
        assert!(
            !ckpt.recovery.iter().any(|e| matches!(e.kind, RecoveryKind::MapRerun { .. })),
            "checkpointed map output never re-executes: {:?}",
            ckpt.recovery
        );
        assert!(ckpt
            .recovery
            .iter()
            .any(|e| matches!(e.kind, RecoveryKind::CheckpointWrite { bytes } if bytes > 0)));
        assert!(
            ckpt.recovery
                .iter()
                .any(|e| matches!(e.kind, RecoveryKind::CheckpointRestore { bytes } if bytes > 0)),
            "the dead host's share comes back as a re-read: {:?}",
            ckpt.recovery
        );
        assert!(ckpt.trace.bytes_reread > 0);
        assert!(ckpt.trace.hdfs_bytes_written > 0, "the checkpoint is metered through HDFS");
        // Re-reading a light shuffle beats re-running heavy maps.
        assert!(
            ckpt.trace.sim_ns < rerun.trace.sim_ns,
            "checkpointing must win on a map-heavy job: {} >= {}",
            ckpt.trace.sim_ns,
            rerun.trace.sim_ns
        );
        let mut a = base.output.clone();
        let mut b = ckpt.output.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "recovery path never changes results");
    }
}
