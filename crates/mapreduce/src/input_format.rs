//! Input splitting: how records become map tasks.
//!
//! Hadoop derives one map task per HDFS block by default; SpatialHadoop
//! overrides `getSplits` to build one task per *pair of spatially joined
//! partitions*. Both patterns reduce to the caller handing the engine a list
//! of [`MapTask`]s.

/// One map task: its records plus the input bytes it reads.
#[derive(Debug, Clone)]
pub struct MapTask<T> {
    pub records: Vec<T>,
    pub input_bytes: u64,
}

impl<T> MapTask<T> {
    pub fn new(records: Vec<T>, input_bytes: u64) -> Self {
        MapTask { records, input_bytes }
    }
}

/// Splits a record list into block-sized map tasks, byte-weighted: each task
/// covers about `block_size` bytes at `bytes_per_record` average record
/// size (the Hadoop default `FileInputFormat` behaviour).
pub fn block_splits<T: Clone>(
    records: &[T],
    bytes_per_record: f64,
    block_size: u64,
) -> Vec<MapTask<T>> {
    if records.is_empty() {
        return Vec::new();
    }
    let per_task = ((block_size as f64 / bytes_per_record).floor() as usize).max(1);
    records
        .chunks(per_task)
        .map(|chunk| MapTask::new(chunk.to_vec(), (chunk.len() as f64 * bytes_per_record) as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_cover_all_records_once() {
        let records: Vec<u32> = (0..1000).collect();
        let tasks = block_splits(&records, 100.0, 10_000); // 100 records per task
        assert_eq!(tasks.len(), 10);
        let total: usize = tasks.iter().map(|t| t.records.len()).sum();
        assert_eq!(total, 1000);
        let flattened: Vec<u32> = tasks.iter().flat_map(|t| t.records.iter().copied()).collect();
        assert_eq!(flattened, records);
    }

    #[test]
    fn bytes_accounted_per_task() {
        let records: Vec<u32> = (0..250).collect();
        let tasks = block_splits(&records, 40.0, 4000);
        assert_eq!(tasks[0].input_bytes, 4000);
        let total_bytes: u64 = tasks.iter().map(|t| t.input_bytes).sum();
        assert_eq!(total_bytes, 10_000);
    }

    #[test]
    fn tiny_inputs_get_one_task() {
        let tasks = block_splits(&[1u8, 2, 3], 10.0, 1 << 20);
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].input_bytes, 30);
    }

    #[test]
    fn huge_records_one_per_task() {
        let tasks = block_splits(&[1u8, 2], 1e9, 64 << 20);
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn empty_input_no_tasks() {
        let tasks: Vec<MapTask<u8>> = block_splits(&[], 10.0, 100);
        assert!(tasks.is_empty());
    }
}
