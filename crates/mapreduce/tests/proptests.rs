//! Property-based tests for the MapReduce engine: semantic equivalence with
//! plain in-memory folds, cost monotonicity, and combiner transparency
//! (seeded `sjc-testkit` cases).

use sjc_cluster::metrics::Phase;
use sjc_cluster::{Cluster, ClusterConfig, SimHdfs};
use sjc_mapreduce::{block_splits, JobConfig, MapReduceJob};
use sjc_testkit::{cases, TestRng};
use std::collections::BTreeMap;

const N: usize = 64;

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::workstation())
}

fn words(rng: &mut TestRng, elems: std::ops::Range<u64>, len: std::ops::Range<usize>) -> Vec<u32> {
    rng.vec_u64(elems, len).into_iter().map(|w| w as u32).collect()
}

#[test]
fn map_reduce_equals_hashmap_fold() {
    cases(0x3A01, N, |rng| {
        let words = words(rng, 0..50, 0..500);
        let cluster = cluster();
        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let cfg = JobConfig::new("wc", Phase::DistributedJoin, 1.0).write_output(false);
        let outcome = engine
            .map_reduce(
                &cfg,
                block_splits(&words, 4.0, 64),
                |w, em| em.emit(*w, 1u64, 8),
                |k, vs, em| em.emit((*k, vs.len() as u64), 16),
            )
            .unwrap();
        let mut expected: BTreeMap<u32, u64> = BTreeMap::new();
        for w in &words {
            *expected.entry(*w).or_default() += 1;
        }
        let got: BTreeMap<u32, u64> = outcome.output.into_iter().collect();
        assert_eq!(got, expected);
    });
}

#[test]
fn combiner_never_changes_results() {
    cases(0x3A02, N, |rng| {
        let words = words(rng, 0..20, 1..400);
        let cluster = cluster();
        let cfg = JobConfig::new("wc", Phase::DistributedJoin, 1.0).write_output(false);

        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let mut plain = engine
            .map_reduce(
                &cfg,
                block_splits(&words, 4.0, 32),
                |w, em| em.emit(*w, 1u64, 8),
                |k, vs, em| em.emit((*k, vs.iter().sum::<u64>()), 16),
            )
            .unwrap()
            .output;

        let mut hdfs2 = SimHdfs::new(1);
        let mut engine2 = MapReduceJob::new(&cluster, &mut hdfs2);
        let outcome = engine2
            .map_combine_reduce(
                &cfg,
                block_splits(&words, 4.0, 32),
                |w, em| em.emit(*w, 1u64, 8),
                |_k, vs| vec![(vs.iter().sum::<u64>(), 8)],
                |k, vs, em| em.emit((*k, vs.iter().sum::<u64>()), 16),
            )
            .unwrap();
        let mut combined = outcome.output;
        plain.sort_unstable();
        combined.sort_unstable();
        assert_eq!(plain, combined);
        // And it never inflates shuffle volume.
        assert!(outcome.stats.shuffle_bytes <= words.len() as u64 * 8);
    });
}

#[test]
fn simulated_time_is_monotone_in_multiplier() {
    cases(0x3A03, N, |rng| {
        let words = words(rng, 0..10, 50..200);
        let mult = rng.f64_in(1.0..1000.0);
        let cluster = cluster();
        let run = |m: f64| {
            let mut hdfs = SimHdfs::new(1);
            let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
            let cfg = JobConfig::new("wc", Phase::DistributedJoin, m);
            engine
                .map_reduce(
                    &cfg,
                    block_splits(&words, 4.0, 64),
                    |w, em| em.emit(*w, 1u64, 8),
                    |k, vs, em| em.emit((*k, vs.len()), 16),
                )
                .unwrap()
                .trace
                .sim_ns
        };
        assert!(run(mult) >= run(1.0), "more data never runs faster");
    });
}

#[test]
fn map_only_preserves_record_order() {
    cases(0x3A04, N, |rng| {
        let records = rng.vec_u64(0..1000, 0..300);
        let cluster = cluster();
        let mut hdfs = SimHdfs::new(1);
        let mut engine = MapReduceJob::new(&cluster, &mut hdfs);
        let cfg = JobConfig::new("scan", Phase::IndexA, 1.0);
        let outcome =
            engine.map_only(&cfg, block_splits(&records, 8.0, 64), |r, em| em.emit(*r, 8)).unwrap();
        assert_eq!(outcome.output, records);
    });
}
