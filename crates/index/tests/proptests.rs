//! Property-based tests for indexes, partitioners and local joins.

use proptest::prelude::*;
use sjc_geom::{Mbr, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::join::{brute_force, indexed_nested_loop, plane_sweep, sync_rtree};
use sjc_index::partition::{
    dedup_owner_cell, BspPartitioner, FixedGridPartitioner, SpatialPartitioner, StrTilePartitioner,
};
use sjc_index::RTree;

fn mbr_strategy(extent: f64, max_side: f64) -> impl Strategy<Value = Mbr> {
    (0.0f64..extent, 0.0f64..extent, 0.0f64..max_side, 0.0f64..max_side)
        .prop_map(|(x, y, w, h)| Mbr::new(x, y, x + w, y + h))
}

fn entries(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<IndexEntry>> {
    proptest::collection::vec(mbr_strategy(100.0, 10.0), n).prop_map(|mbrs| {
        mbrs.into_iter()
            .enumerate()
            .map(|(i, m)| IndexEntry::new(i as u64, m))
            .collect()
    })
}

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), n)
        .prop_map(|ps| ps.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #[test]
    fn rtree_query_equals_linear_scan(es in entries(0..200), q in mbr_strategy(120.0, 30.0)) {
        let tree = RTree::bulk_load_str(es.clone());
        tree.check_invariants().unwrap();
        let mut got = tree.query(&q);
        got.sort_unstable();
        let mut expected: Vec<u64> = es.iter().filter(|e| e.mbr.intersects(&q)).map(|e| e.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn dynamic_rtree_query_equals_linear_scan(es in entries(1..120), q in mbr_strategy(120.0, 30.0)) {
        let mut tree = RTree::new_dynamic();
        for e in &es {
            tree.insert(*e);
        }
        tree.check_invariants().unwrap();
        let mut got = tree.query(&q);
        got.sort_unstable();
        let mut expected: Vec<u64> = es.iter().filter(|e| e.mbr.intersects(&q)).map(|e| e.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn join_algorithms_produce_identical_pairs(l in entries(0..80), r in entries(0..80)) {
        let expected = brute_force(&l, &r).sorted_pairs();
        prop_assert_eq!(indexed_nested_loop(&l, &r).sorted_pairs(), expected.clone());
        prop_assert_eq!(plane_sweep(&l, &r).sorted_pairs(), expected.clone());
        prop_assert_eq!(sync_rtree(&l, &r).sorted_pairs(), expected);
    }

    #[test]
    fn partitioners_assign_every_mbr(sample in points(0..200), m in mbr_strategy(100.0, 20.0)) {
        let extent = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let parts: Vec<Box<dyn SpatialPartitioner>> = vec![
            Box::new(FixedGridPartitioner::new(extent, 4, 4)),
            Box::new(StrTilePartitioner::from_sample(extent, sample.clone(), 9)),
            Box::new(BspPartitioner::from_sample(extent, sample, 9)),
        ];
        for p in &parts {
            let cells = p.assign(&m);
            prop_assert!(!cells.is_empty(), "assignment must be total");
            for &c in &cells {
                prop_assert!((c as usize) < p.cells().len());
            }
        }
    }

    #[test]
    fn owner_is_deterministic_and_contained(sample in points(1..200), px in 0.0f64..100.0, py in 0.0f64..100.0) {
        let extent = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let p = Point::new(px, py);
        let parts: Vec<Box<dyn SpatialPartitioner>> = vec![
            Box::new(FixedGridPartitioner::new(extent, 5, 5)),
            Box::new(StrTilePartitioner::from_sample(extent, sample.clone(), 8)),
            Box::new(BspPartitioner::from_sample(extent, sample, 8)),
        ];
        for part in &parts {
            let o1 = part.owner(&p);
            let o2 = part.owner(&p);
            prop_assert_eq!(o1, o2);
            // Points inside the extent are owned by a containing cell.
            prop_assert!(part.cells()[o1 as usize].contains_point(&p));
        }
    }

    #[test]
    fn partitioned_join_with_dedup_equals_direct_join(
        l in entries(0..60), r in entries(0..60), sample in points(0..100)
    ) {
        // End-to-end exactly-once property: multi-assign both sides to
        // cells, join within each cell with dedup, compare with the direct
        // join of the full inputs.
        let extent = Mbr::new(0.0, 0.0, 110.0, 110.0);
        let partitioner = StrTilePartitioner::from_sample(extent, sample, 6);

        let mut by_cell_l: Vec<Vec<IndexEntry>> = vec![Vec::new(); partitioner.cells().len()];
        let mut by_cell_r: Vec<Vec<IndexEntry>> = vec![Vec::new(); partitioner.cells().len()];
        for e in &l {
            for c in partitioner.assign(&e.mbr) {
                by_cell_l[c as usize].push(*e);
            }
        }
        for e in &r {
            for c in partitioner.assign(&e.mbr) {
                by_cell_r[c as usize].push(*e);
            }
        }

        let mut result: Vec<(u64, u64)> = Vec::new();
        for cell in 0..partitioner.cells().len() {
            let local = plane_sweep(&by_cell_l[cell], &by_cell_r[cell]);
            for (a, b) in local.pairs {
                let am = l[a as usize].mbr;
                let bm = r[b as usize].mbr;
                if dedup_owner_cell(&partitioner, cell as u32, &am, &bm) {
                    result.push((a, b));
                }
            }
        }
        result.sort_unstable();

        let expected = brute_force(&l, &r).sorted_pairs();
        prop_assert_eq!(result, expected);
    }
}
