//! Property-based tests for indexes, partitioners and local joins (seeded
//! `sjc-testkit` cases).

use sjc_geom::{Mbr, Point};
use sjc_index::entry::IndexEntry;
use sjc_index::join::{brute_force, indexed_nested_loop, plane_sweep, sync_rtree};
use sjc_index::partition::{
    dedup_owner_cell, BspPartitioner, FixedGridPartitioner, SpatialPartitioner, StrTilePartitioner,
};
use sjc_index::RTree;
use sjc_testkit::{cases, TestRng};

const N: usize = 128;

fn mbr(rng: &mut TestRng, extent: f64, max_side: f64) -> Mbr {
    let x = rng.f64_in(0.0..extent);
    let y = rng.f64_in(0.0..extent);
    let w = rng.f64_in(0.0..max_side);
    let h = rng.f64_in(0.0..max_side);
    Mbr::new(x, y, x + w, y + h)
}

fn entries(rng: &mut TestRng, n: std::ops::Range<usize>) -> Vec<IndexEntry> {
    let len = rng.usize_in(n);
    (0..len).map(|i| IndexEntry::new(i as u64, mbr(rng, 100.0, 10.0))).collect()
}

fn points(rng: &mut TestRng, n: std::ops::Range<usize>) -> Vec<Point> {
    let len = rng.usize_in(n);
    (0..len).map(|_| Point::new(rng.f64_in(0.0..100.0), rng.f64_in(0.0..100.0))).collect()
}

#[test]
fn rtree_query_equals_linear_scan() {
    cases(0x1D01, N, |rng| {
        let es = entries(rng, 0..200);
        let q = mbr(rng, 120.0, 30.0);
        let tree = RTree::bulk_load_str(es.clone());
        tree.check_invariants().unwrap();
        let mut got = tree.query(&q);
        got.sort_unstable();
        let mut expected: Vec<u64> =
            es.iter().filter(|e| e.mbr.intersects(&q)).map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

#[test]
fn dynamic_rtree_query_equals_linear_scan() {
    cases(0x1D02, N, |rng| {
        let es = entries(rng, 1..120);
        let q = mbr(rng, 120.0, 30.0);
        let mut tree = RTree::new_dynamic();
        for e in &es {
            tree.insert(*e);
        }
        tree.check_invariants().unwrap();
        let mut got = tree.query(&q);
        got.sort_unstable();
        let mut expected: Vec<u64> =
            es.iter().filter(|e| e.mbr.intersects(&q)).map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

#[test]
fn join_algorithms_produce_identical_pairs() {
    cases(0x1D03, N, |rng| {
        let l = entries(rng, 0..80);
        let r = entries(rng, 0..80);
        let expected = brute_force(&l, &r).sorted_pairs();
        assert_eq!(indexed_nested_loop(&l, &r).sorted_pairs(), expected.clone());
        assert_eq!(plane_sweep(&l, &r).sorted_pairs(), expected.clone());
        assert_eq!(sync_rtree(&l, &r).sorted_pairs(), expected);
    });
}

#[test]
fn partitioners_assign_every_mbr() {
    cases(0x1D04, N, |rng| {
        let sample = points(rng, 0..200);
        let m = mbr(rng, 100.0, 20.0);
        let extent = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let parts: Vec<Box<dyn SpatialPartitioner>> = vec![
            Box::new(FixedGridPartitioner::new(extent, 4, 4)),
            Box::new(StrTilePartitioner::from_sample(extent, sample.clone(), 9)),
            Box::new(BspPartitioner::from_sample(extent, sample, 9)),
        ];
        for p in &parts {
            let cells = p.assign(&m);
            assert!(!cells.is_empty(), "assignment must be total");
            for &c in &cells {
                assert!((c as usize) < p.cells().len());
            }
        }
    });
}

#[test]
fn owner_is_deterministic_and_contained() {
    cases(0x1D05, N, |rng| {
        let sample = points(rng, 1..200);
        let p = Point::new(rng.f64_in(0.0..100.0), rng.f64_in(0.0..100.0));
        let extent = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let parts: Vec<Box<dyn SpatialPartitioner>> = vec![
            Box::new(FixedGridPartitioner::new(extent, 5, 5)),
            Box::new(StrTilePartitioner::from_sample(extent, sample.clone(), 8)),
            Box::new(BspPartitioner::from_sample(extent, sample, 8)),
        ];
        for part in &parts {
            let o1 = part.owner(&p);
            let o2 = part.owner(&p);
            assert_eq!(o1, o2);
            // Points inside the extent are owned by a containing cell.
            assert!(part.cells()[o1 as usize].contains_point(&p));
        }
    });
}

#[test]
fn partitioned_join_with_dedup_equals_direct_join() {
    cases(0x1D06, N, |rng| {
        let l = entries(rng, 0..60);
        let r = entries(rng, 0..60);
        let sample = points(rng, 0..100);
        // End-to-end exactly-once property: multi-assign both sides to
        // cells, join within each cell with dedup, compare with the direct
        // join of the full inputs.
        let extent = Mbr::new(0.0, 0.0, 110.0, 110.0);
        let partitioner = StrTilePartitioner::from_sample(extent, sample, 6);

        let mut by_cell_l: Vec<Vec<IndexEntry>> = vec![Vec::new(); partitioner.cells().len()];
        let mut by_cell_r: Vec<Vec<IndexEntry>> = vec![Vec::new(); partitioner.cells().len()];
        for e in &l {
            for c in partitioner.assign(&e.mbr) {
                by_cell_l[c as usize].push(*e);
            }
        }
        for e in &r {
            for c in partitioner.assign(&e.mbr) {
                by_cell_r[c as usize].push(*e);
            }
        }

        let mut result: Vec<(u64, u64)> = Vec::new();
        for cell in 0..partitioner.cells().len() {
            let local = plane_sweep(&by_cell_l[cell], &by_cell_r[cell]);
            for (a, b) in local.pairs {
                let am = l[a as usize].mbr;
                let bm = r[b as usize].mbr;
                if dedup_owner_cell(&partitioner, cell as u32, &am, &bm) {
                    result.push((a, b));
                }
            }
        }
        result.sort_unstable();

        let expected = brute_force(&l, &r).sorted_pairs();
        assert_eq!(result, expected);
    });
}
