//! # sjc-index — spatial indexes, partitioners and local-join algorithms
//!
//! The building blocks that the three evaluated systems assemble differently:
//!
//! * [`rtree`] — an STR bulk-loaded packed R-tree (what SpatialHadoop embeds
//!   in its HDFS block files and SpatialSpark broadcasts) plus a dynamic
//!   insertion mode with quadratic split (what HadoopGIS gets from
//!   libspatialindex);
//! * [`grid`] / [`quadtree`] — simpler index structures used for partitioning
//!   and as local-join alternatives;
//! * [`partition`] — spatial partitioners (fixed grid, STR tiles from a
//!   sample, BSP/k-d splits from a sample — the SATO family) with the
//!   multi-assignment + reference-point de-duplication machinery that
//!   partitioned spatial joins require;
//! * [`join`] — the three *local join* algorithms named in the paper:
//!   indexed nested loop (SpatialSpark), plane sweep and synchronized R-tree
//!   traversal (SpatialHadoop). All produce identical candidate pair sets,
//!   which the test suite cross-validates.

pub mod entry;
pub mod grid;
pub mod join;
pub mod partition;
pub mod quadtree;
pub mod rtree;

pub use entry::IndexEntry;
pub use rtree::RTree;
