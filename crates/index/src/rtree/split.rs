//! Dynamic insertion with Guttman's quadratic split.
//!
//! This is the construction mode of libspatialindex, the R-tree HadoopGIS
//! builds in every map task from the broadcast sample-partition file.

use sjc_geom::Mbr;

use super::{Node, NodeId, RTree, MAX_ENTRIES, MIN_ENTRIES};
use crate::entry::IndexEntry;

impl RTree {
    /// Creates an empty tree for one-at-a-time insertion.
    pub fn new_dynamic() -> RTree {
        RTree {
            nodes: vec![Node::Leaf { mbr: Mbr::empty(), entries: Vec::new() }],
            root: NodeId(0),
            len: 0,
        }
    }

    /// Inserts one entry (Guttman: choose-leaf by least enlargement,
    /// quadratic split on overflow, splits propagate to the root).
    pub fn insert(&mut self, entry: IndexEntry) {
        #[cfg(feature = "sanitize")]
        Self::sanitize_entry(&entry);
        self.len += 1;

        // Descend to a leaf, recording the path for upward adjustment.
        let mut path = Vec::new();
        let mut cur = self.root;
        loop {
            match self.node(cur) {
                Node::Leaf { .. } => break,
                Node::Inner { children, .. } => {
                    let chosen = children.iter().copied().min_by(|&a, &b| {
                        let ma = self.node(a).mbr();
                        let mb = self.node(b).mbr();
                        let ea = ma.enlargement(&entry.mbr);
                        let eb = mb.enlargement(&entry.mbr);
                        ea.total_cmp(&eb).then_with(|| ma.area().total_cmp(&mb.area()))
                    });
                    match chosen {
                        Some(c) => {
                            path.push(cur);
                            cur = c;
                        }
                        None => break, // empty inner nodes never occur
                    }
                }
            }
        }

        // Add the entry to the leaf (the descent above ends at one).
        if let Node::Leaf { mbr, entries } = self.node_mut(cur) {
            entries.push(entry);
            mbr.expand(&entry.mbr);
        }

        // Walk back up: split overflowing nodes, refresh ancestor MBRs.
        let mut maybe_split = self.split_if_overflowing(cur);
        for &parent in path.iter().rev() {
            if let Some(new_sibling) = maybe_split {
                // The recorded path contains only inner nodes.
                if let Node::Inner { children, .. } = self.node_mut(parent) {
                    children.push(new_sibling);
                }
            }
            self.refresh_mbr(parent);
            maybe_split = self.split_if_overflowing(parent);
        }

        // Root split: grow the tree by one level.
        if let Some(sibling) = maybe_split {
            let old_root = self.root;
            let mbr = self.node(old_root).mbr().union(&self.node(sibling).mbr());
            self.nodes.push(Node::Inner { mbr, children: vec![old_root, sibling] });
            self.root = NodeId(self.nodes.len() - 1);
        }
        // O(1) bounding invariant: the root must now cover the new entry.
        #[cfg(feature = "sanitize")]
        debug_assert!(
            self.mbr().contains(&entry.mbr),
            "sanitize: root MBR {:?} does not cover inserted entry {:?}",
            self.mbr(),
            entry.mbr
        );
    }

    fn refresh_mbr(&mut self, id: NodeId) {
        let new_mbr = match self.node(id) {
            Node::Leaf { entries, .. } => {
                let mut m = Mbr::empty();
                for e in entries {
                    m.expand(&e.mbr);
                }
                m
            }
            Node::Inner { children, .. } => {
                let mut m = Mbr::empty();
                for &c in children {
                    m.expand(&self.node(c).mbr());
                }
                m
            }
        };
        match self.node_mut(id) {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr = new_mbr,
        }
    }

    /// Splits `id` if it overflows; returns the id of the new sibling.
    fn split_if_overflowing(&mut self, id: NodeId) -> Option<NodeId> {
        if self.node(id).len() <= MAX_ENTRIES {
            return None;
        }
        match self.node(id).clone() {
            Node::Leaf { entries, .. } => {
                let (g1, g2) = quadratic_split(entries, |e| e.mbr);
                let m1 = mbr_union(g1.iter().map(|e| e.mbr));
                let m2 = mbr_union(g2.iter().map(|e| e.mbr));
                *self.node_mut(id) = Node::Leaf { mbr: m1, entries: g1 };
                self.nodes.push(Node::Leaf { mbr: m2, entries: g2 });
            }
            Node::Inner { children, .. } => {
                let with_mbrs: Vec<(NodeId, Mbr)> =
                    children.iter().map(|&c| (c, self.node(c).mbr())).collect();
                let (g1, g2) = quadratic_split(with_mbrs, |(_, m)| *m);
                let m1 = mbr_union(g1.iter().map(|(_, m)| *m));
                let m2 = mbr_union(g2.iter().map(|(_, m)| *m));
                *self.node_mut(id) =
                    Node::Inner { mbr: m1, children: g1.into_iter().map(|(c, _)| c).collect() };
                self.nodes.push(Node::Inner {
                    mbr: m2,
                    children: g2.into_iter().map(|(c, _)| c).collect(),
                });
            }
        }
        Some(NodeId(self.nodes.len() - 1))
    }
}

fn mbr_union(mbrs: impl Iterator<Item = Mbr>) -> Mbr {
    let mut m = Mbr::empty();
    for x in mbrs {
        m.expand(&x);
    }
    m
}

/// Guttman's quadratic split: pick the pair of seeds wasting the most area
/// if grouped together, then distribute remaining items by least
/// enlargement, honouring the minimum fill.
fn quadratic_split<T: Clone, F: Fn(&T) -> Mbr>(items: Vec<T>, mbr_of: F) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() > MAX_ENTRIES);

    // Seed selection.
    let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
    for (i, item_i) in items.iter().enumerate() {
        // `item_i`'s MBR is invariant across the inner scan — computed once
        // per outer iteration, not O(n) times.
        let mi = mbr_of(item_i);
        for (j, item_j) in items.iter().enumerate().skip(i + 1) {
            let mj = mbr_of(item_j);
            let waste = mi.union(&mj).area() - mi.area() - mj.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }

    // sjc-lint: allow(no-panic-in-lib) — s1 and s2 come from the enumerate loop above, so both index `items`
    let mut g1 = vec![items[s1].clone()];
    // sjc-lint: allow(no-panic-in-lib) — s2 < items.len() from the seed loop
    let mut g2 = vec![items[s2].clone()];
    // sjc-lint: allow(no-panic-in-lib) — s1 < items.len() from the seed loop
    let mut m1 = mbr_of(&items[s1]);
    // sjc-lint: allow(no-panic-in-lib) — s2 < items.len() from the seed loop
    let mut m2 = mbr_of(&items[s2]);

    let rest: Vec<T> = items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s1 && *i != s2)
        .map(|(_, t)| t)
        .collect();

    let total = rest.len() + 2;
    for (k, item) in rest.into_iter().enumerate() {
        let remaining = total - 2 - k;
        // Force assignment when a group must take all remaining items to
        // reach minimum fill.
        if g1.len() + remaining <= MIN_ENTRIES {
            m1.expand(&mbr_of(&item));
            g1.push(item);
            continue;
        }
        if g2.len() + remaining <= MIN_ENTRIES {
            m2.expand(&mbr_of(&item));
            g2.push(item);
            continue;
        }
        let m = mbr_of(&item);
        let (e1, e2) = (m1.enlargement(&m), m2.enlargement(&m));
        let to_first = e1 < e2 || (e1 == e2 && m1.area() <= m2.area());
        if to_first {
            m1.expand(&m);
            g1.push(item);
        } else {
            m2.expand(&m);
            g2.push(item);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_split_balances_minimum_fill() {
        let items: Vec<IndexEntry> = (0..(MAX_ENTRIES + 1))
            .map(|i| IndexEntry::new(i as u64, Mbr::new(i as f64, 0.0, i as f64 + 1.0, 1.0)))
            .collect();
        let (g1, g2) = quadratic_split(items, |e| e.mbr);
        assert_eq!(g1.len() + g2.len(), MAX_ENTRIES + 1);
        assert!(g1.len() >= MIN_ENTRIES.min(g1.len() + g2.len() - MIN_ENTRIES));
        assert!(!g1.is_empty() && !g2.is_empty());
    }

    #[test]
    fn split_separates_distant_clusters() {
        // Two far-apart clusters should end up in different groups.
        let mut items = Vec::new();
        for i in 0..MAX_ENTRIES.div_ceil(2) {
            items.push(IndexEntry::new(i as u64, Mbr::new(0.0, i as f64, 1.0, i as f64 + 1.0)));
        }
        for i in 0..((MAX_ENTRIES + 1).div_ceil(2)) {
            items.push(IndexEntry::new(
                100 + i as u64,
                Mbr::new(1000.0, i as f64, 1001.0, i as f64 + 1.0),
            ));
        }
        let (g1, g2) = quadratic_split(items, |e| e.mbr);
        let left_in_g1 = g1.iter().filter(|e| e.mbr.min_x < 500.0).count();
        let left_in_g2 = g2.iter().filter(|e| e.mbr.min_x < 500.0).count();
        // One group should be (almost) all-left, the other (almost) all-right.
        assert!(left_in_g1 == g1.len() || left_in_g2 == g2.len());
    }

    #[test]
    fn repeated_inserts_preserve_invariants_with_duplicates() {
        let mut t = RTree::new_dynamic();
        for i in 0..100 {
            // Many identical MBRs stress tie-breaking.
            t.insert(IndexEntry::new(i, Mbr::new(0.0, 0.0, 1.0, 1.0)));
        }
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
        assert_eq!(t.query(&Mbr::new(0.5, 0.5, 0.6, 0.6)).len(), 100);
    }
}
