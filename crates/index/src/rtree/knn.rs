//! k-nearest-neighbour queries (best-first MinDist traversal).
//!
//! Supports the paper's motivating "match pickup locations with the
//! *nearest* road segment" use-case: after a within-distance join, ties are
//! broken by actual distance — or the assignment is done directly as a kNN
//! probe against an R-tree of road MBRs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sjc_geom::Point;

use super::{Node, NodeId, RTree};

/// Heap entry ordered by ascending MinDist (min-heap via reversed Ord).
struct HeapItem {
    dist: f64,
    kind: ItemKind,
}

enum ItemKind {
    Node(NodeId),
    Entry(u64),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap.
        other.dist.total_cmp(&self.dist)
    }
}

impl RTree {
    /// Returns the ids of the `k` entries with smallest MBR distance to
    /// `q`, ascending. MBR distance equals exact distance for point data;
    /// for extended geometry it is the standard lower bound, so callers
    /// refine the short candidate list with exact geometry.
    pub fn nearest_neighbors(&self, q: &Point, k: usize) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(k);
        if k == 0 || self.is_empty() {
            return out;
        }
        let qm = q.mbr();
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            dist: self.node(self.root).mbr().min_distance(&qm),
            kind: ItemKind::Node(self.root),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                ItemKind::Entry(id) => {
                    out.push((id, item.dist));
                    if out.len() == k {
                        break;
                    }
                }
                ItemKind::Node(id) => match self.node(id) {
                    Node::Leaf { entries, .. } => {
                        for e in entries {
                            heap.push(HeapItem {
                                dist: e.mbr.min_distance(&qm),
                                kind: ItemKind::Entry(e.id),
                            });
                        }
                    }
                    Node::Inner { children, .. } => {
                        for &c in children {
                            heap.push(HeapItem {
                                dist: self.node(c).mbr().min_distance(&qm),
                                kind: ItemKind::Node(c),
                            });
                        }
                    }
                },
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::IndexEntry;
    use sjc_geom::Mbr;

    fn point_tree(n: usize) -> RTree {
        // Points on a 2-D grid with known distances.
        let entries: Vec<IndexEntry> = (0..n)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                IndexEntry::new(i as u64, Mbr::new(x, y, x, y))
            })
            .collect();
        RTree::bulk_load_str(entries)
    }

    #[test]
    fn nearest_is_exact_for_points() {
        let t = point_tree(400);
        let q = Point::new(5.2, 7.1);
        let nn = t.nearest_neighbors(&q, 1);
        assert_eq!(nn.len(), 1);
        // Grid point (5, 7) = id 7*20+5 = 145.
        assert_eq!(nn[0].0, 145);
        assert!((nn[0].1 - (0.04f64 + 0.01).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn knn_matches_brute_force() {
        let t = point_tree(400);
        let q = Point::new(9.4, 3.3);
        let k = 10;
        let got = t.nearest_neighbors(&q, k);
        let mut expected: Vec<(u64, f64)> = (0..400u64)
            .map(|i| {
                let p = Point::new((i % 20) as f64, (i / 20) as f64);
                (i, p.distance(&q))
            })
            .collect();
        expected.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        expected.truncate(k);
        let got_dists: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
        let exp_dists: Vec<f64> = expected.iter().map(|&(_, d)| d).collect();
        for (g, e) in got_dists.iter().zip(&exp_dists) {
            assert!((g - e).abs() < 1e-9, "{got_dists:?} vs {exp_dists:?}");
        }
    }

    #[test]
    fn results_ascend_by_distance() {
        let t = point_tree(400);
        let nn = t.nearest_neighbors(&Point::new(0.0, 0.0), 25);
        for w in nn.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn k_larger_than_tree_returns_everything() {
        let t = point_tree(5);
        let nn = t.nearest_neighbors(&Point::new(0.0, 0.0), 100);
        assert_eq!(nn.len(), 5);
    }

    #[test]
    fn degenerate_cases() {
        let t = point_tree(100);
        assert!(t.nearest_neighbors(&Point::new(0.0, 0.0), 0).is_empty());
        let empty = RTree::bulk_load_str(Vec::new());
        assert!(empty.nearest_neighbors(&Point::new(0.0, 0.0), 3).is_empty());
    }
}
