//! Hilbert-curve bulk loading — the classic alternative to STR packing.
//!
//! Sorting entries by the Hilbert value of their MBR center before packing
//! gives leaves with excellent locality; SpatialHadoop's later versions
//! offer exactly this index family. Provided as an alternative loader plus
//! the public [`hilbert_d`] encoding (also used by data-profiling tools for
//! locality measurements).

use sjc_geom::Mbr;

use super::{Node, NodeId, RTree, MAX_ENTRIES};
use crate::entry::IndexEntry;

/// Hilbert curve order used for sorting (2^16 cells per axis — ample for
/// partition-sized entry sets).
const ORDER: u32 = 16;

/// Maps integer grid coordinates `(x, y)` in `[0, 2^order)` to the distance
/// along the Hilbert curve of the given order.
pub fn hilbert_d(order: u32, mut x: u32, mut y: u32) -> u64 {
    let n = 1u32 << order;
    debug_assert!(x < n && y < n, "coordinates must fit the curve order");
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (n - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (n - 1);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

impl RTree {
    /// Bulk loads entries by Hilbert-sorting their MBR centers and packing
    /// consecutive runs into full leaves.
    pub fn bulk_load_hilbert(entries: Vec<IndexEntry>) -> RTree {
        let len = entries.len();
        if entries.is_empty() {
            return RTree::bulk_load_str(entries);
        }

        #[cfg(feature = "sanitize")]
        for e in &entries {
            Self::sanitize_entry(e);
        }

        // Normalize centers into the Hilbert grid.
        let mut domain = Mbr::empty();
        for e in &entries {
            domain.expand(&e.mbr);
        }
        let n = (1u32 << ORDER) as f64;
        let w = domain.width().max(f64::MIN_POSITIVE);
        let h = domain.height().max(f64::MIN_POSITIVE);
        // Keying (a Hilbert encode per entry) and the sort both run on the
        // sjc-par runtime; par_sort_by is stable like `sort_by_key`, so the
        // packed layout matches the serial build at every thread count.
        let mut keyed: Vec<(u64, IndexEntry)> = sjc_par::par_map(&entries, |e| {
            let c = e.mbr.center();
            let gx = (((c.x - domain.min_x) / w * (n - 1.0)) as u32).min((1 << ORDER) - 1);
            let gy = (((c.y - domain.min_y) / h * (n - 1.0)) as u32).min((1 << ORDER) - 1);
            (hilbert_d(ORDER, gx, gy), *e)
        });
        sjc_par::par_sort_by(&mut keyed, |a, b| a.0.cmp(&b.0));

        // Pack sorted runs into leaves, then build upper levels like STR.
        let mut nodes = Vec::new();
        let mut level: Vec<NodeId> = keyed
            .chunks(MAX_ENTRIES)
            .map(|chunk| {
                let mut mbr = Mbr::empty();
                let es: Vec<IndexEntry> = chunk
                    .iter()
                    .map(|&(_, e)| {
                        mbr.expand(&e.mbr);
                        e
                    })
                    .collect();
                nodes.push(Node::Leaf { mbr, entries: es });
                NodeId(nodes.len() - 1)
            })
            .collect();
        while level.len() > 1 {
            level = level
                .chunks(MAX_ENTRIES)
                .map(|chunk| {
                    let mut mbr = Mbr::empty();
                    let children: Vec<NodeId> = chunk
                        .iter()
                        .map(|&id| {
                            // sjc-lint: allow(no-panic-in-lib) — level ids were just pushed into `nodes` by this builder
                            mbr.expand(&nodes[id.0].mbr());
                            id
                        })
                        .collect(); // sjc-lint: allow(hot-alloc) — materializes the inner node's child list; the allocation is the tree being built, not a temp
                    nodes.push(Node::Inner { mbr, children });
                    NodeId(nodes.len() - 1)
                })
                .collect(); // sjc-lint: allow(hot-alloc) — materializes the next tree level; one Vec per level is the output structure
        }
        let tree = RTree { root: level.first().copied().unwrap_or(NodeId(0)), nodes, len };
        #[cfg(feature = "sanitize")]
        tree.sanitize_tree();
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_first_order_quadrants() {
        // Order-1 curve visits (0,0) (0,1) (1,1) (1,0).
        assert_eq!(hilbert_d(1, 0, 0), 0);
        assert_eq!(hilbert_d(1, 0, 1), 1);
        assert_eq!(hilbert_d(1, 1, 1), 2);
        assert_eq!(hilbert_d(1, 1, 0), 3);
    }

    #[test]
    fn hilbert_is_a_bijection_at_order_3() {
        let n = 1u32 << 3;
        let mut seen = vec![false; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_d(3, x, y) as usize;
                assert!(!seen[d], "duplicate distance {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_neighbors_are_adjacent_cells() {
        // Consecutive curve positions differ by exactly one grid step.
        let n = 1u32 << 4;
        let mut by_d: Vec<(u32, u32)> = vec![(0, 0); (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                by_d[hilbert_d(4, x, y) as usize] = (x, y);
            }
        }
        for w in by_d.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let step = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(step, 1, "curve jumped from {:?} to {:?}", w[0], w[1]);
        }
    }

    fn grid_entries(n: usize) -> Vec<IndexEntry> {
        (0..n)
            .map(|i| {
                let x = (i % 31) as f64 * 3.3;
                let y = (i / 31) as f64 * 2.7;
                IndexEntry::new(i as u64, Mbr::new(x, y, x + 1.0, y + 1.0))
            })
            .collect()
    }

    #[test]
    fn hilbert_tree_answers_like_str_tree() {
        let es = grid_entries(700);
        let hilbert = RTree::bulk_load_hilbert(es.clone());
        let str_tree = RTree::bulk_load_str(es);
        hilbert.check_invariants().unwrap();
        for window in [
            Mbr::new(0.0, 0.0, 10.0, 10.0),
            Mbr::new(30.0, 20.0, 60.0, 45.0),
            Mbr::new(-5.0, -5.0, 200.0, 200.0),
        ] {
            let mut a = hilbert.query(&window);
            let mut b = str_tree.query(&window);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn hilbert_leaves_are_full() {
        let es = grid_entries(512);
        let t = RTree::bulk_load_hilbert(es);
        assert_eq!(t.len(), 512);
        // 512 / 16 = 32 full leaves + 3 inner nodes (32 -> 2 -> 1).
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn empty_input() {
        let t = RTree::bulk_load_hilbert(Vec::new());
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }
}
