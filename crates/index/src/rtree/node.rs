//! R-tree node representation (flat arena).

use sjc_geom::Mbr;

use crate::entry::IndexEntry;

/// Index of a node in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

/// An R-tree node: a leaf holding entries, or an inner node holding children.
#[derive(Debug, Clone)]
pub enum Node {
    Leaf { mbr: Mbr, entries: Vec<IndexEntry> },
    Inner { mbr: Mbr, children: Vec<NodeId> },
}

impl Node {
    pub fn mbr(&self) -> Mbr {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Inner { children, .. } => children.len(),
        }
    }
}
