//! R-tree window and point queries.

use sjc_geom::{Mbr, Point};

use super::{Node, RTree};

impl RTree {
    /// Returns the ids of all entries whose MBR intersects `window`.
    pub fn query(&self, window: &Mbr) -> Vec<u64> {
        let mut out = Vec::new();
        self.query_into(window, &mut out);
        out
    }

    /// Window query into a reusable buffer (avoids per-probe allocation in
    /// the hot local-join loop).
    pub fn query_into(&self, window: &Mbr, out: &mut Vec<u64>) {
        out.clear();
        if window.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match self.node(id) {
                Node::Leaf { mbr, entries } => {
                    if mbr.intersects(window) {
                        for e in entries {
                            if e.mbr.intersects(window) {
                                out.push(e.id);
                            }
                        }
                    }
                }
                Node::Inner { mbr, children } => {
                    if mbr.intersects(window) {
                        stack.extend(children.iter().copied());
                    }
                }
            }
        }
    }

    /// Window query that also counts visited nodes — the per-probe traversal
    /// cost the simulator charges (HadoopGIS pays this per *record* against
    /// its sample R-tree; the paper calls this out as memory intensive).
    pub fn query_counting(&self, window: &Mbr, out: &mut Vec<u64>) -> usize {
        out.clear();
        let mut visited = 0usize;
        if window.is_empty() {
            return 0;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            visited += 1;
            match self.node(id) {
                Node::Leaf { mbr, entries } => {
                    if mbr.intersects(window) {
                        for e in entries {
                            if e.mbr.intersects(window) {
                                out.push(e.id);
                            }
                        }
                    }
                }
                Node::Inner { mbr, children } => {
                    if mbr.intersects(window) {
                        stack.extend(children.iter().copied());
                    }
                }
            }
        }
        visited
    }

    /// Ids of all entries whose MBR contains the point.
    pub fn query_point(&self, p: &Point) -> Vec<u64> {
        self.query(&p.mbr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::IndexEntry;

    fn tree() -> RTree {
        let entries: Vec<IndexEntry> = (0..400)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                IndexEntry::new(i as u64, Mbr::new(x, y, x + 0.9, y + 0.9))
            })
            .collect();
        RTree::bulk_load_str(entries)
    }

    fn brute_force(window: &Mbr) -> Vec<u64> {
        (0..400u64)
            .filter(|&i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                Mbr::new(x, y, x + 0.9, y + 0.9).intersects(window)
            })
            .collect()
    }

    #[test]
    fn query_matches_brute_force() {
        let t = tree();
        for window in [
            Mbr::new(0.0, 0.0, 1.0, 1.0),
            Mbr::new(5.5, 5.5, 9.2, 7.1),
            Mbr::new(-10.0, -10.0, -1.0, -1.0),
            Mbr::new(0.0, 0.0, 100.0, 100.0),
            Mbr::new(19.95, 19.95, 25.0, 25.0),
        ] {
            let mut got = t.query(&window);
            got.sort_unstable();
            let mut expected = brute_force(&window);
            expected.sort_unstable();
            assert_eq!(got, expected, "window {window:?}");
        }
    }

    #[test]
    fn empty_window_returns_nothing() {
        assert!(tree().query(&Mbr::empty()).is_empty());
    }

    #[test]
    fn counting_query_visits_fewer_nodes_for_small_windows() {
        let t = tree();
        let mut buf = Vec::new();
        let small = t.query_counting(&Mbr::new(0.0, 0.0, 1.0, 1.0), &mut buf);
        let large = t.query_counting(&Mbr::new(0.0, 0.0, 100.0, 100.0), &mut buf);
        assert!(small < large);
        assert!(large <= t.num_nodes());
    }

    #[test]
    fn query_into_reuses_buffer() {
        let t = tree();
        let mut buf = vec![999; 8];
        t.query_into(&Mbr::new(0.0, 0.0, 0.5, 0.5), &mut buf);
        assert!(!buf.contains(&999), "buffer must be cleared first");
    }
}
