//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! STR packs `n` rectangles into `ceil(n / M)` full leaves by sorting on the
//! x-center, slicing into `ceil(sqrt(n/M))` vertical strips, sorting each
//! strip on the y-center, and chunking. Upper levels are packed the same way
//! over child MBRs. The result is a near-100%-full tree — the layout
//! SpatialHadoop writes into its indexed HDFS blocks.

use sjc_geom::Mbr;

use super::{Node, NodeId, RTree, MAX_ENTRIES};
use crate::entry::IndexEntry;

impl RTree {
    /// Bulk loads entries with the STR algorithm.
    pub fn bulk_load_str(entries: Vec<IndexEntry>) -> RTree {
        let len = entries.len();
        let mut nodes = Vec::new();
        if entries.is_empty() {
            nodes.push(Node::Leaf { mbr: Mbr::empty(), entries: Vec::new() });
            return RTree { nodes, root: NodeId(0), len: 0 };
        }

        #[cfg(feature = "sanitize")]
        for e in &entries {
            Self::sanitize_entry(e);
        }

        // Level 0: pack the entries into leaves.
        let leaf_groups = str_pack(entries, MAX_ENTRIES, |e| e.mbr);
        let mut level: Vec<NodeId> = leaf_groups
            .into_iter()
            .map(|group| {
                let mut mbr = Mbr::empty();
                for e in &group {
                    mbr.expand(&e.mbr);
                }
                nodes.push(Node::Leaf { mbr, entries: group });
                NodeId(nodes.len() - 1)
            })
            .collect();

        // Upper levels: pack child node ids by their MBRs until one root
        // remains. Every buffer is pre-sized — the exact lengths are known
        // before each fill.
        while level.len() > 1 {
            let mut child_mbrs: Vec<(NodeId, Mbr)> = Vec::with_capacity(level.len());
            child_mbrs.extend(
                level
                    .iter()
                    // sjc-lint: allow(no-panic-in-lib) — level ids were just pushed into `nodes` by this builder
                    .map(|&id| (id, nodes[id.0].mbr())),
            );
            let groups = str_pack(child_mbrs, MAX_ENTRIES, |(_, m)| *m);
            let mut next: Vec<NodeId> = Vec::with_capacity(groups.len());
            next.extend(groups.into_iter().map(|group| {
                let mut mbr = Mbr::empty();
                let mut children: Vec<NodeId> = Vec::with_capacity(group.len());
                children.extend(group.into_iter().map(|(id, m)| {
                    mbr.expand(&m);
                    id
                }));
                nodes.push(Node::Inner { mbr, children });
                NodeId(nodes.len() - 1)
            }));
            level = next;
        }

        let tree = RTree { root: level.first().copied().unwrap_or(NodeId(0)), nodes, len };
        #[cfg(feature = "sanitize")]
        tree.sanitize_tree();
        tree
    }
}

/// Generic STR grouping: sorts by x-center, strips by y-center, chunks into
/// groups of at most `cap`.
///
/// Both sort phases run on the `sjc-par` runtime: the x-sort is a stable
/// parallel merge sort (same order as `sort_by`), and the per-strip y-sorts
/// run concurrently over disjoint sub-slices. Strip boundaries depend only
/// on `n` and `cap`, so the grouping is identical at every thread count.
fn str_pack<T, F>(mut items: Vec<T>, cap: usize, mbr_of: F) -> Vec<Vec<T>>
where
    T: Send + Sync,
    F: Fn(&T) -> Mbr + Sync,
{
    let n = items.len();
    if n <= cap {
        return vec![items];
    }
    let num_groups = n.div_ceil(cap);
    let num_strips = (num_groups as f64).sqrt().ceil() as usize;
    let strip_len = n.div_ceil(num_strips);

    sjc_par::par_sort_by(&mut items, |a, b| {
        let ca = mbr_of(a).center().x;
        let cb = mbr_of(b).center().x;
        ca.total_cmp(&cb)
    });
    sjc_par::par_chunks_mut(&mut items, strip_len, |_, strip| {
        strip.sort_by(|a, b| {
            let ca = mbr_of(a).center().y;
            let cb = mbr_of(b).center().y;
            ca.total_cmp(&cb)
        });
    });

    let mut groups = Vec::with_capacity(num_groups);
    let mut it = items.into_iter();
    let mut remaining = n;
    while remaining > 0 {
        let strip = strip_len.min(remaining);
        remaining -= strip;
        let mut left = strip;
        while left > 0 {
            let take = cap.min(left);
            left -= take;
            let mut group = Vec::with_capacity(take);
            group.extend(it.by_ref().take(take));
            groups.push(group);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_pack_groups_respect_cap() {
        let items: Vec<IndexEntry> = (0..137)
            .map(|i| {
                let x = (i % 12) as f64;
                let y = (i / 12) as f64;
                IndexEntry::new(i as u64, Mbr::new(x, y, x + 1.0, y + 1.0))
            })
            .collect();
        let groups = str_pack(items, MAX_ENTRIES, |e| e.mbr);
        assert!(groups.iter().all(|g| !g.is_empty() && g.len() <= MAX_ENTRIES));
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 137);
    }

    #[test]
    fn str_leaves_are_nearly_full() {
        let items: Vec<IndexEntry> = (0..160)
            .map(|i| IndexEntry::new(i as u64, Mbr::new(i as f64, 0.0, i as f64 + 1.0, 1.0)))
            .collect();
        let groups = str_pack(items, MAX_ENTRIES, |e| e.mbr);
        // 160 entries at cap 16: 4 strips of 40 → (16,16,8) each = 12 groups,
        // average fill >= 80% — STR's well-known near-full packing.
        assert!(groups.len() <= 12, "got {} groups", groups.len());
        let avg = 160.0 / groups.len() as f64 / MAX_ENTRIES as f64;
        assert!(avg >= 0.8, "average fill {avg}");
    }
}
