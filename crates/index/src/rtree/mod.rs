//! Packed R-tree with STR bulk loading and dynamic insertion.
//!
//! Two construction modes mirror the two libraries in the paper:
//!
//! * [`RTree::bulk_load_str`] — Sort-Tile-Recursive packing, the bulk loader
//!   SpatialHadoop uses when writing indexed HDFS blocks and SpatialSpark
//!   uses for its broadcast partition index;
//! * [`RTree::new_dynamic`] + [`RTree::insert`] — one-at-a-time insertion
//!   with quadratic split, approximating libspatialindex (HadoopGIS).
//!
//! Nodes live in a flat arena (`Vec<Node>`), children referenced by index —
//! cache-friendly and trivially serializable for the simulated block files.

mod hilbert;
mod knn;
mod node;
mod query;
mod split;
mod str_bulk;

pub use hilbert::hilbert_d;

pub use node::{Node, NodeId};

use sjc_geom::Mbr;

use crate::entry::IndexEntry;

/// Maximum entries per node (fan-out). 16 is a typical disk-page-free
/// in-memory choice; SpatialHadoop uses degree ~25 for 64MB blocks, but the
/// structure is insensitive to the exact constant.
pub const MAX_ENTRIES: usize = 16;
/// Minimum fill after a split (40% of max, the classic Guttman setting).
pub const MIN_ENTRIES: usize = 6;

/// A packed R-tree over `(id, mbr)` entries.
#[derive(Debug, Clone)]
pub struct RTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) len: usize,
}

impl RTree {
    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// MBR of the whole tree (empty MBR for an empty tree).
    pub fn mbr(&self) -> Mbr {
        self.node(self.root).mbr()
    }

    /// Height of the tree: 1 for a single leaf.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.node(self.root);
        while let Node::Inner { children, .. } = node {
            h += 1;
            match children.first() {
                Some(&c) => node = self.node(c),
                None => break, // empty inner nodes never occur (check_invariants)
            }
        }
        h
    }

    /// Total node count (diagnostics / cost accounting: one simulated page
    /// access per visited node).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The audited arena access: every `NodeId` is minted by the builders in
    /// this module and points into `self.nodes`, so the index cannot miss.
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        // sjc-lint: allow(no-panic-in-lib) — NodeIds are minted by this module and always index the arena
        &self.nodes[id.0]
    }

    /// Mutable counterpart of [`RTree::node`].
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        // sjc-lint: allow(no-panic-in-lib) — NodeIds are minted by this module and always index the arena
        &mut self.nodes[id.0]
    }

    /// Root node id — exposed for synchronized dual-tree traversal.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// Raw node access — exposed for synchronized dual-tree traversal.
    pub fn node_ref(&self, id: NodeId) -> &Node {
        self.node(id)
    }

    /// Validates structural invariants; used by tests.
    ///
    /// * every inner node's MBR equals the union of its children's MBRs;
    /// * every leaf's MBR equals the union of its entries' MBRs;
    /// * all leaves are at the same depth;
    /// * node occupancy is within `[1, MAX_ENTRIES]`.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.len == 0 {
            return Ok(());
        }
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, 0, &mut leaf_depths)?;
        let Some(&first) = leaf_depths.first() else {
            return Err("non-empty tree has no leaves".into());
        };
        if leaf_depths.iter().any(|&d| d != first) {
            return Err(format!("leaves at mixed depths: {leaf_depths:?}"));
        }
        Ok(())
    }

    fn check_node(
        &self,
        id: NodeId,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
    ) -> Result<(), String> {
        match self.node(id) {
            Node::Leaf { mbr, entries } => {
                if entries.is_empty() || entries.len() > MAX_ENTRIES {
                    return Err(format!("leaf occupancy {} out of range", entries.len()));
                }
                let mut union = Mbr::empty();
                for e in entries {
                    union.expand(&e.mbr);
                }
                if union != *mbr {
                    return Err("leaf MBR is not the union of entry MBRs".into());
                }
                leaf_depths.push(depth);
            }
            Node::Inner { mbr, children } => {
                if children.is_empty() || children.len() > MAX_ENTRIES {
                    return Err(format!("inner occupancy {} out of range", children.len()));
                }
                let mut union = Mbr::empty();
                for &c in children {
                    union.expand(&self.node(c).mbr());
                    self.check_node(c, depth + 1, leaf_depths)?;
                }
                if union != *mbr {
                    return Err("inner MBR is not the union of child MBRs".into());
                }
            }
        }
        Ok(())
    }

    /// Runtime invariant sanitizer (feature `sanitize`): entries handed to
    /// the builders must carry a real MBR — an inverted/empty box would be
    /// invisible to every query and silently drop join results.
    #[cfg(feature = "sanitize")]
    pub(crate) fn sanitize_entry(entry: &IndexEntry) {
        debug_assert!(
            !entry.mbr.is_empty(),
            "sanitize: R-tree entry {} has an inverted/empty MBR {:?}",
            entry.id,
            entry.mbr
        );
        entry.mbr.sanitize_check();
    }

    /// Runtime invariant sanitizer (feature `sanitize`): full structural
    /// check (node fill in `[1, MAX_ENTRIES]`, parent MBRs equal the union
    /// of their children, uniform leaf depth). O(n), so the builders call it
    /// once per bulk load, not per insert.
    #[cfg(feature = "sanitize")]
    pub(crate) fn sanitize_tree(&self) {
        if let Err(e) = self.check_invariants() {
            debug_assert!(false, "sanitize: R-tree invariants violated: {e}");
        }
    }

    /// All entries, in arbitrary order (test helper).
    pub fn entries(&self) -> Vec<IndexEntry> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match self.node(id) {
                Node::Leaf { entries, .. } => out.extend(entries.iter().copied()),
                Node::Inner { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::Point;

    fn grid_entries(n: usize) -> Vec<IndexEntry> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                IndexEntry::new(i as u64, Mbr::new(x, y, x + 0.5, y + 0.5))
            })
            .collect()
    }

    #[test]
    fn bulk_load_invariants_hold() {
        for n in [0, 1, 5, 16, 17, 100, 1000] {
            let t = RTree::bulk_load_str(grid_entries(n));
            assert_eq!(t.len(), n);
            t.check_invariants().unwrap_or_else(|e| panic!("n={n}: {e}"));
        }
    }

    #[test]
    fn dynamic_insert_invariants_hold() {
        let mut t = RTree::new_dynamic();
        for e in grid_entries(300) {
            t.insert(e);
        }
        assert_eq!(t.len(), 300);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_and_dynamic_answer_identically() {
        let entries = grid_entries(200);
        let bulk = RTree::bulk_load_str(entries.clone());
        let mut dynamic = RTree::new_dynamic();
        for e in entries {
            dynamic.insert(e);
        }
        let q = Mbr::new(2.3, 3.1, 6.7, 8.2);
        let mut a = bulk.query(&q);
        let mut b = dynamic.query(&q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = RTree::bulk_load_str(grid_entries(10));
        let large = RTree::bulk_load_str(grid_entries(1000));
        assert_eq!(small.height(), 1);
        assert!(large.height() >= 2);
        assert!(large.height() <= 4, "1000 entries at fanout 16 needs <= 4 levels");
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = RTree::bulk_load_str(Vec::new());
        assert!(t.is_empty());
        assert!(t.mbr().is_empty());
        assert!(t.query(&Mbr::new(0.0, 0.0, 1.0, 1.0)).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn query_point_matches_query_box() {
        let t = RTree::bulk_load_str(grid_entries(100));
        let p = Point::new(3.25, 4.25);
        let via_point = t.query_point(&p);
        let via_box = t.query(&p.mbr());
        assert_eq!(via_point, via_box);
        assert!(!via_point.is_empty());
    }

    #[test]
    fn entries_round_trip() {
        let input = grid_entries(77);
        let t = RTree::bulk_load_str(input.clone());
        let mut ids: Vec<u64> = t.entries().iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..77).collect::<Vec<u64>>());
    }
}
