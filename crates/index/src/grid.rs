//! Uniform grid index.
//!
//! A flat `nx × ny` bucket grid over a fixed extent. Objects are registered
//! in every cell their MBR touches; queries gather candidates from touched
//! cells and de-duplicate. Grids are what SpatialHadoop's original `GRID`
//! partitioning uses and serve as a cheap local-index alternative.

use sjc_geom::{Mbr, Point};

use crate::entry::IndexEntry;

/// A uniform grid over `extent` with `nx × ny` cells.
#[derive(Debug, Clone)]
pub struct GridIndex {
    extent: Mbr,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<IndexEntry>>,
    len: usize,
}

impl GridIndex {
    /// Creates an empty grid. `nx`/`ny` must be nonzero and the extent
    /// non-empty.
    pub fn new(extent: Mbr, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be nonzero");
        assert!(!extent.is_empty(), "grid extent must be non-empty");
        GridIndex { extent, nx, ny, cells: vec![Vec::new(); nx * ny], len: 0 }
    }

    /// Builds a grid sized so the average cell holds ~`target_per_cell`
    /// entries, then inserts them all.
    pub fn build(extent: Mbr, entries: &[IndexEntry], target_per_cell: usize) -> Self {
        let cells_wanted = (entries.len() / target_per_cell.max(1)).max(1);
        let side = (cells_wanted as f64).sqrt().ceil() as usize;
        let mut g = GridIndex::new(extent, side.max(1), side.max(1));
        for e in entries {
            g.insert(*e);
        }
        g
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Column range of cells touched by `[min_x, max_x]` (clamped).
    fn col_range(&self, min_x: f64, max_x: f64) -> std::ops::RangeInclusive<usize> {
        let w = self.extent.width() / self.nx as f64;
        let lo =
            (((min_x - self.extent.min_x) / w).floor() as isize).clamp(0, self.nx as isize - 1);
        let hi =
            (((max_x - self.extent.min_x) / w).floor() as isize).clamp(0, self.nx as isize - 1);
        (lo as usize)..=(hi as usize)
    }

    fn row_range(&self, min_y: f64, max_y: f64) -> std::ops::RangeInclusive<usize> {
        let h = self.extent.height() / self.ny as f64;
        let lo =
            (((min_y - self.extent.min_y) / h).floor() as isize).clamp(0, self.ny as isize - 1);
        let hi =
            (((max_y - self.extent.min_y) / h).floor() as isize).clamp(0, self.ny as isize - 1);
        (lo as usize)..=(hi as usize)
    }

    /// Inserts an entry into every cell its MBR touches.
    pub fn insert(&mut self, e: IndexEntry) {
        debug_assert!(!e.mbr.is_empty());
        self.len += 1;
        for r in self.row_range(e.mbr.min_y, e.mbr.max_y) {
            for c in self.col_range(e.mbr.min_x, e.mbr.max_x) {
                // sjc-lint: allow(no-panic-in-lib) — row/col ranges are clamped to the nx×ny cell grid
                self.cells[r * self.nx + c].push(e);
            }
        }
    }

    /// Ids of entries whose MBR intersects `window` (deduplicated, sorted).
    pub fn query(&self, window: &Mbr) -> Vec<u64> {
        if window.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for r in self.row_range(window.min_y, window.max_y) {
            for c in self.col_range(window.min_x, window.max_x) {
                // sjc-lint: allow(no-panic-in-lib) — row/col ranges are clamped to the nx×ny cell grid
                for e in &self.cells[r * self.nx + c] {
                    if e.mbr.intersects(window) {
                        out.push(e.id);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ids of entries whose MBR contains `p`.
    pub fn query_point(&self, p: &Point) -> Vec<u64> {
        self.query(&p.mbr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<IndexEntry> {
        (0..100)
            .map(|i| {
                let x = (i % 10) as f64;
                let y = (i / 10) as f64;
                IndexEntry::new(i as u64, Mbr::new(x, y, x + 0.8, y + 0.8))
            })
            .collect()
    }

    #[test]
    fn query_matches_brute_force() {
        let es = entries();
        let g = GridIndex::build(Mbr::new(0.0, 0.0, 10.0, 10.0), &es, 4);
        for window in [
            Mbr::new(0.0, 0.0, 2.0, 2.0),
            Mbr::new(4.4, 3.3, 6.6, 9.9),
            Mbr::new(-5.0, -5.0, -1.0, -1.0),
            Mbr::new(0.0, 0.0, 20.0, 20.0),
        ] {
            let got = g.query(&window);
            let mut expected: Vec<u64> =
                es.iter().filter(|e| e.mbr.intersects(&window)).map(|e| e.id).collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "window {window:?}");
        }
    }

    #[test]
    fn spanning_object_found_from_any_cell() {
        let mut g = GridIndex::new(Mbr::new(0.0, 0.0, 10.0, 10.0), 5, 5);
        g.insert(IndexEntry::new(1, Mbr::new(1.0, 1.0, 9.0, 1.5))); // spans many columns
        assert_eq!(g.query(&Mbr::new(8.0, 0.9, 8.5, 1.2)), vec![1]);
        assert_eq!(g.query(&Mbr::new(1.0, 0.9, 1.5, 1.2)), vec![1]);
        // Deduplicated despite living in several cells.
        assert_eq!(g.query(&Mbr::new(0.0, 0.0, 10.0, 10.0)), vec![1]);
    }

    #[test]
    fn objects_outside_extent_are_clamped_not_lost() {
        let mut g = GridIndex::new(Mbr::new(0.0, 0.0, 10.0, 10.0), 4, 4);
        g.insert(IndexEntry::new(42, Mbr::new(11.0, 11.0, 12.0, 12.0)));
        assert_eq!(g.query(&Mbr::new(9.0, 9.0, 20.0, 20.0)), vec![42]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        let _ = GridIndex::new(Mbr::new(0.0, 0.0, 1.0, 1.0), 0, 3);
    }
}
