//! Local (per-partition) spatial join algorithms — the *filter* step.
//!
//! Inside one partition pair every system runs a serial MBR join to produce
//! candidate pairs, followed by geometric refinement. The paper names three
//! filter algorithms, all implemented here over `(id, mbr)` entries:
//!
//! * [`indexed_nested_loop`] — build an R-tree on one side, probe with the
//!   other (SpatialSpark's choice, natural in a functional language);
//! * [`plane_sweep`] — sort both sides by `min_x` and sweep
//!   (SpatialHadoop's default);
//! * [`sync_rtree`] — synchronized traversal of two R-trees
//!   (SpatialHadoop's alternative) .
//!
//! On top of the paper's algorithms, [`stripe_sweep`] is the repo's own
//! cache-conscious kernel: a struct-of-arrays ([`SoaBatch`]) forward sweep
//! over skew-aware y-stripes with reference-point de-duplication. It
//! returns the sweep's exact pair set *and* the sweep's exact [`JoinStats`]
//! (canonical-cost accounting), so it serves as the default host kernel
//! without moving simulated time.
//!
//! All kernels return identical pair sets; tests cross-validate them
//! against [`brute_force`]. Each also reports [`JoinStats`] so the cluster
//! simulator can charge index traversal and comparison costs.

mod indexed_nested_loop;
mod knn_join;
mod plane_sweep;
mod soa;
mod stripe_sweep;
mod sync_rtree;

pub use indexed_nested_loop::indexed_nested_loop;
pub use knn_join::knn_join;
pub use plane_sweep::plane_sweep;
pub use soa::SoaBatch;
pub use stripe_sweep::stripe_sweep;
pub use sync_rtree::sync_rtree;

use crate::entry::IndexEntry;

/// Work counters for cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// MBR–MBR comparisons performed.
    pub filter_tests: u64,
    /// Index nodes visited (0 for plane sweep).
    pub index_nodes_visited: u64,
}

impl JoinStats {
    pub fn merged(self, other: JoinStats) -> JoinStats {
        JoinStats {
            filter_tests: self.filter_tests + other.filter_tests,
            index_nodes_visited: self.index_nodes_visited + other.index_nodes_visited,
        }
    }
}

/// Result of a local MBR join: candidate `(left_id, right_id)` pairs plus
/// work counters.
#[derive(Debug, Clone, Default)]
pub struct CandidatePairs {
    pub pairs: Vec<(u64, u64)>,
    pub stats: JoinStats,
}

impl CandidatePairs {
    /// Pairs sorted for set comparison in tests.
    pub fn sorted_pairs(mut self) -> Vec<(u64, u64)> {
        self.pairs.sort_unstable();
        self.pairs
    }
}

/// Quadratic reference implementation (tests and tiny partitions).
pub fn brute_force(left: &[IndexEntry], right: &[IndexEntry]) -> CandidatePairs {
    let mut pairs = Vec::new();
    for a in left {
        for b in right {
            if a.mbr.intersects(&b.mbr) {
                pairs.push((a.id, b.id));
            }
        }
    }
    CandidatePairs {
        pairs,
        stats: JoinStats {
            filter_tests: (left.len() * right.len()) as u64,
            index_nodes_visited: 0,
        },
    }
}

#[cfg(test)]
pub(crate) mod testgen {
    use super::*;
    use sjc_geom::Mbr;

    /// Deterministic pseudo-random rectangles (LCG — no rand dependency in
    /// the hot path of unit tests).
    pub fn random_entries(seed: u64, n: usize, extent: f64, max_side: f64) -> Vec<IndexEntry> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                let x = next() * extent;
                let y = next() * extent;
                let w = next() * max_side;
                let h = next() * max_side;
                IndexEntry::new(i as u64, Mbr::new(x, y, x + w, y + h))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testgen::random_entries;
    use super::*;

    #[test]
    fn all_algorithms_agree_with_brute_force() {
        for seed in [1, 7, 42] {
            let left = random_entries(seed, 120, 100.0, 8.0);
            let right = random_entries(seed + 1000, 90, 100.0, 8.0);
            let expected = brute_force(&left, &right).sorted_pairs();
            assert_eq!(
                indexed_nested_loop(&left, &right).sorted_pairs(),
                expected,
                "INL seed {seed}"
            );
            assert_eq!(plane_sweep(&left, &right).sorted_pairs(), expected, "sweep seed {seed}");
            assert_eq!(sync_rtree(&left, &right).sorted_pairs(), expected, "sync seed {seed}");
            assert_eq!(stripe_sweep(&left, &right).sorted_pairs(), expected, "stripe seed {seed}");
        }
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        let some = random_entries(3, 10, 10.0, 2.0);
        for (l, r) in [(&some[..], &[][..]), (&[][..], &some[..]), (&[][..], &[][..])] {
            assert!(indexed_nested_loop(l, r).pairs.is_empty());
            assert!(plane_sweep(l, r).pairs.is_empty());
            assert!(sync_rtree(l, r).pairs.is_empty());
            assert!(stripe_sweep(l, r).pairs.is_empty());
        }
    }

    #[test]
    fn stats_are_populated() {
        let left = random_entries(5, 60, 50.0, 5.0);
        let right = random_entries(6, 60, 50.0, 5.0);
        let inl = indexed_nested_loop(&left, &right);
        assert!(inl.stats.index_nodes_visited > 0);
        let sweep = plane_sweep(&left, &right);
        assert!(sweep.stats.filter_tests > 0);
        assert_eq!(sweep.stats.index_nodes_visited, 0);
    }

    #[test]
    fn plane_sweep_beats_brute_force_on_sparse_data() {
        // Sparse small rectangles: sweep should do far fewer comparisons.
        let left = random_entries(11, 500, 10_000.0, 1.0);
        let right = random_entries(12, 500, 10_000.0, 1.0);
        let bf = brute_force(&left, &right);
        let sweep = plane_sweep(&left, &right);
        assert_eq!(sweep.clone().sorted_pairs(), bf.clone().sorted_pairs());
        assert!(
            sweep.stats.filter_tests * 10 < bf.stats.filter_tests,
            "sweep {} vs brute {}",
            sweep.stats.filter_tests,
            bf.stats.filter_tests
        );
    }
}
