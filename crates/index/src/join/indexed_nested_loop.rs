//! Indexed nested-loop MBR join.

use super::{CandidatePairs, JoinStats};
use crate::entry::IndexEntry;
use crate::rtree::RTree;

/// Builds an STR R-tree on the *smaller* side and probes it with every
/// entry of the other side.
///
/// This is SpatialSpark's local join: "it is natural to use indexed nested
/// loop join in SpatialSpark, due to the underlying Scala functional
/// language" (§II.C). Building on the smaller side minimizes build cost and
/// tree height; probing preserves the (left, right) pair orientation either
/// way.
pub fn indexed_nested_loop(left: &[IndexEntry], right: &[IndexEntry]) -> CandidatePairs {
    if left.is_empty() || right.is_empty() {
        return CandidatePairs::default();
    }
    let build_right = right.len() <= left.len();
    let (build, probe) = if build_right { (right, left) } else { (left, right) };

    let tree = RTree::bulk_load_str(build.to_vec());
    let mut pairs = Vec::new();
    let mut stats = JoinStats::default();
    let mut hits = Vec::new();
    for p in probe {
        let visited = tree.query_counting(&p.mbr, &mut hits);
        stats.index_nodes_visited += visited as u64;
        // Every visited leaf entry comparison counts as a filter test; the
        // traversal itself compared one MBR per visited node.
        stats.filter_tests += visited as u64;
        for &hit in &hits {
            if build_right {
                pairs.push((p.id, hit));
            } else {
                pairs.push((hit, p.id));
            }
        }
    }
    CandidatePairs { pairs, stats }
}
