//! k-nearest-neighbour join: each left entry is paired with its `k`
//! nearest right entries (by MBR distance).
//!
//! The filter-stage counterpart of the paper's motivating
//! point-to-nearest-road matching: downstream code refines the short
//! candidate lists with exact geometric distance.

use super::CandidatePairs;
use crate::entry::IndexEntry;
use crate::rtree::RTree;

/// For every left entry, emits `(left_id, right_id)` for its `k`
/// MBR-nearest right entries (fewer when the right side is small).
pub fn knn_join(left: &[IndexEntry], right: &[IndexEntry], k: usize) -> CandidatePairs {
    if left.is_empty() || right.is_empty() || k == 0 {
        return CandidatePairs::default();
    }
    let tree = RTree::bulk_load_str(right.to_vec());
    let mut out = CandidatePairs::default();
    for l in left {
        let center = l.mbr.center();
        let nn = tree.nearest_neighbors(&center, k);
        // Charge roughly one traversal per neighbour found plus the heap work.
        out.stats.index_nodes_visited += (nn.len().max(1) * tree.height()) as u64;
        out.stats.filter_tests += nn.len() as u64;
        for (rid, _) in nn {
            out.pairs.push((l.id, rid));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::Mbr;

    fn grid_points(n: usize, stride: f64) -> Vec<IndexEntry> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f64 * stride;
                let y = (i / 10) as f64 * stride;
                IndexEntry::new(i as u64, Mbr::new(x, y, x, y))
            })
            .collect()
    }

    #[test]
    fn every_left_gets_k_pairs() {
        let left = grid_points(20, 5.0);
        let right = grid_points(100, 3.0);
        let k = 4;
        let out = knn_join(&left, &right, k);
        assert_eq!(out.pairs.len(), left.len() * k);
        for l in &left {
            assert_eq!(out.pairs.iter().filter(|&&(a, _)| a == l.id).count(), k);
        }
    }

    #[test]
    fn matches_brute_force_nearest() {
        let left = grid_points(15, 7.0);
        let right = grid_points(60, 4.0);
        let out = knn_join(&left, &right, 1);
        for &(lid, rid) in &out.pairs {
            let lc = left[lid as usize].mbr.center();
            let got = right[rid as usize].mbr.center().distance(&lc);
            let best =
                right.iter().map(|r| r.mbr.center().distance(&lc)).fold(f64::INFINITY, f64::min);
            assert!((got - best).abs() < 1e-9, "left {lid}: got {got}, best {best}");
        }
    }

    #[test]
    fn k_exceeding_right_size_returns_all() {
        let left = grid_points(3, 1.0);
        let right = grid_points(5, 1.0);
        let out = knn_join(&left, &right, 100);
        assert_eq!(out.pairs.len(), 3 * 5);
    }

    #[test]
    fn empty_and_zero_k() {
        let some = grid_points(5, 1.0);
        assert!(knn_join(&[], &some, 3).pairs.is_empty());
        assert!(knn_join(&some, &[], 3).pairs.is_empty());
        assert!(knn_join(&some, &some, 0).pairs.is_empty());
    }
}
