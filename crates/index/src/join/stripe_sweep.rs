//! Cache-conscious striped forward plane-sweep — the default local-join
//! kernel.
//!
//! The classic forward sweep ([`super::plane_sweep`]) scans, for every
//! anchor rectangle, *all* rectangles of the other input whose x-interval
//! overlaps the anchor's — and rejects most of them on the y-test. On
//! realistic partitions (many small rectangles spread over a wide domain)
//! the failing y-tests dominate the filter. Tsitsigkos et al., *Parallel
//! In-Memory Evaluation of Spatial Joins* (arXiv:1908.11740), fix this with
//! 1D **mini-partitioning**: split the domain into horizontal y-stripes,
//! replicate every rectangle into each stripe it crosses, and sweep each
//! stripe pair independently — a candidate now overlaps the anchor's
//! y-stripe by construction, so almost every test it runs is a hit.
//!
//! This implementation adds three things on top of the textbook algorithm:
//!
//! * **SoA layout** ([`SoaBatch`]): each stripe is five contiguous column
//!   arrays instead of 40-byte records, so the sweep streams exactly the
//!   columns it touches and the prefetcher sees sequential reads;
//! * **skew-aware stripe sizing**: stripe cuts are equi-depth quantiles of
//!   a SplitMix64-sampled `ylo` histogram (Aji et al., arXiv:1509.00910
//!   motivate sampling-based partition sizing), so skewed inputs still get
//!   balanced stripes — deterministically, from a fixed seed;
//! * **reference-point de-duplication**: a pair overlapping several stripes
//!   is reported only by the stripe containing `max(ylo_a, ylo_b)` (the
//!   y-coordinate of the pair's reference point), so every pair appears
//!   exactly once without a sort/dedup pass.
//!
//! Stripe pairs run through [`sjc_par::par_map_flat`], whose stable
//! chunk-ordered merge makes pair order — and therefore the whole
//! [`CandidatePairs`] — bit-identical at every thread budget.
//!
//! # Cost accounting
//!
//! The reported [`JoinStats::filter_tests`] is **not** the number of
//! comparisons this kernel happens to execute: it is the exact comparison
//! count of the canonical serial forward sweep over the same inputs,
//! computed in `O((n+m) log(n+m))` by binary searches over the sorted
//! `xlo` columns (see [`canonical_sweep_tests`]). The simulation models the
//! paper's systems, whose local joins run the classic sweep on 2015
//! hardware; which host kernel computes the (identical) pair set must never
//! move simulated time. `tests` pin
//! `stripe_sweep(..).stats == plane_sweep(..).stats` on random inputs.

use super::soa::SoaBatch;
use super::{CandidatePairs, JoinStats};
use crate::entry::IndexEntry;

/// Target rectangles per stripe (both inputs combined, before replication):
/// small enough that a stripe pair's working set lives in L1/L2, large
/// enough that stripe bookkeeping stays negligible.
const STRIPE_TARGET: usize = 512;

/// Upper bound on the stripe count — beyond this, replication overhead and
/// per-stripe fixed costs outgrow the filtering win.
const MAX_STRIPES: usize = 512;

/// Histogram sample size for the equi-depth stripe cuts.
const HIST_SAMPLE: usize = 2048;

/// Fixed SplitMix64 seed for the cut histogram: the kernel is a pure
/// function of its inputs, so the sample must be too.
const STRIPE_SEED: u64 = 0x5354_5249_5045;

/// SplitMix64 step (same algorithm as `sjc_data::rng::StdRng`): the state
/// advances by the golden-ratio increment, the output is the mixed state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Sorts both inputs into x-sorted SoA batches, mini-partitions them into
/// skew-aware y-stripes, and forward-sweeps each stripe pair. Returns the
/// exact pair set of [`super::plane_sweep`] with the exact same
/// [`JoinStats`] (canonical-sweep accounting) in a kernel-specific but
/// thread-count-independent pair order.
pub fn stripe_sweep(left: &[IndexEntry], right: &[IndexEntry]) -> CandidatePairs {
    if left.is_empty() || right.is_empty() {
        return CandidatePairs::default();
    }
    let l = SoaBatch::from_entries(left);
    let r = SoaBatch::from_entries(right);
    let stats = JoinStats { filter_tests: canonical_sweep_tests(&l, &r), index_nodes_visited: 0 };

    let total = l.len() + r.len();
    let stripes = (total / STRIPE_TARGET).clamp(1, MAX_STRIPES);
    let pairs = striped_pairs(&l, &r, stripes);
    CandidatePairs { pairs, stats }
}

/// One stripe pair plus its y-extent, ready to sweep independently.
struct StripeTask {
    l: SoaBatch,
    r: SoaBatch,
    /// The stripe owns reference points with `lo <= ref_y < hi`; the last
    /// stripe also owns `ref_y == +inf` (see `sweep_stripe`).
    lo: f64,
    hi: f64,
    last: bool,
}

/// The striping + sweeping core with an explicit stripe-count target, so
/// tests can force heavy replication on tiny inputs.
// The closure below is "redundant", but the hot-path analyzer roots its
// hot set at callees *named inside* `sjc_par` closures — a bare fn-item
// argument would drop `sweep_stripe` out of hot-alloc coverage.
#[allow(clippy::redundant_closure)]
pub(crate) fn striped_pairs(l: &SoaBatch, r: &SoaBatch, stripes: usize) -> Vec<(u64, u64)> {
    let cuts = stripe_cuts(l, r, stripes);
    let count = cuts.len() + 1;
    let lows = std::iter::once(f64::NEG_INFINITY).chain(cuts.iter().copied());
    let highs = cuts.iter().copied().chain(std::iter::once(f64::INFINITY));
    let tasks: Vec<StripeTask> = build_stripes(l, &cuts)
        .into_iter()
        .zip(build_stripes(r, &cuts))
        .zip(lows)
        .zip(highs)
        .enumerate()
        .map(|(idx, (((lseg, rseg), lo), hi))| StripeTask {
            l: lseg,
            r: rseg,
            lo,
            hi,
            last: idx + 1 == count,
        })
        .collect();
    // Skew-aware dispatch: equi-depth cuts balance stripe *populations*, but
    // tall replicated rectangles can still concentrate work in a few stripes.
    // LPT ordering by population keeps one fat stripe off the critical tail;
    // the pair output is bit-identical to unweighted dispatch by contract.
    sjc_par::par_map_flat_weighted(
        &tasks,
        |t| (t.l.len() + t.r.len()) as u64,
        |t, out| sweep_stripe(t, out),
    )
}

/// Exact comparison count of the canonical serial forward sweep.
///
/// The serial sweep (`plane_sweep`'s ground truth) merges both x-sorted
/// lists, anchoring the smaller `xlo` (left wins ties), and scans the other
/// list forward while `xlo <= anchor.xhi`, counting one test per scanned
/// candidate. Replaying that merge is `O(n·scan)`; counting it needs only
/// order statistics on the sorted `xlo` columns:
///
/// * a left anchor `a` is processed iff some right `xlo >= a.xlo` remains
///   (the sweep stops when either list is exhausted), and its scan starts
///   at the first right entry with `xlo >= a.xlo` (ties unconsumed — left
///   wins) and covers every right `xlo <= a.xhi`;
/// * a right anchor `b` is processed iff some left `xlo > b.xlo` remains,
///   and its scan covers every left entry with `b.xlo < xlo <= b.xhi`
///   (left entries tying `b.xlo` were consumed before `b` anchored).
///
/// `saturating_sub` guards the inverted-bounds empty-MBR encoding
/// (`xlo > xhi`), for which the sweep's scan breaks immediately.
fn canonical_sweep_tests(l: &SoaBatch, r: &SoaBatch) -> u64 {
    let (Some(&l_last), Some(&r_last)) = (l.xlo.last(), r.xlo.last()) else {
        return 0;
    };
    let mut tests = 0u64;
    // The scan-start bound is monotone in the anchor's ascending `xlo`, so a
    // forward pointer replaces one of the two binary searches per anchor;
    // only the `xhi` upper bound (unsorted) still needs `partition_point`.
    let mut start = 0usize;
    for (&xlo, &xhi) in l.xlo.iter().zip(&l.xhi) {
        if xlo <= r_last {
            while r.xlo.get(start).is_some_and(|&x| x < xlo) {
                start += 1;
            }
            tests += cnt_le(&r.xlo, xhi).saturating_sub(start) as u64;
        }
    }
    let mut start = 0usize;
    for (&xlo, &xhi) in r.xlo.iter().zip(&r.xhi) {
        if xlo < l_last {
            while l.xlo.get(start).is_some_and(|&x| x <= xlo) {
                start += 1;
            }
            tests += cnt_le(&l.xlo, xhi).saturating_sub(start) as u64;
        }
    }
    tests
}

/// Entries of an ascending column numerically `<= v`.
fn cnt_le(xs: &[f64], v: f64) -> usize {
    xs.partition_point(|&x| x <= v)
}

/// Interior stripe cuts: strictly increasing finite y values splitting the
/// domain into `cuts.len() + 1` stripes. Equi-depth quantiles of a seeded
/// `ylo` sample over both inputs, so stripe populations stay balanced under
/// skew; duplicate quantiles (heavy value repetition) collapse, yielding
/// fewer, still-correct stripes.
fn stripe_cuts(l: &SoaBatch, r: &SoaBatch, stripes: usize) -> Vec<f64> {
    let mut cuts = Vec::new();
    let total = l.len() + r.len();
    if stripes <= 1 || total == 0 {
        return cuts;
    }
    let mut sample: Vec<f64> = Vec::with_capacity(HIST_SAMPLE);
    let mut state = STRIPE_SEED;
    for _ in 0..HIST_SAMPLE {
        let idx = (splitmix64(&mut state) % total as u64) as usize;
        // `idx - l.len()` only evaluates when the left lookup missed, i.e.
        // `idx >= l.len()`; the +inf fallback (empty-MBR ylo) is dropped by
        // the finite filter below, like any empty-MBR draw.
        let y =
            l.ylo.get(idx).or_else(|| r.ylo.get(idx - l.len())).copied().unwrap_or(f64::INFINITY);
        if y.is_finite() {
            sample.push(y);
        }
    }
    sample.sort_by(|a, b| a.total_cmp(b));
    let mut prev = f64::NEG_INFINITY;
    for s in 1..stripes {
        if let Some(&cut) = sample.get(s * sample.len() / stripes) {
            if cut > prev {
                cuts.push(cut);
                prev = cut;
            }
        }
    }
    cuts
}

/// Mini-partitions one x-sorted batch into per-stripe SoA segments. A
/// rectangle is replicated into every stripe its y-interval crosses
/// (stripe `s` spans `[cut[s-1], cut[s])` with ±inf sentinels at the ends);
/// the scatter walks the batch in x order, so each segment stays x-sorted.
/// Inverted empty-MBR bounds give an empty stripe span — replicated
/// nowhere, which is correct: empty intersects nothing.
fn build_stripes(b: &SoaBatch, cuts: &[f64]) -> Vec<SoaBatch> {
    let stripes = cuts.len() + 1;
    // Pass 1: each rectangle's stripe span (first..=last crossed) and the
    // per-stripe populations, so segment columns allocate exactly once. The
    // staging vectors come from the scratch arena: a local join runs this
    // once per cell per side, and the spans/counts of the previous cell have
    // exactly the capacity the next one needs.
    let mut span: Vec<(u32, u32)> = sjc_par::scratch::take_vec();
    let mut counts: Vec<usize> = sjc_par::scratch::take_vec();
    counts.resize(stripes, 0);
    for (&ylo, &yhi) in b.ylo.iter().zip(&b.yhi) {
        let s0 = cuts.partition_point(|&c| c <= ylo);
        let s1 = cuts.partition_point(|&c| c <= yhi);
        span.push((s0 as u32, s1 as u32));
        for c in counts.iter_mut().take(s1 + 1).skip(s0) {
            *c += 1;
        }
    }
    let mut out: Vec<SoaBatch> = counts.iter().map(|&n| SoaBatch::with_capacity(n)).collect();
    // Pass 2: scatter each row into its stripes' column vectors.
    for (((((&(s0, s1), &xlo), &xhi), &ylo), &yhi), &id) in
        span.iter().zip(&b.xlo).zip(&b.xhi).zip(&b.ylo).zip(&b.yhi).zip(&b.id)
    {
        for seg in out.iter_mut().take(s1 as usize + 1).skip(s0 as usize) {
            seg.xlo.push(xlo);
            seg.xhi.push(xhi);
            seg.ylo.push(ylo);
            seg.yhi.push(yhi);
            seg.id.push(id);
        }
    }
    sjc_par::scratch::put_vec(span);
    sjc_par::scratch::put_vec(counts);
    out
}

/// Forward sweep of one stripe pair. Reports `(left_id, right_id)` for
/// every intersecting pair whose reference y (`max(ylo_a, ylo_b)`) lies in
/// this stripe — the de-duplication rule that makes replication exact.
fn sweep_stripe(t: &StripeTask, out: &mut Vec<(u64, u64)>) {
    let (l, r) = (&t.l, &t.r);
    let (mut i, mut j) = (0usize, 0usize);
    while let (Some(&alo), Some(&blo)) = (l.xlo.get(i), r.xlo.get(j)) {
        if alo <= blo {
            // Left anchor: scan right candidates with xlo in [a.xlo, a.xhi].
            if let (Some(&axhi), Some(&aylo), Some(&ayhi), Some(&aid)) =
                (l.xhi.get(i), l.ylo.get(i), l.yhi.get(i), l.id.get(i))
            {
                let mut k = j;
                while let Some(&bxlo) = r.xlo.get(k) {
                    if bxlo > axhi {
                        break;
                    }
                    if let (Some(&bylo), Some(&byhi), Some(&bid)) =
                        (r.ylo.get(k), r.yhi.get(k), r.id.get(k))
                    {
                        if bylo <= ayhi && aylo <= byhi {
                            let ref_y = if aylo >= bylo { aylo } else { bylo };
                            if ref_y >= t.lo && (ref_y < t.hi || t.last) {
                                out.push((aid, bid));
                            }
                        }
                    }
                    k += 1;
                }
            }
            i += 1;
        } else {
            // Right anchor: scan left candidates with xlo in (b.xlo, b.xhi].
            if let (Some(&bxhi), Some(&bylo), Some(&byhi), Some(&bid)) =
                (r.xhi.get(j), r.ylo.get(j), r.yhi.get(j), r.id.get(j))
            {
                let mut k = i;
                while let Some(&axlo) = l.xlo.get(k) {
                    if axlo > bxhi {
                        break;
                    }
                    if let (Some(&aylo), Some(&ayhi), Some(&aid)) =
                        (l.ylo.get(k), l.yhi.get(k), l.id.get(k))
                    {
                        if aylo <= byhi && bylo <= ayhi {
                            let ref_y = if aylo >= bylo { aylo } else { bylo };
                            if ref_y >= t.lo && (ref_y < t.hi || t.last) {
                                out.push((aid, bid));
                            }
                        }
                    }
                    k += 1;
                }
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testgen::random_entries;
    use super::super::{brute_force, plane_sweep};
    use super::*;
    use sjc_geom::Mbr;
    use sjc_testkit::{cases, TestRng};

    /// Mixed-shape generator: mostly small rectangles, some zero-width /
    /// zero-height, some tall enough to span many stripes.
    fn mixed_entries(rng: &mut TestRng, n: usize, extent: f64) -> Vec<IndexEntry> {
        (0..n)
            .map(|id| {
                let x = rng.f64_in(0.0..extent);
                let y = rng.f64_in(0.0..extent);
                let w = match rng.u64_in(0..10) {
                    0 | 1 => 0.0,                        // degenerate width
                    2 => rng.f64_in(0.0..extent),        // wide
                    _ => rng.f64_in(0.0..extent / 20.0), // typical
                };
                let h = match rng.u64_in(0..10) {
                    0 | 1 => 0.0,                        // degenerate height
                    2 | 3 => rng.f64_in(0.0..extent),    // spans many stripes
                    _ => rng.f64_in(0.0..extent / 20.0), // typical
                };
                IndexEntry::new(id as u64, Mbr::new(x, y, x + w, y + h))
            })
            .collect()
    }

    #[test]
    fn equivalence_with_brute_force_under_forced_striping() {
        // The randomized equivalence pin of the kernel: arbitrary mixed
        // shapes (tall replication-heavy MBRs, zero-width/zero-height,
        // empty sides) across a swept stripe count, so replication and
        // reference-point dedup are exercised even on small inputs.
        cases(0x57121, 40, |rng| {
            let nl = rng.usize_in(0..260);
            let nr = rng.usize_in(0..260);
            let left = mixed_entries(rng, nl, 100.0);
            let right = mixed_entries(rng, nr, 100.0);
            let expected = brute_force(&left, &right).sorted_pairs();
            for stripes in [1usize, 2, 3, 7, 16, 61] {
                if left.is_empty() || right.is_empty() {
                    continue;
                }
                let l = SoaBatch::from_entries(&left);
                let r = SoaBatch::from_entries(&right);
                let mut got = striped_pairs(&l, &r, stripes);
                let n_raw = got.len();
                got.sort_unstable();
                got.dedup();
                assert_eq!(n_raw, got.len(), "replicated pairs must be reported exactly once");
                assert_eq!(got, expected, "stripes={stripes}");
            }
        });
    }

    #[test]
    fn default_kernel_agrees_with_brute_force() {
        cases(0x57122, 25, |rng| {
            let nl = rng.usize_in(0..400);
            let nr = rng.usize_in(0..400);
            let left = mixed_entries(rng, nl, 1000.0);
            let right = mixed_entries(rng, nr, 1000.0);
            let expected = brute_force(&left, &right).sorted_pairs();
            assert_eq!(stripe_sweep(&left, &right).sorted_pairs(), expected);
        });
    }

    #[test]
    fn stats_equal_plane_sweep_canonical_accounting() {
        // The cost-model invariant the sim_ns pin rests on: the reported
        // JoinStats are bit-identical to plane_sweep's, including min_x
        // tie storms and inverted-bounds empty MBRs.
        cases(0x57123, 30, |rng| {
            let nl = rng.usize_in(1..300);
            let nr = rng.usize_in(1..300);
            let mut left = mixed_entries(rng, nl, 50.0);
            let mut right = mixed_entries(rng, nr, 50.0);
            // Force min_x collisions across the two lists.
            for e in left.iter_mut().chain(right.iter_mut()) {
                if rng.bool_with(0.3) {
                    let snapped = e.mbr.min_x.round();
                    e.mbr = Mbr::new(snapped, e.mbr.min_y, snapped + 1.0, e.mbr.max_y);
                }
            }
            if rng.bool_with(0.1) {
                left.push(IndexEntry::new(9999, Mbr::empty()));
            }
            if rng.bool_with(0.1) {
                right.push(IndexEntry::new(9998, Mbr::empty()));
            }
            let sweep = plane_sweep(&left, &right);
            let striped = stripe_sweep(&left, &right);
            assert_eq!(striped.stats, sweep.stats, "canonical accounting must match the sweep");
            assert_eq!(striped.sorted_pairs(), sweep.sorted_pairs());
        });
    }

    #[test]
    fn empty_inputs_and_empty_mbrs() {
        let some = random_entries(3, 40, 10.0, 2.0);
        assert!(stripe_sweep(&some, &[]).pairs.is_empty());
        assert!(stripe_sweep(&[], &some).pairs.is_empty());
        assert!(stripe_sweep(&[], &[]).pairs.is_empty());
        // Empty-MBR entries (inverted bounds) join nothing.
        let empties: Vec<IndexEntry> = (0..5).map(|i| IndexEntry::new(i, Mbr::empty())).collect();
        let out = stripe_sweep(&empties, &some);
        assert!(out.pairs.is_empty());
        assert_eq!(out.stats, plane_sweep(&empties, &some).stats);
    }

    #[test]
    fn identical_rectangles_tie_storm() {
        // All rectangles identical: maximal x-ties, maximal y-overlap, and
        // with forced striping every pair is replicated into every stripe —
        // dedup must still report each exactly once.
        let rect = Mbr::new(2.0, 1.0, 3.0, 9.0);
        let left: Vec<IndexEntry> = (0..20).map(|i| IndexEntry::new(i, rect)).collect();
        let right: Vec<IndexEntry> = (100..115).map(|i| IndexEntry::new(i, rect)).collect();
        let l = SoaBatch::from_entries(&left);
        let r = SoaBatch::from_entries(&right);
        for stripes in [1usize, 4, 32] {
            let mut pairs = striped_pairs(&l, &r, stripes);
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), 20 * 15, "stripes={stripes}");
        }
        let full = stripe_sweep(&left, &right);
        assert_eq!(full.pairs.len(), 20 * 15);
        assert_eq!(full.stats, plane_sweep(&left, &right).stats);
    }

    #[test]
    fn skewed_y_distribution_still_partitions() {
        // 95% of the mass in a thin y-band: equi-depth cuts concentrate
        // there; the result must still be exact.
        cases(0x57124, 10, |rng| {
            let mk = |rng: &mut TestRng, n: usize, base: u64| -> Vec<IndexEntry> {
                (0..n)
                    .map(|i| {
                        let x = rng.f64_in(0.0..100.0);
                        let y = if rng.bool_with(0.95) {
                            rng.f64_in(40.0..41.0)
                        } else {
                            rng.f64_in(0.0..100.0)
                        };
                        IndexEntry::new(
                            base + i as u64,
                            Mbr::new(x, y, x + rng.f64_in(0.0..3.0), y + rng.f64_in(0.0..3.0)),
                        )
                    })
                    .collect()
            };
            let left = mk(rng, 300, 0);
            let right = mk(rng, 200, 1000);
            let expected = brute_force(&left, &right).sorted_pairs();
            let l = SoaBatch::from_entries(&left);
            let r = SoaBatch::from_entries(&right);
            let mut got = striped_pairs(&l, &r, 16);
            got.sort_unstable();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn pair_order_is_thread_count_independent() {
        let left = random_entries(41, 3000, 300.0, 4.0);
        let right = random_entries(42, 2000, 300.0, 4.0);
        sjc_par::set_global_threads(1);
        let serial = stripe_sweep(&left, &right);
        sjc_par::set_global_threads(8);
        let parallel = stripe_sweep(&left, &right);
        sjc_par::set_global_threads(0);
        assert_eq!(serial.pairs, parallel.pairs, "exact pair order, not just the set");
        assert_eq!(serial.stats, parallel.stats);
    }

    #[test]
    fn cuts_are_strictly_increasing_and_bounded() {
        let left = random_entries(7, 2000, 100.0, 2.0);
        let right = random_entries(8, 1000, 100.0, 2.0);
        let l = SoaBatch::from_entries(&left);
        let r = SoaBatch::from_entries(&right);
        let cuts = stripe_cuts(&l, &r, 8);
        assert!(!cuts.is_empty() && cuts.len() <= 7);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1], "strictly increasing cuts: {cuts:?}");
        }
        assert!(cuts.iter().all(|c| c.is_finite()));
        // Deterministic: the sample is seeded, so cuts replay exactly.
        assert_eq!(cuts, stripe_cuts(&l, &r, 8));
    }
}
