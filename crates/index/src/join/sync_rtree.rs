//! Synchronized R-tree traversal join (dual-tree join).

use super::CandidatePairs;
use crate::entry::IndexEntry;
use crate::rtree::{Node, RTree};

/// Bulk-loads an R-tree on each side and descends both trees in lockstep,
/// recursing only into child pairs whose MBRs intersect.
///
/// SpatialHadoop provides this as its second local-join implementation
/// (§II.C, citing Jacox & Samet's survey).
pub fn sync_rtree(left: &[IndexEntry], right: &[IndexEntry]) -> CandidatePairs {
    if left.is_empty() || right.is_empty() {
        return CandidatePairs::default();
    }
    let lt = RTree::bulk_load_str(left.to_vec());
    let rt = RTree::bulk_load_str(right.to_vec());

    let mut out = CandidatePairs::default();
    let mut stack = vec![(lt_root(&lt), rt_root(&rt))];
    while let Some((ln, rn)) = stack.pop() {
        out.stats.index_nodes_visited += 2;
        match (lt.node_ref(ln), rt.node_ref(rn)) {
            (Node::Leaf { entries: le, .. }, Node::Leaf { entries: re, .. }) => {
                for a in le {
                    for b in re {
                        out.stats.filter_tests += 1;
                        if a.mbr.intersects(&b.mbr) {
                            out.pairs.push((a.id, b.id));
                        }
                    }
                }
            }
            (Node::Inner { children, .. }, Node::Leaf { mbr: rm, .. }) => {
                for &c in children {
                    out.stats.filter_tests += 1;
                    if lt.node_ref(c).mbr().intersects(rm) {
                        stack.push((c, rn));
                    }
                }
            }
            (Node::Leaf { mbr: lm, .. }, Node::Inner { children, .. }) => {
                for &c in children {
                    out.stats.filter_tests += 1;
                    if rt.node_ref(c).mbr().intersects(lm) {
                        stack.push((ln, c));
                    }
                }
            }
            (Node::Inner { children: lc, .. }, Node::Inner { children: rc, .. }) => {
                for &a in lc {
                    let am = lt.node_ref(a).mbr();
                    for &b in rc {
                        out.stats.filter_tests += 1;
                        if am.intersects(&rt.node_ref(b).mbr()) {
                            stack.push((a, b));
                        }
                    }
                }
            }
        }
    }
    out
}

// Small private accessors: the join needs raw node access that the public
// query API doesn't expose.
use crate::rtree::NodeId;

fn lt_root(t: &RTree) -> NodeId {
    t.root_id()
}

fn rt_root(t: &RTree) -> NodeId {
    t.root_id()
}
