//! Struct-of-arrays MBR batch: the memory layout of the cache-conscious
//! join kernels.
//!
//! `&[IndexEntry]` stores one 40-byte record per rectangle, so a sweep that
//! only needs the x-interval of each candidate still drags the full record
//! through the cache. [`SoaBatch`] transposes a batch into five contiguous
//! column vectors (`xlo`/`xhi`/`ylo`/`yhi`/`id`), sorted by `xlo`, so the
//! forward plane-sweep's inner loop streams exactly the columns it touches
//! and the hardware prefetcher sees plain sequential reads (Tsitsigkos et
//! al., arXiv:1908.11740 §4 call this the "storage optimization"; it is
//! worth more than the algorithmic tweaks on modern cores).
//!
//! The sort is the same stable `total_cmp(min_x)` order `plane_sweep` uses,
//! so positions in a `SoaBatch` correspond 1:1 to positions in the sweep's
//! sorted entry array and the canonical-cost accounting of
//! [`super::stripe_sweep`] can binary-search these columns directly.

use crate::entry::IndexEntry;

/// A batch of MBRs in struct-of-arrays layout, sorted by `xlo` ascending
/// (stable in the input order on ties, exactly like the sweep's sort).
#[derive(Debug, Clone, Default)]
pub struct SoaBatch {
    /// `mbr.min_x` per rectangle, ascending.
    pub xlo: Vec<f64>,
    /// `mbr.max_x`, parallel to `xlo`.
    pub xhi: Vec<f64>,
    /// `mbr.min_y`, parallel to `xlo`.
    pub ylo: Vec<f64>,
    /// `mbr.max_y`, parallel to `xlo`.
    pub yhi: Vec<f64>,
    /// Caller-defined record id, parallel to `xlo`.
    pub id: Vec<u64>,
}

impl SoaBatch {
    /// Transposes `entries` into x-sorted columns.
    pub fn from_entries(entries: &[IndexEntry]) -> SoaBatch {
        // Sort a (key, position) permutation instead of the 40-byte records:
        // the comparator breaks key ties by original position, which is a
        // total order, so the unique sorted sequence equals what a stable
        // by-key sort of the records gives — at a third of the bytes moved.
        // The staging permutation is scratch-recycled: a local join builds
        // two batches per cell, so its capacity is reused cell after cell.
        let mut order: Vec<(f64, usize)> = sjc_par::scratch::take_vec();
        order.extend(entries.iter().enumerate().map(|(i, e)| (e.mbr.min_x, i)));
        // Total order → stable and unstable sorts agree, so the serial path
        // can take the allocation-free unstable sort without changing the
        // result at any thread budget. Gate on the *effective* budget: an
        // ambient 8 on a single-core host still runs serially, and paying
        // the merge sort's staging buffers there shows up on every cell.
        if sjc_par::Budget::resolve().effective_threads() == 1 {
            order.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        } else {
            sjc_par::par_sort_by(&mut order, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        let mut batch = SoaBatch::with_capacity(entries.len());
        for &(_, i) in &order {
            if let Some(e) = entries.get(i) {
                batch.xlo.push(e.mbr.min_x);
                batch.xhi.push(e.mbr.max_x);
                batch.ylo.push(e.mbr.min_y);
                batch.yhi.push(e.mbr.max_y);
                batch.id.push(e.id);
            }
        }
        sjc_par::scratch::put_vec(order);
        batch
    }

    /// An empty batch with `n` rows of capacity in every column.
    pub fn with_capacity(n: usize) -> SoaBatch {
        SoaBatch {
            xlo: Vec::with_capacity(n),
            xhi: Vec::with_capacity(n),
            ylo: Vec::with_capacity(n),
            yhi: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
        }
    }

    /// Number of rectangles in the batch.
    pub fn len(&self) -> usize {
        self.xlo.len()
    }

    /// True when the batch holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.xlo.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::Mbr;

    #[test]
    fn columns_are_sorted_and_parallel() {
        let entries = vec![
            IndexEntry::new(7, Mbr::new(3.0, 1.0, 4.0, 2.0)),
            IndexEntry::new(8, Mbr::new(1.0, 5.0, 9.0, 6.0)),
            IndexEntry::new(9, Mbr::new(2.0, 0.0, 2.5, 0.5)),
        ];
        let b = SoaBatch::from_entries(&entries);
        assert_eq!(b.len(), 3);
        assert_eq!(b.xlo, vec![1.0, 2.0, 3.0]);
        assert_eq!(b.id, vec![8, 9, 7]);
        assert_eq!(b.xhi, vec![9.0, 2.5, 4.0]);
        assert_eq!(b.ylo, vec![5.0, 0.0, 1.0]);
        assert_eq!(b.yhi, vec![6.0, 0.5, 2.0]);
    }

    #[test]
    fn ties_keep_input_order() {
        // Stable sort: equal xlo values keep their input order, matching
        // the entry array plane_sweep would build.
        let entries: Vec<IndexEntry> =
            (0..10).map(|i| IndexEntry::new(i, Mbr::new(1.0, i as f64, 2.0, i as f64))).collect();
        let b = SoaBatch::from_entries(&entries);
        assert_eq!(b.id, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_batch() {
        let b = SoaBatch::from_entries(&[]);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
