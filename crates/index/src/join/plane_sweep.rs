//! Plane-sweep MBR join (Brinkhoff-style forward sweep).

use super::{CandidatePairs, JoinStats};
use crate::entry::IndexEntry;

/// Sorts both inputs by `min_x` and sweeps a vertical line left to right.
/// When the sweep reaches an entry, it scans forward in the *other* list
/// over every entry whose x-interval overlaps, testing y-intervals.
///
/// This is SpatialHadoop's default local join (§II.C): no index structure,
/// `O(n log n + k)`-ish behaviour on realistic data.
pub fn plane_sweep(left: &[IndexEntry], right: &[IndexEntry]) -> CandidatePairs {
    if left.is_empty() || right.is_empty() {
        return CandidatePairs::default();
    }
    let mut l: Vec<IndexEntry> = left.to_vec();
    let mut r: Vec<IndexEntry> = right.to_vec();
    l.sort_by(|a, b| a.mbr.min_x.total_cmp(&b.mbr.min_x));
    r.sort_by(|a, b| a.mbr.min_x.total_cmp(&b.mbr.min_x));

    let mut pairs = Vec::new();
    let mut stats = JoinStats::default();
    let (mut i, mut j) = (0usize, 0usize);
    while let (Some(li), Some(rj)) = (l.get(i), r.get(j)) {
        if li.mbr.min_x <= rj.mbr.min_x {
            // `li` is the sweep anchor: scan right entries starting within
            // its x-extent.
            let anchor = li;
            let mut k = j;
            while let Some(cand) = r.get(k) {
                if cand.mbr.min_x > anchor.mbr.max_x {
                    break;
                }
                stats.filter_tests += 1;
                if anchor.mbr.min_y <= cand.mbr.max_y && cand.mbr.min_y <= anchor.mbr.max_y {
                    pairs.push((anchor.id, cand.id));
                }
                k += 1;
            }
            i += 1;
        } else {
            let anchor = rj;
            let mut k = i;
            while let Some(cand) = l.get(k) {
                if cand.mbr.min_x > anchor.mbr.max_x {
                    break;
                }
                stats.filter_tests += 1;
                if anchor.mbr.min_y <= cand.mbr.max_y && cand.mbr.min_y <= anchor.mbr.max_y {
                    pairs.push((cand.id, anchor.id));
                }
                k += 1;
            }
            j += 1;
        }
    }
    CandidatePairs { pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::Mbr;

    #[test]
    fn anchors_from_both_sides_are_handled() {
        // Interleaved x-order so both branches of the sweep run.
        let left = vec![
            IndexEntry::new(0, Mbr::new(0.0, 0.0, 2.0, 2.0)),
            IndexEntry::new(1, Mbr::new(5.0, 0.0, 7.0, 2.0)),
        ];
        let right = vec![
            IndexEntry::new(10, Mbr::new(1.0, 1.0, 3.0, 3.0)),
            IndexEntry::new(11, Mbr::new(6.0, 1.0, 8.0, 3.0)),
            IndexEntry::new(12, Mbr::new(100.0, 100.0, 101.0, 101.0)),
        ];
        let mut got = plane_sweep(&left, &right).pairs;
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 11)]);
    }

    #[test]
    fn identical_min_x_values() {
        let left = vec![
            IndexEntry::new(0, Mbr::new(1.0, 0.0, 2.0, 1.0)),
            IndexEntry::new(1, Mbr::new(1.0, 5.0, 2.0, 6.0)),
        ];
        let right = vec![
            IndexEntry::new(10, Mbr::new(1.0, 0.5, 2.0, 5.5)),
        ];
        let mut got = plane_sweep(&left, &right).pairs;
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 10)]);
    }
}
