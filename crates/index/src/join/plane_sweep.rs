//! Plane-sweep MBR join (Brinkhoff-style forward sweep).

use super::{CandidatePairs, JoinStats};
use crate::entry::IndexEntry;

/// Anchors per parallel strip: small enough to load-balance skewed scans,
/// large enough to amortize claim overhead.
const STRIP_ANCHORS: usize = 1024;

/// Sorts both inputs by `min_x` and sweeps a vertical line left to right.
/// When the sweep reaches an entry, it scans forward in the *other* list
/// over every entry whose x-interval overlaps, testing y-intervals.
///
/// This is SpatialHadoop's default local join (§II.C): no index structure,
/// `O(n log n + k)`-ish behaviour on realistic data.
///
/// Host-parallel, output-identical: the anchor sequence (the serial sweep's
/// interleaving of both lists, left winning `min_x` ties) is replayed by a
/// cheap O(n) merge, recording each anchor's forward-scan start; the scans —
/// where the real work is — then run concurrently in fixed-size anchor
/// strips whose results concatenate in anchor order. Pair order and
/// `filter_tests` match the single-threaded sweep exactly.
pub fn plane_sweep(left: &[IndexEntry], right: &[IndexEntry]) -> CandidatePairs {
    if left.is_empty() || right.is_empty() {
        return CandidatePairs::default();
    }
    let mut l: Vec<IndexEntry> = left.to_vec();
    let mut r: Vec<IndexEntry> = right.to_vec();
    sjc_par::par_sort_by(&mut l, |a, b| a.mbr.min_x.total_cmp(&b.mbr.min_x));
    sjc_par::par_sort_by(&mut r, |a, b| a.mbr.min_x.total_cmp(&b.mbr.min_x));

    // (anchor is from left list, anchor index, scan start in other list).
    // The sweep ends when either list is exhausted, exactly like the old
    // `while let (Some, Some)` loop.
    let (mut i, mut j) = (0usize, 0usize);
    let mut anchors: Vec<(bool, usize, usize)> = Vec::with_capacity(l.len() + r.len());
    while let (Some(li), Some(rj)) = (l.get(i), r.get(j)) {
        if li.mbr.min_x <= rj.mbr.min_x {
            anchors.push((true, i, j));
            i += 1;
        } else {
            anchors.push((false, j, i));
            j += 1;
        }
    }

    let strips: Vec<&[(bool, usize, usize)]> = anchors.chunks(STRIP_ANCHORS).collect();
    let per_strip: Vec<(Vec<(u64, u64)>, u64)> = sjc_par::par_map(&strips, |strip| {
        let mut pairs = Vec::new();
        let mut tests = 0u64;
        for &(is_left, idx, start) in strip.iter() {
            let (this, other) = if is_left { (&l, &r) } else { (&r, &l) };
            let Some(anchor) = this.get(idx) else { continue };
            let mut k = start;
            while let Some(cand) = other.get(k) {
                if cand.mbr.min_x > anchor.mbr.max_x {
                    break;
                }
                tests += 1;
                if anchor.mbr.min_y <= cand.mbr.max_y && cand.mbr.min_y <= anchor.mbr.max_y {
                    pairs.push(if is_left { (anchor.id, cand.id) } else { (cand.id, anchor.id) });
                }
                k += 1;
            }
        }
        (pairs, tests)
    });

    let mut pairs = Vec::new();
    let mut stats = JoinStats::default();
    for (p, t) in per_strip {
        pairs.extend(p);
        stats.filter_tests += t;
    }
    CandidatePairs { pairs, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjc_geom::Mbr;

    #[test]
    fn anchors_from_both_sides_are_handled() {
        // Interleaved x-order so both branches of the sweep run.
        let left = vec![
            IndexEntry::new(0, Mbr::new(0.0, 0.0, 2.0, 2.0)),
            IndexEntry::new(1, Mbr::new(5.0, 0.0, 7.0, 2.0)),
        ];
        let right = vec![
            IndexEntry::new(10, Mbr::new(1.0, 1.0, 3.0, 3.0)),
            IndexEntry::new(11, Mbr::new(6.0, 1.0, 8.0, 3.0)),
            IndexEntry::new(12, Mbr::new(100.0, 100.0, 101.0, 101.0)),
        ];
        let mut got = plane_sweep(&left, &right).pairs;
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 11)]);
    }

    /// The pre-parallel single-threaded sweep, kept as the ground truth for
    /// pair *order* (not just the pair set).
    fn serial_sweep(left: &[IndexEntry], right: &[IndexEntry]) -> CandidatePairs {
        let mut l: Vec<IndexEntry> = left.to_vec();
        let mut r: Vec<IndexEntry> = right.to_vec();
        l.sort_by(|a, b| a.mbr.min_x.total_cmp(&b.mbr.min_x));
        r.sort_by(|a, b| a.mbr.min_x.total_cmp(&b.mbr.min_x));
        let mut pairs = Vec::new();
        let mut stats = JoinStats::default();
        let (mut i, mut j) = (0usize, 0usize);
        while let (Some(li), Some(rj)) = (l.get(i), r.get(j)) {
            let (anchor, list, start, flip) =
                if li.mbr.min_x <= rj.mbr.min_x { (li, &r, j, false) } else { (rj, &l, i, true) };
            let mut k = start;
            while let Some(cand) = list.get(k) {
                if cand.mbr.min_x > anchor.mbr.max_x {
                    break;
                }
                stats.filter_tests += 1;
                if anchor.mbr.min_y <= cand.mbr.max_y && cand.mbr.min_y <= anchor.mbr.max_y {
                    pairs.push(if flip { (cand.id, anchor.id) } else { (anchor.id, cand.id) });
                }
                k += 1;
            }
            if li.mbr.min_x <= rj.mbr.min_x {
                i += 1;
            } else {
                j += 1;
            }
        }
        CandidatePairs { pairs, stats }
    }

    #[test]
    fn strip_parallel_sweep_replays_serial_pair_order() {
        sjc_testkit::cases(0x9a7c, 25, |rng| {
            let mk = |rng: &mut sjc_testkit::TestRng, n: usize| -> Vec<IndexEntry> {
                (0..n)
                    .map(|id| {
                        let x = rng.f64_in(0.0..100.0);
                        let y = rng.f64_in(0.0..100.0);
                        let w = rng.f64_in(0.0..5.0);
                        let h = rng.f64_in(0.0..5.0);
                        IndexEntry::new(id as u64, Mbr::new(x, y, x + w, y + h))
                    })
                    .collect()
            };
            let nl = rng.usize_in(0..400);
            let nr = rng.usize_in(0..400);
            let left = mk(rng, nl);
            let right = mk(rng, nr);
            let par = plane_sweep(&left, &right);
            let ser = serial_sweep(&left, &right);
            assert_eq!(par.pairs, ser.pairs, "pair order must match the serial sweep");
            assert_eq!(par.stats.filter_tests, ser.stats.filter_tests);
        });
    }

    #[test]
    fn identical_min_x_values() {
        let left = vec![
            IndexEntry::new(0, Mbr::new(1.0, 0.0, 2.0, 1.0)),
            IndexEntry::new(1, Mbr::new(1.0, 5.0, 2.0, 6.0)),
        ];
        let right = vec![IndexEntry::new(10, Mbr::new(1.0, 0.5, 2.0, 5.5))];
        let mut got = plane_sweep(&left, &right).pairs;
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 10)]);
    }
}
