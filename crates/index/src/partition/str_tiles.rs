//! STR tile partitioner built from a sample.
//!
//! SpatialSpark's preprocessing samples one input dataset and derives
//! partition MBRs from the sample (§II.A of the paper). We reproduce this
//! with Sort-Tile-Recursive tiling: sort sample points by x, slice into
//! vertical strips, sort each strip by y, and cut into tiles of equal sample
//! occupancy. Tiles are then *expanded to tile the full domain* (strip
//! boundaries extended to the extent edges) so that assignment is total and
//! unseen data still lands in a cell.

use sjc_geom::{Mbr, Point};

use super::SpatialPartitioner;

/// Sample-based STR tiles.
#[derive(Debug, Clone)]
pub struct StrTilePartitioner {
    cells: Vec<Mbr>,
}

impl StrTilePartitioner {
    /// Builds ~`target_cells` tiles from `sample` points over `extent`.
    ///
    /// The sample is consumed (sorted in place). Degenerate inputs (empty
    /// sample) fall back to a single cell covering the extent.
    pub fn from_sample(extent: Mbr, mut sample: Vec<Point>, target_cells: usize) -> Self {
        assert!(!extent.is_empty(), "extent must be non-empty");
        let target = target_cells.max(1);
        if sample.is_empty() || target == 1 {
            return StrTilePartitioner { cells: vec![extent] };
        }

        let num_strips = (target as f64).sqrt().ceil() as usize;
        let tiles_per_strip = target.div_ceil(num_strips);

        sample.sort_by(|a, b| a.x.total_cmp(&b.x));
        let strip_len = sample.len().div_ceil(num_strips);

        let mut cells = Vec::with_capacity(target);
        let mut strip_start = 0usize;
        let mut strip_index = 0usize;
        let mut prev_x_hi = extent.min_x;
        while strip_start < sample.len() {
            let strip_end = (strip_start + strip_len).min(sample.len());

            // Strip x-range: extend first/last strips to the extent edges;
            // interior boundaries fall midway between adjacent samples.
            let x_lo = if strip_index == 0 { extent.min_x } else { prev_x_hi };
            let x_hi = if strip_end == sample.len() {
                extent.max_x
            } else {
                // sjc-lint: allow(no-panic-in-lib) — 0 < strip_end < sample.len() in this branch
                ((sample[strip_end - 1].x + sample[strip_end].x) / 2.0).max(x_lo)
            };
            prev_x_hi = x_hi;

            // sjc-lint: allow(no-panic-in-lib) — strip bounds are clamped to sample.len() above
            let strip = &mut sample[strip_start..strip_end];
            strip.sort_by(|a, b| a.y.total_cmp(&b.y));

            let tile_len = strip.len().div_ceil(tiles_per_strip);
            let mut tile_start = 0usize;
            let mut prev_y = extent.min_y;
            while tile_start < strip.len() {
                let tile_end = (tile_start + tile_len).min(strip.len());
                let y_hi = if tile_end == strip.len() {
                    extent.max_y
                } else {
                    // sjc-lint: allow(no-panic-in-lib) — 0 < tile_end < strip.len() in this branch
                    (strip[tile_end - 1].y + strip[tile_end].y) / 2.0
                };
                // Guard against zero-height tiles from duplicate y values.
                let y_hi = y_hi.max(prev_y);
                cells.push(Mbr::new(x_lo, prev_y, x_hi, y_hi));
                prev_y = y_hi;
                tile_start = tile_end;
            }
            strip_start = strip_end;
            strip_index += 1;
        }

        // The sample can only resolve ~one tile per sample point. When the
        // target asks for more cells (small samples, big clusters), split
        // *every* tile into the same number of sub-cells: sample-derived
        // tiles carry roughly equal data (that is what STR on the sample
        // achieves), so uniform subdivision preserves the balance while
        // adding the granularity that keeps every task slot busy. Empty
        // sub-cells are harmless.
        if cells.len() < target {
            let k = target.div_ceil(cells.len());
            let mut fine = Vec::with_capacity(cells.len() * k);
            for c in &cells {
                subdivide(*c, k, &mut fine);
            }
            cells = fine;
        }
        StrTilePartitioner { cells }
    }
}

/// Splits `cell` into `k` pieces by recursive halving along the wider axis.
fn subdivide(cell: Mbr, k: usize, out: &mut Vec<Mbr>) {
    if k <= 1 || cell.area() <= 0.0 {
        out.push(cell);
        return;
    }
    let lo_k = k / 2;
    let hi_k = k - lo_k;
    // Split position proportional to the child counts so pieces end up
    // near-equal even for odd k.
    let t = lo_k as f64 / k as f64;
    if cell.width() >= cell.height() {
        let cut = cell.min_x + cell.width() * t;
        subdivide(Mbr::new(cell.min_x, cell.min_y, cut, cell.max_y), lo_k, out);
        subdivide(Mbr::new(cut, cell.min_y, cell.max_x, cell.max_y), hi_k, out);
    } else {
        let cut = cell.min_y + cell.height() * t;
        subdivide(Mbr::new(cell.min_x, cell.min_y, cell.max_x, cut), lo_k, out);
        subdivide(Mbr::new(cell.min_x, cut, cell.max_x, cell.max_y), hi_k, out);
    }
}

impl SpatialPartitioner for StrTilePartitioner {
    fn cells(&self) -> &[Mbr] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_sample(n: usize) -> Vec<Point> {
        // 80% of points clustered in the lower-left 10% of the extent.
        (0..n)
            .map(|i| {
                if i % 5 != 0 {
                    Point::new((i % 97) as f64 / 97.0, (i % 89) as f64 / 89.0)
                } else {
                    Point::new(
                        1.0 + (i % 83) as f64 / 83.0 * 9.0,
                        1.0 + (i % 79) as f64 / 79.0 * 9.0,
                    )
                }
            })
            .collect()
    }

    #[test]
    fn tiles_cover_extent_without_gaps() {
        let extent = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let p = StrTilePartitioner::from_sample(extent, skewed_sample(500), 16);
        let total_area: f64 = p.cells().iter().map(Mbr::area).sum();
        assert!(
            (total_area - extent.area()).abs() < 1e-6,
            "tiles must tile the domain exactly, got {total_area}"
        );
    }

    #[test]
    fn cell_count_is_near_target() {
        let p = StrTilePartitioner::from_sample(
            Mbr::new(0.0, 0.0, 10.0, 10.0),
            skewed_sample(1000),
            16,
        );
        let n = p.cells().len();
        assert!((12..=25).contains(&n), "wanted ~16 tiles, got {n}");
    }

    #[test]
    fn skew_produces_small_cells_in_dense_areas() {
        let p = StrTilePartitioner::from_sample(
            Mbr::new(0.0, 0.0, 10.0, 10.0),
            skewed_sample(1000),
            16,
        );
        // The cell containing the dense corner should be smaller than the
        // cell containing the sparse far corner.
        let dense_cell = p.cells()[p.owner(&Point::new(0.5, 0.5)) as usize];
        let sparse_cell = p.cells()[p.owner(&Point::new(9.5, 9.5)) as usize];
        assert!(dense_cell.area() < sparse_cell.area());
    }

    #[test]
    fn empty_sample_gives_single_cell() {
        let extent = Mbr::new(0.0, 0.0, 5.0, 5.0);
        let p = StrTilePartitioner::from_sample(extent, Vec::new(), 8);
        assert_eq!(p.cells(), &[extent]);
    }

    #[test]
    fn every_point_in_extent_has_an_owner() {
        let extent = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let p = StrTilePartitioner::from_sample(extent, skewed_sample(300), 9);
        for i in 0..100 {
            let pt = Point::new((i % 10) as f64 + 0.5, (i / 10) as f64 + 0.5);
            let owner = p.owner(&pt);
            assert!(p.cells()[owner as usize].contains_point(&pt));
        }
    }

    #[test]
    fn duplicate_coordinates_do_not_create_inverted_tiles() {
        let sample: Vec<Point> = (0..100).map(|_| Point::new(5.0, 5.0)).collect();
        let p = StrTilePartitioner::from_sample(Mbr::new(0.0, 0.0, 10.0, 10.0), sample, 8);
        for c in p.cells() {
            assert!(!c.is_empty());
            assert!(c.max_x >= c.min_x && c.max_y >= c.min_y);
        }
    }
}
