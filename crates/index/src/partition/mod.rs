//! Spatial partitioners.
//!
//! The preprocessing stage of every system in the paper assigns data items
//! to spatial partitions. A partitioner exposes a set of cells (rectangles);
//! items whose MBR spans several cells are **multi-assigned** (duplicated),
//! and the join de-duplicates results with the reference-point rule
//! ([`dedup_owner_cell`]). Three partitioner families are provided:
//!
//! * [`FixedGridPartitioner`] — SpatialHadoop's original `GRID` scheme;
//! * [`StrTilePartitioner`] — STR tiles computed from a sample (what
//!   SpatialSpark's sampling-based partitioning produces);
//! * [`BspPartitioner`] — recursive median splits over a sample (the
//!   SATO-flavoured balanced partitioning HadoopGIS derives from samples).

mod bsp;
mod fixed_grid;
mod str_tiles;

pub use bsp::BspPartitioner;
pub use fixed_grid::FixedGridPartitioner;
pub use str_tiles::StrTilePartitioner;

use sjc_geom::{Mbr, Point};

/// Identifier of a spatial partition cell.
pub type CellId = u32;

/// A spatial partitioner: a finite set of cells plus assignment rules.
pub trait SpatialPartitioner {
    /// The partition cell rectangles. Cell ids are indexes into this slice.
    fn cells(&self) -> &[Mbr];

    /// All cells an MBR must be assigned to (every cell it intersects).
    /// Never empty: geometries outside every cell fall back to the nearest
    /// cell, so no record is ever dropped in preprocessing.
    fn assign(&self, mbr: &Mbr) -> Vec<CellId> {
        let mut out: Vec<CellId> = self
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.intersects(mbr))
            .map(|(i, _)| i as CellId)
            .collect();
        if out.is_empty() {
            out.push(self.nearest_cell(&mbr.center()));
        }
        out
    }

    /// The canonical owner cell of a point: the lowest-id cell containing
    /// it, or the nearest cell if none contains it. Used by the
    /// reference-point de-duplication rule — every point must have exactly
    /// one owner.
    fn owner(&self, p: &Point) -> CellId {
        self.cells()
            .iter()
            .position(|c| c.contains_point(p))
            .map(|i| i as CellId)
            .unwrap_or_else(|| self.nearest_cell(p))
    }

    /// Nearest cell to a point by MBR distance (deterministic tie-break on id).
    fn nearest_cell(&self, p: &Point) -> CellId {
        let pm = p.mbr();
        let mut best = (f64::INFINITY, 0u32);
        for (i, c) in self.cells().iter().enumerate() {
            let d = c.min_distance(&pm);
            if d < best.0 {
                best = (d, i as CellId);
            }
        }
        best.1
    }
}

/// The reference-point de-duplication rule.
///
/// A candidate pair `(a, b)` whose MBRs were both assigned to cell `cell_id`
/// is *reported* by that cell only when the cell owns the reference point
/// (the lower-left corner of `a.mbr ∩ b.mbr`). Since every point has exactly
/// one owner cell, each result pair is emitted exactly once even though both
/// records may be duplicated across many cells.
pub fn dedup_owner_cell<P: SpatialPartitioner + ?Sized>(
    partitioner: &P,
    cell_id: CellId,
    a: &Mbr,
    b: &Mbr,
) -> bool {
    match a.reference_point(b) {
        Some(rp) => partitioner.owner(&rp) == cell_id,
        None => false, // disjoint MBRs can never be a candidate pair
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two side-by-side cells for rule testing.
    struct TwoCells {
        cells: Vec<Mbr>,
    }

    impl SpatialPartitioner for TwoCells {
        fn cells(&self) -> &[Mbr] {
            &self.cells
        }
    }

    fn two() -> TwoCells {
        TwoCells { cells: vec![Mbr::new(0.0, 0.0, 1.0, 1.0), Mbr::new(1.0, 0.0, 2.0, 1.0)] }
    }

    #[test]
    fn assign_duplicates_spanning_mbr() {
        let p = two();
        let spanning = Mbr::new(0.5, 0.2, 1.5, 0.8);
        assert_eq!(p.assign(&spanning), vec![0, 1]);
        assert_eq!(p.assign(&Mbr::new(0.1, 0.1, 0.2, 0.2)), vec![0]);
    }

    #[test]
    fn assign_never_empty() {
        let p = two();
        let far = Mbr::new(100.0, 100.0, 101.0, 101.0);
        let cells = p.assign(&far);
        assert_eq!(cells.len(), 1, "falls back to nearest cell");
    }

    #[test]
    fn owner_is_unique_on_shared_boundary() {
        let p = two();
        // x=1 belongs to both cell MBRs; the owner rule picks the lower id.
        assert_eq!(p.owner(&Point::new(1.0, 0.5)), 0);
    }

    #[test]
    fn dedup_emits_exactly_once() {
        let p = two();
        // Both records span the boundary → both assigned to cells 0 and 1.
        let a = Mbr::new(0.8, 0.2, 1.2, 0.4);
        let b = Mbr::new(0.9, 0.1, 1.4, 0.5);
        let emitted: Vec<CellId> =
            [0u32, 1u32].into_iter().filter(|&c| dedup_owner_cell(&p, c, &a, &b)).collect();
        assert_eq!(emitted.len(), 1, "pair reported by exactly one cell");
        // Reference point (0.9, 0.2) lies in cell 0.
        assert_eq!(emitted[0], 0);
    }

    #[test]
    fn dedup_rejects_disjoint_pairs() {
        let p = two();
        assert!(!dedup_owner_cell(
            &p,
            0,
            &Mbr::new(0.0, 0.0, 0.1, 0.1),
            &Mbr::new(0.9, 0.9, 1.0, 1.0)
        ));
    }
}
