//! Fixed uniform-grid partitioner.

use sjc_geom::{Mbr, Point};

use super::{CellId, SpatialPartitioner};

/// Partitions a fixed extent into an `nx × ny` uniform grid.
///
/// This is SpatialHadoop's `GRID` partitioning: simple, sample-free, but
/// skew-oblivious — dense areas (midtown Manhattan in the taxi data) land in
/// a single overloaded cell, which the ablation bench `ablation_partitioner`
/// quantifies.
#[derive(Debug, Clone)]
pub struct FixedGridPartitioner {
    extent: Mbr,
    nx: usize,
    ny: usize,
    cells: Vec<Mbr>,
}

impl FixedGridPartitioner {
    pub fn new(extent: Mbr, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid dimensions must be nonzero");
        assert!(!extent.is_empty(), "grid extent must be non-empty");
        let w = extent.width() / nx as f64;
        let h = extent.height() / ny as f64;
        let mut cells = Vec::with_capacity(nx * ny);
        for r in 0..ny {
            for c in 0..nx {
                cells.push(Mbr::new(
                    extent.min_x + c as f64 * w,
                    extent.min_y + r as f64 * h,
                    extent.min_x + (c + 1) as f64 * w,
                    extent.min_y + (r + 1) as f64 * h,
                ));
            }
        }
        FixedGridPartitioner { extent, nx, ny, cells }
    }

    /// Chooses a square-ish grid with roughly `target_cells` cells.
    pub fn with_target_cells(extent: Mbr, target_cells: usize) -> Self {
        let side = (target_cells.max(1) as f64).sqrt().round().max(1.0) as usize;
        FixedGridPartitioner::new(extent, side, side)
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    fn clamp_col(&self, x: f64) -> usize {
        let w = self.extent.width() / self.nx as f64;
        ((((x - self.extent.min_x) / w).floor() as isize).clamp(0, self.nx as isize - 1)) as usize
    }

    fn clamp_row(&self, y: f64) -> usize {
        let h = self.extent.height() / self.ny as f64;
        ((((y - self.extent.min_y) / h).floor() as isize).clamp(0, self.ny as isize - 1)) as usize
    }
}

impl SpatialPartitioner for FixedGridPartitioner {
    fn cells(&self) -> &[Mbr] {
        &self.cells
    }

    /// O(cells touched) arithmetic assignment instead of the generic scan.
    fn assign(&self, mbr: &Mbr) -> Vec<CellId> {
        let (c0, c1) = (self.clamp_col(mbr.min_x), self.clamp_col(mbr.max_x));
        let (r0, r1) = (self.clamp_row(mbr.min_y), self.clamp_row(mbr.max_y));
        let mut out = Vec::with_capacity((c1 - c0 + 1) * (r1 - r0 + 1));
        for r in r0..=r1 {
            for c in c0..=c1 {
                out.push((r * self.nx + c) as CellId);
            }
        }
        out
    }

    /// O(1) owner: the cell whose half-open `[min, max)` range holds the
    /// point (clamped at the top/right edges so ownership stays total).
    fn owner(&self, p: &Point) -> CellId {
        (self.clamp_row(p.y) * self.nx + self.clamp_col(p.x)) as CellId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::dedup_owner_cell;

    fn grid() -> FixedGridPartitioner {
        FixedGridPartitioner::new(Mbr::new(0.0, 0.0, 10.0, 10.0), 5, 5)
    }

    #[test]
    fn cells_tile_extent() {
        let g = grid();
        assert_eq!(g.cells().len(), 25);
        let total: f64 = g.cells().iter().map(Mbr::area).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fast_assign_matches_generic_scan() {
        let g = grid();
        for mbr in [
            Mbr::new(0.5, 0.5, 1.0, 1.0),
            Mbr::new(1.5, 3.5, 6.5, 4.5),
            Mbr::new(9.9, 9.9, 15.0, 15.0),
            Mbr::new(-3.0, -3.0, -1.0, -1.0),
        ] {
            let mut fast = g.assign(&mbr);
            fast.sort_unstable();
            // Generic: every intersecting cell (plus nearest-fallback).
            let mut generic: Vec<CellId> = g
                .cells()
                .iter()
                .enumerate()
                .filter(|(_, c)| c.intersects(&mbr))
                .map(|(i, _)| i as CellId)
                .collect();
            if generic.is_empty() {
                generic.push(g.nearest_cell(&mbr.center()));
            }
            generic.sort_unstable();
            assert_eq!(fast, generic, "mbr {mbr:?}");
        }
    }

    #[test]
    fn owner_unique_even_on_cell_borders() {
        let g = grid();
        // A point exactly on an interior border belongs to exactly one cell.
        let p = Point::new(2.0, 2.0);
        let o = g.owner(&p);
        let containing: Vec<CellId> = g
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.contains_point(&p))
            .map(|(i, _)| i as CellId)
            .collect();
        assert!(containing.contains(&o));
        assert!(containing.len() >= 2, "border point touches several cell MBRs");
    }

    #[test]
    fn boundary_pair_reported_once_across_grid() {
        let g = grid();
        let a = Mbr::new(1.8, 1.8, 2.2, 2.2); // straddles 4 cells
        let b = Mbr::new(1.9, 1.9, 2.4, 2.4);
        let shared: Vec<CellId> =
            g.assign(&a).into_iter().filter(|c| g.assign(&b).contains(c)).collect();
        assert!(shared.len() >= 2);
        let emitted = shared.iter().filter(|&&c| dedup_owner_cell(&g, c, &a, &b)).count();
        assert_eq!(emitted, 1);
    }

    #[test]
    fn top_right_edge_points_are_owned() {
        let g = grid();
        assert_eq!(g.owner(&Point::new(10.0, 10.0)), 24, "extent corner owned by last cell");
        let _ = g.owner(&Point::new(12.0, -5.0)); // outside: still total
    }
}
