//! Binary-space-partitioning (k-d style) partitioner built from a sample.
//!
//! Recursive median splits along the wider axis until each region holds at
//! most `capacity` sample points. This is the SATO-flavoured balanced
//! partitioning that HadoopGIS derives from its sample MBRs (step 5 of the
//! paper's preprocessing pipeline runs exactly such a serial local program).

use sjc_geom::{Mbr, Point};

use super::SpatialPartitioner;

/// Sample-driven recursive median splits.
#[derive(Debug, Clone)]
pub struct BspPartitioner {
    cells: Vec<Mbr>,
}

impl BspPartitioner {
    /// Splits `extent` recursively so each leaf holds at most
    /// `sample.len() / target_cells` sample points (at least 1).
    pub fn from_sample(extent: Mbr, mut sample: Vec<Point>, target_cells: usize) -> Self {
        assert!(!extent.is_empty(), "extent must be non-empty");
        let capacity = (sample.len() / target_cells.max(1)).max(1);
        let mut cells = Vec::new();
        split(extent, &mut sample, capacity, 32, &mut cells);
        BspPartitioner { cells }
    }
}

fn split(
    region: Mbr,
    sample: &mut [Point],
    capacity: usize,
    depth_left: usize,
    out: &mut Vec<Mbr>,
) {
    if sample.len() <= capacity || depth_left == 0 {
        out.push(region);
        return;
    }
    let vertical = region.width() >= region.height(); // split the wider axis
    let mid = sample.len() / 2;
    if vertical {
        sample.select_nth_unstable_by(mid, |a, b| a.x.total_cmp(&b.x));
        // sjc-lint: allow(no-panic-in-lib) — mid = len/2 < len, and len > capacity >= 1 here
        let cut = sample[mid].x.clamp(region.min_x, region.max_x);
        // Degenerate cut (all duplicates at an edge): stop splitting.
        if cut <= region.min_x || cut >= region.max_x {
            out.push(region);
            return;
        }
        let (lo, hi) = sample.split_at_mut(mid);
        split(
            Mbr::new(region.min_x, region.min_y, cut, region.max_y),
            lo,
            capacity,
            depth_left - 1,
            out,
        );
        split(
            Mbr::new(cut, region.min_y, region.max_x, region.max_y),
            hi,
            capacity,
            depth_left - 1,
            out,
        );
    } else {
        sample.select_nth_unstable_by(mid, |a, b| a.y.total_cmp(&b.y));
        // sjc-lint: allow(no-panic-in-lib) — mid = len/2 < len, and len > capacity >= 1 here
        let cut = sample[mid].y.clamp(region.min_y, region.max_y);
        if cut <= region.min_y || cut >= region.max_y {
            out.push(region);
            return;
        }
        let (lo, hi) = sample.split_at_mut(mid);
        split(
            Mbr::new(region.min_x, region.min_y, region.max_x, cut),
            lo,
            capacity,
            depth_left - 1,
            out,
        );
        split(
            Mbr::new(region.min_x, cut, region.max_x, region.max_y),
            hi,
            capacity,
            depth_left - 1,
            out,
        );
    }
}

impl SpatialPartitioner for BspPartitioner {
    fn cells(&self) -> &[Mbr] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sample(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new((i * 37 % 101) as f64 / 101.0 * 10.0, (i * 53 % 97) as f64 / 97.0 * 10.0)
            })
            .collect()
    }

    #[test]
    fn cells_tile_extent_exactly() {
        let extent = Mbr::new(0.0, 0.0, 10.0, 10.0);
        let p = BspPartitioner::from_sample(extent, uniform_sample(512), 16);
        let total: f64 = p.cells().iter().map(Mbr::area).sum();
        assert!((total - extent.area()).abs() < 1e-6);
        for (i, a) in p.cells().iter().enumerate() {
            for b in p.cells().iter().skip(i + 1) {
                assert!(a.intersection(b).area() < 1e-9, "cells are interior-disjoint");
            }
        }
    }

    #[test]
    fn balanced_occupancy() {
        let sample = uniform_sample(1024);
        let p = BspPartitioner::from_sample(Mbr::new(0.0, 0.0, 10.0, 10.0), sample.clone(), 16);
        // Count sample points per cell by owner; the max/min ratio should be
        // modest for a median-split partitioner.
        let mut counts = vec![0usize; p.cells().len()];
        for pt in &sample {
            counts[p.owner(pt) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero_min = *counts.iter().filter(|&&c| c > 0).min().unwrap();
        assert!(
            max <= nonzero_min * 4,
            "median splits keep cells balanced: max={max} min={nonzero_min}"
        );
    }

    #[test]
    fn cell_count_close_to_target() {
        let p =
            BspPartitioner::from_sample(Mbr::new(0.0, 0.0, 10.0, 10.0), uniform_sample(1000), 16);
        let n = p.cells().len();
        assert!((8..=32).contains(&n), "wanted ~16, got {n}");
    }

    #[test]
    fn duplicate_points_terminate() {
        let sample: Vec<Point> = (0..1000).map(|_| Point::new(3.0, 3.0)).collect();
        let p = BspPartitioner::from_sample(Mbr::new(0.0, 0.0, 10.0, 10.0), sample, 64);
        assert!(!p.cells().is_empty());
        let total: f64 = p.cells().iter().map(Mbr::area).sum();
        assert!((total - 100.0).abs() < 1e-6, "degenerate splits still tile the extent");
    }

    #[test]
    fn empty_sample_gives_single_cell() {
        let extent = Mbr::new(0.0, 0.0, 1.0, 1.0);
        let p = BspPartitioner::from_sample(extent, Vec::new(), 10);
        assert_eq!(p.cells(), &[extent]);
    }
}
