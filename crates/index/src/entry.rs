//! The common index entry: an opaque record id plus its MBR.
//!
//! Indexes never own geometry — the distributed substrates keep geometry in
//! dataset partitions and hand the index only `(id, mbr)` pairs, exactly as
//! SpatialHadoop's block-local R-trees and SpatialSpark's broadcast index do.

use sjc_geom::Mbr;

/// One indexed record: a caller-defined id and the record's MBR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEntry {
    pub id: u64,
    pub mbr: Mbr,
}

impl IndexEntry {
    pub fn new(id: u64, mbr: Mbr) -> Self {
        IndexEntry { id, mbr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let e = IndexEntry::new(7, Mbr::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(e.id, 7);
        assert!(e.mbr.contains_point(&sjc_geom::Point::new(0.5, 0.5)));
    }
}
