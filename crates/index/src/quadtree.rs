//! Point-region quadtree.
//!
//! Used by the sampling-based partitioners (the SATO family discussed in the
//! paper's preprocessing analysis): a quadtree built over *sample points*
//! yields leaf cells whose occupancy is balanced, and those leaves become
//! partition boundaries for the full dataset.

use sjc_geom::{Mbr, Point};

/// A point-region quadtree over a square-ish extent.
#[derive(Debug, Clone)]
pub struct QuadTree {
    extent: Mbr,
    capacity: usize,
    max_depth: usize,
    root: QtNode,
    len: usize,
}

#[derive(Debug, Clone)]
enum QtNode {
    Leaf { points: Vec<Point> },
    Inner { children: Box<[QtNode; 4]> },
}

impl QuadTree {
    /// Creates an empty quadtree. `capacity` is the split threshold;
    /// `max_depth` bounds pathological point clusters.
    pub fn new(extent: Mbr, capacity: usize, max_depth: usize) -> Self {
        assert!(!extent.is_empty(), "quadtree extent must be non-empty");
        assert!(capacity > 0, "capacity must be nonzero");
        QuadTree { extent, capacity, max_depth, root: QtNode::Leaf { points: Vec::new() }, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a point (points outside the extent are clamped to it, so the
    /// tree remains total over arbitrary data).
    pub fn insert(&mut self, p: Point) {
        let clamped = Point::new(
            p.x.clamp(self.extent.min_x, self.extent.max_x),
            p.y.clamp(self.extent.min_y, self.extent.max_y),
        );
        Self::insert_rec(&mut self.root, self.extent, clamped, self.capacity, self.max_depth);
        self.len += 1;
    }

    fn quadrant_extents(extent: &Mbr) -> [Mbr; 4] {
        let c = extent.center();
        [
            Mbr::new(extent.min_x, extent.min_y, c.x, c.y), // SW
            Mbr::new(c.x, extent.min_y, extent.max_x, c.y), // SE
            Mbr::new(extent.min_x, c.y, c.x, extent.max_y), // NW
            Mbr::new(c.x, c.y, extent.max_x, extent.max_y), // NE
        ]
    }

    fn quadrant_of(extent: &Mbr, p: &Point) -> usize {
        let c = extent.center();
        // Half-open assignment: points exactly on the split line go east/north.
        let east = p.x >= c.x;
        let north = p.y >= c.y;
        match (north, east) {
            (false, false) => 0,
            (false, true) => 1,
            (true, false) => 2,
            (true, true) => 3,
        }
    }

    fn insert_rec(node: &mut QtNode, extent: Mbr, p: Point, capacity: usize, depth_left: usize) {
        match node {
            QtNode::Leaf { points } => {
                points.push(p);
                if points.len() > capacity && depth_left > 0 {
                    // Split: redistribute into four children.
                    let pts = std::mem::take(points);
                    let mut children = Box::new([
                        QtNode::Leaf { points: Vec::new() },
                        QtNode::Leaf { points: Vec::new() },
                        QtNode::Leaf { points: Vec::new() },
                        QtNode::Leaf { points: Vec::new() },
                    ]);
                    let quads = Self::quadrant_extents(&extent);
                    for q in pts {
                        let i = Self::quadrant_of(&extent, &q);
                        // sjc-lint: allow(no-panic-in-lib) — quadrant_of returns 0..=3 into fixed [_; 4] arrays
                        Self::insert_rec(&mut children[i], quads[i], q, capacity, depth_left - 1);
                    }
                    *node = QtNode::Inner { children };
                }
            }
            QtNode::Inner { children } => {
                let i = Self::quadrant_of(&extent, &p);
                let quads = Self::quadrant_extents(&extent);
                // sjc-lint: allow(no-panic-in-lib) — quadrant_of returns 0..=3 into fixed [_; 4] arrays
                Self::insert_rec(&mut children[i], quads[i], p, capacity, depth_left - 1);
            }
        }
    }

    /// Points lying inside `window` (inclusive bounds), gathered by pruning
    /// quadrants that cannot intersect it.
    pub fn query(&self, window: &Mbr) -> Vec<Point> {
        let mut out = Vec::new();
        Self::query_rec(&self.root, self.extent, window, &mut out);
        out
    }

    fn query_rec(node: &QtNode, extent: Mbr, window: &Mbr, out: &mut Vec<Point>) {
        if !extent.intersects(window) {
            return;
        }
        match node {
            QtNode::Leaf { points } => {
                out.extend(points.iter().filter(|p| window.contains_point(p)));
            }
            QtNode::Inner { children } => {
                let quads = Self::quadrant_extents(&extent);
                for (child, q) in children.iter().zip(quads) {
                    Self::query_rec(child, q, window, out);
                }
            }
        }
    }

    /// The leaf cell rectangles — a complete, non-overlapping tiling of the
    /// extent. These become spatial partitions.
    pub fn leaf_cells(&self) -> Vec<Mbr> {
        let mut out = Vec::new();
        Self::leaves_rec(&self.root, self.extent, &mut out);
        out
    }

    /// Leaf rectangles together with their occupancy (for balance metrics).
    pub fn leaf_cells_with_counts(&self) -> Vec<(Mbr, usize)> {
        let mut out = Vec::new();
        Self::leaves_counts_rec(&self.root, self.extent, &mut out);
        out
    }

    fn leaves_rec(node: &QtNode, extent: Mbr, out: &mut Vec<Mbr>) {
        match node {
            QtNode::Leaf { .. } => out.push(extent),
            QtNode::Inner { children } => {
                let quads = Self::quadrant_extents(&extent);
                for (child, q) in children.iter().zip(quads) {
                    Self::leaves_rec(child, q, out);
                }
            }
        }
    }

    fn leaves_counts_rec(node: &QtNode, extent: Mbr, out: &mut Vec<(Mbr, usize)>) {
        match node {
            QtNode::Leaf { points } => out.push((extent, points.len())),
            QtNode::Inner { children } => {
                let quads = Self::quadrant_extents(&extent);
                for (child, q) in children.iter().zip(quads) {
                    Self::leaves_counts_rec(child, q, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_when_capacity_exceeded() {
        let mut qt = QuadTree::new(Mbr::new(0.0, 0.0, 100.0, 100.0), 4, 8);
        for i in 0..20 {
            qt.insert(Point::new(i as f64 * 5.0 + 0.5, i as f64 * 5.0 + 0.5));
        }
        assert_eq!(qt.len(), 20);
        assert!(qt.leaf_cells().len() > 1, "tree must have split");
    }

    #[test]
    fn leaves_tile_the_extent() {
        let extent = Mbr::new(0.0, 0.0, 64.0, 64.0);
        let mut qt = QuadTree::new(extent, 2, 6);
        for i in 0..50 {
            qt.insert(Point::new((i * 7 % 64) as f64, (i * 13 % 64) as f64));
        }
        let leaves = qt.leaf_cells();
        let total_area: f64 = leaves.iter().map(Mbr::area).sum();
        assert!((total_area - extent.area()).abs() < 1e-6, "leaves cover the extent exactly");
        // Leaves are interior-disjoint: pairwise intersection has zero area.
        for (i, a) in leaves.iter().enumerate() {
            for b in leaves.iter().skip(i + 1) {
                assert!(a.intersection(b).area() < 1e-9);
            }
        }
    }

    #[test]
    fn occupancy_counts_sum_to_len() {
        let mut qt = QuadTree::new(Mbr::new(0.0, 0.0, 10.0, 10.0), 3, 5);
        for i in 0..37 {
            qt.insert(Point::new((i % 10) as f64, (i / 10) as f64));
        }
        let total: usize = qt.leaf_cells_with_counts().iter().map(|(_, c)| *c).sum();
        assert_eq!(total, 37);
    }

    #[test]
    fn query_matches_linear_scan() {
        let extent = Mbr::new(0.0, 0.0, 100.0, 100.0);
        let mut qt = QuadTree::new(extent, 4, 8);
        let pts: Vec<Point> =
            (0..300).map(|i| Point::new((i * 37 % 100) as f64, (i * 53 % 100) as f64)).collect();
        for p in &pts {
            qt.insert(*p);
        }
        for window in [
            Mbr::new(10.0, 10.0, 30.0, 30.0),
            Mbr::new(0.0, 0.0, 100.0, 100.0),
            Mbr::new(95.0, 95.0, 99.0, 99.0),
            Mbr::new(200.0, 200.0, 300.0, 300.0),
        ] {
            let mut got: Vec<(u64, u64)> =
                qt.query(&window).iter().map(|p| (p.x as u64, p.y as u64)).collect();
            got.sort_unstable();
            let mut expected: Vec<(u64, u64)> = pts
                .iter()
                .filter(|p| window.contains_point(p))
                .map(|p| (p.x as u64, p.y as u64))
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "window {window:?}");
        }
    }

    #[test]
    fn max_depth_bounds_degenerate_clusters() {
        // All points identical: without the depth bound this would recurse forever.
        let mut qt = QuadTree::new(Mbr::new(0.0, 0.0, 1.0, 1.0), 2, 4);
        for _ in 0..100 {
            qt.insert(Point::new(0.3, 0.3));
        }
        assert_eq!(qt.len(), 100);
        assert!(qt.leaf_cells().len() <= 4usize.pow(4));
    }

    #[test]
    fn out_of_extent_points_are_clamped() {
        let mut qt = QuadTree::new(Mbr::new(0.0, 0.0, 1.0, 1.0), 8, 4);
        qt.insert(Point::new(50.0, -3.0));
        assert_eq!(qt.len(), 1);
        let (_, counts): (Vec<Mbr>, Vec<usize>) = qt.leaf_cells_with_counts().into_iter().unzip();
        assert_eq!(counts.iter().sum::<usize>(), 1);
    }
}
