//! Per-file item model: functions with body extents, `use` imports, and
//! test-region tracking, built from the token stream.
//!
//! This is deliberately *not* a Rust parser. The cross-file passes need
//! exactly three things from a file — where each function's body starts and
//! ends, whether that function is test code, and which workspace crates the
//! file imports — and all three fall out of a single forward walk over the
//! token stream with a brace counter. Anything the walk does not model
//! (macros defining functions, modules split across `include!`) degrades to
//! "no item recorded", never to a wrong extent.

use std::collections::BTreeSet;

use crate::lexer::{lex, Tok, TokKind};

/// Item visibility, as far as a token walk can see it. `pub(crate)` /
/// `pub(super)` / `pub(in …)` are all [`Vis::Restricted`]: narrower than the
/// crate boundary, so not public API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    Private,
    Restricted,
    Pub,
}

/// One `fn` item: its name, the 1-based line of the `fn` token, the token
/// range of its body (exclusive of the braces' indices is not guaranteed —
/// the range covers `{ … }` inclusive), and whether it is test code.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub line: usize,
    /// Token index of the function's name in the file's stream — the anchor
    /// the summary layer parses the signature (params, `->` return) from.
    pub name_tok: usize,
    /// Declared visibility. A `pub fn` inside a private module still reads
    /// as [`Vis::Pub`] — over-approximating "public API" only widens the
    /// guarantee the interprocedural passes enforce.
    pub vis: Vis,
    /// Token index range `[open_brace, close_brace]` of the body, or `None`
    /// for bodiless declarations (trait methods, `extern` items).
    pub body: Option<(usize, usize)>,
    /// True when the function lives in a `#[cfg(test)] mod`, carries a
    /// `#[test]`/`#[cfg(test)]` attribute, or sits in a harness file.
    pub in_test: bool,
}

/// The analyzed form of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Crate directory name under `crates/`, or `""` for the root package.
    pub krate: String,
    /// True for files under `tests/`/`benches/` (or `#![cfg(test)]` files):
    /// everything in them is harness code.
    pub harness: bool,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnItem>,
    /// First path segments of `use` declarations: `sjc_par`, `std`, `crate`…
    pub use_crates: BTreeSet<String>,
    /// Every identifier appearing in a `use` declaration — an
    /// over-approximation of the names the file imports, which is the safe
    /// direction for "is this bare call `join` the sjc_par one?" questions.
    pub use_names: BTreeSet<String>,
    /// Token-index ranges lying inside `#[cfg(test)] mod … { … }` regions.
    test_regions: Vec<(usize, usize)>,
}

impl FileModel {
    pub fn build(rel_path: &str, source: &str) -> FileModel {
        let stripped = crate::strip_noncode(source);
        let class = crate::classify(rel_path);
        let toks = lex(&stripped);
        // A file compiled only for tests (`#![cfg(test)]` inner attribute)
        // is harness code even when it lives under `src/`.
        let harness = class.harness || stripped.contains("#![cfg(test)]");

        let mut fns = Vec::new();
        let mut use_crates = BTreeSet::new();
        let mut use_names = BTreeSet::new();
        let mut test_regions = Vec::new();

        let mut depth: i64 = 0;
        // Attribute state: `#[cfg(test)]` arms the *next* `mod` or `fn`;
        // `#[test]` arms the next `fn` only.
        let mut pending_cfg_test = false;
        let mut pending_test_attr = false;
        let mut test_floor: Option<(i64, usize)> = None; // (depth before mod `{`, start tok)

        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            match (&t.kind, t.text.as_str()) {
                (TokKind::Op, "{") => {
                    depth += 1;
                    i += 1;
                }
                (TokKind::Op, "}") => {
                    depth -= 1;
                    if let Some((floor, start)) = test_floor {
                        if depth <= floor {
                            test_regions.push((start, i));
                            test_floor = None;
                        }
                    }
                    i += 1;
                }
                (TokKind::Op, "#") => {
                    // `#[cfg(test)]` / `#![cfg(test)]` / `#[test]`
                    let w = &toks[i..toks.len().min(i + 6)];
                    if is_attr_head(w, "cfg")
                        && w.get(4).is_some_and(|t| t.is_ident("test") || t.is_ident("any"))
                    {
                        // `cfg(any(test, …))` is treated as test-gated too:
                        // over-approximating "test code" only relaxes rules.
                        pending_cfg_test = true;
                    } else if is_attr_head(w, "test") || is_attr_head(w, "should_panic") {
                        pending_test_attr = true;
                    }
                    // Skip the whole attribute so its contents (e.g.
                    // `#[derive(…)]` idents) are not misread as items.
                    i = skip_attr(&toks, i);
                }
                (TokKind::Ident, "mod") if pending_cfg_test => {
                    // Find the `{` (an out-of-line `mod foo;` has none).
                    let mut j = i + 1;
                    while j < toks.len() && !toks[j].is_op("{") && !toks[j].is_op(";") {
                        j += 1;
                    }
                    if j < toks.len() && toks[j].is_op("{") && test_floor.is_none() {
                        test_floor = Some((depth, j));
                        depth += 1;
                        pending_cfg_test = false;
                        i = j + 1;
                        continue;
                    }
                    pending_cfg_test = false;
                    i += 1;
                }
                (TokKind::Ident, "use") => {
                    let mut j = i + 1;
                    let mut first = true;
                    while j < toks.len() && !toks[j].is_op(";") {
                        if toks[j].kind == TokKind::Ident {
                            if first {
                                use_crates.insert(toks[j].text.clone());
                                first = false;
                            }
                            use_names.insert(toks[j].text.clone());
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
                (TokKind::Ident, "fn") => {
                    let Some(name_tok) = toks.get(i + 1) else { break };
                    if name_tok.kind != TokKind::Ident {
                        i += 1;
                        continue;
                    }
                    let in_test =
                        harness || test_floor.is_some() || pending_test_attr || pending_cfg_test;
                    pending_test_attr = false;
                    pending_cfg_test = false;
                    let (body, next) = fn_body_extent(&toks, i + 2);
                    fns.push(FnItem {
                        name: name_tok.text.clone(),
                        line: t.line,
                        name_tok: i + 1,
                        vis: vis_before(&toks, i),
                        body,
                        in_test,
                    });
                    // Continue *inside* the body so nested fns, test-region
                    // braces, and `use` decls in bodies are still seen. Only
                    // the signature is skipped.
                    i = next;
                }
                _ => {
                    i += 1;
                }
            }
        }
        if let Some((_, start)) = test_floor {
            test_regions.push((start, toks.len()));
        }

        FileModel {
            rel_path: rel_path.to_string(),
            krate: class.krate.to_string(),
            harness,
            toks,
            fns,
            use_crates,
            use_names,
            test_regions,
        }
    }

    /// True when token index `i` lies inside a `#[cfg(test)] mod` region (or
    /// the whole file is harness code).
    pub fn in_test_at(&self, i: usize) -> bool {
        self.harness || self.test_regions.iter().any(|&(s, e)| s <= i && i <= e)
    }

    /// The function whose body contains token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        // Innermost wins: later fns in the list that still contain `i` are
        // nested deeper.
        self.fns.iter().rfind(|f| f.body.is_some_and(|(s, e)| s <= i && i <= e))
    }
}

/// The visibility of the `fn` at token index `fn_idx`, read from the tokens
/// before it. Qualifiers between the visibility and the keyword (`pub const
/// fn`, `pub unsafe extern "C" fn`) are skipped.
fn vis_before(toks: &[Tok], fn_idx: usize) -> Vis {
    let mut j = fn_idx;
    while j > 0 {
        let t = &toks[j - 1];
        let qualifier = t.is_ident("const")
            || t.is_ident("unsafe")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.kind == TokKind::Str;
        if !qualifier {
            break;
        }
        j -= 1;
    }
    if j == 0 {
        return Vis::Private;
    }
    if toks[j - 1].is_ident("pub") {
        return Vis::Pub;
    }
    if toks[j - 1].is_op(")") {
        // `pub(crate)` / `pub(super)` / `pub(in …)`: walk back over the
        // parenthesized restriction to the `pub` that owns it.
        let mut k = j - 1;
        let mut depth = 0i64;
        loop {
            if toks[k].is_op(")") {
                depth += 1;
            } else if toks[k].is_op("(") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return Vis::Private;
            }
            k -= 1;
        }
        if k > 0 && toks[k - 1].is_ident("pub") {
            return Vis::Restricted;
        }
    }
    Vis::Private
}

/// True when `w` starts an attribute `#[name…` or `#![name…`.
fn is_attr_head(w: &[Tok], name: &str) -> bool {
    if w.len() < 3 || !w[0].is_op("#") {
        return false;
    }
    let (bang, rest) = if w[1].is_op("!") { (1, &w[2..]) } else { (0, &w[1..]) };
    let _ = bang;
    rest.len() >= 2 && rest[0].is_op("[") && rest[1].is_ident(name)
}

/// Skips a `#[…]` / `#![…]` attribute starting at `i`, returning the index
/// just past its closing `]`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_op("!")) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_op("[")) {
        return i + 1;
    }
    let mut depth = 0i64;
    while j < toks.len() {
        if toks[j].is_op("[") {
            depth += 1;
        } else if toks[j].is_op("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// From the token after a `fn`'s name, finds the body: the first `{` at
/// paren/bracket depth 0 (a `;` there means a bodiless declaration). Returns
/// the body's `[open, close]` token range and the index scanning should
/// resume from — just *inside* the body, so nested items are still walked by
/// the caller.
fn fn_body_extent(toks: &[Tok], mut j: usize) -> (Option<(usize, usize)>, usize) {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_op("(") {
            paren += 1;
        } else if t.is_op(")") {
            paren -= 1;
        } else if t.is_op("[") {
            bracket += 1;
        } else if t.is_op("]") {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_op(";") {
                return (None, j + 1);
            }
            if t.is_op("{") {
                // Find the matching close without consuming the walk: the
                // caller re-enters at `open + 1` to see nested items.
                let mut depth = 0i64;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_op("{") {
                        depth += 1;
                    } else if toks[k].is_op("}") {
                        depth -= 1;
                        if depth == 0 {
                            return (Some((j, k)), j);
                        }
                    }
                    k += 1;
                }
                return (Some((j, toks.len().saturating_sub(1))), j);
            }
        }
        j += 1;
    }
    (None, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_and_bodies_are_found() {
        let src =
            "pub fn a(x: [u8; 4]) -> u32 { x.len() as u32 }\nfn b();\nfn c() { if x { y(); } }\n";
        let m = FileModel::build("crates/cluster/src/x.rs", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(m.fns[0].body.is_some());
        assert!(m.fns[1].body.is_none());
        let (s, e) = m.fns[2].body.unwrap();
        assert!(m.toks[s].is_op("{") && m.toks[e].is_op("}"));
    }

    #[test]
    fn cfg_test_mod_marks_fns_as_test() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\nfn after() {}\n";
        let m = FileModel::build("crates/cluster/src/x.rs", src);
        let by_name = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("lib").in_test);
        assert!(by_name("helper").in_test);
        assert!(by_name("t").in_test);
        assert!(!by_name("after").in_test);
    }

    #[test]
    fn harness_files_are_all_test() {
        let m = FileModel::build("crates/cluster/tests/x.rs", "fn t() {}\n");
        assert!(m.harness && m.fns[0].in_test);
    }

    #[test]
    fn use_decls_collect_crates_and_names() {
        let src = "use sjc_par::{par_map, join};\nuse std::fmt;\n";
        let m = FileModel::build("crates/rdd/src/x.rs", src);
        assert!(m.use_crates.contains("sjc_par") && m.use_crates.contains("std"));
        assert!(m.use_names.contains("join") && m.use_names.contains("par_map"));
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() {\n    fn inner() { mark(); }\n}\n";
        let m = FileModel::build("crates/cluster/src/x.rs", src);
        let mark = m.toks.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(m.enclosing_fn(mark).unwrap().name, "inner");
    }

    #[test]
    fn derive_attr_contents_are_not_items() {
        let src = "#[derive(Debug, Clone)]\npub struct S;\nfn f() {}\n";
        let m = FileModel::build("crates/cluster/src/x.rs", src);
        assert_eq!(m.fns.len(), 1);
    }

    #[test]
    fn visibility_is_read_through_fn_qualifiers() {
        let src = "pub fn a() {}\npub(crate) fn b() {}\npub(in crate::m) fn c() {}\nfn d() {}\npub const unsafe fn e() {}\npub unsafe extern \"C\" fn g() {}\n";
        let m = FileModel::build("crates/cluster/src/x.rs", src);
        let vis = |n: &str| m.fns.iter().find(|f| f.name == n).unwrap().vis;
        assert_eq!(vis("a"), Vis::Pub);
        assert_eq!(vis("b"), Vis::Restricted);
        assert_eq!(vis("c"), Vis::Restricted);
        assert_eq!(vis("d"), Vis::Private);
        assert_eq!(vis("e"), Vis::Pub);
        assert_eq!(vis("g"), Vis::Pub);
    }

    #[test]
    fn name_tok_points_at_the_fn_name() {
        let m =
            FileModel::build("crates/cluster/src/x.rs", "pub fn scan_ns(n: u64) -> u64 { n }\n");
        assert_eq!(m.toks[m.fns[0].name_tok].text, "scan_ns");
    }
}
