//! Workspace call graph over the item model.
//!
//! Calls are extracted syntactically (an identifier directly followed by
//! `(`, or `.name(` for method calls) and resolved *by name* — but the
//! resolution is gated by the workspace's crate topology: a call in crate A
//! only resolves to a function in crate B when A == B, when the calling file
//! `use`s `sjc_B`, or when the call is path-qualified (`sjc_b::f(…)`,
//! `crate::m::f(…)`). That gate is what keeps name-based resolution honest:
//! without it, a bench-crate helper named `run` would taint every `run` in
//! the simulation crates and the entropy pass would drown in false
//! positives. With it, taint can only flow along edges the build graph
//! actually has.

use std::collections::BTreeMap;

use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Final path segment — the called name.
    pub name: String,
    /// Full path segments when the call was qualified (`["sjc_par",
    /// "par_map"]`); just `[name]` for bare calls.
    pub path: Vec<String>,
    /// True for `.name(…)` method calls.
    pub method: bool,
    /// Token index of the name in the file's stream.
    pub tok: usize,
    pub line: usize,
}

/// Identifier-followed-by-`(` positions that are *not* calls.
pub(crate) fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "move"
            | "in"
            | "as"
            | "let"
            | "else"
            | "break"
            | "continue"
            | "fn"
            | "where"
            | "unsafe"
    )
}

/// Extracts call sites from `toks[start..=end]`.
pub fn calls_in(toks: &[Tok], start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let hi = end.min(toks.len().saturating_sub(1));
    for i in start..=hi {
        if toks[i].kind != TokKind::Ident || is_call_keyword(&toks[i].text) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if !next.is_op("(") {
            continue;
        }
        // `name!(…)` is a macro, `fn name(` a definition.
        if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_op("!")) {
            continue;
        }
        let method = i > 0 && toks[i - 1].is_op(".");
        // Walk the `a::b::name` qualifier chain backwards.
        let mut path = vec![toks[i].text.clone()];
        let mut k = i;
        while k >= 2 && toks[k - 1].is_op("::") && toks[k - 2].kind == TokKind::Ident {
            path.insert(0, toks[k - 2].text.clone());
            k -= 2;
        }
        out.push(Call { name: toks[i].text.clone(), path, method, tok: i, line: toks[i].line });
    }
    out
}

/// A function in the workspace-wide flat list: `(file index, fn index)`.
pub type FnId = usize;

pub struct CallGraph {
    /// Flat list of every function: indexes into `models[file].fns[idx]`.
    pub fns: Vec<(usize, usize)>,
    /// Call sites per function, parallel to `fns`.
    pub calls: Vec<Vec<Call>>,
    /// Resolved callee ids per function, parallel to `fns`. Each entry also
    /// records the call-site name that produced the edge, so taint chains
    /// can be reported readably.
    pub edges: Vec<Vec<(FnId, String)>>,
}

/// `sjc_<dir>` is the import path of the crate in `crates/<dir>` (package
/// names use hyphens, paths use underscores; every directory name in this
/// workspace is underscore-free, so the mapping is just a prefix).
fn import_alias(krate: &str) -> String {
    format!("sjc_{krate}")
}

pub fn build(models: &[FileModel]) -> CallGraph {
    let mut fns = Vec::new();
    let mut calls = Vec::new();
    // name -> ids, for resolution.
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();

    for (fi, m) in models.iter().enumerate() {
        for (gi, f) in m.fns.iter().enumerate() {
            let id = fns.len();
            fns.push((fi, gi));
            by_name.entry(f.name.as_str()).or_default().push(id);
            calls.push(match f.body {
                Some((s, e)) => calls_in(&m.toks, s, e),
                None => Vec::new(),
            });
        }
    }

    let mut edges: Vec<Vec<(FnId, String)>> = vec![Vec::new(); fns.len()];
    for (id, &(fi, _)) in fns.iter().enumerate() {
        let caller_file = &models[fi];
        for call in &calls[id] {
            let Some(cands) = by_name.get(call.name.as_str()) else { continue };
            // Path-qualification narrows the candidate set; `use`-gating
            // bounds bare names.
            let qualifier = (call.path.len() >= 2).then(|| call.path[0].as_str());
            for &cand in cands {
                let (cfi, _) = fns[cand];
                let callee_crate = &models[cfi].krate;
                let allowed = match qualifier {
                    Some("crate") | Some("self") | Some("super") => {
                        *callee_crate == caller_file.krate
                    }
                    Some(q) => {
                        q == import_alias(callee_crate) || *callee_crate == caller_file.krate
                    }
                    None => {
                        *callee_crate == caller_file.krate
                            || caller_file.use_crates.contains(&import_alias(callee_crate))
                    }
                };
                if allowed {
                    edges[id].push((cand, call.name.clone()));
                }
            }
        }
    }

    CallGraph { fns, calls, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    #[test]
    fn calls_extracted_with_paths_and_methods() {
        let m = FileModel::build(
            "crates/cluster/src/x.rs",
            "fn f() { g(); h.run(); sjc_par::par_map(&v, k); if x { writeln!(o, \"\"); } }\n",
        );
        let (s, e) = m.fns[0].body.unwrap();
        let calls = calls_in(&m.toks, s, e);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        // `if` and the `writeln!` macro are not calls.
        assert_eq!(names, ["g", "run", "par_map"]);
        assert!(calls[1].method);
        assert_eq!(calls[2].path, ["sjc_par", "par_map"]);
    }

    #[test]
    fn resolution_is_gated_by_imports() {
        let a = FileModel::build(
            "crates/cluster/src/a.rs",
            "use sjc_data::jitter;\nfn caller() { jitter(); }\n",
        );
        let b = FileModel::build("crates/data/src/b.rs", "pub fn jitter() {}\n");
        // A bench fn with the same name must NOT resolve: cluster does not
        // import sjc_bench.
        let c = FileModel::build("crates/bench/src/c.rs", "pub fn jitter() {}\n");
        let g = build(&[a, b, c]);
        // fns: caller(0), data::jitter(1), bench::jitter(2)
        let callee_files: Vec<usize> = g.edges[0].iter().map(|&(id, _)| g.fns[id].0).collect();
        assert_eq!(callee_files, [1], "edges: {:?}", g.edges[0]);
    }

    #[test]
    fn same_crate_calls_resolve_without_use() {
        let a = FileModel::build("crates/rdd/src/a.rs", "fn f() { helper(); }\n");
        let b = FileModel::build("crates/rdd/src/b.rs", "pub fn helper() {}\n");
        let g = build(&[a, b]);
        assert_eq!(g.edges[0].len(), 1);
    }
}
