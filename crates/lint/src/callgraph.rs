//! Workspace call graph over the item model.
//!
//! Calls are extracted syntactically (an identifier directly followed by
//! `(`, or `.name(` for method calls) and resolved *by name* — but the
//! resolution is gated by the workspace's crate topology: a call in crate A
//! only resolves to a function in crate B when A == B, when the calling file
//! `use`s `sjc_B`, or when the call is path-qualified (`sjc_b::f(…)`,
//! `crate::m::f(…)`). That gate is what keeps name-based resolution honest:
//! without it, a bench-crate helper named `run` would taint every `run` in
//! the simulation crates and the entropy pass would drown in false
//! positives. With it, taint can only flow along edges the build graph
//! actually has.

use std::collections::BTreeMap;

use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Final path segment — the called name.
    pub name: String,
    /// Full path segments when the call was qualified (`["sjc_par",
    /// "par_map"]`); just `[name]` for bare calls.
    pub path: Vec<String>,
    /// True for `.name(…)` method calls.
    pub method: bool,
    /// For method calls, the receiver identifier when it is a single ident
    /// (`self.run()` → `Some("self")`; `x.y().run()` → `None`).
    pub recv: Option<String>,
    /// Token index of the name in the file's stream.
    pub tok: usize,
    pub line: usize,
}

/// Identifier-followed-by-`(` positions that are *not* calls.
pub(crate) fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "move"
            | "in"
            | "as"
            | "let"
            | "else"
            | "break"
            | "continue"
            | "fn"
            | "where"
            | "unsafe"
    )
}

/// Extracts call sites from `toks[start..=end]`.
pub fn calls_in(toks: &[Tok], start: usize, end: usize) -> Vec<Call> {
    let mut out = Vec::new();
    let hi = end.min(toks.len().saturating_sub(1));
    for i in start..=hi {
        if toks[i].kind != TokKind::Ident || is_call_keyword(&toks[i].text) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        if !next.is_op("(") {
            continue;
        }
        // `name!(…)` is a macro, `fn name(` a definition.
        if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_op("!")) {
            continue;
        }
        let method = i > 0 && toks[i - 1].is_op(".");
        let recv = (method && i >= 2 && toks[i - 2].kind == TokKind::Ident)
            .then(|| toks[i - 2].text.clone());
        // Walk the `a::b::name` qualifier chain backwards.
        let mut path = vec![toks[i].text.clone()];
        let mut k = i;
        while k >= 2 && toks[k - 1].is_op("::") && toks[k - 2].kind == TokKind::Ident {
            path.insert(0, toks[k - 2].text.clone());
            k -= 2;
        }
        out.push(Call {
            name: toks[i].text.clone(),
            path,
            method,
            recv,
            tok: i,
            line: toks[i].line,
        });
    }
    out
}

/// A function in the workspace-wide flat list: `(file index, fn index)`.
pub type FnId = usize;

/// One resolved caller→callee edge, carrying the call site that produced it
/// so taint and panic chains can be reported readably.
#[derive(Debug, Clone)]
pub struct Edge {
    pub callee: FnId,
    /// The call-site name as written in the caller.
    pub via: String,
    /// Token index of the call-site name in the caller's file.
    pub tok: usize,
    /// Line of the call site in the caller's file.
    pub line: usize,
}

pub struct CallGraph {
    /// Flat list of every function: indexes into `models[file].fns[idx]`.
    pub fns: Vec<(usize, usize)>,
    /// Call sites per function, parallel to `fns`.
    pub calls: Vec<Vec<Call>>,
    /// Resolved callee edges per function, parallel to `fns`.
    pub edges: Vec<Vec<Edge>>,
}

/// `sjc_<dir>` is the import path of the crate in `crates/<dir>` (package
/// names use hyphens, paths use underscores; every directory name in this
/// workspace is underscore-free, so the mapping is just a prefix).
fn import_alias(krate: &str) -> String {
    format!("sjc_{krate}")
}

/// Path segments that name scope roots or foreign crates rather than
/// workspace modules — they carry no module-file constraint.
fn is_scope_segment(seg: &str) -> bool {
    matches!(seg, "crate" | "self" | "super" | "std" | "core" | "alloc") || seg.starts_with("sjc_")
}

/// True when `rel_path` is a plausible file for module `m`:
/// `…/m.rs`, or any directory component named `m` (`…/m/mod.rs`,
/// `…/m/part.rs`).
fn in_module(rel_path: &str, m: &str) -> bool {
    let file = format!("{m}.rs");
    rel_path.split('/').any(|c| c == m || c == file)
}

pub fn build(models: &[FileModel]) -> CallGraph {
    let mut fns = Vec::new();
    let mut calls = Vec::new();
    // name -> ids, for resolution.
    let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();

    for (fi, m) in models.iter().enumerate() {
        for (gi, f) in m.fns.iter().enumerate() {
            let id = fns.len();
            fns.push((fi, gi));
            by_name.entry(f.name.as_str()).or_default().push(id);
            calls.push(match f.body {
                Some((s, e)) => calls_in(&m.toks, s, e),
                None => Vec::new(),
            });
        }
    }

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    for (id, &(fi, _)) in fns.iter().enumerate() {
        let caller_file = &models[fi];
        for call in &calls[id] {
            let Some(cands) = by_name.get(call.name.as_str()) else { continue };
            let segs = &call.path[..call.path.len() - 1];
            // `std::…` / `core::…` / `alloc::…` never target the workspace.
            if segs.first().is_some_and(|s| matches!(s.as_str(), "std" | "core" | "alloc")) {
                continue;
            }
            // The innermost lowercase qualifier names a module file
            // (`scheduler::lpt_makespan` must land in `scheduler.rs`). An
            // uppercase qualifier is a type (`Kind::assoc`) and constrains
            // nothing a token walk can check.
            let module = segs
                .iter()
                .rev()
                .find(|s| !is_scope_segment(s))
                .filter(|s| s.chars().next().is_some_and(|c| c.is_lowercase()));
            for &cand in cands {
                let (cfi, _) = fns[cand];
                let callee_file = &models[cfi];
                let callee_crate = &callee_file.krate;
                let crate_ok = match segs.first().map(String::as_str) {
                    // Crate-relative paths stay inside the caller's crate.
                    Some("crate") | Some("self") | Some("super") => {
                        *callee_crate == caller_file.krate
                    }
                    // An `sjc_x::…` path names exactly one crate; no
                    // same-crate fallback.
                    Some(q) if q.starts_with("sjc_") => q == import_alias(callee_crate),
                    // Bare, module-qualified, or `Type::assoc` calls: same
                    // crate, or a crate the file actually imports. A
                    // `self.method()` receiver pins the impl to this crate.
                    _ => {
                        if call.method && call.recv.as_deref() == Some("self") {
                            *callee_crate == caller_file.krate
                        } else {
                            *callee_crate == caller_file.krate
                                || caller_file.use_crates.contains(&import_alias(callee_crate))
                        }
                    }
                };
                let module_ok = module.is_none_or(|m| in_module(&callee_file.rel_path, m));
                if crate_ok && module_ok {
                    edges[id].push(Edge {
                        callee: cand,
                        via: call.name.clone(),
                        tok: call.tok,
                        line: call.line,
                    });
                }
            }
        }
    }

    CallGraph { fns, calls, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    #[test]
    fn calls_extracted_with_paths_and_methods() {
        let m = FileModel::build(
            "crates/cluster/src/x.rs",
            "fn f() { g(); h.run(); sjc_par::par_map(&v, k); if x { writeln!(o, \"\"); } }\n",
        );
        let (s, e) = m.fns[0].body.unwrap();
        let calls = calls_in(&m.toks, s, e);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        // `if` and the `writeln!` macro are not calls.
        assert_eq!(names, ["g", "run", "par_map"]);
        assert!(calls[1].method);
        assert_eq!(calls[2].path, ["sjc_par", "par_map"]);
    }

    #[test]
    fn resolution_is_gated_by_imports() {
        let a = FileModel::build(
            "crates/cluster/src/a.rs",
            "use sjc_data::jitter;\nfn caller() { jitter(); }\n",
        );
        let b = FileModel::build("crates/data/src/b.rs", "pub fn jitter() {}\n");
        // A bench fn with the same name must NOT resolve: cluster does not
        // import sjc_bench.
        let c = FileModel::build("crates/bench/src/c.rs", "pub fn jitter() {}\n");
        let g = build(&[a, b, c]);
        // fns: caller(0), data::jitter(1), bench::jitter(2)
        let callee_files: Vec<usize> = g.edges[0].iter().map(|e| g.fns[e.callee].0).collect();
        assert_eq!(callee_files, [1], "edges: {:?}", g.edges[0]);
    }

    #[test]
    fn same_crate_calls_resolve_without_use() {
        let a = FileModel::build("crates/rdd/src/a.rs", "fn f() { helper(); }\n");
        let b = FileModel::build("crates/rdd/src/b.rs", "pub fn helper() {}\n");
        let g = build(&[a, b]);
        assert_eq!(g.edges[0].len(), 1);
    }

    #[test]
    fn sjc_qualified_calls_resolve_to_that_crate_only() {
        // A same-crate fn with the same name must NOT shadow the qualified
        // target (the pre-precision resolver kept a same-crate fallback).
        let a = FileModel::build(
            "crates/cluster/src/a.rs",
            "fn f() { sjc_data::jitter(); }\npub fn jitter() {}\n",
        );
        let b = FileModel::build("crates/data/src/b.rs", "pub fn jitter() {}\n");
        let g = build(&[a, b]);
        let callee_files: Vec<usize> = g.edges[0].iter().map(|e| g.fns[e.callee].0).collect();
        assert_eq!(callee_files, [1], "edges: {:?}", g.edges[0]);
    }

    #[test]
    fn module_qualified_calls_require_the_module_file() {
        let a = FileModel::build(
            "crates/cluster/src/plan.rs",
            "fn f() -> u64 { scheduler::lpt_makespan() }\n",
        );
        let b = FileModel::build(
            "crates/cluster/src/scheduler.rs",
            "pub fn lpt_makespan() -> u64 { 1 }\n",
        );
        // Same name in a different module file: must not resolve.
        let c =
            FileModel::build("crates/cluster/src/other.rs", "pub fn lpt_makespan() -> u64 { 2 }\n");
        let g = build(&[a, b, c]);
        let callee_files: Vec<usize> = g.edges[0].iter().map(|e| g.fns[e.callee].0).collect();
        assert_eq!(callee_files, [1], "edges: {:?}", g.edges[0]);
    }

    #[test]
    fn self_method_calls_stay_in_the_callers_crate() {
        let a = FileModel::build(
            "crates/index/src/grid.rs",
            "use sjc_geom::probe;\nimpl Grid { fn run(&self) { self.probe(); } fn probe(&self) {} }\n",
        );
        let b = FileModel::build("crates/geom/src/lib.rs", "pub fn probe() {}\n");
        let g = build(&[a, b]);
        // fns: run(0), index::probe(1), geom::probe(2) — despite the `use`,
        // `self.probe()` can only be the index-crate impl.
        let callees: Vec<FnId> = g.edges[0].iter().map(|e| e.callee).collect();
        assert_eq!(callees, [1], "edges: {:?}", g.edges[0]);
    }

    #[test]
    fn cross_crate_method_calls_resolve_through_use() {
        // Satellite regression: a method call on a value whose type lives in
        // another crate resolves when the caller imports that crate.
        let a = FileModel::build(
            "crates/core/src/join.rs",
            "use sjc_index::Grid;\nfn f(g: &Grid) -> u64 { g.probe_count() }\n",
        );
        let b = FileModel::build(
            "crates/index/src/grid.rs",
            "impl Grid { pub fn probe_count(&self) -> u64 { 7 } }\n",
        );
        let g = build(&[a, b]);
        let callees: Vec<FnId> = g.edges[0].iter().map(|e| e.callee).collect();
        assert_eq!(callees, [1], "edges: {:?}", g.edges[0]);
        assert_eq!(g.edges[0][0].via, "probe_count");
    }

    #[test]
    fn std_qualified_calls_never_resolve_into_the_workspace() {
        let a = FileModel::build("crates/rdd/src/a.rs", "fn f() -> u64 { std::cmp::max(1, 2) }\n");
        let b = FileModel::build(
            "crates/rdd/src/b.rs",
            "pub fn max(a: u64, b: u64) -> u64 { a.max(b) }\n",
        );
        let g = build(&[a, b]);
        assert!(g.edges[0].is_empty(), "edges: {:?}", g.edges[0]);
    }
}
