//! Forward binding-level dataflow over one function body.
//!
//! The `entropy-taint` pass tracks one boolean fact ("derived from the
//! clock") through `let` chains; the `unit-flow` pass needs the same walk
//! with a richer fact (which physical unit a binding carries). This module
//! is the shared machinery: statement grouping by line, `let`-binding
//! extraction, and a generic fact environment. Passes drive the walk
//! themselves — facts change only at bindings, so a pass can interleave its
//! own sink checks between binding updates and stay flow-sensitive.
//!
//! Like everything in this crate it is an approximation with a fixed
//! direction of error: a binding the extractor does not model binds *no*
//! fact, so unmodeled code can hide a finding but never invent one.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};

/// Groups token indices of `toks[start..=end]` by 1-based source line,
/// preserving token order within a line. Indices are absolute into `toks`.
pub fn group_lines(toks: &[Tok], start: usize, end: usize) -> BTreeMap<usize, Vec<usize>> {
    let mut lines: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let stop = end.min(toks.len().saturating_sub(1));
    for (i, t) in toks.iter().enumerate().take(stop + 1).skip(start) {
        lines.entry(t.line).or_default().push(i);
    }
    lines
}

/// One `let` statement: the names it binds and the token range of its
/// initializer expression.
#[derive(Debug)]
pub struct LetBinding {
    /// Identifiers bound by the pattern (`let (a, mut b) = …` binds both).
    /// Type-annotation idents are excluded; pattern idents are kept even
    /// when they are really enum paths (`let Some(x) = …` "binds" `Some`) —
    /// over-binding only widens fact propagation, the safe direction.
    pub names: Vec<String>,
    /// Token index of the `let` keyword.
    pub let_tok: usize,
    /// Inclusive token range of the initializer, from after `=` to before
    /// the terminating `;` (crossing lines when the statement does).
    pub rhs: (usize, usize),
    /// 1-based source line of the `let` keyword.
    pub line: usize,
}

/// Extracts every `let` binding with an initializer in `toks[start..=end]`,
/// in source order. `let … ;` without `=` (declarations) and `if let`/`while
/// let` scrutinees (whose `=` never appears at pattern depth) are skipped.
pub fn let_bindings(toks: &[Tok], start: usize, end: usize) -> Vec<LetBinding> {
    let end = end.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    let mut i = start;
    while i <= end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        // `if let` / `while let` are pattern matches, not bindings whose
        // initializer we can treat as a value expression.
        if i > start && i > 0 && (toks[i - 1].is_ident("if") || toks[i - 1].is_ident("while")) {
            i += 1;
            continue;
        }
        let let_tok = i;
        // Pattern + optional type annotation, up to `=` at nesting depth 0.
        let mut names = Vec::new();
        let mut depth = 0i64;
        let mut in_ty = false;
        let mut j = i + 1;
        let mut eq = None;
        while j <= end {
            let t = &toks[j];
            if t.is_op("(") || t.is_op("[") || t.is_op("<") {
                depth += 1;
            } else if t.is_op(")") || t.is_op("]") || t.is_op(">") {
                depth -= 1;
            } else if depth <= 0 && t.is_op("=") {
                eq = Some(j);
                break;
            } else if depth <= 0 && (t.is_op(";") || t.is_op("{")) {
                break; // bodiless `let x;` or something we do not model
            } else if t.is_op(":") && depth <= 0 {
                in_ty = true;
            } else if t.is_op(",") && depth <= 0 {
                in_ty = false;
            } else if t.kind == TokKind::Ident && !in_ty && t.text != "mut" {
                names.push(t.text.clone());
            }
            j += 1;
        }
        let Some(eq) = eq else {
            i = j + 1;
            continue;
        };
        // Initializer: to the `;` at nesting depth 0. A `{` at depth 0
        // (struct literal, `match`/block initializer, let-else tail) ends
        // the modeled range early — truncating the rhs loses facts, which
        // is the safe direction.
        let mut depth = 0i64;
        let mut k = eq + 1;
        while k <= end {
            let t = &toks[k];
            if depth <= 0 && (t.is_op(";") || t.is_op("{")) {
                break;
            }
            if t.is_op("(") || t.is_op("[") {
                depth += 1;
            } else if t.is_op(")") || t.is_op("]") {
                depth -= 1;
            }
            k += 1;
        }
        let rhs_end = k.saturating_sub(1).max(eq + 1).min(end);
        if eq < rhs_end {
            out.push(LetBinding { names, let_tok, rhs: (eq + 1, rhs_end), line: toks[i].line });
        }
        i = k + 1;
    }
    out
}

/// A fact environment: the forward state of one walk, mapping binding names
/// to pass-specific facts. `BTreeMap` so iteration (and therefore reporting)
/// is deterministic.
#[derive(Debug, Default)]
pub struct Flow<F> {
    facts: BTreeMap<String, F>,
}

impl<F> Flow<F> {
    pub fn new() -> Flow<F> {
        Flow { facts: BTreeMap::new() }
    }

    pub fn get(&self, name: &str) -> Option<&F> {
        self.facts.get(name)
    }

    /// Binds `name` to `fact`, or clears it on `None` — rebinding a name
    /// without a derivable fact must kill the stale one, otherwise a later
    /// sink would report through a binding that no longer holds.
    pub fn bind(&mut self, name: &str, fact: Option<F>) {
        match fact {
            Some(f) => {
                self.facts.insert(name.to_string(), f);
            }
            None => {
                self.facts.remove(name);
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    fn bindings_of(src: &str) -> (FileModel, Vec<LetBinding>) {
        let m = FileModel::build("crates/cluster/src/x.rs", src);
        let (s, e) = m.fns[0].body.expect("fixture fn has a body");
        let b = let_bindings(&m.toks, s, e);
        (m, b)
    }

    #[test]
    fn simple_and_tuple_patterns_bind() {
        let (m, b) = bindings_of(
            "fn f() {\n    let a = one();\n    let (b, mut c) = pair();\n    let d: u64 = a + b;\n}\n",
        );
        let names: Vec<Vec<String>> = b.iter().map(|l| l.names.clone()).collect();
        assert_eq!(names, [vec!["a"], vec!["b", "c"], vec!["d"]]);
        // The annotated binding's rhs starts after `=`, not after the type.
        let (rs, _) = b[2].rhs;
        assert!(m.toks[rs].is_ident("a"), "{:?}", m.toks[rs]);
    }

    #[test]
    fn type_annotations_do_not_bind() {
        let (_, b) = bindings_of("fn f() {\n    let x: Vec<u64> = make();\n}\n");
        assert_eq!(b[0].names, ["x"]);
    }

    #[test]
    fn multiline_initializers_span_lines() {
        let (m, b) = bindings_of("fn f() {\n    let x = long(\n        call(),\n    );\n}\n");
        assert_eq!(b.len(), 1);
        let (_, re) = b[0].rhs;
        assert!(m.toks[re].is_op(")"), "{:?}", m.toks[re]);
    }

    #[test]
    fn bodiless_let_is_skipped() {
        let (_, b) = bindings_of("fn f() {\n    let x;\n    x = 1;\n}\n");
        assert!(b.is_empty());
    }

    #[test]
    fn flow_binds_and_clears() {
        let mut flow: Flow<u8> = Flow::new();
        flow.bind("a", Some(1));
        assert_eq!(flow.get("a"), Some(&1));
        flow.bind("a", None);
        assert!(flow.get("a").is_none() && flow.is_empty());
    }
}
