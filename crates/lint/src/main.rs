//! `sjc-lint` binary: checks the workspace rooted at the given directory
//! (default: the current directory) and exits non-zero on violations.
//!
//! ```text
//! cargo run -p sjc-lint            # check the workspace
//! cargo run -p sjc-lint -- --rules # list the rules
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use sjc_lint::Rule;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--rules" => {
                for rule in Rule::ALL {
                    println!("{}", rule.name());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "sjc-lint — workspace invariant checker\n\n\
                     USAGE: sjc-lint [ROOT] [--rules]\n\n\
                     Scans ROOT (default `.`) for violations of the workspace\n\
                     rules (no-nondeterminism, no-panic-in-lib, float-hygiene,\n\
                     bench-isolation, serial-hot-loop). Suppress a finding inline with\n\
                     `// sjc-lint: allow(<rule>) — <reason>`."
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("sjc-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    match sjc_lint::check_workspace(&root) {
        Err(e) => {
            eprintln!("sjc-lint: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
        Ok(violations) if violations.is_empty() => {
            println!("sjc-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("sjc-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
    }
}
