//! `sjc-lint` binary: runs both checker layers (the line rules and the
//! `sjc-analyze` passes) over the workspace rooted at the given directory
//! (default: the current directory) and exits non-zero on violations.
//!
//! ```text
//! cargo run -p sjc-lint                               # check the workspace
//! cargo run -p sjc-lint -- --format json              # machine-readable report
//! cargo run -p sjc-lint -- --baseline LINT_BASELINE.json   # enforce the ratchet
//! cargo run -p sjc-lint -- --write-baseline LINT_BASELINE.json
//! cargo run -p sjc-lint -- --rules                    # list the rules
//! ```
//!
//! Exit codes: `0` clean (and, with `--baseline`, within the ratchet), `1`
//! error-severity violations (or a ratchet breach), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use sjc_lint::{json, sarif, Rule, Severity};

enum Format {
    Text,
    Json,
    Sarif,
}

fn usage() {
    println!(
        "sjc-lint — workspace invariant checker (line rules + sjc-analyze)\n\n\
         USAGE: sjc-lint [ROOT] [OPTIONS]\n\n\
         OPTIONS:\n\
         \x20 --format text|json|sarif  report style (default: text); `sarif` emits a\n\
         \x20                           SARIF 2.1.0 document for code-scanning upload\n\
         \x20 --baseline <path>         enforce the count ratchet against a checked-in\n\
         \x20                           baseline: per-rule per-file counts may only decrease\n\
         \x20 --write-baseline <path>   write the current counts as the new baseline\n\
         \x20 --timings                 print per-pass wall times to stderr\n\
         \x20 --rules                   list the rule names and exit\n\n\
         Scans ROOT (default `.`) with the line rules (no-nondeterminism,\n\
         no-panic-in-lib, float-hygiene, bench-isolation, serial-hot-loop,\n\
         bounded-retry), the cross-file analyzer passes (entropy-taint,\n\
         par-closure-race, error-flow, hot-alloc, loop-invariant-call,\n\
         unit-flow), and the interprocedural passes (panic-path,\n\
         interproc-unit-flow, cache-purity, stale-suppression). Without\n\
         --baseline the exit code fails on errors only; warnings ride the\n\
         report and the ratchet. Suppress a finding inline with\n\
         `// sjc-lint: allow(<rule>) — <reason>`."
    );
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut timings = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rules" => {
                for rule in Rule::ALL {
                    println!("{}", rule.name());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("sjc-lint: --format takes `text`, `json`, or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sjc-lint: --baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--timings" => timings = true,
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sjc-lint: --write-baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            other if !other.starts_with('-') => root = PathBuf::from(other),
            other => {
                eprintln!("sjc-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let (violations, pass_timings) = match sjc_lint::check_all_timed(&root) {
        Ok(vs) => vs,
        Err(e) => {
            eprintln!("sjc-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if timings {
        for t in &pass_timings {
            eprintln!("sjc-lint: timing {:>20}  {:>9.3} ms", t.name, t.wall.as_secs_f64() * 1e3);
        }
        let total: f64 = pass_timings.iter().map(|t| t.wall.as_secs_f64()).sum();
        eprintln!("sjc-lint: timing {:>20}  {:>9.3} ms", "total", total * 1e3);
    }
    let counts = json::Counts::from_violations(&violations);

    if let Some(path) = write_baseline {
        if let Err(e) = std::fs::write(&path, counts.to_baseline_json()) {
            eprintln!("sjc-lint: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("sjc-lint: wrote baseline ({} violation(s)) to {}", counts.total, path.display());
        return ExitCode::SUCCESS;
    }

    match format {
        Format::Json => print!("{}", json::report(&violations)),
        Format::Sarif => {
            // Self-validate before emitting: CI uploads this document to
            // code scanning, and a malformed report fails there silently.
            let report = sarif::report(&violations);
            if let Err(e) = sarif::validate(&report) {
                eprintln!("sjc-lint: generated SARIF failed self-validation: {e}");
                return ExitCode::from(2);
            }
            print!("{report}");
        }
        Format::Text => {
            for v in &violations {
                println!("{}: {v}", v.severity);
            }
            if violations.is_empty() {
                println!("sjc-lint: workspace clean");
            } else {
                let errors = violations.iter().filter(|v| v.severity == Severity::Error).count();
                println!(
                    "sjc-lint: {} violation(s) ({} error(s), {} warning(s))",
                    violations.len(),
                    errors,
                    violations.len() - errors
                );
            }
        }
    }

    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sjc-lint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let base = match json::Counts::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sjc-lint: bad baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        if let Err(e) = counts.ratchet_against(&base) {
            eprintln!("sjc-lint: baseline ratchet failed:\n{e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Without a baseline, only unsuppressed errors fail the run — warnings
    // (e.g. loop-invariant-call) ride the report and the ratchet.
    if violations.iter().any(|v| v.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
