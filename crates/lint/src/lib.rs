//! # sjc-lint — workspace invariant checker
//!
//! A self-contained, std-only static checker for the invariants this
//! reproduction depends on. It has **two layers**:
//!
//! * the **line rules** below — single-line scans over comment- and
//!   string-stripped source text, millisecond-fast, zero dependencies, so
//!   they can gate `cargo test` (see the workspace's `tests/lint_gate.rs`)
//!   without slowing anything down;
//! * **`sjc-analyze`** (the [`passes`] module) — a whole-workspace analyzer
//!   built on a real token stream ([`lexer`]), an item model with function
//!   extents and test regions ([`items`]), and a crate-topology-gated call
//!   graph ([`callgraph`]). It closes the gaps a line scanner cannot see:
//!   transitive reachability, captured-state mutation inside closures, and
//!   construction/handling coverage of the failure vocabulary.
//!
//! [`check_workspace`] runs the line rules, [`analyze_workspace`] the
//! passes, and [`check_all`] both. `--format json` plus the checked-in
//! `LINT_BASELINE.json` ratchet (see [`json`]) make the combined count a
//! one-way contract: it may only go down.
//!
//! ## Rules
//!
//! | rule | scope | what it forbids |
//! |------|-------|-----------------|
//! | `no-nondeterminism` | non-test src of `geom`, `index`, `cluster`, `mapreduce`, `rdd`, `core` | `Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`, `HashMap`/`HashSet` (iteration order is unspecified — simulated results must be bit-identical across runs; use `BTreeMap`/`BTreeSet`/sorted `Vec`) |
//! | `no-panic-in-lib` | non-test src of the seven library crates (`geom`, `index`, `cluster`, `mapreduce`, `rdd`, `data`, `core`) | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`, and slice indexing `x[i]` — library code returns `Result`/`Option`, it does not abort the caller |
//! | `float-hygiene` | non-test src of `geom` | bare `==`/`!=` against a float literal — geometric predicates use the epsilon helpers in `sjc_geom::predicates` |
//! | `bench-isolation` | everything except `crates/bench` (and code already covered by `no-nondeterminism`) | wall-clock and entropy APIs (`Instant::now`, `SystemTime::now`, `thread_rng`, `from_entropy`) — only the bench harness may observe the host |
//! | `serial-hot-loop` | non-test src of the designated hot-path files (see `HOT_PATH_FILES`) | `for … in tasks`-shaped loops over a hot collection (`tasks`, `groups`, `parts`, …) — host-side hot loops go through `sjc_par`; an intentionally serial merge states its reason in a suppression |
//! | `bounded-retry` | non-test src of the recovery engine crates (`cluster`, `mapreduce`, `rdd`) | a loop that drives a retry/attempt/resubmit counter (`attempt += 1`, `for attempt in …`) without referencing a `MAX_*` constant inside the loop — retry budgets must be named bounds (`MAX_TASK_ATTEMPTS`, `MAX_STAGE_RESUBMITS`), not implicit or infinite |
//! | `entropy-taint` | whole workspace (`sjc-analyze`) | simulation-crate functions that *transitively* reach a wall-clock/entropy API through the call graph, and clock-derived values flowing into `sim_ns`/trace output in any crate (bench may observe the clock, but simulated numbers must never be derived from it) |
//! | `par-closure-race` | closures passed to the `sjc_par` entry points | capturing `&mut` bindings, `Cell`/`RefCell`, relaxed atomics, `unsafe` blocks, or mutating captured collections — the static counterpart of the 1-vs-8-thread bit-identity tests |
//! | `error-flow` | library crates (`sjc-analyze`) | `SimError` variants never constructed or never handled, and `Result`s silently discarded via `let _ =` / trailing `.ok();` (the infallible `write!` into a `String` is exempt) |
//! | `hot-alloc` | hot-path functions (`sjc-analyze`) | per-iteration allocation (`clone()`, `to_string()`, `collect()`, `format!`, `vec!`, `Box::new`, …) inside a loop of any function reachable — through the crate-topology-gated call graph — from an `sjc_par` entry-point closure or a `crates/bench` kernel; pre-size with `with_capacity` outside the loop or reuse a buffer (`clear()` + refill) |
//! | `loop-invariant-call` | hot-path functions (`sjc-analyze`, **warning**) | a call inside a hot loop whose arguments are all loop-invariant — every iteration recomputes the same value; hoist the call above the loop |
//! | `unit-flow` | whole workspace (`sjc-analyze`) | `+`/`-` arithmetic mixing differently-united bindings (`*_ns` vs `*_bytes` vs `*_count`), tracked through `let` chains, and non-nanosecond values assigned into `*_ns` sinks — `*`/`/` are exempt as unit conversions |
//! | `panic-path` | `pub` fns of the simulation crates (`sjc-analyze`) | a public API function that *transitively* reaches a panic site (`.unwrap()`, `panic!`, slice indexing, literal-zero divisor) through the call graph — the diagnostic carries the full call chain; audited `allow(no-panic-in-lib)`/`allow(panic-path)` sites are trusted |
//! | `interproc-unit-flow` | whole workspace (`sjc-analyze`) | a call whose summarized return unit mixes with a differently-united operand, flows into a `*_ns` sink, or lands in a parameter declared with a different unit — the cross-function gap the intra-procedural `unit-flow` cannot see |
//! | `cache-purity` | fns reachable from memoized seams (`sjc-analyze`) | a function reachable from `generate_cached`/other memoized entry points whose body reads the clock/entropy or mutates a static — the cache key must fully determine the cached value; the seam's own bookkeeping file is exempt |
//! | `scoped-spawn-in-hot-path` | everything except `crates/par` (`sjc-analyze`) | direct `std::thread::scope`/`std::thread::spawn` calls — per-call thread spawning is exactly the negative-scaling overhead the persistent pool removed; dispatch through the `sjc_par` entry points instead |
//! | `stale-suppression` | whole workspace (**warning**) | an audited `allow(<rule>)` comment whose rule no longer fires on the covered span (audits consumed by the panic-path summaries stay live) — suppressions are part of the audit trail and must not rot |
//!
//! ## Suppression
//!
//! A violation is suppressed by an inline comment **with a reason**:
//!
//! ```text
//! let x = items[i]; // sjc-lint: allow(no-panic-in-lib) — i comes from enumerate() over items
//! ```
//!
//! or, for a whole line, by a comment-only line directly above it. An
//! `allow(...)` with an unknown rule name or without a reason is itself a
//! violation (`bad-suppression`): suppressions are part of the audit trail,
//! not an escape hatch.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod items;
pub mod json;
pub mod lexer;
pub mod passes;
pub mod sarif;
pub mod summaries;

pub use passes::analyze_workspace;

/// Crates whose non-test sources must be deterministic: they produce the
/// simulated numbers, which the paper reproduction requires to be
/// bit-identical across runs and platforms.
pub(crate) const SIM_CRATES: &[&str] = &["geom", "index", "cluster", "mapreduce", "rdd", "core"];

/// Library crates whose non-test sources must not panic.
pub(crate) const PANIC_FREE_CRATES: &[&str] =
    &["geom", "index", "cluster", "mapreduce", "rdd", "data", "core"];

/// Crates whose non-test sources must compare floats through epsilon helpers.
const FLOAT_CRATES: &[&str] = &["geom"];

/// Crates holding the fault-recovery engines: any loop here that drives a
/// retry/attempt counter must name its bound (a `MAX_*` constant) inside the
/// loop, so every retry budget is auditable and finite.
const RETRY_CRATES: &[&str] = &["cluster", "mapreduce", "rdd"];

/// The one `bounded-retry` message, shared by the three places a retry
/// region can close (multi-line body, wrapped header, one-line loop).
const BOUNDED_RETRY_MSG: &str = "retry loop without a named bound — reference a MAX_* constant (MAX_TASK_ATTEMPTS / MAX_STAGE_RESUBMITS) inside the loop so the retry budget is finite and auditable";

/// Wall-clock / entropy tokens: allowed only in `crates/bench`.
const CLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime::now", "thread_rng", "from_entropy"];

/// Files whose per-task / per-partition loops dominate host wall-clock.
/// Non-test `for` loops over a hot collection here must either go through
/// `sjc_par` or carry a suppression explaining why they stay serial (e.g. an
/// order-sensitive merge whose heavy work already ran in parallel).
const HOT_PATH_FILES: &[&str] = &[
    "crates/mapreduce/src/job.rs",
    "crates/rdd/src/rdd.rs",
    "crates/rdd/src/shuffle.rs",
    "crates/index/src/rtree/str_bulk.rs",
    "crates/index/src/rtree/hilbert.rs",
    "crates/index/src/join/plane_sweep.rs",
];

/// Collection names whose iteration marks a hot loop: the task/partition/
/// strip granularity that `sjc_par` parallelizes over. Matched with an
/// identifier boundary, so `task.records` (per-task inner loop, already
/// inside a parallel closure) and `sjc_par::par_map(&parts, …)` do not fire.
const HOT_COLLECTIONS: &[&str] =
    &["tasks", "groups", "group_list", "parts", "cells", "strips", "anchors"];

/// The named rules. `BadSuppression` is the meta-rule for malformed
/// `allow(...)` comments and cannot itself be suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    NoNondeterminism,
    NoPanicInLib,
    FloatHygiene,
    BenchIsolation,
    SerialHotLoop,
    BoundedRetry,
    EntropyTaint,
    ParClosureRace,
    ErrorFlow,
    HotAlloc,
    LoopInvariantCall,
    UnitFlow,
    PanicPath,
    InterprocUnitFlow,
    CachePurity,
    ScopedSpawnInHotPath,
    StaleSuppression,
    BadSuppression,
}

impl Rule {
    pub const ALL: [Rule; 17] = [
        Rule::NoNondeterminism,
        Rule::NoPanicInLib,
        Rule::FloatHygiene,
        Rule::BenchIsolation,
        Rule::SerialHotLoop,
        Rule::BoundedRetry,
        Rule::EntropyTaint,
        Rule::ParClosureRace,
        Rule::ErrorFlow,
        Rule::HotAlloc,
        Rule::LoopInvariantCall,
        Rule::UnitFlow,
        Rule::PanicPath,
        Rule::InterprocUnitFlow,
        Rule::CachePurity,
        Rule::ScopedSpawnInHotPath,
        Rule::StaleSuppression,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::NoNondeterminism => "no-nondeterminism",
            Rule::NoPanicInLib => "no-panic-in-lib",
            Rule::FloatHygiene => "float-hygiene",
            Rule::BenchIsolation => "bench-isolation",
            Rule::SerialHotLoop => "serial-hot-loop",
            Rule::BoundedRetry => "bounded-retry",
            Rule::EntropyTaint => "entropy-taint",
            Rule::ParClosureRace => "par-closure-race",
            Rule::ErrorFlow => "error-flow",
            Rule::HotAlloc => "hot-alloc",
            Rule::LoopInvariantCall => "loop-invariant-call",
            Rule::UnitFlow => "unit-flow",
            Rule::PanicPath => "panic-path",
            Rule::InterprocUnitFlow => "interproc-unit-flow",
            Rule::CachePurity => "cache-purity",
            Rule::ScopedSpawnInHotPath => "scoped-spawn-in-hot-path",
            Rule::StaleSuppression => "stale-suppression",
            Rule::BadSuppression => "bad-suppression",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// One-line summary for report emitters (SARIF `shortDescription`).
    pub fn summary(self) -> &'static str {
        match self {
            Rule::NoNondeterminism => {
                "No wall-clock, entropy, or hash-order APIs in simulation code"
            }
            Rule::NoPanicInLib => "Library code must not panic or index unchecked",
            Rule::FloatHygiene => "Float comparisons go through epsilon helpers",
            Rule::BenchIsolation => "Only crates/bench may observe the host clock or entropy",
            Rule::SerialHotLoop => "Hot-path task loops go through sjc_par",
            Rule::BoundedRetry => "Retry loops name a MAX_* bound",
            Rule::EntropyTaint => "No transitive entropy reach or clock-derived simulated output",
            Rule::ParClosureRace => "Parallel closures must not mutate captured state",
            Rule::ErrorFlow => "Every error variant is constructed and handled; no silent discards",
            Rule::HotAlloc => "No per-iteration allocation in hot-path loops",
            Rule::LoopInvariantCall => "Hoist loop-invariant calls out of hot loops",
            Rule::UnitFlow => "No unit-mixing arithmetic reaching sim_ns/metrics sinks",
            Rule::PanicPath => "Public simulation API never transitively reaches a panic site",
            Rule::InterprocUnitFlow => "Call return and argument units match across functions",
            Rule::CachePurity => "Everything reachable from a memoized seam is pure",
            Rule::ScopedSpawnInHotPath => "Thread spawning goes through the sjc_par pool",
            Rule::StaleSuppression => "Suppressions whose rule no longer fires are removed",
            Rule::BadSuppression => "Suppressions name a known rule and carry a reason",
        }
    }

    /// The severity a finding of this rule carries by default.
    pub fn default_severity(self) -> Severity {
        match self {
            Rule::LoopInvariantCall | Rule::StaleSuppression => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How bad a finding is. The gate fails on any unsuppressed **error**;
/// warnings ride along in the report and count against the baseline ratchet
/// but do not fail the build on their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A secondary location attached to a finding — one hop of a call chain, in
/// source order from the reported function down to the offending site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    pub path: String,
    pub line: usize,
    pub note: String,
}

/// One finding: rule, severity, location (workspace-relative path, 1-based
/// line) and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    pub severity: Severity,
    pub path: String,
    pub line: usize,
    pub message: String,
    /// Chain-of-calls context for interprocedural findings; empty for the
    /// single-site rules.
    pub related: Vec<Related>,
}

impl Violation {
    /// A new finding at the rule's [`Rule::default_severity`].
    pub fn new(
        rule: Rule,
        path: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Violation {
        Violation {
            rule,
            severity: rule.default_severity(),
            path: path.into(),
            line,
            message: message.into(),
            related: Vec::new(),
        }
    }

    pub fn with_severity(mut self, severity: Severity) -> Violation {
        self.severity = severity;
        self
    }

    pub fn with_related(mut self, related: Vec<Related>) -> Violation {
        self.related = related;
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FileClass<'a> {
    /// Crate directory name under `crates/`, or `""` for the root package.
    pub(crate) krate: &'a str,
    /// True for `tests/` and `benches/` directories: test harness code.
    pub(crate) harness: bool,
}

pub(crate) fn classify(rel_path: &str) -> FileClass<'_> {
    let mut parts = rel_path.split('/');
    let first = parts.next().unwrap_or("");
    if first == "crates" {
        let krate = parts.next().unwrap_or("");
        let section = parts.next().unwrap_or("");
        FileClass { krate, harness: section == "tests" || section == "benches" }
    } else {
        FileClass { krate: "", harness: first == "tests" || first == "benches" }
    }
}

/// Replaces comments, string contents and char literals with
/// layout-preserving filler so token scans cannot match inside them. The
/// returned text has exactly the same line structure as the input.
pub(crate) fn strip_noncode(src: &str) -> String {
    strip(src, false)
}

/// Like [`strip_noncode`] but keeps comment text: the input for suppression
/// parsing, where allow markers must be real comments, not string contents.
fn strip_strings_only(src: &str) -> String {
    strip(src, true)
}

fn strip(src: &str, keep_comments: bool) -> String {
    enum St {
        Code,
        Str,
        RawStr(usize),
        Chr,
        LineComment,
        BlockComment(usize),
    }
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    if keep_comments {
                        out.push_str("//");
                    }
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    if keep_comments {
                        out.push_str("/*");
                    }
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    out.push('"');
                    i += 1;
                } else if c == 'r' && matches!(chars.get(i + 1), Some('"') | Some('#')) {
                    // Possible raw string: r"..." or r#"..."# (any # count).
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        out.push('"');
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x' or an escape.
                    let is_char = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(&n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                        _ => false,
                    };
                    if is_char {
                        st = St::Chr;
                    } else {
                        out.push(c);
                    }
                    i += 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        out.push('\n');
                    }
                    i += 2;
                } else {
                    if c == '"' {
                        st = St::Code;
                        out.push('"');
                    } else if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == '"' && (0..h).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    st = St::Code;
                    out.push('"');
                    i += 1 + h;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            St::Chr => {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '\'' {
                        st = St::Code;
                    }
                    i += 1;
                }
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else if keep_comments {
                    out.push(c);
                }
                i += 1;
            }
            St::BlockComment(d) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(d + 1);
                    if keep_comments {
                        out.push_str("/*");
                    }
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if d == 1 { St::Code } else { St::BlockComment(d - 1) };
                    if keep_comments {
                        out.push_str("*/");
                    }
                    i += 2;
                } else {
                    if c == '\n' {
                        out.push('\n');
                    } else if keep_comments {
                        out.push(c);
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True when `word` occurs in `line` with non-identifier characters (or line
/// edges) on both sides.
fn has_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(line[..at].chars().next_back().unwrap_or(' '));
        let after_ok = !line[at + word.len()..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// True when the line contains slice/array indexing: a `[` whose previous
/// non-space character ends an expression (identifier, `)`, or `]`). Macro
/// brackets (`vec![`), attributes (`#[`), and type positions (`: [u8; 4]`)
/// are naturally excluded because their preceding character is `!`, `#`, or
/// punctuation.
fn has_slice_indexing(line: &str) -> bool {
    // After these keywords a `[` opens an array literal or type, never an
    // index expression.
    const KEYWORDS: &[&str] = &[
        "in", "mut", "ref", "return", "for", "if", "else", "match", "while", "loop", "break",
        "move", "dyn", "impl", "where", "as", "const", "static", "let",
    ];
    let chars: Vec<char> = line.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        let Some(&p) = chars[..j].last() else { continue };
        if p == ')' || p == ']' {
            return true;
        }
        if is_ident_char(p) {
            let mut start = j;
            while start > 0 && is_ident_char(chars[start - 1]) {
                start -= 1;
            }
            let ident: String = chars[start..j].iter().collect();
            // `'a [u8]` is a lifetime in a slice type, not an index base.
            let lifetime = start > 0 && chars[start - 1] == '\'';
            if !lifetime && !KEYWORDS.contains(&ident.as_str()) {
                return true;
            }
        }
    }
    false
}

/// True when the line compares against a float literal with `==` or `!=`.
/// This is a deliberate under-approximation (a typed checker would catch
/// `a == b` on two `f64` variables), but it is precise: it never flags
/// boolean or integer comparisons.
fn has_float_literal_comparison(line: &str) -> bool {
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(pos) = line[start..].find(op) {
            let at = start + pos;
            // Skip `<=`, `>=`, pattern `=>`: require a standalone operator.
            let before = line[..at].trim_end();
            let after = line[at + 2..].trim_start();
            let left: String = {
                let t: String = before
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident_char(c) || c == '.' || c == '-' || c == '+')
                    .collect();
                t.chars().rev().collect()
            };
            let right: String = after
                .chars()
                .take_while(|&c| is_ident_char(c) || c == '.' || c == '-' || c == '+')
                .collect();
            if is_float_literal(&left) || is_float_literal(&right) {
                return true;
            }
            start = at + 2;
        }
    }
    false
}

/// Whether `token` is a float literal like `0.0`, `1e-9`, or `2.5_f64`.
fn is_float_literal(token: &str) -> bool {
    let t = token.trim_start_matches(['-', '+']);
    let mut has_digit = false;
    let mut has_point_or_exp = false;
    let mut after_exp = false;
    for c in t.chars() {
        if c.is_ascii_digit() {
            has_digit = true;
            after_exp = false;
        } else if c == '.' {
            has_point_or_exp = true;
        } else if (c == 'e' || c == 'E') && has_digit {
            has_point_or_exp = true;
            after_exp = true;
        } else if (c == '-' || c == '+') && after_exp {
            after_exp = false;
        } else if c == '_' || c == 'f' {
            // digit separators and the f32/f64 suffix marker
            after_exp = false;
        } else {
            return false;
        }
    }
    has_digit && has_point_or_exp
}

/// If `line` is a `for … in <hot collection>…` loop header, returns the hot
/// collection's name. The iterated expression is taken after the first
/// ` in `, stripped of leading `&`/`mut `/`self.` — so `&mut self.parts`
/// matches `parts` — and must start with the hot name at an identifier
/// boundary: `task.records` does not match `tasks`, and call expressions
/// like `sjc_par::par_map(&parts, …)` start with `sjc_par`, not a hot name.
fn serial_hot_loop_target(line: &str) -> Option<&'static str> {
    let t = line.trim_start();
    if !t.starts_with("for ") {
        return None;
    }
    let expr = t.split(" in ").nth(1)?.trim_start();
    let mut expr = expr;
    loop {
        let next = expr
            .strip_prefix('&')
            .or_else(|| expr.strip_prefix("mut "))
            .or_else(|| expr.strip_prefix("self."));
        match next {
            Some(rest) => expr = rest.trim_start(),
            None => break,
        }
    }
    HOT_COLLECTIONS.iter().copied().find(|name| {
        expr.strip_prefix(name).is_some_and(|rest| !rest.chars().next().is_some_and(is_ident_char))
    })
}

/// True when `line` *begins* a loop header: a `for`/`while`/`loop` keyword
/// (optionally labelled, `'outer: loop {`) at the start of the line. The
/// body's `{` may sit on this line or — when rustfmt wraps a long header —
/// on a later one; the caller tracks the open brace separately, so wrapped
/// headers are no longer invisible to `bounded-retry`.
fn loop_header_start(line: &str) -> bool {
    let mut t = line.trim_start();
    if let Some(rest) = t.strip_prefix('\'') {
        if let Some(colon) = rest.find(':') {
            if !rest[..colon].is_empty() && rest[..colon].chars().all(is_ident_char) {
                t = rest[colon + 1..].trim_start();
            }
        }
    }
    t.starts_with("for ")
        || t.starts_with("while ")
        || t.starts_with("while(")
        || t == "loop"
        || t.starts_with("loop {")
        || t.starts_with("loop{")
}

/// True when the line mentions a retry-shaped identifier (`retry`,
/// `attempt`, `resubmit` — any case, as a substring of an identifier, so
/// `out.attempts` and `StageResubmit` both count).
fn has_retry_token(line: &str) -> bool {
    let lower = line.to_ascii_lowercase();
    ["retry", "attempt", "resubmit"].iter().any(|t| lower.contains(t))
}

/// True when `name` is a retry-shaped identifier.
fn is_retry_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ["retry", "attempt", "resubmit"].iter().any(|t| lower.contains(t))
}

/// True when the line *drives* a retry counter: a retry-shaped identifier
/// incremented by one. Matched on the token stream, so `attempt += 1`,
/// `attempt +=1` and `attempt+=1` are all the same increment — whitespace
/// is not load-bearing. Aggregations over already-recorded attempts
/// (`trace.attempts += s.attempts`) deliberately do not match: the
/// right-hand side is not the literal `1`.
fn drives_retry_counter(line: &str) -> bool {
    let toks = lexer::lex(line);
    toks.windows(3).any(|w| {
        w[0].kind == lexer::TokKind::Ident
            && is_retry_ident(&w[0].text)
            && w[1].is_op("+=")
            && w[2].kind == lexer::TokKind::Num
            && w[2].text == "1"
    })
}

/// A parsed allow comment (see the module docs for the syntax).
#[derive(Debug, Clone)]
pub(crate) struct Allow {
    rule: Option<Rule>,
    rule_text: String,
    has_reason: bool,
    /// True when the line holds nothing but the comment — such a line
    /// suppresses the *next* line instead of itself.
    comment_only: bool,
}

const ALLOW_MARKER: &str = "sjc-lint: allow(";

/// Parses an allow marker from a string-stripped (but comment-preserving)
/// line. The marker must appear inside a plain `//` comment — doc comments
/// (`///`, `//!`) are documentation, so a syntax example in one neither
/// suppresses anything nor counts as a stale waiver.
fn parse_allow(commented_line: &str, code_line: &str) -> Option<Allow> {
    let comment_at = commented_line.find("//")?;
    let comment = &commented_line[comment_at..];
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let at = comment.find(ALLOW_MARKER)?;
    let rest = &comment[at + ALLOW_MARKER.len()..];
    let close = rest.find(')')?;
    let rule_text = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().trim_start_matches(['—', '-', ':', ' ']).trim();
    Some(Allow {
        rule: Rule::from_name(&rule_text),
        rule_text,
        has_reason: reason.chars().filter(|c| c.is_alphanumeric()).count() >= 3,
        comment_only: code_line.trim().is_empty(),
    })
}

/// Parses every line's allow marker for `source`. Shared between the line
/// rules and the `sjc-analyze` passes so both honor the exact same audited
/// suppression syntax.
pub(crate) fn allows_for(source: &str) -> Vec<Option<Allow>> {
    let stripped = strip_noncode(source);
    let code_lines: Vec<&str> = stripped.lines().collect();
    strip_strings_only(source)
        .lines()
        .enumerate()
        .map(|(i, line)| parse_allow(line, code_lines.get(i).copied().unwrap_or("")))
        .collect()
}

/// 0-based statement-start line for every line. rustfmt wraps long
/// statements, so the expression a comment-only allow was written for can
/// land on a continuation line; resolving each line to the line that opened
/// its statement lets the allow cover the whole statement. A line continues
/// the previous one when that line's code neither terminated (`;`, `{`, `}`)
/// nor was blank; the chain is capped so a malformed file cannot pull an
/// allow across half the module.
pub(crate) fn stmt_starts(source: &str) -> Vec<usize> {
    let stripped = strip_noncode(source);
    let lines: Vec<&str> = stripped.lines().collect();
    let mut starts = vec![0usize; lines.len()];
    for i in 1..lines.len() {
        let prev = lines[i - 1].trim_end();
        let terminated =
            prev.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}');
        starts[i] = if !terminated && i - starts[i - 1] < 12 { starts[i - 1] } else { i };
    }
    starts
}

/// True when a well-formed allow for `rule` covers the 1-based `line`:
/// inline on the line itself, or comment-only directly above the statement
/// the line belongs to (`starts` from [`stmt_starts`]).
pub(crate) fn is_suppressed(
    allows: &[Option<Allow>],
    starts: &[usize],
    rule: Rule,
    line: usize,
) -> bool {
    if line == 0 {
        return false;
    }
    let i = line - 1;
    let matches = |a: &Option<Allow>, need_comment_only: bool| {
        a.as_ref().is_some_and(|a| {
            a.rule == Some(rule) && a.has_reason && (!need_comment_only || a.comment_only)
        })
    };
    if allows.get(i).is_some_and(|a| matches(a, false)) {
        return true;
    }
    let s = starts.get(i).copied().unwrap_or(i);
    s > 0 && allows.get(s - 1).is_some_and(|a| matches(a, true))
}

/// Checks one file's source text. `rel_path` is the workspace-relative path
/// with `/` separators (e.g. `crates/geom/src/mbr.rs`); it determines which
/// rules apply.
pub fn check_file(rel_path: &str, source: &str) -> Vec<Violation> {
    let allows = allows_for(source);
    let starts = stmt_starts(source);
    let mut out = check_file_raw(rel_path, source);
    out.retain(|v| {
        v.rule == Rule::BadSuppression || !is_suppressed(&allows, &starts, v.rule, v.line)
    });
    out
}

/// [`check_file`] *before* suppression filtering. The `stale-suppression`
/// pass needs the raw findings: an allow comment is live exactly when a raw
/// finding it covers exists, which the filtered view cannot tell.
pub(crate) fn check_file_raw(rel_path: &str, source: &str) -> Vec<Violation> {
    let mut class = classify(rel_path);
    let stripped = strip_noncode(source);
    let code_lines: Vec<&str> = stripped.lines().collect();
    // A file compiled only for tests (inner attribute) is harness code even
    // when it lives under `src/`.
    if code_lines.iter().any(|l| l.contains("#![cfg(test)]")) {
        class.harness = true;
    }
    let allows = allows_for(source);

    let mut out = Vec::new();

    // Malformed suppressions are violations regardless of any rule firing.
    for (i, allow) in allows.iter().enumerate() {
        if let Some(a) = allow {
            if a.rule.is_none() {
                out.push(Violation::new(
                    Rule::BadSuppression,
                    rel_path,
                    i + 1,
                    format!("allow({}) names no known rule", a.rule_text),
                ));
            } else if !a.has_reason {
                out.push(Violation::new(
                    Rule::BadSuppression,
                    rel_path,
                    i + 1,
                    format!(
                        "allow({}) needs a reason: `// sjc-lint: allow({}) — <why this is safe>`",
                        a.rule_text, a.rule_text
                    ),
                ));
            }
        }
    }

    // Which rules apply to this file's non-test code?
    let sim = SIM_CRATES.contains(&class.krate);
    let panic_free = PANIC_FREE_CRATES.contains(&class.krate);
    let float = FLOAT_CRATES.contains(&class.krate);
    let bench = class.krate == "bench";
    let hot_path = HOT_PATH_FILES.contains(&rel_path);
    let retry_scope = RETRY_CRATES.contains(&class.krate);

    // `#[cfg(test)] mod` region tracking via brace depth.
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_region_floor: Option<i64> = None;

    // Open loop regions for bounded-retry: (header line, brace floor,
    // drives a retry counter, references a MAX_* bound). Flags propagate to
    // every enclosing loop, so a bound named in an inner loop also satisfies
    // the outer one.
    let mut retry_loops: Vec<(usize, i64, bool, bool)> = Vec::new();
    // A loop header whose body `{` has not arrived yet (rustfmt wraps long
    // headers): (header line, retry flag, bound flag). Resolved when the
    // opening brace shows up, dropped on a statement terminator.
    let mut pending_loop: Option<(usize, bool, bool)> = None;

    for (i, code) in code_lines.iter().enumerate() {
        let depth_at_start = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }

        if test_region_floor.is_none() && code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        } else if pending_cfg_test && has_word(code, "mod") && code.contains('{') {
            test_region_floor = Some(depth_at_start);
            pending_cfg_test = false;
        }

        let in_test = class.harness || test_region_floor.is_some();

        // Close the region *after* computing `in_test`: the closing-brace
        // line still belongs to the test module.
        if let Some(floor) = test_region_floor {
            if depth <= floor {
                test_region_floor = None;
            }
        }

        if retry_scope {
            let drives = drives_retry_counter(code);
            let bound = code.contains("MAX_");
            for r in &mut retry_loops {
                r.2 |= drives;
                r.3 |= bound;
            }
            // Close finished loop regions; a retry loop without a named
            // bound is reported at its header line.
            while let Some(&(hdr, floor, is_retry, has_bound)) = retry_loops.last() {
                if depth > floor {
                    break;
                }
                retry_loops.pop();
                if is_retry && !has_bound {
                    out.push(Violation::new(
                        Rule::BoundedRetry,
                        rel_path,
                        hdr + 1,
                        BOUNDED_RETRY_MSG.to_string(),
                    ));
                }
            }
            let retryish = drives || has_retry_token(code);
            if let Some((hdr, was_retry, was_bound)) = pending_loop {
                // Continuation of a wrapped header: accumulate flags until
                // the body's `{` arrives.
                let is_retry = was_retry || retryish;
                let has_bound = was_bound || bound;
                if code.contains('{') {
                    pending_loop = None;
                    if depth > depth_at_start {
                        retry_loops.push((hdr, depth_at_start, is_retry, has_bound));
                    } else if is_retry && !has_bound {
                        // The body opened *and* closed on this line.
                        out.push(Violation::new(
                            Rule::BoundedRetry,
                            rel_path,
                            hdr + 1,
                            BOUNDED_RETRY_MSG.to_string(),
                        ));
                    }
                } else if code.contains(';') {
                    // A statement terminator cannot appear inside a loop
                    // header — the `for`/`while` match was something else.
                    pending_loop = None;
                } else {
                    pending_loop = Some((hdr, is_retry, has_bound));
                }
            } else if !in_test && loop_header_start(code) {
                if depth > depth_at_start {
                    retry_loops.push((i, depth_at_start, retryish, bound));
                } else if code.contains('{') {
                    // One-line loop: `for attempt in 0..n { g(attempt) }` —
                    // the region opens and closes within this line.
                    if retryish && !bound {
                        out.push(Violation::new(
                            Rule::BoundedRetry,
                            rel_path,
                            i + 1,
                            BOUNDED_RETRY_MSG.to_string(),
                        ));
                    }
                } else if !code.contains(';') {
                    pending_loop = Some((i, retryish, bound));
                }
            }
        }

        let mut emit =
            |rule: Rule, message: String| out.push(Violation::new(rule, rel_path, i + 1, message));

        if sim && !in_test {
            for tok in CLOCK_TOKENS {
                if code.contains(tok) {
                    emit(
                        Rule::NoNondeterminism,
                        format!("`{tok}` in simulation code — results must be reproducible; derive everything from the experiment seed"),
                    );
                }
            }
            for tok in ["HashMap", "HashSet"] {
                if has_word(code, tok) {
                    emit(
                        Rule::NoNondeterminism,
                        format!("`{tok}` iterates in unspecified order — use BTreeMap/BTreeSet or a sorted Vec so simulated output is bit-stable"),
                    );
                }
            }
        }

        // Everywhere except crates/bench and lines no-nondeterminism already
        // covers (non-test code of the sim crates).
        if !bench && (!sim || in_test) {
            for tok in CLOCK_TOKENS {
                if code.contains(tok) {
                    emit(
                        Rule::BenchIsolation,
                        format!("`{tok}` outside crates/bench — only the bench harness may observe the host clock or entropy"),
                    );
                }
            }
        }

        if panic_free && !in_test {
            for tok in [".unwrap()", ".expect("] {
                if code.contains(tok) {
                    emit(
                        Rule::NoPanicInLib,
                        format!("`{tok}` in library code — return a Result/Option or handle the None/Err arm"),
                    );
                }
            }
            for tok in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
                if code.contains(tok) {
                    emit(
                        Rule::NoPanicInLib,
                        format!("`{tok}` in library code — library code must not abort the caller"),
                    );
                }
            }
            if has_slice_indexing(code) {
                emit(
                    Rule::NoPanicInLib,
                    "slice indexing can panic — use .get()/.get_mut() or iterate, or suppress with the bounds argument".to_string(),
                );
            }
        }

        if hot_path && !in_test {
            if let Some(name) = serial_hot_loop_target(code) {
                emit(
                    Rule::SerialHotLoop,
                    format!("serial `for … in {name}` in a hot-path file — route through sjc_par (par_map/par_sort_by/par_chunks_mut), or suppress with the reason this loop must stay serial"),
                );
            }
        }

        if float && !in_test && has_float_literal_comparison(code) {
            emit(
                Rule::FloatHygiene,
                "bare float comparison — use the epsilon helpers in sjc_geom::predicates"
                    .to_string(),
            );
        }
    }

    out
}

/// Recursively collects `.rs` files under `dir` (if it exists). Directories
/// named `fixtures` are skipped: they hold deliberately-bad inputs for the
/// analyzer's own tests, not workspace code. Directories named `target` are
/// skipped too: cargo build artifacts (expanded sources, vendored build
/// scripts) are not workspace code, and walking a warm multi-gigabyte
/// `target/` would alone blow the gate's 20 s wall budget.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures" || n == "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Collects every Rust source file of the workspace rooted at `root` —
/// `src/`, `tests/`, and each `crates/*/{src,tests,benches}` — as
/// `(workspace-relative path with '/' separators, source text)` pairs.
/// Shared by the line rules and the `sjc-analyze` passes so both layers see
/// the exact same file set.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, String)>> {
    // A missing or file-less root must be an error, not a clean scan — a
    // mistyped path in CI would otherwise report green without looking at
    // a single line.
    if !root.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("workspace root {} is not a directory", root.display()),
        ));
    }
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    collect_rs(&root.join("tests"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
        crates.sort();
        for krate in crates {
            for section in ["src", "tests", "benches"] {
                collect_rs(&krate.join(section), &mut files)?;
            }
        }
    }

    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .rs files under {} — wrong workspace root?", root.display()),
        ));
    }

    files
        .into_iter()
        .map(|file| {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            fs::read_to_string(&file).map(|source| (rel, source))
        })
        .collect()
}

/// Checks every Rust source file of the workspace rooted at `root` with the
/// **line rules**. Returns all violations sorted by path and line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (rel, source) in workspace_files(root)? {
        out.extend(check_file(&rel, &source));
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

/// Both layers over one workspace: the line rules ([`check_workspace`]) plus
/// the cross-file `sjc-analyze` passes ([`analyze_workspace`]), merged and
/// sorted. This is what the CLI and the tier-1 gate run.
pub fn check_all(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(check_all_timed(root)?.0)
}

/// [`check_all`] plus per-stage wall times — the `--timings` flag.
pub fn check_all_timed(root: &Path) -> io::Result<(Vec<Violation>, Vec<passes::PassTiming>)> {
    let t = passes::stamp();
    let mut out = check_workspace(root)?;
    let mut timings = vec![passes::PassTiming { name: "line-rules", wall: t.elapsed() }];
    let (vs, ts) = passes::analyze_workspace_timed(root)?;
    out.extend(vs);
    timings.extend(ts);
    out.sort_by(|a, b| (&a.path, a.line, a.rule.name()).cmp(&(&b.path, b.line, b.rule.name())));
    Ok((out, timings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_string_contents() {
        let src =
            "let a = \"Instant::now\"; // Instant::now\nlet b = 1; /* thread_rng */ let c = 2;\n";
        let s = strip_noncode(src);
        assert!(!s.contains("Instant::now"));
        assert!(!s.contains("thread_rng"));
        assert!(s.contains("let b = 1;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn strip_preserves_line_structure_of_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let s = strip_noncode(src);
        assert_eq!(s.lines().count(), 4);
        assert!(s.lines().nth(3).unwrap().contains("let t = 1;"));
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!has_word("struct MyHashMapLike;", "HashMap"));
    }

    #[test]
    fn slice_indexing_detector_is_precise() {
        assert!(has_slice_indexing("let x = items[i];"));
        assert!(has_slice_indexing("let y = f(a)[0];"));
        assert!(has_slice_indexing("let z = m[i][j];"));
        assert!(!has_slice_indexing("#[derive(Debug)]"));
        assert!(!has_slice_indexing("let v = vec![1, 2];"));
        assert!(!has_slice_indexing("fn f(x: [u8; 4]) {}"));
        assert!(!has_slice_indexing("let a: &[u64] = &v;"));
    }

    #[test]
    fn float_comparison_detector_is_precise() {
        assert!(has_float_literal_comparison("if p == 0.0 {"));
        assert!(has_float_literal_comparison("if 1e-9 != x {"));
        assert!(has_float_literal_comparison("x == 2.5_f64"));
        // The classic bool-expression false positive must not fire.
        assert!(!has_float_literal_comparison("(a.y > p.y) != (b.y > p.y)"));
        assert!(!has_float_literal_comparison("if n == 0 {"));
        assert!(!has_float_literal_comparison("let c = a >= 0.5;"));
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        let vs = check_file("crates/geom/src/lib.rs", src);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn serial_hot_loop_detector_is_precise() {
        // Hot names fire through `&`, `mut`, and `self.` prefixes…
        assert_eq!(serial_hot_loop_target("for t in &tasks {"), Some("tasks"));
        assert_eq!(serial_hot_loop_target("for p in self.parts.iter() {"), Some("parts"));
        assert_eq!(
            serial_hot_loop_target("for (i, rec) in self.parts.into_iter().flatten() {"),
            Some("parts")
        );
        assert_eq!(serial_hot_loop_target("for (k, vs) in groups {"), Some("groups"));
        // …but identifier boundaries hold: per-record inner loops and
        // parallel call expressions are not hot loops.
        assert_eq!(serial_hot_loop_target("for rec in &task.records {"), None);
        assert_eq!(serial_hot_loop_target("for x in sjc_par::par_map(&parts, f) {"), None);
        assert_eq!(serial_hot_loop_target("for g in group_set {"), None);
        assert_eq!(serial_hot_loop_target("let tasks = build(parts);"), None);
    }

    #[test]
    fn serial_hot_loop_fires_only_in_hot_path_files() {
        let src = "pub fn f(tasks: &[u8]) {\n    for t in tasks {\n        g(t);\n    }\n}\n";
        let vs = check_file("crates/mapreduce/src/job.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::SerialHotLoop), "{vs:?}");
        // The same loop elsewhere — or suppressed with a reason — is clean.
        assert!(check_file("crates/mapreduce/src/lib.rs", src).is_empty());
        let suppressed = "pub fn f(tasks: &[u8]) {\n    // sjc-lint: allow(serial-hot-loop) — merge must preserve task order\n    for t in tasks { g(t); }\n}\n";
        assert!(check_file("crates/mapreduce/src/job.rs", suppressed).is_empty());
    }

    #[test]
    fn loop_header_start_detector_is_precise() {
        assert!(loop_header_start("loop {"));
        assert!(loop_header_start("    'outer: loop {"));
        assert!(loop_header_start("while attempt < max {"));
        assert!(loop_header_start("while let Some(x) = it.next() {"));
        assert!(loop_header_start("for t in &tasks {"));
        // Wrapped headers (brace on a later line) now count as starts…
        assert!(loop_header_start("for t in"));
        assert!(loop_header_start("    loop"));
        assert!(loop_header_start("'retry: loop"));
        // …but non-loops still do not.
        assert!(!loop_header_start("looping(x) {"));
        assert!(!loop_header_start("let x = compute();"));
        assert!(!loop_header_start("while_elapsed(x) {"));
    }

    #[test]
    fn retry_counter_detector_is_precise() {
        assert!(drives_retry_counter("attempt += 1;"));
        assert!(drives_retry_counter("out.attempts += 1;"));
        assert!(drives_retry_counter("resubmit += 1;"));
        // Token-matched: whitespace around `+=` is not load-bearing.
        assert!(drives_retry_counter("attempt +=1;"));
        assert!(drives_retry_counter("attempt+=1;"));
        assert!(drives_retry_counter("attempt  +=  1;"));
        // Aggregating already-recorded attempts is not a retry loop…
        assert!(!drives_retry_counter("trace.attempts += s.attempts;"));
        // …and neither is a plain index counter, nor a step of 10.
        assert!(!drives_retry_counter("i += 1;"));
        assert!(!drives_retry_counter("attempt += 10;"));
    }

    #[test]
    fn bounded_retry_fires_on_unbounded_loops_in_engine_crates() {
        let src = "pub fn f() {\n    let mut attempt = 0u32;\n    loop {\n        attempt += 1;\n        if done(attempt) {\n            break;\n        }\n    }\n}\n";
        let vs = check_file("crates/cluster/src/scheduler.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::BoundedRetry && v.line == 3), "{vs:?}");
        // Naming the MAX_* bound inside the loop satisfies the rule…
        let bounded = src.replace("if done(attempt) {", "if attempt >= MAX_TASK_ATTEMPTS {");
        assert!(check_file("crates/cluster/src/scheduler.rs", &bounded).is_empty());
        // …and the same loop outside the engine crates is out of scope.
        assert!(check_file("crates/core/src/report.rs", src).is_empty());
    }

    #[test]
    fn bound_in_inner_loop_satisfies_enclosing_retry_loop() {
        let src = "pub fn f(n: u32) {\n    for task in 0..n {\n        let mut attempt = 0u32;\n        loop {\n            attempt += 1;\n            if attempt >= MAX_TASK_ATTEMPTS {\n                break;\n            }\n        }\n    }\n}\n";
        assert!(check_file("crates/cluster/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn bounded_retry_header_tokens_and_suppression() {
        // A `for attempt in …` header is a retry loop even without `+= 1`:
        // the bound must be a named constant, not a bare literal range.
        let src = "pub fn f() {\n    for attempt in 0..4 {\n        g(attempt);\n    }\n}\n";
        let vs = check_file("crates/rdd/src/context.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::BoundedRetry && v.line == 2), "{vs:?}");
        let ok = "pub fn f() {\n    // sjc-lint: allow(bounded-retry) — probe loop, four draws is the sampling design\n    for attempt in 0..4 {\n        g(attempt);\n    }\n}\n";
        assert!(check_file("crates/rdd/src/context.rs", ok).is_empty());
        // Test code is out of scope.
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() {\n        for attempt in 0..4 {\n            g(attempt);\n        }\n    }\n}\n";
        assert!(check_file("crates/rdd/src/context.rs", test_src).is_empty());
    }

    #[test]
    fn bounded_retry_sees_rustfmt_wrapped_headers() {
        // rustfmt may wrap a long header so the `{` lands on its own line;
        // the pending-header tracking must still open the region at the
        // `for` line.
        let src = "pub fn f(limit: u32) {\n    for attempt in\n        compute_schedule(limit)\n    {\n        g(attempt);\n    }\n}\n";
        let vs = check_file("crates/cluster/src/scheduler.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::BoundedRetry && v.line == 2), "{vs:?}");
        // A MAX_* bound anywhere in the (wrapped) region satisfies it.
        let bounded = src.replace("g(attempt);", "if attempt >= MAX_TASK_ATTEMPTS { break; }");
        assert!(check_file("crates/cluster/src/scheduler.rs", &bounded).is_empty());
        // Suppression at the header line works for wrapped headers too.
        let ok = src.replace(
            "    for attempt in\n",
            "    // sjc-lint: allow(bounded-retry) — schedule length is validated upstream\n    for attempt in\n",
        );
        assert!(check_file("crates/cluster/src/scheduler.rs", &ok).is_empty());
    }

    #[test]
    fn bounded_retry_sees_one_line_loops() {
        let src = "pub fn f(n: u32) {\n    for attempt in 0..n { g(attempt) }\n}\n";
        let vs = check_file("crates/cluster/src/scheduler.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::BoundedRetry && v.line == 2), "{vs:?}");
        let ok = src.replace("0..n", "0..MAX_TASK_ATTEMPTS");
        assert!(check_file("crates/cluster/src/scheduler.rs", &ok).is_empty());
    }

    #[test]
    fn suppression_requires_reason_and_known_rule() {
        let src = "let x = v[0]; // sjc-lint: allow(no-panic-in-lib)\n";
        let vs = check_file("crates/geom/src/lib.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::BadSuppression));
        // The reasonless allow does not suppress.
        assert!(vs.iter().any(|v| v.rule == Rule::NoPanicInLib));

        let src = "let x = v[0]; // sjc-lint: allow(no-such-rule) — whatever\n";
        let vs = check_file("crates/geom/src/lib.rs", src);
        assert!(vs.iter().any(|v| v.rule == Rule::BadSuppression));
    }

    #[test]
    fn doc_comments_are_not_suppressions() {
        // A syntax example in a doc comment is documentation: it neither
        // suppresses the line below nor parses as an (inevitably stale)
        // waiver.
        for doc in [
            "/// sjc-lint: allow(no-panic-in-lib) — example from the rule table\nlet x = v[0];\n",
            "//! sjc-lint: allow(no-panic-in-lib) — example from the rule table\nlet x = v[0];\n",
        ] {
            assert!(allows_for(doc).iter().all(Option::is_none), "{doc:?}");
            let vs = check_file("crates/geom/src/lib.rs", doc);
            assert!(vs.iter().any(|v| v.rule == Rule::NoPanicInLib), "{doc:?} -> {vs:?}");
        }
    }

    #[test]
    fn comment_only_allow_covers_next_line() {
        let src = "// sjc-lint: allow(no-panic-in-lib) — index bounded by caller\nlet x = v[0];\n";
        assert!(check_file("crates/geom/src/lib.rs", src).is_empty());
        // ...but not the line after next.
        let src = "// sjc-lint: allow(no-panic-in-lib) — index bounded by caller\nlet x = v[0];\nlet y = v[1];\n";
        let vs = check_file("crates/geom/src/lib.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn comment_only_allow_covers_a_wrapped_statement() {
        // rustfmt breaks long `let`s after the `=`, pushing the flagged
        // expression onto a continuation line; the allow above the statement
        // must still cover it.
        let src = "// sjc-lint: allow(no-panic-in-lib) — ids are enumerate indices\n\
                   let recs: Vec<&Rec> =\n    \
                       assign[cell].iter().map(|&i| &left.records[i as usize]).collect();\n";
        assert!(check_file("crates/geom/src/lib.rs", src).is_empty());
        // A terminated statement ends the allow's reach: the next statement
        // is not covered even when it starts on the very next line.
        let src = "// sjc-lint: allow(no-panic-in-lib) — ids are enumerate indices\n\
                   let a =\n    v[0];\nlet b = v[1];\n";
        let vs = check_file("crates/geom/src/lib.rs", src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 4);
    }
}
