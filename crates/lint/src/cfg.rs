//! Per-function control-flow skeleton over the token stream.
//!
//! The cross-file passes that care about *where* code runs — not just that
//! it runs — need three region kinds inside a function body: **loop**
//! bodies (`for`/`while`/`loop`, with nesting depth), **branch** bodies
//! (`if`/`match`/`else`), and **closure** bodies. Like the item model this
//! is deliberately not a parser: every region is a token range found by a
//! forward scan with paren/bracket/brace counters, and anything the scan
//! does not model degrades to "no region", never to a wrong extent — a
//! checker built on it can miss a loop, but it cannot invent one.
//!
//! The hot-path passes ([`crate::passes::hot_alloc`],
//! [`crate::passes::loop_invariant`]) are the consumers: "allocation inside
//! a loop" and "call hoistable out of a loop" are both questions about
//! [`FnCfg::innermost_loop`].

use crate::lexer::{Tok, TokKind};

/// What kind of control-flow region a token range is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// A `for`/`while`/`loop` body.
    Loop,
    /// An `if`/`else`/`match` body.
    Branch,
    /// A closure body (braced or expression form).
    Closure,
}

/// One control-flow region: the header token (the keyword or the opening
/// `|` of a closure) and the token range of the body. For braced bodies the
/// range covers `{ … }` inclusive; for expression-bodied closures it covers
/// the expression tokens.
#[derive(Debug, Clone)]
pub struct Region {
    pub kind: RegionKind,
    /// Token index of the `for`/`while`/`loop`/`if`/`match` keyword or the
    /// closure's opening `|`.
    pub header: usize,
    /// First token of the body (the `{` for braced bodies).
    pub open: usize,
    /// Last token of the body (the matching `}` for braced bodies).
    pub close: usize,
    /// 1-based source line of the header token.
    pub line: usize,
    /// Loop nesting depth at the header: 0 for a region outside any loop,
    /// 1 inside one loop, … Loops themselves report the depth of their
    /// *body* (a top-level loop has depth 1).
    pub depth: usize,
}

/// The control-flow skeleton of one function body.
#[derive(Debug, Default)]
pub struct FnCfg {
    /// All regions, ordered by header token index.
    pub regions: Vec<Region>,
}

impl FnCfg {
    /// Builds the skeleton for the body `toks[start..=end]` (the braces of
    /// a `FnItem::body` extent).
    pub fn build(toks: &[Tok], start: usize, end: usize) -> FnCfg {
        let end = end.min(toks.len().saturating_sub(1));
        let mut regions: Vec<Region> = Vec::new();
        let mut i = start;
        while i <= end {
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "for" => {
                        // Guard against non-loop `for` (trait bounds like
                        // `for<'a>`): a loop header carries an `in` before
                        // its body brace.
                        if let Some((open, close)) = braced_body(toks, i + 1, end) {
                            let has_in = (i + 1..open).any(|k| toks[k].is_ident("in"));
                            if has_in {
                                regions.push(region(RegionKind::Loop, toks, i, open, close));
                            }
                        }
                    }
                    "while" | "loop" => {
                        if let Some((open, close)) = braced_body(toks, i + 1, end) {
                            regions.push(region(RegionKind::Loop, toks, i, open, close));
                        }
                    }
                    "if" | "match" => {
                        if let Some((open, close)) = braced_body(toks, i + 1, end) {
                            regions.push(region(RegionKind::Branch, toks, i, open, close));
                        }
                    }
                    "else" => {
                        // `else {` only — `else if` is owned by the `if`.
                        let body = toks
                            .get(i + 1)
                            .filter(|n| n.is_op("{"))
                            .and_then(|_| matching(toks, i + 1, "{", "}"));
                        if let Some(close) = body {
                            regions.push(region(RegionKind::Branch, toks, i, i + 1, close));
                        }
                    }
                    _ => {}
                }
                i += 1;
                continue;
            }
            if starts_closure(toks, i) {
                let (open, close, header) = closure_body(toks, i, end);
                if open <= close {
                    regions.push(region(RegionKind::Closure, toks, header, open, close));
                }
                i = header.max(i) + 1;
                continue;
            }
            i += 1;
        }

        // Loop nesting depth: number of loop bodies containing the header.
        let loop_spans: Vec<(usize, usize)> = regions
            .iter()
            .filter(|r| r.kind == RegionKind::Loop)
            .map(|r| (r.open, r.close))
            .collect();
        for r in &mut regions {
            let probe = if r.kind == RegionKind::Loop { r.open } else { r.header };
            r.depth = loop_spans.iter().filter(|&&(s, e)| s <= probe && probe <= e).count();
        }
        regions.sort_by_key(|r| r.header);
        FnCfg { regions }
    }

    /// The loop regions, outermost-first in source order.
    pub fn loops(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(|r| r.kind == RegionKind::Loop)
    }

    /// The innermost loop body containing token index `i`, if any.
    pub fn innermost_loop(&self, i: usize) -> Option<&Region> {
        self.loops().filter(|r| r.open <= i && i <= r.close).max_by_key(|r| r.open)
    }

    /// Loop nesting depth of token index `i` (0 = not inside any loop).
    pub fn loop_depth_at(&self, i: usize) -> usize {
        self.loops().filter(|r| r.open <= i && i <= r.close).count()
    }

    /// The closure regions, in source order.
    pub fn closures(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(|r| r.kind == RegionKind::Closure)
    }
}

fn region(kind: RegionKind, toks: &[Tok], header: usize, open: usize, close: usize) -> Region {
    Region { kind, header, open, close, line: toks[header].line, depth: 0 }
}

/// From `from`, finds the body `{ … }` of a header: the first `{` at
/// paren/bracket depth 0, plus its matching `}`. Struct literals inside a
/// parenthesized condition never match — their `{` sits at paren depth ≥ 1.
fn braced_body(toks: &[Tok], from: usize, end: usize) -> Option<(usize, usize)> {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut j = from;
    while j <= end {
        let t = &toks[j];
        if t.is_op("(") {
            paren += 1;
        } else if t.is_op(")") {
            paren -= 1;
        } else if t.is_op("[") {
            bracket += 1;
        } else if t.is_op("]") {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_op(";") {
                return None; // statement ended before any body opened
            }
            if t.is_op("{") {
                let close = matching(toks, j, "{", "}")?;
                return Some((j, close));
            }
        }
        j += 1;
    }
    None
}

/// Finds the matching close token for the opener at `open`.
pub(crate) fn matching(toks: &[Tok], open: usize, op: &str, cl: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_op(op) {
            depth += 1;
        } else if t.is_op(cl) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// True when the `|`/`||` at `i` opens a closure rather than acting as an
/// or-operator: closures appear where an *expression* is expected, i.e.
/// after `(`, `,`, `=`, `=>`, `{`, `;`, `[`, `:`, `return`, `move`, or at
/// the very start of the range. `Some(a) | None` patterns and `x | y`
/// bit-ors all have a value-ending token on the left.
fn starts_closure(toks: &[Tok], i: usize) -> bool {
    if !(toks[i].is_op("|") || toks[i].is_op("||")) {
        return false;
    }
    let Some(prev) = i.checked_sub(1).map(|k| &toks[k]) else { return true };
    if prev.kind == TokKind::Op {
        return matches!(prev.text.as_str(), "(" | "," | "=" | "=>" | "{" | ";" | "[" | ":" | "&&");
    }
    prev.is_ident("return") || prev.is_ident("move") || prev.is_ident("else")
}

/// From the `|`/`||` at `j`, returns `(body_start, body_end, params_close)`
/// where `params_close` is the last header token (the closing `|`, or the
/// `||` itself). A braced body runs to its matching `}`; an expression body
/// runs to the next `,`/`;`/`)`/`}` at nesting depth 0 within `[j, end]`.
fn closure_body(toks: &[Tok], j: usize, end: usize) -> (usize, usize, usize) {
    let mut k = j + 1;
    if toks[j].is_op("|") {
        while k <= end && !toks[k].is_op("|") {
            k += 1;
        }
        k += 1; // past the closing `|`
    }
    let header_end = k.saturating_sub(1);
    // `|x| -> T { … }` return annotations: skip to the body brace.
    if toks.get(k).is_some_and(|t| t.is_op("->")) {
        while k <= end && !toks[k].is_op("{") && !toks[k].is_op(",") {
            k += 1;
        }
    }
    if toks.get(k).is_some_and(|t| t.is_op("{")) {
        let close = matching(toks, k, "{", "}").unwrap_or(end);
        return (k, close.min(end), header_end);
    }
    // Expression body: scan to a `,`/`;` at depth 0 or an unmatched closer.
    let start = k;
    let mut depth = 0i64;
    while k <= end {
        let t = &toks[k];
        if t.is_op("(") || t.is_op("[") || t.is_op("{") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") || t.is_op("}") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_op(",") || t.is_op(";")) {
            break;
        }
        k += 1;
    }
    (start, k.saturating_sub(1).max(start), header_end)
}

/// The closure parameter identifiers of the closure whose header `|` sits
/// at `j` (empty for `||` closures). Pattern and type-annotation idents both
/// land in the set — over-binding is the quiet direction for the passes.
pub fn closure_params(toks: &[Tok], j: usize) -> Vec<String> {
    let mut params = Vec::new();
    if toks[j].is_op("|") {
        let mut k = j + 1;
        while k < toks.len() && !toks[k].is_op("|") {
            if toks[k].kind == TokKind::Ident {
                params.push(toks[k].text.clone());
            }
            k += 1;
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::FileModel;

    fn cfg_of(src: &str) -> (FileModel, FnCfg) {
        let m = FileModel::build("crates/cluster/src/x.rs", src);
        let (s, e) = m.fns[0].body.expect("fixture fn has a body");
        let cfg = FnCfg::build(&m.toks, s, e);
        (m, cfg)
    }

    #[test]
    fn loops_and_depths_are_found() {
        let src = "fn f(n: usize) {\n    for i in 0..n {\n        while i > 0 {\n            step();\n        }\n    }\n    loop {\n        break;\n    }\n}\n";
        let (_, cfg) = cfg_of(src);
        let depths: Vec<usize> = cfg.loops().map(|r| r.depth).collect();
        assert_eq!(depths, [1, 2, 1], "{:?}", cfg.regions);
    }

    #[test]
    fn innermost_loop_wins() {
        let src = "fn f(n: usize) {\n    for i in 0..n {\n        for j in 0..i {\n            mark();\n        }\n    }\n}\n";
        let (m, cfg) = cfg_of(src);
        let mark = m.toks.iter().position(|t| t.is_ident("mark")).unwrap();
        let inner = cfg.innermost_loop(mark).unwrap();
        assert_eq!(inner.depth, 2);
        assert_eq!(cfg.loop_depth_at(mark), 2);
    }

    #[test]
    fn branches_and_closures_are_regions() {
        let src = "fn f(v: &[u64]) -> u64 {\n    if v.is_empty() {\n        return 0;\n    }\n    let s: u64 = v.iter().map(|x| x + 1).sum();\n    match s {\n        0 => 1,\n        _ => s,\n    }\n}\n";
        let (_, cfg) = cfg_of(src);
        assert!(cfg.regions.iter().any(|r| r.kind == RegionKind::Branch));
        assert_eq!(cfg.closures().count(), 1);
        assert!(cfg.loops().next().is_none());
    }

    #[test]
    fn or_patterns_and_bit_or_are_not_closures() {
        let src = "fn f(x: u64, o: Option<u64>) -> u64 {\n    let y = x | 3;\n    match o {\n        Some(0) | None => y,\n        Some(n) => n,\n    }\n}\n";
        let (_, cfg) = cfg_of(src);
        assert_eq!(cfg.closures().count(), 0, "{:?}", cfg.regions);
    }

    #[test]
    fn trait_bound_for_is_not_a_loop() {
        let src = "fn f(n: usize) {\n    let g: Box<dyn for<'a> Fn(&'a u64) -> u64> = make();\n    if n > 0 {\n        g(&0);\n    }\n}\n";
        let (_, cfg) = cfg_of(src);
        assert_eq!(cfg.loops().count(), 0, "{:?}", cfg.regions);
    }

    #[test]
    fn struct_literal_in_parenthesized_condition_is_not_a_body() {
        let src = "fn f(p: P) {\n    while check(P { a: 1 }, &p) {\n        step();\n    }\n}\n";
        let (m, cfg) = cfg_of(src);
        let lp = cfg.loops().next().unwrap();
        let step = m.toks.iter().position(|t| t.is_ident("step")).unwrap();
        assert!(lp.open <= step && step <= lp.close, "{:?}", cfg.regions);
    }

    #[test]
    fn expression_closures_have_extents() {
        let src = "fn f(v: &mut Vec<u64>) {\n    v.sort_by_key(|x| x.wrapping_mul(3));\n    v.retain(|x| *x > 0);\n}\n";
        let (_, cfg) = cfg_of(src);
        assert_eq!(cfg.closures().count(), 2, "{:?}", cfg.regions);
    }
}
