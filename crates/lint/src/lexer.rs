//! Minimal Rust lexer over comment/string-stripped source.
//!
//! The input is the output of `strip_noncode` (see `lib.rs`): comments and
//! string/char-literal *contents* are already gone — strings collapse to a
//! hollow `"…"` whose interior keeps only newlines, char literals vanish
//! entirely — so the lexer only has to recognize identifiers, numbers,
//! lifetimes, operators, and the hollow string markers. That division of
//! labour keeps both halves small: the stripper owns the genuinely stateful
//! part of Rust's surface syntax (raw strings, nested block comments), and
//! the lexer is a single forward scan with maximal-munch operators.
//!
//! Every token carries its 1-based source line, so the cross-file passes in
//! `passes/` report exact locations even though they work on a flat token
//! stream rather than lines.

/// Token category. Keywords are `Ident`s — the passes match on text, and a
/// fixed keyword list would go stale faster than a `is_ident("fn")` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Num,
    /// A (stripped) string literal. The text is always `""`.
    Str,
    /// Punctuation, including multi-character operators (`::`, `+=`, `=>`).
    Op,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch holds (`..=`
/// must win over `..`, `<<=` over `<<`).
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes stripped source into a token stream. Never fails: unexpected bytes
/// become single-character `Op` tokens, which at worst makes a pass see an
/// unknown operator and move on — a static checker must degrade to silence,
/// not to a crash, on syntax it does not model.
pub fn lex(stripped: &str) -> Vec<Tok> {
    let chars: Vec<char> = stripped.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '"' {
            // Hollow string from the stripper: contents are only newlines.
            let start_line = line;
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 1; // closing quote (or end of input)
            toks.push(Tok { kind: TokKind::Str, text: "\"\"".to_string(), line: start_line });
        } else if c == '\'' {
            // The stripper removed char literals, so a surviving `'` always
            // opens a lifetime (or a label).
            let mut text = String::from("'");
            i += 1;
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Lifetime, text, line });
        } else if is_ident_start(c) {
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text, line });
        } else if c.is_ascii_digit() {
            let (text, next) = lex_number(&chars, i);
            toks.push(Tok { kind: TokKind::Num, text, line });
            i = next;
        } else {
            let mut matched = None;
            for op in OPS {
                let len = op.chars().count();
                if chars[i..].len() >= len && chars[i..i + len].iter().collect::<String>() == **op {
                    matched = Some((op.to_string(), len));
                    break;
                }
            }
            let (text, len) = matched.unwrap_or_else(|| (c.to_string(), 1));
            toks.push(Tok { kind: TokKind::Op, text, line });
            i += len;
        }
    }
    toks
}

/// Lexes a numeric literal starting at `chars[start]`. Handles `1_000`,
/// `0xff`, `2.5_f64`, `1e-9`, and tuple-index/range adjacency: `0..n` stops
/// before `..`, `x.0` leaves the `.` to the caller.
fn lex_number(chars: &[char], start: usize) -> (String, usize) {
    let mut text = String::new();
    let mut i = start;
    let hex =
        chars.get(start) == Some(&'0') && matches!(chars.get(start + 1), Some('x') | Some('X'));
    while i < chars.len() {
        let c = chars[i];
        if is_ident_continue(c) {
            text.push(c);
            i += 1;
            // Exponent sign: `1e-9` / `1E+9` — only outside hex, and only
            // when a digit follows the sign (so `0xe + 1` stays three tokens).
            if !hex
                && (c == 'e' || c == 'E')
                && matches!(chars.get(i), Some('+') | Some('-'))
                && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(chars[i]);
                i += 1;
            }
        } else if c == '.'
            && !text.contains('.')
            && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
        {
            text.push('.');
            i += 1;
        } else {
            break;
        }
    }
    (text, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_ops_and_numbers() {
        assert_eq!(texts("attempt += 1;"), ["attempt", "+=", "1", ";"]);
        assert_eq!(texts("attempt +=1"), ["attempt", "+=", "1"]);
        assert_eq!(texts("a::b(x)"), ["a", "::", "b", "(", "x", ")"]);
        assert_eq!(texts("x==0.5"), ["x", "==", "0.5"]);
    }

    #[test]
    fn ranges_and_floats_disambiguate() {
        assert_eq!(texts("0..n"), ["0", "..", "n"]);
        assert_eq!(texts("0..=4"), ["0", "..=", "4"]);
        assert_eq!(texts("1.5e-9"), ["1.5e-9"]);
        assert_eq!(texts("2.5_f64"), ["2.5_f64"]);
        assert_eq!(texts("t.0"), ["t", ".", "0"]);
        assert_eq!(texts("0xff + 1"), ["0xff", "+", "1"]);
    }

    #[test]
    fn lifetimes_and_strings() {
        assert_eq!(texts("'a: loop {"), ["'a", ":", "loop", "{"]);
        let toks = lex("f(\"\") + 'static");
        assert_eq!(toks[1].text, "(");
        assert_eq!(toks[2].kind, TokKind::Str);
        assert_eq!(toks.last().unwrap().text, "'static");
    }

    #[test]
    fn lines_are_tracked_through_hollow_strings() {
        // The stripper keeps newlines inside string literals; the lexer must
        // keep counting them.
        let toks = lex("let s = \"\n\n\";\nlet t = 1;");
        let t = toks.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 4);
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(texts("a <<= b >> c"), ["a", "<<=", "b", ">>", "c"]);
        assert_eq!(texts("x => y == z"), ["x", "=>", "y", "==", "z"]);
        assert_eq!(texts("|| &mut v"), ["||", "&", "mut", "v"]);
    }
}
