//! Interprocedural unit flow: call returns and arguments keep their units.
//!
//! The intra-procedural `unit-flow` pass stops at call boundaries — a call
//! expression carries a unit only when its *name* is unit-suffixed. This
//! pass closes the gap with the summarized signatures
//! ([`crate::summaries`]): a call's return unit comes from the callee's
//! `ret_unit` fact, a parameter's expected unit from its `param_units`
//! entry, and three shapes are flagged:
//!
//! * the returned value mixed (`+`/`-`/`+=`/`-=`) with an operand of a
//!   *different known* unit;
//! * the returned value flowing into a `*_ns` sink with no converting
//!   `*`/`/` in the expression;
//! * an argument whose unit differs from the parameter's declared unit.
//!
//! Calls whose own name declares a unit (`payload_bytes()`) are left to the
//! intra-procedural pass — it already sees them, and double-reporting would
//! make every finding two findings. Ambiguous calls (several resolved
//! callees with disagreeing summaries) carry no fact: the under-
//! approximation direction the whole crate follows.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::dataflow::{self, Flow};
use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::passes::unit_flow::{apply_binding, unit_at, unit_of_name, Unit};
use crate::summaries::Summaries;
use crate::{cfg, Related, Rule, Violation};

/// Per-call-site facts a caller's walk needs, keyed by the name token.
struct CallFact {
    /// Agreed return unit across all resolved callees.
    ret: Option<Unit>,
    /// Agreed per-position parameter facts: `(param name, unit)`.
    params: Vec<(Option<String>, Option<Unit>)>,
    /// Display name of the call.
    name: String,
    /// Declaration site of one resolved callee (stable-key minimal), for
    /// the related location.
    decl: (String, usize),
}

pub fn run(models: &[FileModel], graph: &CallGraph, sums: &Summaries) -> Vec<Violation> {
    let mut out = Vec::new();
    for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
        let m = &models[fi];
        let f = &m.fns[gi];
        if m.harness || f.in_test {
            continue;
        }
        let Some((s, e)) = f.body else { continue };
        let facts = call_facts(models, graph, sums, id);
        if facts.is_empty() {
            continue;
        }
        check_body(m, s, e, &facts, &mut out);
    }
    out
}

/// Builds the call-site fact table for one caller: only calls whose name
/// does not itself declare a unit, and whose resolved callees agree.
fn call_facts(
    models: &[FileModel],
    graph: &CallGraph,
    sums: &Summaries,
    id: usize,
) -> BTreeMap<usize, CallFact> {
    let mut by_tok: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for e in &graph.edges[id] {
        by_tok.entry(e.tok).or_default().push(e.callee);
    }
    let mut out = BTreeMap::new();
    for (tok, callees) in by_tok {
        let (c0fi, c0gi) = graph.fns[callees[0]];
        let name = models[c0fi].fns[c0gi].name.clone();
        if unit_of_name(&name).is_some() {
            continue; // the intra-procedural pass owns unit-named calls
        }
        let ret = agreed(callees.iter().map(|&c| sums.ret_unit[c]));
        let max_params = callees.iter().map(|&c| sums.params[c].len()).max().unwrap_or(0);
        let params: Vec<(Option<String>, Option<Unit>)> = (0..max_params)
            .map(|p| {
                let unit =
                    agreed(callees.iter().map(|&c| sums.params[c].get(p).and_then(|pa| pa.unit)));
                let pname = sums.params[callees[0]].get(p).and_then(|pa| pa.name.clone());
                (pname, unit)
            })
            .collect();
        if ret.is_none() && params.iter().all(|(_, u)| u.is_none()) {
            continue;
        }
        let decl_of = |c: usize| {
            let (dfi, dgi) = graph.fns[c];
            (models[dfi].rel_path.clone(), models[dfi].fns[dgi].line)
        };
        let decl = callees.iter().map(|&c| decl_of(c)).min().unwrap_or_default();
        out.insert(tok, CallFact { ret, params, name, decl });
    }
    out
}

/// The single unit all items agree on, or `None` on any unknown/conflict.
fn agreed(units: impl Iterator<Item = Option<Unit>>) -> Option<Unit> {
    let mut acc: Option<Unit> = None;
    for u in units {
        match (u, acc) {
            (None, _) => return None,
            (Some(u), None) => acc = Some(u),
            (Some(u), Some(a)) if u != a => return None,
            _ => {}
        }
    }
    acc
}

fn check_body(
    m: &FileModel,
    start: usize,
    end: usize,
    facts: &BTreeMap<usize, CallFact>,
    out: &mut Vec<Violation>,
) {
    let toks = &m.toks;
    let end = end.min(toks.len().saturating_sub(1));
    let bindings = dataflow::let_bindings(toks, start, end);
    let mut next_binding = 0usize;
    let mut flow: Flow<Unit> = Flow::new();

    let mut k = start;
    while k <= end {
        while next_binding < bindings.len() && bindings[next_binding].rhs.1 < k {
            apply_binding(toks, &bindings[next_binding], &mut flow);
            next_binding += 1;
        }
        let Some(fact) = facts.get(&k) else {
            k += 1;
            continue;
        };
        let line = toks[k].line;
        let Some(close) = cfg::matching(toks, k + 1, "(", ")") else {
            k += 1;
            continue;
        };

        // Return unit mixed with a neighboring operand:
        // `<ident> ± call(…)` and `call(…) ± <ident>`.
        if let Some(ret) = fact.ret {
            let path_start = path_start(toks, k);
            let before_op = (path_start >= 2 && is_mix_op(&toks[path_start - 1]))
                .then(|| (path_start - 2, &toks[path_start - 1]));
            let after_op = toks.get(close + 1).filter(|t| is_mix_op(t)).map(|t| (close + 2, t));
            for (operand, op) in before_op.into_iter().chain(after_op) {
                let Some(other) = toks.get(operand).filter(|t| t.kind == TokKind::Ident) else {
                    continue;
                };
                if let Some(u) = unit_at(toks, operand, &flow) {
                    if u != ret {
                        out.push(mix_violation(m, line, fact, ret, &other.text, u, &op.text));
                    }
                }
            }

            // Non-ns return flowing into a `*_ns` sink: `x_ns = … call(…) …`
            // with no converting `*`/`/` on either side of the call.
            if ret != Unit::Ns && !converted_after(toks, close, end) {
                if let Some(sink) = ns_sink_of(toks, start, k) {
                    out.push(
                        Violation::new(
                            Rule::InterprocUnitFlow,
                            &m.rel_path,
                            line,
                            format!(
                                "`{}(…)` returns {} and flows into `{}` — a nanosecond sink \
                                 must receive nanoseconds; convert with an explicit rate first",
                                fact.name,
                                ret.name(),
                                sink
                            ),
                        )
                        .with_related(vec![decl_related(fact, ret)]),
                    );
                }
            }
        }

        // Argument positions: a single-ident argument with a known unit must
        // match the parameter's declared unit.
        for (p, arg) in single_ident_args(toks, k + 1, close).into_iter().enumerate() {
            let Some((arg_tok, arg_name)) = arg else { continue };
            let Some((pname, Some(want))) = fact.params.get(p).cloned() else { continue };
            let Some(have) = unit_at(toks, arg_tok, &flow) else { continue };
            if have != want {
                let pname = pname.unwrap_or_else(|| format!("#{p}"));
                out.push(
                    Violation::new(
                        Rule::InterprocUnitFlow,
                        &m.rel_path,
                        line,
                        format!(
                            "`{arg_name}` ({}) is passed to parameter `{pname}` ({}) of \
                             `{}` — convert with an explicit rate first",
                            have.name(),
                            want.name(),
                            fact.name
                        ),
                    )
                    .with_related(vec![Related {
                        path: fact.decl.0.clone(),
                        line: fact.decl.1,
                        note: format!("`{}` declares `{pname}` as {}", fact.name, want.name()),
                    }]),
                );
            }
        }
        // Step token-by-token (not past `close`) so calls nested inside the
        // arguments are checked too.
        k += 1;
    }
}

fn mix_violation(
    m: &FileModel,
    line: usize,
    fact: &CallFact,
    ret: Unit,
    other: &str,
    other_unit: Unit,
    op: &str,
) -> Violation {
    Violation::new(
        Rule::InterprocUnitFlow,
        &m.rel_path,
        line,
        format!(
            "`{}(…)` returns {} but is combined with `{other}` ({}) via `{op}` — \
             different units never add; convert explicitly (multiply by a rate) first",
            fact.name,
            ret.name(),
            other_unit.name()
        ),
    )
    .with_related(vec![decl_related(fact, ret)])
}

fn decl_related(fact: &CallFact, ret: Unit) -> Related {
    Related {
        path: fact.decl.0.clone(),
        line: fact.decl.1,
        note: format!("`{}` returns {} (summarized here)", fact.name, ret.name()),
    }
}

fn is_mix_op(t: &Tok) -> bool {
    t.kind == TokKind::Op && matches!(t.text.as_str(), "+" | "-" | "+=" | "-=")
}

/// First token of the (possibly qualified) path ending at the call name
/// token `k`: `sjc_x::m::f` → the `sjc_x` index.
fn path_start(toks: &[Tok], k: usize) -> usize {
    let mut i = k;
    while i >= 2 && toks[i - 1].is_op("::") && toks[i - 2].kind == TokKind::Ident {
        i -= 2;
    }
    i
}

/// When the statement containing the call at `k` assigns into a `*_ns`
/// sink with no converting `*`/`/` before the call, the sink's name.
/// Scans backwards from the call's path start to the statement boundary.
fn ns_sink_of(toks: &[Tok], start: usize, k: usize) -> Option<String> {
    let mut i = path_start(toks, k);
    while i > start {
        i -= 1;
        let t = &toks[i];
        if t.is_op(";") || t.is_op("{") || t.is_op("}") || t.is_op(",") || t.is_op("(") {
            return None;
        }
        if t.is_op("*") || t.is_op("/") {
            return None; // conversion between sink and call
        }
        if (t.is_op("=") || t.is_op(":")) && i > start && toks[i - 1].kind == TokKind::Ident {
            let name = &toks[i - 1].text;
            return (unit_of_name(name) == Some(Unit::Ns)).then(|| name.clone());
        }
    }
    None
}

/// True when a depth-0 `*`/`/` follows the call before its statement ends —
/// the returned value is rescaled before reaching any sink.
fn converted_after(toks: &[Tok], close: usize, end: usize) -> bool {
    let mut depth = 0i64;
    for t in toks.iter().take(end + 1).skip(close + 1) {
        if t.is_op("(") || t.is_op("[") || t.is_op("{") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") || t.is_op("}") {
            if depth == 0 {
                return false; // the call was itself an argument; stop at its caller's `)`
            }
            depth -= 1;
        } else if depth == 0 {
            if t.is_op(";") {
                return false;
            }
            if t.is_op("*") || t.is_op("/") {
                return true;
            }
        }
    }
    false
}

/// Arguments of the call spanning `(open, close)`, positionally: `Some((token
/// index, name))` for arguments that are a single bare identifier, `None`
/// for anything more structured (those carry no checkable unit).
fn single_ident_args(toks: &[Tok], open: usize, close: usize) -> Vec<Option<(usize, String)>> {
    let mut args: Vec<Vec<usize>> = vec![Vec::new()];
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        if t.is_op("(") || t.is_op("[") || t.is_op("{") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") || t.is_op("}") {
            depth -= 1;
        } else if depth == 0 && t.is_op(",") {
            args.push(Vec::new());
            continue;
        }
        args.last_mut().expect("args starts non-empty").push(k);
    }
    args.into_iter()
        .map(|idxs| match idxs.as_slice() {
            [one] if toks[*one].kind == TokKind::Ident => Some((*one, toks[*one].text.clone())),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;

    fn check(files: &[(&str, &str)]) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        let sums = Summaries::compute(&models, &graph);
        run(&models, &graph, &sums)
    }

    #[test]
    fn returned_unit_mixing_fires_across_functions() {
        let vs = check(&[(
            "crates/core/src/x.rs",
            "pub fn total(task_ns: u64, n: u64) -> u64 { task_ns + moved(n) }\nfn moved(n: u64) -> u64 {\n    let out_bytes = n;\n    out_bytes\n}\n",
        )]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("`moved(…)` returns bytes"), "{vs:?}");
        assert!(vs[0].related[0].note.contains("summarized here"), "{vs:?}");
    }

    #[test]
    fn returned_unit_into_ns_sink_fires() {
        let vs = check(&[(
            "crates/core/src/x.rs",
            "pub fn record(r: &mut R, n: u64) {\n    r.sim_ns = step(n);\n}\nfn step(n: u64) -> u64 {\n    let got_bytes = n;\n    got_bytes\n}\n",
        )]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("sim_ns"), "{vs:?}");
    }

    #[test]
    fn argument_unit_mismatch_fires() {
        let vs = check(&[(
            "crates/core/src/x.rs",
            "pub fn drive(read_bytes: u64) -> u64 { scale(read_bytes) }\nfn scale(cost_ns: u64) -> u64 { cost_ns }\n",
        )]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("parameter `cost_ns`"), "{vs:?}");
    }

    #[test]
    fn conversions_and_agreeing_units_are_clean() {
        for ok in [
            // Converted before the sink.
            "pub fn record(r: &mut R, n: u64, ns_per_byte: u64) {\n    r.sim_ns = step(n) * ns_per_byte;\n}\nfn step(n: u64) -> u64 {\n    let got_bytes = n;\n    got_bytes\n}\n",
            // Same units agree.
            "pub fn total(task_ns: u64, n: u64) -> u64 { task_ns + step(n) }\nfn step(n: u64) -> u64 {\n    let more_ns = n;\n    more_ns\n}\n",
            // Unknown callee unit carries no fact.
            "pub fn total(task_ns: u64, n: u64) -> u64 { task_ns + plain(n) }\nfn plain(n: u64) -> u64 { n }\n",
            // Unit-named calls belong to the intra-procedural pass.
            "pub fn total(task_ns: u64) -> u64 { task_ns + other_ns() }\nfn other_ns() -> u64 { 1 }\n",
        ] {
            assert!(check(&[("crates/core/src/x.rs", ok)]).is_empty(), "{ok}");
        }
    }

    #[test]
    fn unit_named_call_is_not_double_reported() {
        // The intra pass flags `task_ns + other_bytes()` by name alone; this
        // pass must stay silent on it.
        let vs = check(&[(
            "crates/core/src/x.rs",
            "pub fn total(task_ns: u64) -> u64 { task_ns + other_bytes() }\nfn other_bytes() -> u64 { 1 }\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }
}
