//! Stale-suppression pass: every audited allow comment still earns its keep.
//!
//! An audited `allow(rule) — reason` comment is a standing waiver; once
//! the code it audited is rewritten, the waiver silently covers *future*
//! regressions on that line instead. This pass compares every well-formed
//! allow against the **pre-suppression** findings (line rules via
//! `check_file_raw` plus every `sjc-analyze` pass) and warns when the allow
//! covers none of them.
//!
//! Coverage mirrors [`crate::is_suppressed`] exactly: an inline allow covers
//! its own line; a comment-only allow also covers every line whose statement
//! starts directly below it. Two deliberate carve-outs keep the rule honest:
//!
//! * `allow(no-panic-in-lib)` / `allow(panic-path)` comments that the
//!   summary layer *consumed* as audited panic sites are live — the panic
//!   site is real, the audit is doing interprocedural work even though no
//!   finding survives to the report;
//! * `allow(stale-suppression)` is exempt from its own check (it is the
//!   escape hatch for allows kept intentionally, e.g. documentation).
//!
//! Malformed allows are `bad-suppression` errors and are skipped here.

use std::collections::BTreeSet;

use crate::items::FileModel;
use crate::{Allow, Rule, Violation};

/// `allows`/`starts` are per-file (same order as `models`); `raw` is the
/// union of pre-suppression findings from both layers; `consumed` holds the
/// `(file index, 1-based line)` panic sites the summary layer trusted.
pub(crate) fn run(
    models: &[FileModel],
    allows: &[Vec<Option<Allow>>],
    starts: &[Vec<usize>],
    raw: &[Violation],
    consumed: &BTreeSet<(usize, usize)>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (fi, m) in models.iter().enumerate() {
        for (i, slot) in allows[fi].iter().enumerate() {
            let Some(a) = slot else { continue };
            let Some(rule) = a.rule else { continue };
            if !a.has_reason || rule == Rule::StaleSuppression {
                continue;
            }
            // Mirrors is_suppressed: the allow at 0-based line `i` covers a
            // 1-based `line` inline (li == i) or, when comment-only, any
            // line whose statement starts on the line below the comment.
            let covers = |line: usize| {
                line > 0 && {
                    let li = line - 1;
                    li == i
                        || (a.comment_only && starts[fi].get(li).copied().unwrap_or(li) == i + 1)
                }
            };
            let live = raw.iter().any(|v| v.rule == rule && v.path == m.rel_path && covers(v.line))
                || (matches!(rule, Rule::NoPanicInLib | Rule::PanicPath)
                    && consumed.iter().any(|&(cfi, line)| cfi == fi && covers(line)));
            if !live {
                out.push(Violation::new(
                    Rule::StaleSuppression,
                    &m.rel_path,
                    i + 1,
                    format!(
                        "allow({}) suppresses nothing — the finding it audited is gone; \
                         delete the comment (or keep it with an \
                         allow(stale-suppression) if it documents a real hazard)",
                        a.rule_text
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(files: &[(&str, &str)], consumed: &BTreeSet<(usize, usize)>) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let allows: Vec<_> = files.iter().map(|(_, s)| crate::allows_for(s)).collect();
        let starts: Vec<_> = files.iter().map(|(_, s)| crate::stmt_starts(s)).collect();
        let mut raw = Vec::new();
        for (p, s) in files {
            raw.extend(crate::check_file_raw(p, s));
        }
        run(&models, &allows, &starts, &raw, consumed)
    }

    #[test]
    fn allow_covering_a_live_finding_is_kept() {
        // The unwrap fires no-panic-in-lib pre-suppression, so the allow is
        // doing real work.
        let vs = check(
            &[(
                "crates/geom/src/mbr.rs",
                "fn f(x: Option<u64>) -> u64 { x.unwrap() } // sjc-lint: allow(no-panic-in-lib) — caller checked is_some\n",
            )],
            &BTreeSet::new(),
        );
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn allow_covering_nothing_is_stale() {
        let vs = check(
            &[(
                "crates/geom/src/mbr.rs",
                "fn f(x: u64) -> u64 { x + 1 } // sjc-lint: allow(no-panic-in-lib) — caller checked is_some\n",
            )],
            &BTreeSet::new(),
        );
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::StaleSuppression);
        assert_eq!(vs[0].line, 1);
        assert!(vs[0].message.contains("no-panic-in-lib"), "{vs:?}");
    }

    #[test]
    fn comment_only_allow_covers_the_statement_below() {
        let src = "// sjc-lint: allow(no-panic-in-lib) — index bounded by the loop above\nfn f(xs: &[u64]) -> u64 {\n    xs[0]\n}\n";
        // Line 3's statement starts on line 3, not below the comment — but
        // the fn header on line 2 does. Use a one-line body instead:
        let src2 = "fn f(xs: &[u64]) -> u64 {\n    // sjc-lint: allow(no-panic-in-lib) — index bounded by caller\n    xs[0]\n}\n";
        let vs = check(&[("crates/geom/src/mbr.rs", src2)], &BTreeSet::new());
        assert!(vs.is_empty(), "{vs:?}");
        // The first shape: the allow sits above the fn header, the finding
        // is two lines further down — stale.
        let vs = check(&[("crates/geom/src/mbr.rs", src)], &BTreeSet::new());
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn consumed_panic_audits_count_as_live() {
        let src = "pub fn f(x: Option<u64>) -> u64 { x.unwrap() } // sjc-lint: allow(panic-path) — caller checked is_some\n";
        // allow(panic-path) matches no raw finding (the raw finding is
        // no-panic-in-lib), but the summary layer consumed it as an audited
        // panic site, so it is live.
        let consumed: BTreeSet<(usize, usize)> = [(0, 1)].into_iter().collect();
        let vs = check(&[("crates/geom/src/mbr.rs", src)], &consumed);
        assert!(vs.is_empty(), "{vs:?}");
        // Without the consumption it would be stale.
        let vs = check(&[("crates/geom/src/mbr.rs", src)], &BTreeSet::new());
        assert_eq!(vs.len(), 1, "{vs:?}");
    }

    #[test]
    fn malformed_allows_are_left_to_bad_suppression() {
        let vs = check(
            &[(
                "crates/geom/src/mbr.rs",
                "fn f(x: u64) -> u64 { x } // sjc-lint: allow(no-panic-in-lib)\nfn g(x: u64) -> u64 { x } // sjc-lint: allow(nonsense-rule) — reason here\n",
            )],
            &BTreeSet::new(),
        );
        assert!(vs.is_empty(), "{vs:?}");
    }
}
