//! Loop-invariant-call pass (warning severity).
//!
//! Inside a hot loop (same scope as [`super::hot_alloc`]: loops of hot
//! functions and of inline `sjc_par` closures, in simulation crates), a
//! call whose arguments are all loop-invariant recomputes the same value on
//! every iteration — `stage_tag(stage)` inside a per-task wave loop costs a
//! hash per task for a value that never changes. The fix is mechanical
//! (hoist the call above the loop), but whether the call is *pure* is not
//! statically provable here, so findings are warnings: they ride the
//! report and count against the per-file ratchet without failing the gate.
//!
//! A call is flagged only when the evidence is unambiguous:
//!
//! * a plain or path-qualified function call (never a method — the receiver
//!   is almost always the loop variable) with at least one identifier
//!   argument;
//! * no nested calls, `&mut`, or other effects inside the argument list;
//! * every identifier in the arguments is invariant w.r.t. the innermost
//!   enclosing loop: not bound by its header, not `let`-bound, assigned,
//!   mutated, or pattern-bound anywhere in its body (`self` is always
//!   treated as variant — interior mutation through methods is invisible
//!   here).

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::cfg::{self, FnCfg, Region};
use crate::items::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::passes::hot::HotSet;
use crate::{Rule, Violation, SIM_CRATES};

/// Methods that mutate their receiver: the receiver chain's base becomes
/// loop-variant.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "extend",
    "insert",
    "remove",
    "append",
    "clear",
    "pop",
    "sort",
    "sort_by",
    "sort_by_key",
    "swap",
    "truncate",
    "drain",
    "retain",
    "borrow_mut",
];

const ASSIGN_OPS: &[&str] = &["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="];

pub(crate) fn run(models: &[FileModel], graph: &CallGraph, hot: &HotSet) -> Vec<Violation> {
    let mut out = Vec::new();
    for (mi, m) in models.iter().enumerate() {
        if m.harness || !SIM_CRATES.contains(&m.krate.as_str()) {
            continue;
        }
        let mut cfgs: Vec<FnCfg> = Vec::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
            if fi != mi || !hot.hot[id] {
                continue;
            }
            let f = &m.fns[gi];
            let Some((s, e)) = f.body else { continue };
            if f.in_test || !seen.insert(s) {
                continue;
            }
            cfgs.push(FnCfg::build(&m.toks, s, e));
        }
        for &(cs, ce) in &hot.closure_ranges[mi] {
            if !m.in_test_at(cs) && seen.insert(cs) {
                cfgs.push(FnCfg::build(&m.toks, cs, ce));
            }
        }
        for fc in &cfgs {
            for lp in fc.loops() {
                // Only innermost-loop reports: a call in a nested loop is
                // judged against (and reported for) the loop closest to it.
                check_loop(m, fc, lp, &mut out);
            }
        }
    }
    out
}

fn check_loop(m: &FileModel, fc: &FnCfg, lp: &Region, out: &mut Vec<Violation>) {
    let toks = &m.toks;
    let variant = variant_idents(toks, lp);
    let mut k = lp.open + 1;
    while k < lp.close {
        // Judge each call against its innermost loop only.
        if fc.innermost_loop(k).is_some_and(|inner| inner.open != lp.open) {
            k += 1;
            continue;
        }
        let Some((name, args_open)) = call_head(toks, k) else {
            k += 1;
            continue;
        };
        let Some(args_close) = cfg::matching(toks, args_open, "(", ")") else {
            k += 1;
            continue;
        };
        if args_close >= lp.close || !args_are_invariant(toks, args_open, args_close, &variant) {
            k += 1;
            continue;
        }
        out.push(
            Violation::new(
                Rule::LoopInvariantCall,
                &m.rel_path,
                toks[k].line,
                format!(
                    "`{name}(…)` has only loop-invariant arguments — every iteration of the \
                     loop at line {} recomputes the same value; hoist the call above the loop \
                     (or suppress if the call is impure by design)",
                    lp.line
                ),
            )
            .with_severity(Rule::LoopInvariantCall.default_severity()),
        );
        k = args_close + 1;
    }
}

/// If token `k` heads a plain (non-method, non-macro, non-constructor)
/// call, returns `(name, index of the opening paren)`.
fn call_head(toks: &[Tok], k: usize) -> Option<(String, usize)> {
    let t = &toks[k];
    if t.kind != TokKind::Ident || crate::callgraph::is_call_keyword(&t.text) {
        return None;
    }
    if !toks.get(k + 1).is_some_and(|n| n.is_op("(")) {
        return None;
    }
    // Methods, macros, definitions, and `Type::new`-style constructors are
    // out of scope; an Uppercase head is a tuple-struct/enum constructor.
    if k > 0 && (toks[k - 1].is_op(".") || toks[k - 1].is_ident("fn") || toks[k - 1].is_op("!")) {
        return None;
    }
    if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
        return None;
    }
    // Walk the qualifier chain for display, and reject `Type::method` where
    // the qualifier is a type (uppercase): `Vec::with_capacity(n)` is an
    // allocation, not a hoisting candidate.
    let mut name = t.text.clone();
    let mut j = k;
    while j >= 2 && toks[j - 1].is_op("::") && toks[j - 2].kind == TokKind::Ident {
        if toks[j - 2].text.chars().next().is_some_and(|c| c.is_uppercase()) {
            return None;
        }
        name = format!("{}::{name}", toks[j - 2].text);
        j -= 2;
    }
    Some((name, k + 1))
}

/// True when the argument list `(args_open .. args_close)` is simple enough
/// to judge and every identifier in it is loop-invariant.
fn args_are_invariant(
    toks: &[Tok],
    args_open: usize,
    args_close: usize,
    variant: &BTreeSet<String>,
) -> bool {
    if args_close <= args_open + 1 {
        return false; // zero-arg call: nothing proves the result constant
    }
    let mut idents = 0usize;
    for t in toks.iter().take(args_close).skip(args_open + 1) {
        if t.is_op("(") || t.is_op("{") || t.is_op("|") || t.is_op("||") {
            return false; // nested call / block / closure argument
        }
        if t.is_ident("mut") || t.is_ident("self") {
            return false;
        }
        if t.kind == TokKind::Ident {
            if variant.contains(&t.text) {
                return false;
            }
            idents += 1;
        }
    }
    idents > 0
}

/// Identifiers that vary across iterations of loop `lp`: its header
/// pattern, plus everything bound, assigned, or mutated in its body.
fn variant_idents(toks: &[Tok], lp: &Region) -> BTreeSet<String> {
    let mut variant: BTreeSet<String> = BTreeSet::new();
    variant.insert("self".to_string());
    // `for <pat> in …` header binders.
    if toks[lp.header].is_ident("for") {
        let mut j = lp.header + 1;
        while j < lp.open && !toks[j].is_ident("in") {
            if toks[j].kind == TokKind::Ident {
                variant.insert(toks[j].text.clone());
            }
            j += 1;
        }
    }
    let mut k = lp.open + 1;
    while k < lp.close {
        let t = &toks[k];
        if t.is_ident("let") || t.is_ident("for") {
            let stop = if t.is_ident("let") { "=" } else { "in" };
            let mut j = k + 1;
            while j < lp.close
                && !toks[j].is_op(stop)
                && !toks[j].is_ident(stop)
                && !toks[j].is_op(";")
            {
                if toks[j].kind == TokKind::Ident && toks[j].text != "mut" {
                    variant.insert(toks[j].text.clone());
                }
                j += 1;
            }
            k = j;
        } else if t.is_op("|") {
            // Closure params.
            let mut j = k + 1;
            while j < lp.close && !toks[j].is_op("|") {
                if toks[j].kind == TokKind::Ident {
                    variant.insert(toks[j].text.clone());
                }
                j += 1;
            }
            k = j + 1;
            continue;
        } else if t.is_op("=>") {
            // Match arm: everything between the previous delimiter and the
            // `=>` is (over-approximately) pattern-bound.
            let mut j = k;
            while j > lp.open {
                j -= 1;
                let p = &toks[j];
                if p.is_op(",") || p.is_op("{") || p.is_op("=>") {
                    break;
                }
                if p.kind == TokKind::Ident {
                    variant.insert(p.text.clone());
                }
            }
        } else if t.kind == TokKind::Op && ASSIGN_OPS.contains(&t.text.as_str()) && k > lp.open + 1
        {
            if let Some(base) = chain_base(toks, k - 1) {
                variant.insert(base);
            }
        } else if t.is_op("&")
            && toks.get(k + 1).is_some_and(|n| n.is_ident("mut"))
            && toks.get(k + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            variant.insert(toks[k + 2].text.clone());
        } else if t.is_op(".")
            && toks.get(k + 1).is_some_and(|n| {
                n.kind == TokKind::Ident && MUTATING_METHODS.contains(&n.text.as_str())
            })
            && toks.get(k + 2).is_some_and(|n| n.is_op("("))
            && k > lp.open + 1
        {
            if let Some(base) = chain_base(toks, k - 1) {
                variant.insert(base);
            }
        }
        k += 1;
    }
    variant
}

/// Walks a field chain (`a.b.c`) backwards from token `at`, returning the
/// base identifier.
fn chain_base(toks: &[Tok], at: usize) -> Option<String> {
    let mut k = at;
    loop {
        if toks[k].kind != TokKind::Ident && toks[k].kind != TokKind::Num {
            return None;
        }
        if k >= 2 && toks[k - 1].is_op(".") {
            k -= 2;
            continue;
        }
        return (toks[k].kind == TokKind::Ident).then(|| toks[k].text.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::passes::hot;

    fn analyze(files: &[(&str, &str)]) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        let set = hot::compute(&models, &graph);
        run(&models, &graph, &set)
    }

    const DRIVER: &str =
        "pub fn drive(parts: &[Vec<u64>]) -> Vec<u64> {\n    sjc_par::par_map(parts, |p| kernel(p, 3))\n}\n";

    #[test]
    fn invariant_call_in_hot_loop_warns() {
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64], k: u64) -> u64 {{\n    let mut acc = 0u64;\n    for x in p.iter() {{\n        let w = weight(k);\n        acc += w + x;\n    }}\n    acc\n}}\nfn weight(k: u64) -> u64 {{ k * 2 }}\n"
        );
        let vs = analyze(&[("crates/index/src/x.rs", &src)]);
        assert!(
            vs.iter().any(|v| v.rule == Rule::LoopInvariantCall
                && v.severity == crate::Severity::Warning
                && v.message.contains("weight")),
            "{vs:?}"
        );
    }

    #[test]
    fn variant_args_and_hoisted_calls_are_clean() {
        // The loop variable feeds the call…
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64], k: u64) -> u64 {{\n    let mut acc = 0u64;\n    for x in p.iter() {{\n        acc += weight(*x);\n    }}\n    acc\n}}\nfn weight(k: u64) -> u64 {{ k * 2 }}\n"
        );
        assert!(analyze(&[("crates/index/src/x.rs", &src)]).is_empty());
        // …or the call already sits above the loop…
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64], k: u64) -> u64 {{\n    let w = weight(k);\n    let mut acc = 0u64;\n    for x in p.iter() {{\n        acc += w + x;\n    }}\n    acc\n}}\nfn weight(k: u64) -> u64 {{ k * 2 }}\n"
        );
        assert!(analyze(&[("crates/index/src/x.rs", &src)]).is_empty());
        // …or an argument is reassigned inside the loop.
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64], k: u64) -> u64 {{\n    let mut acc = 0u64;\n    let mut base = k;\n    for x in p.iter() {{\n        acc += weight(base);\n        base = acc;\n    }}\n    acc\n}}\nfn weight(k: u64) -> u64 {{ k * 2 }}\n"
        );
        assert!(analyze(&[("crates/index/src/x.rs", &src)]).is_empty());
    }

    #[test]
    fn cold_fns_and_nested_calls_are_out_of_scope() {
        // Same shape, but `kernel` is not reachable from a par closure.
        let src = "fn kernel(p: &[u64], k: u64) -> u64 {\n    let mut acc = 0u64;\n    for x in p.iter() {\n        acc += weight(k) + x;\n    }\n    acc\n}\nfn weight(k: u64) -> u64 { k * 2 }\n";
        assert!(analyze(&[("crates/index/src/x.rs", src)]).is_empty());
        // A call with a nested call in its arguments is never judged itself;
        // the *inner* call is judged on its own (invariant) arguments.
        let src = format!(
            "{DRIVER}fn kernel(p: &[u64], k: u64) -> u64 {{\n    let mut acc = 0u64;\n    for x in p.iter() {{\n        acc += weight(scale(k)) + x;\n    }}\n    acc\n}}\nfn weight(k: u64) -> u64 {{ k * 2 }}\nfn scale(k: u64) -> u64 {{ k }}\n"
        );
        let vs = analyze(&[("crates/index/src/x.rs", &src)]);
        assert!(!vs.iter().any(|v| v.message.contains("`weight(")), "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("`scale(")), "{vs:?}");
    }
}
