//! Panic-path pass: `pub` simulation API never transitively panics.
//!
//! PR 1's `no-panic-in-lib` line rule bans panic *sites* in the library
//! crates syntactically; this pass upgrades that to a call-graph-closed
//! guarantee using the [`crate::summaries`] may-panic facts: a `pub`
//! function of a simulation crate must not *reach* a panic site through any
//! chain of calls — including calls into crates the line rule does not
//! cover (`sjc_par`'s worker internals, for instance). Sites carrying an
//! audited `allow(no-panic-in-lib)`/`allow(panic-path)` comment are trusted
//! by the summary layer and never start a chain.
//!
//! The diagnostic reports the full chain: the message names every hop, and
//! each hop becomes a related location (`json`/`sarif` emit them as
//! `relatedLocations`), so the reader can audit the path without re-running
//! the analysis.

use crate::callgraph::CallGraph;
use crate::items::{FileModel, Vis};
use crate::summaries::{Cause, Summaries};
use crate::{Related, Rule, Violation, SIM_CRATES};

pub fn run(models: &[FileModel], graph: &CallGraph, sums: &Summaries) -> Vec<Violation> {
    let mut out = Vec::new();
    for (id, &(fi, gi)) in graph.fns.iter().enumerate() {
        let m = &models[fi];
        let f = &m.fns[gi];
        if !SIM_CRATES.contains(&m.krate.as_str()) || m.harness || f.in_test || f.vis != Vis::Pub {
            continue;
        }
        if sums.may_panic[id].is_none() {
            continue;
        }
        let (desc, related) = describe_chain(models, graph, &sums.may_panic, id);
        out.push(
            Violation::new(
                Rule::PanicPath,
                &m.rel_path,
                f.line,
                format!(
                    "pub fn `{}` can reach a panic site: {desc} — public simulation API \
                     returns Result/Option, or the site carries an audited \
                     allow(panic-path) comment",
                    f.name
                ),
            )
            .with_related(related),
        );
    }
    out
}

/// Renders the cause chain from `id` both as prose (`calls `a` → calls `b`
/// → `.unwrap()` at crates/par/src/lib.rs:168`) and as related locations,
/// one per hop.
pub(crate) fn describe_chain(
    models: &[FileModel],
    graph: &CallGraph,
    causes: &[Option<Cause>],
    id: usize,
) -> (String, Vec<Related>) {
    let mut prose = Vec::new();
    let mut related = Vec::new();
    let mut cur = id;
    for cause in Summaries::chain(causes, id) {
        let (cfi, _) = graph.fns[cur];
        let path = &models[cfi].rel_path;
        match cause {
            Cause::Via { callee, line } => {
                let (nfi, ngi) = graph.fns[*callee];
                let name = &models[nfi].fns[ngi].name;
                prose.push(format!("calls `{name}` ({path}:{line})"));
                related.push(Related {
                    path: path.clone(),
                    line: *line,
                    note: format!("calls `{name}`"),
                });
                cur = *callee;
            }
            Cause::Direct { what, line } => {
                prose.push(format!("{what} at {path}:{line}"));
                related.push(Related { path: path.clone(), line: *line, note: what.clone() });
            }
        }
    }
    (prose.join(" → "), related)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::summaries::Summaries;

    fn check(files: &[(&str, &str)]) -> Vec<Violation> {
        let models: Vec<FileModel> = files.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let graph = callgraph::build(&models);
        let sums = Summaries::compute(&models, &graph);
        run(&models, &graph, &sums)
    }

    #[test]
    fn pub_api_reaching_a_panic_reports_the_chain() {
        let vs = check(&[
            (
                "crates/core/src/join.rs",
                "use sjc_par::par_map_budget;\npub fn run_join(parts: &[u64]) -> u64 {\n    par_map_budget(parts)\n}\n",
            ),
            (
                "crates/par/src/lib.rs",
                "pub fn par_map_budget(parts: &[u64]) -> u64 {\n    parts.iter().next().unwrap();\n    0\n}\n",
            ),
        ]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        let v = &vs[0];
        assert_eq!(v.path, "crates/core/src/join.rs");
        assert!(v.message.contains("run_join") && v.message.contains("par_map_budget"), "{v:?}");
        assert!(v.message.contains(".unwrap"), "{v:?}");
        // One related location per hop: the call site, then the panic site.
        assert_eq!(v.related.len(), 2, "{v:?}");
        assert_eq!(v.related[1].path, "crates/par/src/lib.rs");
    }

    #[test]
    fn private_fns_and_clean_apis_do_not_fire() {
        let vs = check(&[(
            "crates/core/src/join.rs",
            "pub fn clean(n: u64) -> u64 { n.saturating_add(1) }\nfn internal() { x.unwrap(); }\n",
        )]);
        assert!(vs.is_empty(), "{vs:?}");
    }

    #[test]
    fn restricted_visibility_is_not_public_api() {
        let vs = check(&[("crates/core/src/join.rs", "pub(crate) fn helper() { x.unwrap(); }\n")]);
        assert!(vs.is_empty(), "{vs:?}");
    }
}
