//! `sjc-analyze` — the cross-file layer of the checker.
//!
//! The line rules in `lib.rs` are single-line token scans; the passes here
//! see the whole workspace at once: a token stream per file (`lexer`), an
//! item model with function extents and test regions (`items`), and a
//! name-resolved call graph gated by the crate topology (`callgraph`).
//! Three passes run on top:
//!
//! * [`entropy`] — no simulation-crate function may *transitively* reach a
//!   wall-clock or entropy source, and nothing derived from one may flow
//!   into `sim_ns`/trace output (in any crate, bench included);
//! * [`par_closure`] — closures handed to the `sjc_par` runtime must not
//!   mutate captured state (the static counterpart of the 1-vs-8-thread
//!   bit-identity tests);
//! * [`error_flow`] — every `SimError` variant is both constructed and
//!   handled somewhere, and library code never silently discards a
//!   `Result`.
//!
//! The control-flow layer ([`crate::cfg`], [`crate::dataflow`], and the
//! hot-path reachability in [`hot`]) adds three more:
//!
//! * [`hot_alloc`] — no per-iteration allocation inside a loop of any
//!   function reachable from an `sjc_par` entry-point closure or a
//!   `crates/bench` kernel;
//! * [`loop_invariant`] — calls with all-loop-invariant arguments inside
//!   hot loops (warning: hoist them out);
//! * [`unit_flow`] — no `+`/`-` arithmetic mixing `*_ns`/`*_bytes`/count
//!   bindings, and no non-nanosecond value reaching a `*_ns` sink.
//!
//! Suppression works exactly as for the line rules: an inline allow
//! comment naming the rule, with a reason, on (or directly above) the
//! reported line.

pub mod entropy;
pub mod error_flow;
pub(crate) mod hot;
pub mod hot_alloc;
pub mod loop_invariant;
pub mod par_closure;
pub mod unit_flow;

use std::io;
use std::path::Path;

use crate::callgraph;
use crate::items::FileModel;
use crate::Violation;

/// Runs the three cross-file passes over the workspace rooted at `root` and
/// returns the unsuppressed violations, sorted by path and line.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let files = crate::workspace_files(root)?;
    let mut models = Vec::with_capacity(files.len());
    let mut allows = Vec::with_capacity(files.len());
    let mut starts = Vec::with_capacity(files.len());
    for (rel, source) in &files {
        models.push(FileModel::build(rel, source));
        allows.push(crate::allows_for(source));
        starts.push(crate::stmt_starts(source));
    }

    let graph = callgraph::build(&models);
    let mut out = entropy::run(&models, &graph);
    out.extend(par_closure::run(&models));
    out.extend(error_flow::run(&models));
    let hot_set = hot::compute(&models, &graph);
    out.extend(hot_alloc::run(&models, &graph, &hot_set));
    out.extend(loop_invariant::run(&models, &graph, &hot_set));
    out.extend(unit_flow::run(&models));

    // Apply suppressions: pass findings honor the same audited allow
    // comments as the line rules.
    out.retain(|v| {
        let Some(idx) = models.iter().position(|m| m.rel_path == v.path) else {
            return true;
        };
        !crate::is_suppressed(&allows[idx], &starts[idx], v.rule, v.line)
    });

    out.sort_by(|a, b| (&a.path, a.line, a.rule.name()).cmp(&(&b.path, b.line, b.rule.name())));
    Ok(out)
}
